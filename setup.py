"""Setup shim so editable installs work with older setuptools (offline env)."""
from setuptools import setup

setup()
