"""Figure 12: point-cloud sparse convolution vs TorchSparse (Algo1 / Algo2).

Seven synthetic S3DIS-style scenes, channel size 128, FP16, 5 cm voxels.
Speedups are reported relative to TorchSparse-Algo2, as in the paper.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import format_table, geometric_mean
from repro.baselines import TorchSparseConv
from repro.datasets import build_kernel_map, generate_scene, list_scenes, voxelize
from repro.kernels import SparseConv3d

CHANNELS = 128
MAX_POINTS = 12_000
VOXEL_SIZE = 0.05


@pytest.fixture(scope="module")
def per_scene_results():
    rows = []
    ours_speedups, algo1_speedups = [], []
    for scene in list_scenes():
        voxels = voxelize(generate_scene(scene, max_points=MAX_POINTS), VOXEL_SIZE)
        kernel_map = build_kernel_map(voxels)
        conv = SparseConv3d(kernel_map, CHANNELS, CHANNELS, dtype="fp16")
        placeholder = np.zeros((kernel_map.num_voxels, CHANNELS), dtype=np.float32)
        ours_ms = conv.estimate_ms()
        algo1_ms = TorchSparseConv(kernel_map, "implicit_gemm", dtype="fp16").modeled_ms(
            placeholder, conv.weight
        )
        algo2_ms = TorchSparseConv(kernel_map, "fetch_on_demand", dtype="fp16").modeled_ms(
            placeholder, conv.weight
        )
        ours_speedups.append(algo2_ms / ours_ms)
        algo1_speedups.append(algo2_ms / algo1_ms)
        rows.append(
            [scene, kernel_map.num_voxels, kernel_map.total_pairs,
             algo2_ms / ours_ms, algo2_ms / algo1_ms, 1.0]
        )
    rows.append(
        ["geomean", "", "", geometric_mean(ours_speedups), geometric_mean(algo1_speedups), 1.0]
    )
    return rows, ours_speedups, algo1_speedups


def test_fig12_sparse_convolution(per_scene_results, report, benchmark):
    rows, ours_speedups, algo1_speedups = per_scene_results
    report(
        "fig12_sparse_conv",
        format_table(
            ["scene", "voxels", "pairs", "ours_vs_algo2", "algo1_vs_algo2", "algo2"],
            rows,
            title=(
                f"Figure 12 — sparse convolution speedup over TorchSparse-Algo2 "
                f"(FP16, {CHANNELS} ch)"
            ),
        ),
    )

    # Paper: our kernel beats both TorchSparse algorithms on every scene.
    assert all(s > 1.0 for s in ours_speedups)
    assert geometric_mean(ours_speedups) > geometric_mean(algo1_speedups)

    # Time the real NumPy execution on a small scene with fewer channels.
    voxels = voxelize(generate_scene("pantry", max_points=4000), 0.1)
    kernel_map = build_kernel_map(voxels)
    conv = SparseConv3d(kernel_map, 32, 32, dtype="fp16")
    features = np.random.default_rng(0).standard_normal((kernel_map.num_voxels, 32))
    result = benchmark(conv, features)
    np.testing.assert_allclose(result, conv.reference(features), atol=1e-6)
