"""Table 1: lines-of-code savings and headline speedups across applications.

For each of the four case studies, the harness reports the user-written
LoC (one Einsum), the hand-written baseline's LoC as published, the LoC
saving, and the modelled speedup over that baseline at a representative
configuration.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import PAPER_BASELINE_LOC, format_table, geometric_mean, loc_saving
from repro.baselines import (
    E3nnTensorProduct,
    SputnikSpMM,
    TorchBSRSpMM,
    TorchSparseConv,
)
from repro.datasets import (
    build_kernel_map,
    generate_scene,
    list_graphs,
    load_graph_matrix,
    random_block_sparse_matrix,
    voxelize,
)
from repro.kernels import (
    FullyConnectedTensorProduct,
    SparseConv3d,
    StructuredSpMM,
    UnstructuredSpMM,
)


@pytest.fixture(scope="module")
def summary_rows():
    rows = []

    # Structured SpMM: hypersparse 32x32-block matrix (where Figure 10 shows
    # the largest advantage over TorchBSR).
    matrix = random_block_sparse_matrix(2048, (32, 32), 0.05, rng=0)
    ours = StructuredSpMM(matrix, dtype="fp16", autotune_group_size=True,
                          autotune_num_cols=2048).estimate_ms(2048)
    baseline = TorchBSRSpMM(matrix, dtype="fp16").modeled_ms(np.zeros((2048, 2048), np.float32))
    rows.append(["Structured SpMM", "TorchBSR", PAPER_BASELINE_LOC["structured_spmm"][1],
                 StructuredSpMM.lines_of_code, loc_saving("structured_spmm", 1), baseline / ours])

    # Unstructured SpMM: geomean over the TC-GNN suite vs the best hand-written
    # baseline per matrix (Sputnik), reported against cuSPARSE-normalised times.
    speedups = []
    for name in list_graphs()[:6]:
        csr = load_graph_matrix(name, max_rows=2048)
        dense = np.zeros((csr.shape[1], 128), dtype=np.float32)
        ours_ms = UnstructuredSpMM(csr).estimate_ms(128)
        sputnik_ms = SputnikSpMM(csr).modeled_ms(dense)
        speedups.append(sputnik_ms / ours_ms)
    rows.append(["Unstructured SpMM", "Sputnik", PAPER_BASELINE_LOC["unstructured_spmm"][1],
                 UnstructuredSpMM.lines_of_code, loc_saving("unstructured_spmm", 1),
                 geometric_mean(speedups)])

    # Equivariant tensor product: l_max=1, 16 channels (the paper's headline 3.81x
    # comes from the small-channel regime where e3nn's launch overhead dominates).
    layer = FullyConnectedTensorProduct(1, 16)
    ours_ms = layer.estimate_ms(10_000)
    x = np.zeros((10_000, layer.slot_dimension, 16), dtype=np.float32)
    y = np.zeros((10_000, layer.slot_dimension), dtype=np.float32)
    w = np.zeros((10_000, layer.cg.num_paths, 16, 16), dtype=np.float32)
    e3nn_ms = E3nnTensorProduct(layer.cg, 16).modeled_ms(x, y, w)
    rows.append(["Equivariant Tensor Prod.", "e3nn",
                 PAPER_BASELINE_LOC["equivariant_tensor_product"][1],
                 FullyConnectedTensorProduct.lines_of_code,
                 loc_saving("equivariant_tensor_product", 1), e3nn_ms / ours_ms])

    # Sparse convolution: conferenceRoom-style scene vs TorchSparse Algo2.
    voxels = voxelize(generate_scene("conferenceRoom", max_points=10_000), 0.05)
    kernel_map = build_kernel_map(voxels)
    conv = SparseConv3d(kernel_map, 128, 128, dtype="fp16")
    ours_ms = conv.estimate_ms()
    baseline_ms = TorchSparseConv(kernel_map, "fetch_on_demand", dtype="fp16").modeled_ms(
        np.zeros((kernel_map.num_voxels, 128), np.float32), conv.weight
    )
    rows.append(["Sparse Conv.", "TorchSparse", PAPER_BASELINE_LOC["sparse_convolution"][1],
                 SparseConv3d.lines_of_code, loc_saving("sparse_convolution", 1),
                 baseline_ms / ours_ms])
    return rows


def test_table1_summary(summary_rows, report, benchmark):
    report(
        "table1_summary",
        format_table(
            ["application", "baseline", "baseline_loc", "our_loc", "loc_saving_x", "speedup_x"],
            summary_rows,
            title="Table 1 — LoC savings and modelled speedups vs hand-written baselines",
        ),
    )
    for row in summary_rows:
        assert row[3] == 1              # one line of user code per application
        assert row[4] >= 200            # at least 202x LoC saving
        assert row[5] > 1.0             # faster than the hand-written baseline

    # Benchmark the cheapest end-to-end application as the timed body.
    matrix = random_block_sparse_matrix(512, (32, 32), 0.1, rng=2).astype(np.float64)
    op = StructuredSpMM(matrix)
    dense = np.random.default_rng(0).standard_normal((512, 128))
    result = benchmark(op, dense)
    np.testing.assert_allclose(result, matrix @ dense, atol=1e-6)
