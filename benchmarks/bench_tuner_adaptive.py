"""Adaptive format selection across four sparsity regimes.

The tuner's acceptance benchmark: for each regime, measure every
hand-picked candidate format's warm SpMM runtime, then let
``format="auto"`` choose — the auto choice must land within 10% of the
best hand-picked candidate.

Regimes (all 512-row matrices, dense operand width 64):

* **uniform** — uniformly random nonzeros (``datasets.random_sparse_matrix``);
* **powerlaw** — Pareto-distributed row lengths (degree-skewed graphs);
* **blockdiag** — nonzeros forming dense 16x16 blocks
  (``datasets.random_block_sparse_matrix``);
* **pointcloud** — the voxel adjacency of a synthetic indoor scene's
  sparse-convolution kernel map (``datasets.pointclouds``).

Runtimes are the best of ``REPEATS`` warm executions of the *same*
compiled operator, so the auto-vs-best ratio compares identical code paths
and is robust to timer noise.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.insum.api import SparseEinsum
from repro.datasets import (
    build_kernel_map,
    generate_scene,
    random_block_sparse_matrix,
    random_sparse_matrix,
    voxelize,
)
from repro.tuner import CostModel, enumerate_candidates, profile_operand
from repro.tuner.auto import choose_format
from repro.utils.timing import Timer

N_COLS = 64
REPEATS = 5
TOLERANCE = 1.10  # auto must be within 10% of the best hand-picked format


def _powerlaw_matrix(rows: int, cols: int, rng_seed: int = 0) -> np.ndarray:
    """Degree-skewed rows: Pareto-distributed occupancy (graph-like)."""
    rng = np.random.default_rng(rng_seed)
    occupancy = np.minimum(cols, (rng.pareto(1.2, rows) * 4 + 1).astype(int))
    dense = np.zeros((rows, cols))
    for row, occ in enumerate(occupancy):
        cols_of_row = rng.choice(cols, size=occ, replace=False)
        values = rng.standard_normal(occ)
        values[values == 0] = 1.0
        dense[row, cols_of_row] = values
    return dense


def _pointcloud_matrix(max_rows: int = 512) -> np.ndarray:
    """Voxel-adjacency matrix of one kernel offset of a synthetic scene."""
    points = generate_scene("pantry", max_points=6000, rng=0)
    voxels = voxelize(points)
    kernel_map = build_kernel_map(voxels)
    # Accumulate all offsets' (output, input) pairs into one adjacency.
    rows_list, cols_list = [], []
    for pairs in kernel_map.pairs:
        if len(pairs):
            rows_list.append(pairs[:, 0])
            cols_list.append(pairs[:, 1])
    rows = np.concatenate(rows_list) % max_rows
    cols = np.concatenate(cols_list) % max_rows
    dense = np.zeros((max_rows, max_rows))
    dense[rows, cols] = 1.0
    return dense


@pytest.fixture(scope="module")
def regimes():
    return {
        "uniform": random_sparse_matrix((512, 512), 0.03, rng=0).astype(np.float64),
        "powerlaw": _powerlaw_matrix(512, 512, rng_seed=1),
        "blockdiag": random_block_sparse_matrix(512, (16, 16), 0.06, rng=2).astype(np.float64),
        "pointcloud": _pointcloud_matrix(512),
    }


def _measure_all(candidates, dense, dense_rhs) -> dict[str, float]:
    """Interleaved best-of-``REPEATS`` warm runtimes, keyed by label.

    All candidates compile and warm up first, then timed rounds alternate
    over them, keeping each one's minimum — so CPU frequency ramp-up and
    other monotone drift hit every candidate equally.
    """
    operators = []
    for candidate in candidates:
        operand = candidate.build(dense)
        operator = SparseEinsum("C[m,n] += A[m,k] * B[k,n]")
        operator(A=operand, B=dense_rhs)  # compile + warm up
        operators.append((candidate.describe(), operator, operand))
    best = {label: float("inf") for label, _, _ in operators}
    for _ in range(REPEATS):
        for label, operator, operand in operators:
            with Timer() as timer:
                operator(A=operand, B=dense_rhs)
            best[label] = min(best[label], timer.elapsed_ms)
    return best


def test_auto_within_10pct_of_best_handpicked(regimes, report):
    rng = np.random.default_rng(42)
    model = CostModel()
    lines = [
        f"{'regime':<12s} {'candidate':<26s} {'model ms':>9s} {'measured ms':>12s}",
        "-" * 62,
    ]
    summary = []
    for name, dense in regimes.items():
        dense_rhs = rng.standard_normal((dense.shape[1], N_COLS))
        profile = profile_operand(dense)
        candidates = enumerate_candidates(profile)
        measured = _measure_all(candidates, dense, dense_rhs)
        for candidate in candidates:
            lines.append(
                f"{name:<12s} {candidate.describe():<26s} "
                f"{model.estimate_ms(profile, candidate, N_COLS):9.4f} "
                f"{measured[candidate.describe()]:12.4f}"
            )
        decision = choose_format(profile, n_cols=N_COLS, dense=dense, use_cache=False)
        chosen = decision.candidate.describe()
        best_label, best_ms = min(measured.items(), key=lambda kv: kv[1])
        ratio = measured[chosen] / best_ms
        summary.append((name, chosen, best_label, ratio))
        lines.append(
            f"{name:<12s} -> auto picked {chosen} "
            f"(best: {best_label}, auto/best = {ratio:.3f})"
        )
        lines.append("")
        assert ratio <= TOLERANCE, (
            f"{name}: auto choice {chosen} is {ratio:.2f}x the best "
            f"hand-picked candidate {best_label}"
        )

    lines.append(f"{'regime':<12s} {'auto choice':<26s} {'best':<26s} {'auto/best':>9s}")
    for name, chosen, best_label, ratio in summary:
        lines.append(f"{name:<12s} {chosen:<26s} {best_label:<26s} {ratio:9.3f}")
    report("tuner_adaptive", "\n".join(lines))
