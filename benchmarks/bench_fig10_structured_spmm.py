"""Figure 10: structured (block-sparse) SpMM vs TorchBSR vs dense matmul.

The paper sweeps sparsity on a 4096x4096 FP16 matrix with 32x32 blocks and
reports speedup over dense matmul.  Here the sweep is evaluated with the
analytical device model at a 2048x2048 scale (documented in EXPERIMENTS.md),
and pytest-benchmark additionally times the NumPy execution of our kernel at
one representative sparsity.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import format_series
from repro.baselines import DenseMatmul, TorchBSRSpMM
from repro.datasets import random_block_sparse_matrix
from repro.kernels import StructuredSpMM

SIZE = 2048
BLOCK = (32, 32)
SPARSITIES = [0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99]


@pytest.fixture(scope="module")
def sweep_results():
    ours, torchbsr, dense = [], [], []
    placeholder = np.zeros((SIZE, SIZE), dtype=np.float32)
    dense_ms = DenseMatmul(dtype="fp16").modeled_ms(placeholder, placeholder)
    for sparsity in SPARSITIES:
        matrix = random_block_sparse_matrix(SIZE, BLOCK, 1.0 - sparsity, rng=0)
        ours_ms = StructuredSpMM(
            matrix, BLOCK, dtype="fp16", autotune_group_size=True, autotune_num_cols=SIZE
        ).estimate_ms(SIZE)
        bsr_ms = TorchBSRSpMM(matrix, BLOCK, dtype="fp16").modeled_ms(placeholder)
        ours.append(dense_ms / ours_ms)
        torchbsr.append(dense_ms / bsr_ms)
        dense.append(1.0)
    return ours, torchbsr, dense


def test_fig10_structured_spmm_sweep(sweep_results, report, benchmark):
    ours, torchbsr, dense = sweep_results
    report(
        "fig10_structured_spmm",
        format_series(
            "sparsity",
            SPARSITIES,
            {"ours_vs_dense": ours, "torchbsr_vs_dense": torchbsr, "dense": dense},
            title=f"Figure 10 — speedup over dense matmul ({SIZE}x{SIZE}, 32x32 blocks, FP16)",
        ),
    )

    # Shape checks mirroring the paper's claims.
    crossover_ours = next(s for s, v in zip(SPARSITIES, ours) if v >= 1.0)
    crossover_bsr = next(s for s, v in zip(SPARSITIES, torchbsr) if v >= 1.0)
    assert crossover_ours <= crossover_bsr  # our crossover happens earlier (25% vs 40%)
    assert ours[-1] > 5.0  # large speedup over dense in the hypersparse regime
    wins = sum(o >= b * 0.95 for o, b in zip(ours, torchbsr))
    assert wins >= len(SPARSITIES) - 2  # we match or beat TorchBSR nearly everywhere

    # Time the real NumPy execution at 90% sparsity, reduced size.
    matrix = random_block_sparse_matrix(512, BLOCK, 0.1, rng=1).astype(np.float64)
    dense_operand = np.random.default_rng(0).standard_normal((512, 256))
    op = StructuredSpMM(matrix, BLOCK, dtype="fp16")
    result = benchmark(op, dense_operand)
    np.testing.assert_allclose(result, matrix @ dense_operand, atol=1e-6)
