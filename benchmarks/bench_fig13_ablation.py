"""Figure 13: ablation of formats and compiler optimisations on structured SpMM.

Rows (top to bottom, as in the paper): COO, COO+Group, COO+Group+Block —
all compiled with the stock (unfused, template-matmul) backend — then the
blocked/grouped format with Tensor Core fusion, and finally with Lazy
Broadcasting as well.  Values are normalised runtimes (lower is better),
with the plain COO schedule as 1.0, plus the TorchBSR reference.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import InductorConfig, SparseEinsum
from repro.analysis import format_table
from repro.baselines import TorchBSRSpMM
from repro.datasets import random_block_sparse_matrix
from repro.formats import BlockGroupCOO, COO, GroupCOO
from repro.kernels import StructuredSpMM

SIZE = 4096
BLOCK = (32, 32)
BLOCK_DENSITY = 0.1  # 90% sparsity, as in the paper
NUM_COLS = SIZE
EXPRESSION = "C[m,n] += A[m,k] * B[k,n]"


def _estimate(fmt, config) -> float:
    einsum = SparseEinsum(EXPRESSION, config=config)
    dense = np.zeros((SIZE, NUM_COLS), dtype=np.float32)
    return einsum.estimate(A=fmt, B=dense).estimated_ms


@pytest.fixture(scope="module")
def ablation_rows():
    matrix = random_block_sparse_matrix(SIZE, BLOCK, BLOCK_DENSITY, rng=0)
    stock = InductorConfig.torchinductor_default(dtype="fp16")
    tc_fusion = InductorConfig.insum_tensor_core_only(dtype="fp16")
    full = InductorConfig.insum(dtype="fp16")

    timings = {
        "COO": _estimate(COO.from_dense(matrix), stock),
        "COO + Group": _estimate(GroupCOO.from_dense(matrix, group_size=16), stock),
        "COO + Group + Block": _estimate(
            BlockGroupCOO.from_dense(matrix, BLOCK, group_size=4), stock
        ),
        "+ Tensor Core": _estimate(
            BlockGroupCOO.from_dense(matrix, BLOCK, group_size=4), tc_fusion
        ),
        "+ Lazy Broadcasting": _estimate(
            BlockGroupCOO.from_dense(matrix, BLOCK, group_size=4), full
        ),
    }
    torchbsr_ms = TorchBSRSpMM(matrix, BLOCK, dtype="fp16").modeled_ms(
        np.zeros((SIZE, NUM_COLS), dtype=np.float32)
    )
    return matrix, timings, torchbsr_ms


def test_fig13_ablation(ablation_rows, report, benchmark):
    matrix, timings, torchbsr_ms = ablation_rows
    baseline = timings["COO"]
    rows = [
        [name, ms, baseline / ms] for name, ms in timings.items()
    ] + [["TorchBSR (reference)", torchbsr_ms, baseline / torchbsr_ms]]
    report(
        "fig13_ablation",
        format_table(
            ["configuration", "modeled_ms", "speedup_vs_COO"],
            rows,
            title=(
                f"Figure 13 — ablation on structured SpMM "
                f"({SIZE}x{SIZE}, 90% sparse, 32x32 blocks)"
            ),
            float_format="{:.3f}",
        ),
    )

    # The paper's ordering, with one documented deviation (see EXPERIMENTS.md):
    # our cost model charges the unfused blocked schedule its full intermediate
    # DRAM traffic, so the format-only "COO + Group + Block" row does not show
    # the paper's additional gain over "COO + Group"; the gain appears once the
    # Tensor Core fusion extension removes those intermediates.
    assert timings["COO + Group"] < timings["COO"]
    assert timings["COO + Group + Block"] < timings["COO"]
    assert timings["+ Tensor Core"] < timings["COO + Group + Block"] / 2.0  # paper: 2.6x
    assert timings["+ Tensor Core"] < timings["COO + Group"]
    assert timings["+ Lazy Broadcasting"] <= timings["+ Tensor Core"]
    # Grouping alone is a large win (paper: ~8x), and the fully optimised
    # kernel beats the hand-written TorchBSR reference.
    assert baseline / timings["COO + Group"] > 3.0
    assert timings["+ Lazy Broadcasting"] < torchbsr_ms * 1.05

    # Time real executions of the fused vs unfused schedules at reduced size.
    small = random_block_sparse_matrix(512, BLOCK, BLOCK_DENSITY, rng=1).astype(np.float64)
    dense = np.random.default_rng(0).standard_normal((512, 128))
    fused_op = StructuredSpMM(small, BLOCK, dtype="fp16")
    result = benchmark(fused_op, dense)
    np.testing.assert_allclose(result, small @ dense, atol=1e-6)
