"""Serving-runtime throughput: requests/sec, cache hit rate, batch speedup.

Not a paper figure — this harness tracks the serving layer added on top of
the compiler (`repro.runtime`), so later PRs have a throughput trajectory
to beat:

* ``InsumServer`` on a mixed workload (unstructured SpMM, SpMV, and the
  equivariant tensor product, over several shapes): requests/sec and
  plan-cache hit rate.
* ``StackedSparse`` batched execution vs the per-item Python loop.
* One-shot ``insum()`` compile-time saving from the process-wide plan
  cache (cold vs warm).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import InsumServer, clear_plan_cache, get_plan_cache, insum
from repro.analysis import format_table
from repro.formats import COO, GroupCOO
from repro.kernels import BatchedSpMM, FullyConnectedTensorProduct
from repro.utils.timing import Timer

NUM_REQUESTS = 150
STACK_SIZE = 32


@pytest.fixture(scope="module")
def mixed_workload():
    """``NUM_REQUESTS`` requests cycling over SpMM, SpMV, and equivariant."""
    rng = np.random.default_rng(7)
    spmm_small = GroupCOO.from_dense(
        np.where(rng.random((128, 192)) < 0.05, rng.standard_normal((128, 192)), 0.0),
        group_size=4,
    )
    spmm_large = GroupCOO.from_dense(
        np.where(rng.random((256, 256)) < 0.03, rng.standard_normal((256, 256)), 0.0),
        group_size=4,
    )
    spmv = COO.from_dense(
        np.where(rng.random((192, 192)) < 0.05, rng.standard_normal((192, 192)), 0.0)
    )
    equivariant = FullyConnectedTensorProduct(l_max=1, channels=8)
    x, y, w = equivariant.random_inputs(batch=4, rng=rng)
    z = np.zeros((4, equivariant.slot_dimension, equivariant.channels))
    recipes = [
        ("C[m,n] += A[m,k] * B[k,n]", lambda: dict(A=spmm_small, B=rng.standard_normal((192, 16)))),
        ("C[m,n] += A[m,k] * B[k,n]", lambda: dict(A=spmm_large, B=rng.standard_normal((256, 16)))),
        ("y[m] += A[m,k] * x[k]", lambda: dict(A=spmv, x=rng.standard_normal(192))),
        (
            equivariant.expression,
            lambda: dict(Z=z.copy(), X=x, Y=y, W=w, **equivariant._grouped),
        ),
    ]
    return [
        (expression, make())
        for expression, make in (recipes[i % len(recipes)] for i in range(NUM_REQUESTS))
    ]


def test_server_throughput_and_hit_rate(mixed_workload, report):
    clear_plan_cache()
    with InsumServer(num_workers=4) as server:
        # Warm-up pass compiles each distinct (expression, signature) once.
        server.run_batch(mixed_workload[: len(mixed_workload) // 3])
        server.reset_stats()
        with Timer() as timer:
            results = server.run_batch(mixed_workload)
        stats = server.stats()

    assert all(result.ok for result in results)
    assert stats.completed == NUM_REQUESTS
    assert stats.cache_hit_rate > 0.9

    report(
        "runtime_throughput",
        format_table(
            ["metric", "value"],
            [
                ["requests", stats.completed],
                ["wall seconds", f"{timer.elapsed:.3f}"],
                ["throughput req/s", f"{stats.throughput_rps:.1f}"],
                ["p50 latency ms", f"{stats.p50_latency_ms:.3f}"],
                ["p95 latency ms", f"{stats.p95_latency_ms:.3f}"],
                ["cache hit rate", f"{stats.cache_hit_rate:.3f}"],
            ],
            title=f"InsumServer — mixed workload ({NUM_REQUESTS} requests, 4 workers)",
        ),
    )


def test_stacked_batch_beats_per_item_loop(report):
    rng = np.random.default_rng(11)
    mask = rng.random((96, 128)) < 0.08
    stack = np.where(mask[None], rng.standard_normal((STACK_SIZE, 96, 128)), 0.0)
    dense = rng.standard_normal((128, 24))
    op = BatchedSpMM(stack, group_size=4)

    batched_result = op(dense)  # warm both paths before timing
    loop_result = op.per_item_loop(dense)
    np.testing.assert_allclose(batched_result, loop_result, atol=1e-10)

    repeats = 5
    with Timer() as batched_timer:
        for _ in range(repeats):
            op(dense)
    with Timer() as loop_timer:
        for _ in range(repeats):
            op.per_item_loop(dense)

    speedup = loop_timer.elapsed / batched_timer.elapsed
    # The acceptance bar: one widened Einsum over the (stack, nnz) data
    # array must beat the per-item Python loop on wall-clock.
    assert batched_timer.elapsed < loop_timer.elapsed

    report(
        "runtime_stacked_speedup",
        format_table(
            ["metric", "value"],
            [
                ["stack size", STACK_SIZE],
                ["batched s/iter", f"{batched_timer.elapsed / repeats:.5f}"],
                ["per-item loop s/iter", f"{loop_timer.elapsed / repeats:.5f}"],
                ["speedup", f"{speedup:.2f}x"],
            ],
            title="StackedSparse widened Einsum vs per-item sparse_einsum loop",
        ),
    )


def test_one_shot_compile_saving(report):
    """The plan-cache satellite: repeated one-shot insum() calls stop recompiling."""
    rng = np.random.default_rng(13)
    dense = np.where(rng.random((64, 96)) < 0.1, rng.standard_normal((64, 96)), 0.0)
    coo = COO.from_dense(dense)
    tensors = dict(
        C=np.zeros((64, 32)),
        AV=coo.values,
        AM=coo.coords[0],
        AK=coo.coords[1],
        B=rng.standard_normal((96, 32)),
    )
    expression = "C[AM[p],n] += AV[p] * B[AK[p],n]"

    clear_plan_cache()
    with Timer() as cold_timer:
        insum(expression, **tensors)
    repeats = 20
    with Timer() as warm_timer:
        for _ in range(repeats):
            insum(expression, **tensors)
    warm_per_call = warm_timer.elapsed / repeats
    stats = get_plan_cache().stats()

    assert stats.misses == 1 and stats.hits >= repeats
    assert warm_per_call < cold_timer.elapsed

    report(
        "runtime_compile_saving",
        format_table(
            ["metric", "value"],
            [
                ["cold one-shot call s", f"{cold_timer.elapsed:.5f}"],
                ["warm one-shot call s", f"{warm_per_call:.5f}"],
                ["saving per call", f"{cold_timer.elapsed / warm_per_call:.1f}x"],
            ],
            title="One-shot insum() — process-wide plan cache cold vs warm",
        ),
    )
