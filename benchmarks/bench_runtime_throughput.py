"""Serving-runtime throughput: the engine's measured payoff, tracked in JSON.

Not a paper figure — this harness tracks the serving layer (`repro.runtime`)
and the plan-time specialization engine (`repro.engine`) on top of the
compiler, so every PR from here on has a perf trajectory to beat:

* **engine vs legacy, single op** — warm per-call latency of representative
  operators with the engine on vs :func:`repro.engine.legacy_mode` (the
  faithful pre-engine execution: per-call path search, per-call rewrite and
  bounds validation, ``np.add.at`` scatters, no specialized closures).
  Asserts the geometric-mean speedup is **>= 2x**.
* **engine vs legacy, server** — threaded-session req/s on the mixed
  workload with specialization + same-plan coalescing vs the legacy server
  (no coalescing, no specialization).  Asserts **>= 3x**.
* ``StackedSparse`` batched execution vs the per-item Python loop.
* One-shot ``insum()`` compile saving from the process-wide plan cache.
* **cluster vs threaded** (``--cluster``) — an open-loop load generator
  drives the same mixed workload through ``Session(backend="cluster")``
  and ``Session(backend="threaded")``, reporting req/s and p50/p95/p99
  for both.  Skipped on single-core machines, where a process pool
  cannot beat one GIL.
* **ops scrape** (smoke entry point) — serves a workload slice with the
  :meth:`Session.serve_ops` endpoint up, scrapes ``/metrics`` and
  ``/healthz`` once, and fails on malformed Prometheus text or an
  unhealthy report (see ``docs/OBSERVABILITY.md``).
* **trace replay** (``--trace FILE``) — replays a committed workload
  trace (``docs/REPLAY.md``) open-loop through the cluster backend and
  records the ``SLOReport``; the smoke gate holds ``slo_attainment``
  to an absolute floor next to the speedup-ratio checks.

All serving measurements run through the :class:`repro.serve.Session`
front door (futures, :class:`ServeConfig`), so the benchmark covers the
surface production callers actually use.

Every metric lands in ``benchmarks/results/BENCH_runtime.json`` (schema
documented in ``docs/PERFORMANCE.md``).  The CI smoke job reruns a reduced
workload via ``python benchmarks/bench_runtime_throughput.py --smoke`` and
``scripts/check_bench_regression.py`` fails the build when a speedup ratio
regresses by more than 25% against the committed baseline.

Determinism: every RNG stream derives from one base seed (the ``--seed``
flag here, the ``seed`` fixture under pytest) through named
:func:`repro.utils.rng` streams — no global RNG is ever seeded — so the
smoke gate measures the same workload run-to-run.
"""

from __future__ import annotations

import contextlib
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

from repro import ServeConfig, Session, clear_plan_cache, get_plan_cache, insum
from repro.core.insum.api import SparseEinsum
from repro.core.inductor.config import InductorConfig
from repro.engine import legacy_mode
from repro.formats import COO, GroupCOO
from repro.kernels import BatchedSpMM, FullyConnectedTensorProduct
from repro.utils.rng import rng as rng_stream
from repro.utils.timing import Timer

NUM_REQUESTS = 160
STACK_SIZE = 32
DEFAULT_SEED = 7
RESULTS_JSON = Path(__file__).parent / "results" / "BENCH_runtime.json"
DEFAULT_TRACE = Path(__file__).parent / "traces" / "mixed_smoke.jsonl"

#: Absolute floors for trace-replay metrics (dotted paths into "metrics"),
#: enforced by scripts/check_bench_regression.py when the matching
#: section (the path's first component) is present in the record.
ATTAINMENT_KEYS = {
    "replay.slo_attainment": 0.99,
    "gateway.slo_attainment": 0.95,
}

#: Collected across the tests in this module, flushed to RESULTS_JSON by
#: the final test (and by the --smoke entry point).
RECORD: dict = {}


# ---------------------------------------------------------------------------
# Workload construction
# ---------------------------------------------------------------------------
def build_workload(num_requests: int = NUM_REQUESTS, seed: int = DEFAULT_SEED) -> list:
    """The mixed serving workload: weighted SpMM/SpMV traffic + equivariant.

    Mirrors a serving steady state: most requests are repeated logical
    SpMM/SpMV expressions over a handful of long-lived sparse patterns
    (fresh dense values per request — the coalescing sweet spot), with an
    equivariant tensor-product request every 8th slot exercising the raw
    indirect-Einsum path.
    """
    rng = rng_stream(seed, "bench/workload")
    spmm_small = GroupCOO.from_dense(
        np.where(rng.random((128, 192)) < 0.05, rng.standard_normal((128, 192)), 0.0),
        group_size=4,
    )
    spmm_large = GroupCOO.from_dense(
        np.where(rng.random((256, 256)) < 0.03, rng.standard_normal((256, 256)), 0.0),
        group_size=4,
    )
    spmv = COO.from_dense(
        np.where(rng.random((192, 192)) < 0.05, rng.standard_normal((192, 192)), 0.0)
    )
    equivariant = FullyConnectedTensorProduct(l_max=1, channels=8)
    x, y, w = equivariant.random_inputs(batch=4, rng=rng)
    z = np.zeros((4, equivariant.slot_dimension, equivariant.channels))
    recipes = [
        ("C[m,n] += A[m,k] * B[k,n]", lambda: dict(A=spmm_small, B=rng.standard_normal((192, 16)))),
        ("C[m,n] += A[m,k] * B[k,n]", lambda: dict(A=spmm_large, B=rng.standard_normal((256, 16)))),
        ("y[m] += A[m,k] * x[k]", lambda: dict(A=spmv, x=rng.standard_normal(192))),
        (
            equivariant.expression,
            lambda: dict(Z=z.copy(), X=x, Y=y, W=w, **equivariant._grouped),
        ),
    ]
    pattern = [0, 0, 1, 2, 0, 1, 2, 3]  # SpMM-heavy, equivariant every 8th
    return [
        (recipes[pattern[i % len(pattern)]][0], recipes[pattern[i % len(pattern)]][1]())
        for i in range(num_requests)
    ]


# ---------------------------------------------------------------------------
# Measurements (shared by the pytest harness and the --smoke entry point)
# ---------------------------------------------------------------------------
def measure_server_modes(workload: list, rounds: int = 3) -> dict:
    """Best-of-``rounds`` req/s for the engine server vs the legacy server.

    Both modes serve through the ``repro.serve`` front door —
    ``Session(backend="threaded")`` with a :class:`ServeConfig` — so the
    benchmark exercises exactly the surface production callers use.
    """
    modes = {}
    for label, legacy in (("engine", False), ("legacy", True)):
        clear_plan_cache()
        config = ServeConfig(
            workers=4,
            compile_config=InductorConfig(specialize=False) if legacy else None,
            coalesce=not legacy,
        )
        scope = legacy_mode() if legacy else contextlib.nullcontext()
        with scope:
            with Session(backend="threaded", config=config) as session:
                for future in session.submit_many(workload[: max(8, len(workload) // 3)]):
                    future.result()  # warm compiles; raises on any failure
                best = None
                for _ in range(rounds):
                    session.reset_stats()
                    for future in session.submit_many(workload):
                        future.result()
                    stats = session.stats()
                    if best is None or stats.throughput_rps > best.throughput_rps:
                        best = stats
        modes[label] = best
    engine, legacy_stats = modes["engine"], modes["legacy"]
    return {
        "engine_rps": round(engine.throughput_rps, 1),
        "legacy_rps": round(legacy_stats.throughput_rps, 1),
        "speedup": round(engine.throughput_rps / legacy_stats.throughput_rps, 3),
        "engine_p50_ms": round(engine.p50_latency_ms, 4),
        "engine_p99_ms": round(engine.p99_latency_ms, 4),
        "legacy_p50_ms": round(legacy_stats.p50_latency_ms, 4),
        "legacy_p99_ms": round(legacy_stats.p99_latency_ms, 4),
        "hit_rate": round(engine.cache_hit_rate, 4),
        "coalesce_rate": round(engine.coalesce_rate, 4),
    }


def _warm_call_seconds(operator, operands: dict, repeats: int, rounds: int = 3) -> float:
    operator(**operands)  # compile + warm
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        for _ in range(repeats):
            operator(**operands)
        best = min(best, (time.perf_counter() - start) / repeats)
    return best


def measure_single_op_latency(repeats: int = 150, seed: int = DEFAULT_SEED) -> dict:
    """Warm per-call latency, engine vs legacy, for representative operators."""
    rng = rng_stream(seed, "bench/single-op")
    spmm_dense = np.where(rng.random((256, 256)) < 0.03, rng.standard_normal((256, 256)), 0.0)
    coo_dense = np.where(rng.random((256, 256)) < 0.05, rng.standard_normal((256, 256)), 0.0)
    cases = {
        "groupcoo_spmm": (
            "C[m,n] += A[m,k] * B[k,n]",
            dict(A=GroupCOO.from_dense(spmm_dense, group_size=4), B=rng.standard_normal((256, 16))),
        ),
        "coo_spmm": (
            "C[m,n] += A[m,k] * B[k,n]",
            dict(A=COO.from_dense(coo_dense), B=rng.standard_normal((256, 32))),
        ),
        "coo_spmv": (
            "y[m] += A[m,k] * x[k]",
            dict(A=COO.from_dense(coo_dense), x=rng.standard_normal(256)),
        ),
    }
    ops: dict = {}
    speedups = []
    for name, (expression, operands) in cases.items():
        engine_s = _warm_call_seconds(SparseEinsum(expression), operands, repeats)
        with legacy_mode():
            legacy_s = _warm_call_seconds(
                SparseEinsum(expression, config=InductorConfig(specialize=False)),
                operands,
                repeats,
            )
        speedup = legacy_s / engine_s
        speedups.append(speedup)
        ops[name] = {
            "engine_us": round(engine_s * 1e6, 2),
            "legacy_us": round(legacy_s * 1e6, 2),
            "speedup": round(speedup, 3),
        }
    geomean = float(np.exp(np.mean(np.log(speedups))))
    return {"ops": ops, "geomean_speedup": round(geomean, 3)}


def open_loop_load(session, workload: list, rate_rps: float | None = None) -> dict:
    """Drive a :class:`Session` with an open-loop load generator.

    Requests are submitted at fixed inter-arrival times (``1/rate_rps``
    seconds apart; unpaced burst when ``rate_rps`` is None) regardless of
    completions — the open-loop discipline, which unlike closed-loop
    run-and-wait exposes queueing delay when the server cannot keep up.
    Returns achieved req/s plus end-to-end latency percentiles.
    """
    futures = []
    start = time.perf_counter()
    for index, (expression, operands) in enumerate(workload):
        if rate_rps is not None:
            target = start + index / rate_rps
            delay = target - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
        futures.append(session.submit(expression, **operands))
    for future in futures:
        future.result()  # raises on any failed request
    elapsed = time.perf_counter() - start
    from repro.utils.timing import summarize

    summary = summarize(future.latency_ms for future in futures)
    return {
        "rps": round(len(futures) / elapsed, 1),
        "p50_ms": round(summary.p50_ms, 4),
        "p95_ms": round(summary.p95_ms, 4),
        "p99_ms": round(summary.p99_ms, 4),
    }


def measure_cluster_throughput(
    workload: list,
    num_workers: int = 2,
    worker_threads: int = 2,
    rounds: int = 3,
    rate_rps: float | None = None,
) -> dict:
    """Open-loop req/s and latency: cluster session vs the threaded session.

    The threaded baseline gets the same total worker-thread count as the
    cluster (``num_workers * worker_threads``) so the comparison isolates
    the process-vs-thread execution model, not a parallelism mismatch.
    """
    warmup = workload[: max(8, len(workload) // 3)]
    clear_plan_cache()
    threaded_config = ServeConfig(workers=num_workers * worker_threads)
    with Session(backend="threaded", config=threaded_config) as threaded:
        for future in threaded.submit_many(warmup):
            future.result()
        threaded_best = None
        for _ in range(rounds):
            measured = open_loop_load(threaded, workload, rate_rps=rate_rps)
            if threaded_best is None or measured["rps"] > threaded_best["rps"]:
                threaded_best = measured
    cluster_config = ServeConfig(
        workers=num_workers, worker_threads=worker_threads, max_inflight=4096
    )
    with Session(backend="cluster", config=cluster_config) as cluster:
        for future in cluster.submit_many(warmup):
            future.result()
        cluster.reset_stats()  # coalesce/cache rates cover measured rounds only
        cluster_best = None
        for _ in range(rounds):
            measured = open_loop_load(cluster, workload, rate_rps=rate_rps)
            if cluster_best is None or measured["rps"] > cluster_best["rps"]:
                cluster_best = measured
        cluster_stats = cluster.stats()
    return {
        "num_workers": num_workers,
        "worker_threads": worker_threads,
        "threaded_rps": threaded_best["rps"],
        "cluster_rps": cluster_best["rps"],
        "speedup": round(cluster_best["rps"] / threaded_best["rps"], 3),
        "threaded_p50_ms": threaded_best["p50_ms"],
        "threaded_p95_ms": threaded_best["p95_ms"],
        "threaded_p99_ms": threaded_best["p99_ms"],
        "cluster_p50_ms": cluster_best["p50_ms"],
        "cluster_p95_ms": cluster_best["p95_ms"],
        "cluster_p99_ms": cluster_best["p99_ms"],
        "coalesce_rate": round(cluster_stats.coalesce_rate, 4),
        "restarts": cluster_stats.restarts,
    }


def scrape_ops_endpoint(workload: list, num_requests: int = 32) -> dict:
    """Serve a workload slice with the ops endpoint up and scrape it once.

    The CI smoke job's observability gate: ``/metrics`` must parse as
    well-formed Prometheus text (``validate_prometheus_text``) and
    ``/healthz`` must report ``status == "ok"`` — a malformed exposition
    or an unhealthy pool raises ``RuntimeError`` and fails the build.
    """
    import urllib.request

    from repro.obs.metrics import validate_prometheus_text

    with Session(backend="threaded", config=ServeConfig(workers=4)) as session:
        ops = session.serve_ops()
        for future in session.submit_many(workload[:num_requests]):
            future.result()
        metrics_body = (
            urllib.request.urlopen(ops.url("/metrics"), timeout=10).read().decode("utf-8")
        )
        health = json.loads(
            urllib.request.urlopen(ops.url("/healthz"), timeout=10).read().decode("utf-8")
        )
    problems = validate_prometheus_text(metrics_body)
    if problems:
        raise RuntimeError(
            "malformed Prometheus exposition from /metrics: " + "; ".join(problems)
        )
    if health.get("status") != "ok":
        raise RuntimeError(f"/healthz reported unhealthy state: {health}")
    return {
        "metrics_bytes": len(metrics_body),
        "metric_families": sum(1 for ln in metrics_body.splitlines() if ln.startswith("# TYPE")),
        "health_status": health.get("status"),
    }


def measure_trace_replay(trace_path: Path, backend: str | None = None) -> dict:
    """Replay a committed workload trace open-loop; report SLO attainment.

    Digests are refreshed on this machine first (result bits depend on
    the local BLAS — see ``docs/REPLAY.md``), then the trace is replayed
    in real time through an uncoalesced session so every result digest
    is verified.  The returned section carries ``slo_attainment``, which
    the regression gate holds to the :data:`ATTAINMENT_KEYS` floor.
    """
    from repro.replay import read_trace, replay

    if backend is None:
        backend = "cluster" if (os.cpu_count() or 1) >= 2 else "threaded"
    trace = read_trace(trace_path)
    trace.refresh_digests()
    config = ServeConfig(workers=2, coalesce=False)
    with Session(backend=backend, config=config) as session:
        report = replay(trace, session, time_scale=1.0)
    problems = report.invariant_violations()
    if problems:
        raise RuntimeError(f"trace replay violated invariants: {problems}")
    summary = report.to_dict()
    return {
        "trace": report.trace_name,
        "backend": report.backend,
        "submitted": report.submitted,
        "completed": report.completed,
        "failed": report.failed,
        "digest_checked": report.digest_checked,
        "slo_attainment": summary["slo_attainment"],
        "goodput_rps": summary["goodput_rps"],
        "p50_ms": summary["latency_ms"]["p50"],
        "p99_ms": summary["latency_ms"]["p99"],
    }


def measure_gateway_replay(trace_path: Path, backend: str | None = None) -> dict:
    """Replay the committed trace through a *live HTTP gateway*.

    The same trace and uncoalesced session as :func:`measure_trace_replay`,
    but every request crosses the wire: a ``GatewayServer`` rides the
    session, a ``GatewayClient`` with per-tenant API keys replays the
    trace over HTTP (binary operand encoding), and a ``/metrics`` scrape
    taken mid-replay must expose valid ``repro_gateway_*`` series with
    tenant labels.  The returned ``slo_attainment`` is gated to the
    ``gateway.slo_attainment`` floor in :data:`ATTAINMENT_KEYS`.
    """
    import threading
    import urllib.request

    from repro import GatewayClient, GatewayConfig
    from repro.obs.metrics import validate_prometheus_text
    from repro.replay import read_trace, replay

    if backend is None:
        backend = "cluster" if (os.cpu_count() or 1) >= 2 else "threaded"
    trace = read_trace(trace_path)
    trace.refresh_digests()
    tenant_keys = {tenant: f"bench-key-{tenant}" for tenant in trace.tenants()}
    config = ServeConfig(workers=2, coalesce=False)
    scraped: list[str] = []
    with Session(backend=backend, config=config) as session:
        server = session.serve_gateway(
            config=GatewayConfig(api_keys={key: t for t, key in tenant_keys.items()})
        )
        ops = session.serve_ops()

        def scrape_mid_replay() -> None:
            time.sleep(0.25)
            try:
                with urllib.request.urlopen(ops.url("/metrics"), timeout=10) as response:
                    scraped.append(response.read().decode("utf-8"))
            except OSError:
                pass  # retried synchronously below

        scraper = threading.Thread(target=scrape_mid_replay, daemon=True)
        scraper.start()
        with GatewayClient(
            f"http://127.0.0.1:{server.port}", tenant_keys=tenant_keys
        ) as client:
            report = replay(trace, client, verify=True, time_scale=1.0)
        scraper.join(timeout=15)
        if not scraped:
            with urllib.request.urlopen(ops.url("/metrics"), timeout=10) as response:
                scraped.append(response.read().decode("utf-8"))
    problems = report.invariant_violations()
    if problems:
        raise RuntimeError(f"gateway replay violated invariants: {problems}")
    metrics_body = scraped[0]
    problems = validate_prometheus_text(metrics_body)
    if problems:
        raise RuntimeError(
            "malformed Prometheus exposition from /metrics: " + "; ".join(problems)
        )
    gateway_series = [
        line
        for line in metrics_body.splitlines()
        if line.startswith("repro_gateway_requests_total") and "tenant=" in line
    ]
    if not gateway_series:
        raise RuntimeError(
            "/metrics scrape carries no repro_gateway_requests_total series "
            "with tenant labels"
        )
    summary = report.to_dict()
    return {
        "trace": report.trace_name,
        "backend": f"gateway+{backend}",
        "submitted": report.submitted,
        "completed": report.completed,
        "failed": report.failed,
        "digest_checked": report.digest_checked,
        "digest_mismatches": report.digest_mismatches,
        "tenants": len(tenant_keys),
        "gateway_series": len(gateway_series),
        "slo_attainment": summary["slo_attainment"],
        "goodput_rps": summary["goodput_rps"],
        "p50_ms": summary["latency_ms"]["p50"],
        "p99_ms": summary["latency_ms"]["p99"],
    }


def write_bench_json(record: dict, path: Path = RESULTS_JSON, profile: str = "full") -> None:
    """Write the machine-readable benchmark record (see docs/PERFORMANCE.md)."""
    payload = {
        "schema": "repro-bench-runtime/1",
        "profile": profile,
        "metrics": record,
        # The ratio metrics the CI regression gate compares (machine-portable,
        # unlike absolute req/s).  Dotted paths into "metrics".
        "ratio_keys": [
            "server.speedup",
            "single_op.geomean_speedup",
            "stacked.speedup",
            "one_shot.saving",
        ],
    }
    # Absolute floors (not ratios): SLO attainment must stay >= the
    # floor on every machine, so no baseline comparison is needed.  Only
    # floors whose section was actually measured are attached — the gate
    # fails on a floor with no metric behind it.
    floors = {
        key: floor for key, floor in ATTAINMENT_KEYS.items()
        if key.split(".", 1)[0] in record
    }
    if floors:
        payload["attainment_keys"] = floors
    path.parent.mkdir(exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


# ---------------------------------------------------------------------------
# pytest harness (full profile, with the acceptance assertions)
# ---------------------------------------------------------------------------
def test_server_engine_vs_legacy_throughput(report, seed):
    """Tentpole acceptance: >= 3x server req/s over the pre-engine baseline."""
    workload = build_workload(seed=seed)
    server = measure_server_modes(workload)
    RECORD["server"] = server

    assert server["hit_rate"] > 0.9
    assert server["coalesce_rate"] > 0.5
    assert server["speedup"] >= 3.0, (
        f"server speedup {server['speedup']}x < 3x over the legacy baseline"
    )

    from repro.analysis import format_table

    report(
        "runtime_throughput",
        format_table(
            ["metric", "value"],
            [
                ["requests", NUM_REQUESTS],
                ["engine req/s", server["engine_rps"]],
                ["legacy req/s", server["legacy_rps"]],
                ["speedup", f"{server['speedup']}x"],
                ["engine p50 ms", server["engine_p50_ms"]],
                ["cache hit rate", server["hit_rate"]],
                ["coalesce rate", server["coalesce_rate"]],
            ],
            title=f"InsumServer — mixed workload ({NUM_REQUESTS} requests, 4 workers)",
        ),
    )


def test_single_op_engine_vs_legacy_latency(report, seed):
    """Tentpole acceptance: >= 2x warm single-op latency over the baseline."""
    single = measure_single_op_latency(seed=seed)
    RECORD["single_op"] = single

    assert single["geomean_speedup"] >= 2.0, (
        f"single-op geomean speedup {single['geomean_speedup']}x < 2x"
    )

    from repro.analysis import format_table

    report(
        "runtime_single_op",
        format_table(
            ["operator", "engine us", "legacy us", "speedup"],
            [
                [name, data["engine_us"], data["legacy_us"], f"{data['speedup']}x"]
                for name, data in single["ops"].items()
            ]
            + [["geomean", "", "", f"{single['geomean_speedup']}x"]],
            title="Warm single-op latency — engine vs legacy executor",
        ),
    )


def test_cluster_vs_threaded_throughput(report, seed):
    """Cluster acceptance: >= 2 workers beat the threaded server on req/s.

    A process pool cannot beat a single GIL on one core, so the
    comparison (and its assertion) only runs on multi-core machines —
    every CI runner qualifies.
    """
    import pytest

    if (os.cpu_count() or 1) < 2:
        pytest.skip("cluster-vs-threaded comparison needs >= 2 cores")
    workload = build_workload(seed=seed)
    cluster = measure_cluster_throughput(workload)
    RECORD["cluster"] = cluster

    assert cluster["speedup"] >= 1.0, (
        f"ClusterServer ({cluster['num_workers']} workers, {cluster['cluster_rps']} req/s) "
        f"did not beat the threaded InsumServer ({cluster['threaded_rps']} req/s)"
    )

    from repro.analysis import format_table

    report(
        "runtime_cluster_throughput",
        format_table(
            ["metric", "threaded", "cluster"],
            [
                ["req/s", cluster["threaded_rps"], cluster["cluster_rps"]],
                ["p50 ms", cluster["threaded_p50_ms"], cluster["cluster_p50_ms"]],
                ["p95 ms", cluster["threaded_p95_ms"], cluster["cluster_p95_ms"]],
                ["p99 ms", cluster["threaded_p99_ms"], cluster["cluster_p99_ms"]],
                ["speedup", "", f"{cluster['speedup']}x"],
            ],
            title=(
                f"ClusterServer ({cluster['num_workers']} workers) vs threaded "
                f"InsumServer — open-loop mixed workload"
            ),
        ),
    )


def test_stacked_batch_beats_per_item_loop(report, seed):
    rng = rng_stream(seed, "bench/stacked")
    mask = rng.random((96, 128)) < 0.08
    stack = np.where(mask[None], rng.standard_normal((STACK_SIZE, 96, 128)), 0.0)
    dense = rng.standard_normal((128, 24))
    op = BatchedSpMM(stack, group_size=4)

    batched_result = op(dense)  # warm both paths before timing
    loop_result = op.per_item_loop(dense)
    np.testing.assert_allclose(batched_result, loop_result, atol=1e-10)

    repeats = 5
    with Timer() as batched_timer:
        for _ in range(repeats):
            op(dense)
    with Timer() as loop_timer:
        for _ in range(repeats):
            op.per_item_loop(dense)

    speedup = loop_timer.elapsed / batched_timer.elapsed
    # The acceptance bar: one widened Einsum over the (stack, nnz) data
    # array must beat the per-item Python loop on wall-clock.
    assert batched_timer.elapsed < loop_timer.elapsed
    RECORD["stacked"] = {
        "stack_size": STACK_SIZE,
        "batched_s_per_iter": round(batched_timer.elapsed / repeats, 6),
        "loop_s_per_iter": round(loop_timer.elapsed / repeats, 6),
        "speedup": round(speedup, 3),
    }

    from repro.analysis import format_table

    report(
        "runtime_stacked_speedup",
        format_table(
            ["metric", "value"],
            [
                ["stack size", STACK_SIZE],
                ["batched s/iter", f"{batched_timer.elapsed / repeats:.5f}"],
                ["per-item loop s/iter", f"{loop_timer.elapsed / repeats:.5f}"],
                ["speedup", f"{speedup:.2f}x"],
            ],
            title="StackedSparse widened Einsum vs per-item sparse_einsum loop",
        ),
    )


def test_one_shot_compile_saving(report, seed):
    """The plan-cache satellite: repeated one-shot insum() calls stop recompiling."""
    rng = rng_stream(seed, "bench/one-shot")
    dense = np.where(rng.random((64, 96)) < 0.1, rng.standard_normal((64, 96)), 0.0)
    coo = COO.from_dense(dense)
    tensors = dict(
        C=np.zeros((64, 32)),
        AV=coo.values,
        AM=coo.coords[0],
        AK=coo.coords[1],
        B=rng.standard_normal((96, 32)),
    )
    expression = "C[AM[p],n] += AV[p] * B[AK[p],n]"

    clear_plan_cache()
    with Timer() as cold_timer:
        insum(expression, **tensors)
    repeats = 20
    with Timer() as warm_timer:
        for _ in range(repeats):
            insum(expression, **tensors)
    warm_per_call = warm_timer.elapsed / repeats
    stats = get_plan_cache().stats()

    assert stats.misses == 1 and stats.hits >= repeats
    assert warm_per_call < cold_timer.elapsed
    RECORD["one_shot"] = {
        "cold_s": round(cold_timer.elapsed, 6),
        "warm_s": round(warm_per_call, 6),
        "saving": round(cold_timer.elapsed / warm_per_call, 3),
    }

    from repro.analysis import format_table

    report(
        "runtime_compile_saving",
        format_table(
            ["metric", "value"],
            [
                ["cold one-shot call s", f"{cold_timer.elapsed:.5f}"],
                ["warm one-shot call s", f"{warm_per_call:.5f}"],
                ["saving per call", f"{cold_timer.elapsed / warm_per_call:.1f}x"],
            ],
            title="One-shot insum() — process-wide plan cache cold vs warm",
        ),
    )


def test_zz_write_bench_json():
    """Flush every recorded metric to BENCH_runtime.json (runs last in file order)."""
    required = {"server", "single_op", "stacked", "one_shot"}
    assert required.issubset(RECORD), f"missing benchmark sections: {required - set(RECORD)}"
    write_bench_json(RECORD, profile="full")
    assert RESULTS_JSON.exists()


# ---------------------------------------------------------------------------
# CI smoke entry point
# ---------------------------------------------------------------------------
def main(argv: list[str]) -> int:
    """Reduced-size smoke run: measure, print, and write the JSON record.

    ``--smoke`` shrinks the workload; ``--out PATH`` redirects the record
    (the CI job writes to a scratch path and compares it against the
    committed ``benchmarks/results/BENCH_runtime.json``); ``--seed N``
    makes the measured workload reproducible; ``--cluster`` adds the
    multi-process vs threaded open-loop comparison (the nightly full
    benchmark runs with it); ``--trace FILE`` replays a committed
    workload trace and records its SLO attainment for the gate's
    absolute-floor check.
    """
    smoke = "--smoke" in argv
    with_cluster = "--cluster" in argv
    out_path = RESULTS_JSON
    if "--out" in argv:
        out_path = Path(argv[argv.index("--out") + 1])
    seed = DEFAULT_SEED
    if "--seed" in argv:
        seed = int(argv[argv.index("--seed") + 1])
    trace_path: Path | None = None
    if "--trace" in argv:
        trace_path = Path(argv[argv.index("--trace") + 1])
    num_requests = 96 if smoke else NUM_REQUESTS
    repeats = 40 if smoke else 150

    record: dict = {}
    record["server"] = measure_server_modes(build_workload(num_requests, seed=seed), rounds=3)
    record["single_op"] = measure_single_op_latency(repeats=repeats, seed=seed)
    record["ops_scrape"] = scrape_ops_endpoint(build_workload(num_requests, seed=seed))
    if with_cluster:
        if (os.cpu_count() or 1) < 2:
            print("skipping --cluster: needs >= 2 cores for a meaningful comparison")
        else:
            record["cluster"] = measure_cluster_throughput(
                build_workload(num_requests, seed=seed), rounds=2 if smoke else 3
            )

    rng = rng_stream(seed, "bench/stacked")
    mask = rng.random((48, 64)) < 0.08
    stack = np.where(mask[None], rng.standard_normal((8, 48, 64)), 0.0)
    op = BatchedSpMM(stack, group_size=4)
    dense = rng.standard_normal((64, 8))
    op(dense), op.per_item_loop(dense)
    with Timer() as batched_timer:
        for _ in range(5):
            op(dense)
    with Timer() as loop_timer:
        for _ in range(5):
            op.per_item_loop(dense)
    record["stacked"] = {
        "stack_size": 8,
        "batched_s_per_iter": round(batched_timer.elapsed / 5, 6),
        "loop_s_per_iter": round(loop_timer.elapsed / 5, 6),
        "speedup": round(loop_timer.elapsed / batched_timer.elapsed, 3),
    }

    coo_dense = np.where(rng.random((48, 64)) < 0.1, rng.standard_normal((48, 64)), 0.0)
    coo = COO.from_dense(coo_dense)
    tensors = dict(
        C=np.zeros((48, 8)),
        AV=coo.values,
        AM=coo.coords[0],
        AK=coo.coords[1],
        B=rng.standard_normal((64, 8)),
    )
    expression = "C[AM[p],n] += AV[p] * B[AK[p],n]"
    # Best-of-3 on both sides: a single sub-ms cold sample is far too
    # noisy to gate CI on.
    cold_s = float("inf")
    for _ in range(3):
        clear_plan_cache()
        with Timer() as cold_timer:
            insum(expression, **tensors)
        cold_s = min(cold_s, cold_timer.elapsed)
    warm_s = float("inf")
    for _ in range(3):
        with Timer() as warm_timer:
            for _ in range(10):
                insum(expression, **tensors)
        warm_s = min(warm_s, warm_timer.elapsed / 10)
    record["one_shot"] = {
        "cold_s": round(cold_s, 6),
        "warm_s": round(warm_s, 6),
        "saving": round(cold_s / warm_s, 3),
    }

    if trace_path is not None:
        record["replay"] = measure_trace_replay(trace_path)
        record["gateway"] = measure_gateway_replay(trace_path)

    write_bench_json(record, path=out_path, profile="smoke" if smoke else "full")
    print(json.dumps(record, indent=2, sort_keys=True))
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
