"""Table 2: equivariant tensor product vs cuEquivariance and e3nn.

Speedups are normalised to e3nn, for l_max in {1, 2, 3} and channel sizes
{16, 32, 64}, batch 10 000, FP32 — the paper's exact grid.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import format_table
from repro.baselines import CuEquivarianceTensorProduct, E3nnTensorProduct
from repro.kernels import FullyConnectedTensorProduct

BATCH = 10_000
L_MAX_VALUES = [1, 2, 3]
CHANNEL_VALUES = [16, 32, 64]


@pytest.fixture(scope="module")
def table_rows():
    rows = []
    speedups = {}
    for l_max in L_MAX_VALUES:
        for channels in CHANNEL_VALUES:
            layer = FullyConnectedTensorProduct(l_max, channels, dtype="fp32")
            ours_ms = layer.estimate_ms(BATCH)
            x = np.zeros((BATCH, layer.slot_dimension, channels), dtype=np.float32)
            y = np.zeros((BATCH, layer.slot_dimension), dtype=np.float32)
            w = np.zeros((BATCH, layer.cg.num_paths, channels, channels), dtype=np.float32)
            e3nn_ms = E3nnTensorProduct(layer.cg, channels).modeled_ms(x, y, w)
            cueq_ms = CuEquivarianceTensorProduct(layer.cg, channels).modeled_ms(x, y, w)
            speedups[(l_max, channels)] = (e3nn_ms / ours_ms, e3nn_ms / cueq_ms)
            rows.append([l_max, channels, e3nn_ms / ours_ms, e3nn_ms / cueq_ms, 1.0])
    return rows, speedups


def test_table2_equivariant_tensor_product(table_rows, report, benchmark):
    rows, speedups = table_rows
    report(
        "table2_equivariant",
        format_table(
            ["l_max", "channels", "ours_vs_e3nn", "cuequivariance_vs_e3nn", "e3nn"],
            rows,
            title=f"Table 2 — equivariant tensor product speedup over e3nn (batch {BATCH}, FP32)",
        ),
    )

    ours = [speedups[key][0] for key in speedups]
    cueq = [speedups[key][1] for key in speedups]
    assert min(ours) > 1.5  # ours is much faster than e3nn in every setting (paper: >= 2x)
    wins_over_cueq = sum(o > c for o, c in zip(ours, cueq))
    assert wins_over_cueq >= len(ours) - 2  # ours also beats cuEquivariance almost everywhere
    # cuEquivariance degrades as l_max grows and eventually falls below e3nn.
    assert speedups[(3, 64)][1] < 1.0
    assert speedups[(1, 16)][1] > 1.0

    # Time the real NumPy execution at a reduced batch size.
    layer = FullyConnectedTensorProduct(l_max=2, channels=16)
    x, y, w = layer.random_inputs(batch=256, rng=0)
    result = benchmark(layer, x, y, w)
    np.testing.assert_allclose(result, layer.reference(x, y, w), atol=1e-6)
