"""Figure 7: runtime vs. group size, indirect accesses, and format size.

The paper sweeps the group size g of BlockGroupCOO SpMM on a 4096x4096
block-sparse matrix (32x32 blocks, 80% sparsity) and shows that runtime
tracks the number of indirect accesses F(g) — with dips at power-of-two
group sizes — rather than the format's memory footprint.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import SparseEinsum
from repro.analysis import format_series
from repro.datasets import random_block_sparse_matrix
from repro.formats import BlockGroupCOO
from repro.formats.blocking import block_occupancy
from repro.formats.group_size import GroupSizeModel
from repro.kernels import StructuredSpMM

SIZE = 2048
BLOCK = (32, 32)
BLOCK_DENSITY = 0.2  # 80% sparsity, as in the paper
GROUP_SIZES = [1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64]


@pytest.fixture(scope="module")
def sweep():
    matrix = random_block_sparse_matrix(SIZE, BLOCK, BLOCK_DENSITY, rng=0)
    occupancy = block_occupancy(matrix, BLOCK)
    model = GroupSizeModel(occupancy)
    runtimes, accesses, sizes = [], [], []
    dense = np.zeros((SIZE, SIZE), dtype=np.float32)
    for group_size in GROUP_SIZES:
        fmt = BlockGroupCOO.from_dense(matrix, BLOCK, group_size=group_size)
        einsum = SparseEinsum(StructuredSpMM.expression, config=None)
        runtimes.append(einsum.estimate(A=fmt, B=dense).estimated_ms)
        accesses.append(float(fmt.indirect_access_count()))
        sizes.append(float(fmt.value_count() + fmt.index_count()))
    return matrix, model, runtimes, accesses, sizes


def test_fig7_group_size_sweep(sweep, report, benchmark):
    matrix, model, runtimes, accesses, sizes = sweep
    report(
        "fig7_group_size",
        format_series(
            "group_size",
            GROUP_SIZES,
            {"runtime_ms": runtimes, "indirect_accesses": accesses, "format_size_elems": sizes},
            title=f"Figure 7 — group-size sweep ({SIZE}x{SIZE}, 32x32 blocks, 80% sparse)",
        )
        + f"\ng* (sqrt(S/n)) = {model.g_star:.2f}",
    )

    # Format size grows (almost) monotonically with g, so it cannot predict
    # runtime (Figure 7b)...
    assert sizes[-1] > sizes[0]
    # ...whereas the indirect-access count F(g) is U-shaped and correlates
    # with the modelled runtime (Figure 7a): same minimiser region.
    best_runtime_g = GROUP_SIZES[int(np.argmin(runtimes))]
    best_access_g = GROUP_SIZES[int(np.argmin(accesses))]
    assert abs(np.log2(best_runtime_g) - np.log2(max(best_access_g, 1))) <= 2.0
    correlation = np.corrcoef(runtimes, accesses)[0, 1]
    size_correlation = np.corrcoef(runtimes, sizes)[0, 1]
    assert correlation > size_correlation
    # The heuristic g* falls near the best candidates.
    assert 0.25 <= model.g_star / max(best_runtime_g, 1) <= 4.0
    # Power-of-two dips: g=48 (padded to 64) should not beat g=64.
    idx48, idx64 = GROUP_SIZES.index(48), GROUP_SIZES.index(64)
    assert runtimes[idx48] >= runtimes[idx64] * 0.95

    # Time a real execution at the heuristic group size (reduced scale).
    small = random_block_sparse_matrix(512, BLOCK, BLOCK_DENSITY, rng=1).astype(np.float64)
    op = StructuredSpMM(small, BLOCK, dtype="fp16")
    dense_operand = np.random.default_rng(0).standard_normal((512, 128))
    result = benchmark(op, dense_operand)
    np.testing.assert_allclose(result, small @ dense_operand, atol=1e-6)
