"""Figure 11: unstructured SpMM vs Sputnik and cuSPARSE on TC-GNN matrices.

Speedups are reported relative to cuSPARSE (FP32, N = 128 output columns).
The fourteen matrices are synthetic stand-ins generated at reduced scale
(max 4096 rows) with the published nonzero counts and degree skew.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import format_table, geometric_mean
from repro.baselines import CuSparseSpMM, SputnikSpMM
from repro.datasets import list_graphs, load_graph_matrix
from repro.kernels import UnstructuredSpMM

NUM_COLS = 128
MAX_ROWS = 4096


@pytest.fixture(scope="module")
def per_matrix_results():
    rows = []
    ours_speedups, sputnik_speedups = [], []
    for name in list_graphs():
        csr = load_graph_matrix(name, max_rows=MAX_ROWS)
        placeholder = np.zeros((csr.shape[1], NUM_COLS), dtype=np.float32)
        ours_ms = UnstructuredSpMM(csr, dtype="fp32").estimate_ms(NUM_COLS)
        sputnik_ms = SputnikSpMM(csr, dtype="fp32").modeled_ms(placeholder)
        cusparse_ms = CuSparseSpMM(csr, dtype="fp32").modeled_ms(placeholder)
        ours_speedups.append(cusparse_ms / ours_ms)
        sputnik_speedups.append(cusparse_ms / sputnik_ms)
        rows.append(
            [name, csr.shape[0], csr.nnz, cusparse_ms / ours_ms, cusparse_ms / sputnik_ms, 1.0]
        )
    rows.append(
        ["geomean", "", "", geometric_mean(ours_speedups), geometric_mean(sputnik_speedups), 1.0]
    )
    return rows, ours_speedups, sputnik_speedups


def test_fig11_unstructured_spmm(per_matrix_results, report, benchmark):
    rows, ours_speedups, sputnik_speedups = per_matrix_results
    report(
        "fig11_unstructured_spmm",
        format_table(
            ["matrix", "rows", "nnz", "ours_vs_cusparse", "sputnik_vs_cusparse", "cusparse"],
            rows,
            title=f"Figure 11 — unstructured SpMM speedup over cuSPARSE (FP32, N={NUM_COLS})",
        ),
    )

    ours_geomean = geometric_mean(ours_speedups)
    sputnik_geomean = geometric_mean(sputnik_speedups)
    assert ours_geomean > 1.0  # we beat cuSPARSE on average (paper: 1.20x)
    assert ours_geomean > sputnik_geomean  # and deliver the best average (paper: 1.20 vs 1.09)
    assert min(sputnik_speedups) < 1.0  # no kernel dominates everywhere

    # Time the real NumPy execution on one mid-sized matrix.
    csr = load_graph_matrix("pubmed", max_rows=MAX_ROWS)
    dense = np.random.default_rng(0).standard_normal((csr.shape[1], NUM_COLS)).astype(np.float32)
    op = UnstructuredSpMM(csr, dtype="fp32")
    result = benchmark(op, dense)
    np.testing.assert_allclose(result, csr.to_dense() @ dense, atol=1e-2)
