"""Shared helpers for the benchmark harnesses.

Every harness prints the paper-style table or series it reproduces and also
writes it to ``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can be
assembled from the files regardless of pytest's output capturing.

Determinism: the repository-root ``conftest.py`` registers a ``--seed``
option and a session-scoped ``seed`` fixture; harnesses derive every RNG
stream from it, so two runs with the same seed measure the same workload.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def report():
    """Print a report block and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _report(name: str, text: str) -> None:
        banner = f"\n===== {name} =====\n{text}\n"
        print(banner)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _report
