"""Table 3: comparison against the TACO and SparseTIR sparse compilers.

The workload is the point-cloud convolution on the conferenceRoom scene
(FP16, channel size 128).  For each system the harness reports compile /
autotune time, format-conversion time, and kernel runtime.  Our compile and
conversion times are measured on this machine; kernel runtimes come from
the shared device model.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import format_table
from repro.baselines import SparseTIRCompiler, TacoSparseCompiler
from repro.datasets import build_kernel_map, generate_scene, voxelize
from repro.kernels import SparseConv3d
from repro.utils.timing import Timer

CHANNELS = 128
MAX_POINTS = 12_000


@pytest.fixture(scope="module")
def conference_room_problem():
    voxels = voxelize(generate_scene("conferenceRoom", max_points=MAX_POINTS), 0.05)
    kernel_map = build_kernel_map(voxels)
    rng = np.random.default_rng(0)
    features = rng.standard_normal((kernel_map.num_voxels, CHANNELS)).astype(np.float32)
    return kernel_map, features


def test_table3_compiler_comparison(conference_room_problem, report, benchmark):
    kernel_map, features = conference_room_problem

    # Ours: conversion = building the grouped map; compile = Insum + backend.
    with Timer() as conversion_timer:
        conv = SparseConv3d(kernel_map, CHANNELS, CHANNELS, dtype="fp16")
    ours_runtime = conv.estimate_ms()
    ours_compile = conv.compile_seconds + conv.compiled.autotune.search_seconds
    ours_autotune_modeled = conv.compiled.autotune.modeled_seconds

    taco = TacoSparseCompiler(dtype="fp16")
    taco_compile = taco.compile()
    taco_convert = taco.convert(kernel_map)
    taco_runtime = taco.modeled_ms(features, conv.weight)

    sparsetir = SparseTIRCompiler(dtype="fp16")
    sparsetir_compile = sparsetir.compile()
    sparsetir_convert = sparsetir.convert(kernel_map)
    sparsetir_runtime = sparsetir.modeled_ms(features, conv.weight)

    rows = [
        ["Compile (s)", ours_compile, taco_compile, sparsetir_compile],
        ["Autotune (s, modeled on device)", ours_autotune_modeled, 0.0, 0.0],
        ["Schedule LoC required", 1, taco.schedule_lines_of_code, sparsetir.schedule_lines_of_code],
        ["FormatConvert (ms)", conversion_timer.elapsed_ms, taco_convert, sparsetir_convert],
        ["Runtime (ms, modeled)", ours_runtime, taco_runtime, sparsetir_runtime],
    ]
    report(
        "table3_compilers",
        format_table(
            ["metric", "Ours", "TACO", "SparseTIR"],
            rows,
            title=(
                "Table 3 — compiler comparison on conferenceRoom sparse convolution "
                "(FP16, 128 ch)"
            ),
            float_format="{:.3f}",
        ),
    )

    # Shape checks: our kernel is the fastest; TACO's unscheduled kernel is
    # orders of magnitude slower; SparseTIR's CPU-side conversion dominates
    # preprocessing.
    assert ours_runtime < sparsetir_runtime < taco_runtime
    assert taco_runtime / ours_runtime > 20
    assert sparsetir_convert > taco_convert
    assert sparsetir_convert > conversion_timer.elapsed_ms * 0.5

    # Time the real NumPy execution of our convolution at reduced channels.
    small_conv = SparseConv3d(kernel_map, 32, 32, dtype="fp16")
    small_features = features[:, :32].astype(np.float64)
    result = benchmark(small_conv, small_features)
    np.testing.assert_allclose(result, small_conv.reference(small_features), atol=1e-5)
