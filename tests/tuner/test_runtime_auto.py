"""Tuner integration with the serving runtime: server + stacked operands."""

from __future__ import annotations

import numpy as np
import pytest

from repro import InsumServer, StackedSparse, sparse_einsum
from repro.datasets import random_block_sparse_matrix, random_sparse_matrix
from repro.errors import FormatError, ShapeError
from repro.formats import COO
from repro.tuner import get_decision_cache


def test_server_auto_format_serves_mixed_regimes(rng):
    uniform = random_sparse_matrix((96, 80), 0.06, rng=1).astype(np.float64)
    blocky = random_block_sparse_matrix(96, (16, 16), 0.1, rng=2).astype(np.float64)
    rhs_uniform = rng.standard_normal((80, 16))
    rhs_blocky = rng.standard_normal((96, 16))

    with InsumServer(num_workers=2, auto_format=True) as server:
        tickets = []
        for _ in range(4):
            tickets.append(
                server.enqueue("C[m,n] += A[m,k] * B[k,n]", A=uniform, B=rhs_uniform)
            )
            tickets.append(
                server.enqueue("C[m,n] += A[m,k] * B[k,n]", A=COO.from_dense(blocky), B=rhs_blocky)
            )
        results = server.collect(tickets)
        for position, result in enumerate(results):
            expected = (uniform @ rhs_uniform) if position % 2 == 0 else (blocky @ rhs_blocky)
            np.testing.assert_allclose(result.unwrap(), expected)
        stats = server.stats()
        assert stats.completed == 8
        assert stats.failed == 0
    # Two regimes -> at most two scoring runs; the rest hit the decision cache.
    assert get_decision_cache().hits >= 6


def test_server_auto_format_dense_promotion_only_for_logical_expressions(rng):
    """A raw indirect Einsum with sparse-looking arrays must stay raw."""
    dense = random_sparse_matrix((64, 48), 0.1, rng=3).astype(np.float64)
    coo = COO.from_dense(dense)
    rhs = rng.standard_normal((48, 8))
    with InsumServer(num_workers=1, auto_format=True) as server:
        ticket = server.enqueue(
            "C[AM[p],n] += AV[p] * B[AK[p],n]",
            C=np.zeros((64, 8)),
            AV=coo.values,
            AM=coo.coords[0],
            AK=coo.coords[1],
            B=rhs,
        )
        result = server.collect([ticket])[0]
        np.testing.assert_allclose(result.unwrap(), dense @ rhs)


def test_server_sharding_with_dense_promotion(rng):
    """A dense sparse-eligible operand on a sharded auto server must work."""
    dense = random_sparse_matrix((96, 80), 0.06, rng=7).astype(np.float64)
    rhs = rng.standard_normal((80, 8))
    with InsumServer(num_workers=1, num_shards=2, auto_format=True) as server:
        ticket = server.enqueue("C[m,n] += A[m,k] * B[k,n]", A=dense, B=rhs)
        result = server.collect([ticket])[0]
        assert result.ok, result.error
        np.testing.assert_allclose(result.unwrap(), dense @ rhs)


def test_server_auto_format_composes_with_sharding(rng):
    """num_shards + auto_format: the shards execute the tuner's format."""
    dense = random_block_sparse_matrix(96, (16, 16), 0.1, rng=5).astype(np.float64)
    rhs = rng.standard_normal((96, 8))
    with InsumServer(num_workers=2, num_shards=2, auto_format=True) as server:
        tickets = [
            server.enqueue("C[m,n] += A[m,k] * B[k,n]", A=COO.from_dense(dense), B=rhs)
            for _ in range(3)
        ]
        for result in server.collect(tickets):
            np.testing.assert_allclose(result.unwrap(), dense @ rhs)


def test_server_without_auto_format_unchanged(rng):
    dense = random_sparse_matrix((64, 48), 0.1, rng=4).astype(np.float64)
    rhs = rng.standard_normal((48, 8))
    with InsumServer(num_workers=1) as server:
        ticket = server.enqueue("C[m,n] += A[m,k] * B[k,n]", A=COO.from_dense(dense), B=rhs)
        np.testing.assert_allclose(server.collect([ticket])[0].unwrap(), dense @ rhs)


# ---------------------------------------------------------------------------
# StackedSparse format="auto"
# ---------------------------------------------------------------------------
def test_stacked_from_dense_auto(rng):
    pattern = rng.random((48, 64)) < 0.08
    stack = rng.standard_normal((6, 48, 64)) * pattern
    batch = StackedSparse.from_dense(stack, "auto")
    assert batch.base.fixed_length
    rhs = rng.standard_normal((64, 12))
    out = sparse_einsum("C[s,m,n] += A[s,m,k] * B[k,n]", A=batch, B=rhs)
    np.testing.assert_allclose(out, np.einsum("smk,kn->smn", stack, rhs))


def test_stacked_auto_picks_block_base_on_block_pattern(rng):
    stack = np.stack(
        [random_block_sparse_matrix(64, (16, 16), 0.1, rng=5) for _ in range(3)]
    ).astype(np.float64)
    # Give every item the same pattern with different values.
    stack = stack[0] * rng.standard_normal((3, 1, 1))
    batch = StackedSparse.from_dense(stack, "auto")
    assert batch.base.format_name in ("BlockCOO", "BlockGroupCOO")
    rhs = rng.standard_normal((64, 8))
    out = sparse_einsum("C[s,m,n] += A[s,m,k] * B[k,n]", A=batch, B=rhs)
    np.testing.assert_allclose(out, np.einsum("smk,kn->smn", stack, rhs))


def test_stacked_auto_rejects_kwargs_and_bad_strings(rng):
    stack = rng.standard_normal((2, 8, 8)) * (rng.random((8, 8)) < 0.3)
    with pytest.raises(FormatError):
        StackedSparse.from_dense(stack, "auto", group_size=4)
    with pytest.raises(FormatError):
        StackedSparse.from_dense(stack, "fastest")
    with pytest.raises(ShapeError):
        StackedSparse.from_dense(rng.standard_normal((2, 3, 4, 5)), "auto")
