"""End-to-end tests of auto_format, the decision cache, and format="auto"."""

from __future__ import annotations

import numpy as np
import pytest

from repro import auto_format, insum, sparse_einsum
from repro.core.insum.api import SparseEinsum
from repro.datasets import random_block_sparse_matrix, random_sparse_matrix
from repro.errors import EinsumValidationError
from repro.formats import COO, GroupCOO
from repro.formats.base import SparseFormat
from repro.tuner import get_decision_cache
from repro.tuner.auto import choose_format
from repro.tuner.cost_model import TunerError
from repro.tuner.profile import profile_operand


@pytest.fixture
def uniform(rng):
    return random_sparse_matrix((96, 80), 0.08, rng=rng).astype(np.float64)


@pytest.fixture
def blocky():
    return random_block_sparse_matrix(96, (16, 16), 0.12, rng=1).astype(np.float64)


# ---------------------------------------------------------------------------
# auto_format
# ---------------------------------------------------------------------------
def test_auto_format_returns_fixed_length_format(uniform):
    fmt = auto_format(uniform)
    assert isinstance(fmt, SparseFormat)
    assert fmt.fixed_length
    np.testing.assert_allclose(fmt.to_dense(), uniform)


def test_auto_format_picks_block_format_on_block_data(blocky):
    fmt = auto_format(blocky)
    assert fmt.format_name in ("BlockCOO", "BlockGroupCOO")
    np.testing.assert_allclose(fmt.to_dense(), blocky)


def test_auto_format_reformats_a_sparse_instance(blocky):
    coo = COO.from_dense(blocky)
    fmt = auto_format(coo)
    assert fmt.format_name != "COO"
    np.testing.assert_allclose(fmt.to_dense(), blocky)


def test_auto_format_keeps_matching_instance(uniform):
    fmt = auto_format(uniform)
    again = auto_format(fmt)
    assert again is fmt  # already in the chosen format: no conversion


def test_auto_format_measure_mode(uniform):
    fmt = auto_format(uniform, tune="measure", use_cache=False)
    np.testing.assert_allclose(fmt.to_dense(), uniform)


def test_auto_format_rejects_unknown_mode(uniform):
    with pytest.raises(TunerError):
        auto_format(uniform, tune="fastest")


# ---------------------------------------------------------------------------
# Decision cache
# ---------------------------------------------------------------------------
def test_decisions_are_cached_by_bucket(uniform):
    cache = get_decision_cache()
    profile = profile_operand(uniform)
    first = choose_format(profile, dense=uniform)
    assert len(cache) == 1
    # Same regime, different values: served from the cache.
    similar = random_sparse_matrix((96, 80), 0.08, rng=999).astype(np.float64)
    second = choose_format(profile_operand(similar), dense=similar)
    assert second is first
    assert cache.hits >= 1


def test_different_regimes_get_different_decisions(uniform, blocky):
    uniform_choice = choose_format(profile_operand(uniform), dense=uniform)
    # Pad the blocky matrix profile to the same shape? Different shapes are
    # different buckets already; assert the candidate differs by regime.
    block_choice = choose_format(profile_operand(blocky), dense=blocky)
    assert uniform_choice.candidate != block_choice.candidate


def test_measure_requires_dense():
    profile = profile_operand(random_sparse_matrix((32, 32), 0.1, rng=0))
    with pytest.raises(TunerError):
        choose_format(profile, mode="measure", dense=None, use_cache=False)


# ---------------------------------------------------------------------------
# insum / sparse_einsum format="auto"
# ---------------------------------------------------------------------------
def test_insum_format_auto_matches_dense_reference(uniform, rng):
    dense_rhs = rng.standard_normal((80, 24))
    out = insum("C[m,n] += A[m,k] * B[k,n]", A=uniform, B=dense_rhs, format="auto")
    np.testing.assert_allclose(out, uniform @ dense_rhs)


def test_insum_format_auto_measure(uniform, rng):
    dense_rhs = rng.standard_normal((80, 8))
    out = insum(
        "C[m,n] += A[m,k] * B[k,n]", A=uniform, B=dense_rhs, format="auto", tune="measure"
    )
    np.testing.assert_allclose(out, uniform @ dense_rhs)


def test_insum_named_format(uniform, rng):
    dense_rhs = rng.standard_normal((80, 16))
    for name in ("coo", "ell", "groupcoo"):
        out = insum("C[m,n] += A[m,k] * B[k,n]", A=uniform, B=dense_rhs, format=name)
        np.testing.assert_allclose(out, uniform @ dense_rhs, err_msg=name)


def test_insum_format_class(uniform, rng):
    dense_rhs = rng.standard_normal((80, 16))
    out = insum("C[m,n] += A[m,k] * B[k,n]", A=uniform, B=dense_rhs, format=GroupCOO)
    np.testing.assert_allclose(out, uniform @ dense_rhs)


def test_insum_named_block_formats(blocky, rng):
    """Named block formats derive the block shape from the profile."""
    dense_rhs = rng.standard_normal((96, 16))
    for name in ("blockcoo", "blockgroupcoo"):
        out = insum("C[m,n] += A[m,k] * B[k,n]", A=blocky, B=dense_rhs, format=name)
        np.testing.assert_allclose(out, blocky @ dense_rhs, err_msg=name)


def test_variable_length_formats_rejected(uniform, rng):
    from repro.formats import CSR

    dense_rhs = rng.standard_normal((80, 4))
    with pytest.raises(EinsumValidationError):
        insum("C[m,n] += A[m,k] * B[k,n]", A=uniform, B=dense_rhs, format="csr")
    with pytest.raises(EinsumValidationError):
        insum("C[m,n] += A[m,k] * B[k,n]", A=uniform, B=dense_rhs, format=CSR)


def test_insum_without_format_is_untouched(uniform, rng):
    """The raw indirect-Einsum path must not change behaviour."""
    coo = COO.from_dense(uniform)
    dense_rhs = rng.standard_normal((80, 8))
    out = insum(
        "C[AM[p],n] += AV[p] * B[AK[p],n]",
        C=np.zeros((96, 8)),
        AV=coo.values,
        AM=coo.coords[0],
        AK=coo.coords[1],
        B=dense_rhs,
    )
    np.testing.assert_allclose(out, uniform @ dense_rhs)


def test_unknown_format_name_raises(uniform, rng):
    with pytest.raises(EinsumValidationError):
        insum(
            "C[m,n] += A[m,k] * B[k,n]", A=uniform, B=rng.standard_normal((80, 4)), format="dense"
        )


def test_sparse_operand_disambiguation(rng):
    sparse_a = random_sparse_matrix((32, 32), 0.1, rng=rng)
    sparse_b = random_sparse_matrix((32, 32), 0.1, rng=rng)
    out = sparse_einsum(
        "C[m,n] += A[m,k] * B[k,n]",
        A=sparse_a,
        B=sparse_b,
        format="auto",
        sparse_operand="B",
    )
    np.testing.assert_allclose(out, sparse_a @ sparse_b, rtol=1e-5, atol=1e-6)


def test_auto_operator_records_decision_and_bucket(uniform, rng):
    op = SparseEinsum("C[m,n] += A[m,k] * B[k,n]", format="auto")
    out = op(A=uniform, B=rng.standard_normal((80, 16)))
    assert out.shape == (96, 16)
    assert op.last_decision is not None
    assert op.operator is not None
    assert op.operator.profile_bucket is not None
    assert op.operator.schedule_hint is not None


def test_auto_plans_are_keyed_per_regime(rng):
    """Same shapes, different regimes: distinct plan-cache entries."""
    from repro import clear_plan_cache, get_plan_cache

    clear_plan_cache()
    dense_rhs = rng.standard_normal((96, 16))
    uniform = random_sparse_matrix((96, 96), 0.05, rng=2).astype(np.float64)
    blocky = random_block_sparse_matrix(96, (16, 16), 0.1, rng=3).astype(np.float64)
    insum("C[m,n] += A[m,k] * B[k,n]", A=uniform, B=dense_rhs, format="auto")
    misses_after_first = get_plan_cache().stats().misses
    insum("C[m,n] += A[m,k] * B[k,n]", A=blocky, B=dense_rhs, format="auto")
    assert get_plan_cache().stats().misses > misses_after_first


def test_schedule_hint_reaches_the_plan(blocky, rng):
    op = SparseEinsum("C[m,n] += A[m,k] * B[k,n]", format="auto")
    op(A=blocky, B=rng.standard_normal((96, 32)))
    plan = op.operator.last_plan
    assert plan is not None
    assert plan.schedule_hint is not None
    assert plan.schedule_hint.execution_chunk >= 16


def test_insum_schedule_hint_tiles_enter_autotune(blocky, rng):
    """A block-format auto plan carries tile hints the autotuner can use."""
    op = SparseEinsum("C[m,n] += A[m,k] * B[k,n]", format="auto")
    op(A=blocky, B=rng.standard_normal((96, 32)))
    hint = op.operator.last_plan.schedule_hint
    assert hint.tile_sizes is not None
    compiled = op.compiled
    assert compiled is not None
    assert compiled.autotune.best_tiles  # the search ran and picked tiles
