"""Shared tuner-test fixtures: a fixed calibration for determinism."""

from __future__ import annotations

import pytest

from repro.tuner import Calibration, set_calibration
from repro.tuner.auto import clear_decision_cache

#: Representative constants (measured once on a dev machine) so that
#: cost-model tests do not depend on microbenchmark noise in CI.
FIXED_CALIBRATION = Calibration(
    gather_ns=1.0,
    scatter_ns=10.0,
    flop_ns=0.4,
    block_flop_ns=0.04,
    overhead_us=2.0,
)


@pytest.fixture(autouse=True)
def fixed_calibration():
    """Pin the process-wide calibration and clear tuner decisions."""
    set_calibration(FIXED_CALIBRATION)
    clear_decision_cache()
    yield
    set_calibration(None)
    clear_decision_cache()
