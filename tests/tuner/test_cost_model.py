"""Tests for the calibration machinery and the analytical cost model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import random_block_sparse_matrix, random_sparse_matrix
from repro.tuner import (
    Calibration,
    Candidate,
    CostModel,
    TunerError,
    enumerate_candidates,
    profile_operand,
    run_microbenchmarks,
)
from repro.tuner.calibration import CALIBRATION_VERSION


# ---------------------------------------------------------------------------
# Calibration
# ---------------------------------------------------------------------------
def test_microbenchmarks_produce_positive_constants():
    cal = run_microbenchmarks(elements=1 << 14, repeats=1)
    assert cal.gather_ns > 0
    assert cal.scatter_ns > 0
    assert cal.flop_ns > 0
    assert cal.block_flop_ns > 0
    assert cal.overhead_us > 0
    # Contiguous matmul MACs are cheaper than strided scalar MACs.
    assert cal.block_flop_ns < cal.flop_ns


def test_calibration_json_roundtrip(tmp_path):
    cal = Calibration(
        gather_ns=1.5, scatter_ns=9.0, flop_ns=0.5, block_flop_ns=0.05, overhead_us=2.0
    )
    path = tmp_path / "nested" / "calibration.json"
    cal.save(path)
    assert Calibration.load(path) == cal


def test_calibration_load_rejects_stale_and_corrupt(tmp_path):
    path = tmp_path / "calibration.json"
    assert Calibration.load(path) is None  # missing
    path.write_text("{not json")
    assert Calibration.load(path) is None  # corrupt
    cal = Calibration(
        gather_ns=1.0, scatter_ns=1.0, flop_ns=1.0, block_flop_ns=1.0, overhead_us=1.0
    )
    cal.save(path)
    stale = path.read_text().replace(f'"version": {CALIBRATION_VERSION}', '"version": -1')
    path.write_text(stale)
    assert Calibration.load(path) is None  # stale version


def test_calibration_env_var_persistence(tmp_path, monkeypatch):
    from repro.tuner import get_calibration, set_calibration
    from repro.tuner.calibration import CALIBRATION_ENV_VAR

    path = tmp_path / "cal.json"
    monkeypatch.setenv(CALIBRATION_ENV_VAR, str(path))
    set_calibration(None)
    try:
        first = get_calibration()
        assert path.exists()
        set_calibration(None)
        assert get_calibration() == first  # loaded back from the file
    finally:
        set_calibration(None)


# ---------------------------------------------------------------------------
# Cost model rankings
# ---------------------------------------------------------------------------
def _rank_names(dense, n_cols=64):
    profile = profile_operand(dense)
    ranked = CostModel().rank(profile, enumerate_candidates(profile), n_cols=n_cols)
    return [s.candidate for s in ranked]


def test_scatter_free_ell_beats_coo_on_uniform_rows():
    dense = random_sparse_matrix((256, 256), 0.05, rng=0)
    ranked = _rank_names(dense)
    names = [c.format_name for c in ranked]
    assert names.index("ELL") < names.index("COO")
    assert names[-1] == "COO"  # per-nonzero scatters make COO the priciest


def test_block_format_wins_on_block_structure():
    dense = random_block_sparse_matrix(256, (16, 16), 0.08, rng=1)
    best = _rank_names(dense)[0]
    assert best.format_name in ("BlockCOO", "BlockGroupCOO")
    assert best.block_shape == (16, 16)


def test_no_block_candidates_on_unstructured_data():
    dense = random_sparse_matrix((256, 256), 0.05, rng=2)
    assert all(c.block_shape is None for c in _rank_names(dense))


def test_grouping_beats_plain_coo_on_powerlaw_rows():
    rng = np.random.default_rng(3)
    dense = np.zeros((256, 256))
    occupancy = np.minimum(256, (rng.pareto(1.1, 256) * 4 + 1).astype(int))
    for row, occ in enumerate(occupancy):
        dense[row, rng.choice(256, size=occ, replace=False)] = 1.0
    ranked = _rank_names(dense)
    assert ranked[0].format_name == "GroupCOO"


def test_estimate_scales_with_n_cols():
    profile = profile_operand(random_sparse_matrix((128, 128), 0.05, rng=4))
    model = CostModel()
    coo = Candidate("COO")
    assert model.estimate_ms(profile, coo, n_cols=128) > model.estimate_ms(profile, coo, n_cols=16)


def test_explain_census_terms():
    profile = profile_operand(random_sparse_matrix((64, 64), 0.1, rng=5))
    terms = CostModel().explain(profile, Candidate("COO"), n_cols=8)
    nnz = profile.nnz
    assert terms["scatter_elements"] == nnz * 8
    assert terms["scalar_macs"] == 2 * nnz * 8
    assert terms["block_macs"] == 0
    assert terms["modeled_ms"] > 0


def test_unknown_candidate_raises():
    profile = profile_operand(random_sparse_matrix((32, 32), 0.1, rng=6))
    with pytest.raises(TunerError):
        CostModel().estimate_ms(profile, Candidate("CSR"))
    with pytest.raises(TunerError):
        # Block candidate without block statistics in the profile.
        CostModel().estimate_ms(profile, Candidate("BlockCOO", block_shape=(3, 3)))
