"""Property tests for the SparsityProfile extractor.

The two load-bearing properties from the issue:

* the unstructured statistics are invariant under row permutation (the
  cost terms for COO/GroupCOO/ELL must not depend on row order);
* planted block structure (from ``datasets/blocksparse.py``) is detected —
  high fill for the planted shape, low fill after the structure is
  destroyed by a random permutation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import random_block_sparse_matrix, random_sparse_matrix
from repro.formats import BCSR, BlockCOO, BlockGroupCOO, COO, CSR, ELL, GroupCOO
from repro.tuner import profile_operand


@pytest.mark.parametrize("seed", range(8))
def test_unstructured_stats_invariant_under_row_permutation(seed):
    rng = np.random.default_rng(seed)
    density = float(rng.uniform(0.02, 0.3))
    dense = random_sparse_matrix((96, 64), density, rng=rng)
    permuted = dense[rng.permutation(dense.shape[0])]

    base = profile_operand(dense)
    shuffled = profile_operand(permuted)
    assert base.unstructured_key() == shuffled.unstructured_key()
    # The full occupancy arrays are permutations of each other.
    assert sorted(base.occupancy) == sorted(shuffled.occupancy)


@pytest.mark.parametrize("seed", range(4))
def test_unstructured_stats_invariant_for_format_instances(seed):
    rng = np.random.default_rng(100 + seed)
    dense = random_sparse_matrix((64, 48), 0.1, rng=rng)
    permuted = dense[rng.permutation(dense.shape[0])]
    for build in (COO.from_dense, CSR.from_dense, ELL.from_dense, GroupCOO.from_dense):
        assert (
            profile_operand(build(dense)).unstructured_key()
            == profile_operand(build(permuted)).unstructured_key()
        )


def test_profile_identical_across_formats():
    """Every storage format of one matrix yields one structural profile."""
    rng = np.random.default_rng(7)
    dense = random_block_sparse_matrix(64, (8, 8), 0.2, rng=rng).astype(np.float64)
    reference = profile_operand(dense)
    formats = [
        COO.from_dense(dense),
        CSR.from_dense(dense),
        ELL.from_dense(dense),
        GroupCOO.from_dense(dense),
        BCSR.from_dense(dense, (8, 8)),
        BlockCOO.from_dense(dense, (8, 8)),
        BlockGroupCOO.from_dense(dense, (8, 8)),
    ]
    for fmt in formats:
        profile = profile_operand(fmt)
        assert profile.unstructured_key() == reference.unstructured_key(), fmt.format_name
        assert profile.block_scores == reference.block_scores, fmt.format_name


@pytest.mark.parametrize("block", [(8, 8), (16, 16)])
def test_planted_block_structure_is_detected(block):
    dense = random_block_sparse_matrix(128, block, 0.15, rng=3)
    profile = profile_operand(dense)
    assert profile.block_scores[block] == pytest.approx(1.0)
    assert profile.best_block_shape() == block


def test_destroyed_block_structure_is_not_detected():
    rng = np.random.default_rng(11)
    dense = random_block_sparse_matrix(128, (16, 16), 0.1, rng=rng)
    shuffled = dense[rng.permutation(128)][:, rng.permutation(128)]
    profile = profile_operand(shuffled)
    # Shuffling rows and columns breaks blocks apart: fill collapses far
    # below the planted-structure score of 1.0.
    assert profile.block_scores[(16, 16)] < 0.5
    # The unstructured statistics, by contrast, survive the shuffle.
    assert profile.unstructured_key() == profile_operand(dense).unstructured_key()


def test_uniform_matrix_has_no_block_candidate():
    dense = random_sparse_matrix((128, 128), 0.03, rng=0)
    profile = profile_operand(dense)
    assert profile.best_block_shape() is None


def test_bucket_separates_regimes_and_groups_lookalikes():
    uniform_a = random_sparse_matrix((128, 128), 0.05, rng=0)
    uniform_b = random_sparse_matrix((128, 128), 0.05, rng=1)
    blocky = random_block_sparse_matrix(128, (16, 16), 0.08, rng=2)
    assert profile_operand(uniform_a).bucket() == profile_operand(uniform_b).bucket()
    assert profile_operand(uniform_a).bucket() != profile_operand(blocky).bucket()


def test_profile_of_empty_matrix():
    profile = profile_operand(np.zeros((16, 16)))
    assert profile.nnz == 0
    assert profile.density == 0.0
    assert profile.row_max == 0
    assert profile.best_block_shape() is None
    assert profile.bucket() is not None


def test_profile_rejects_non_matrix():
    from repro.errors import FormatError

    with pytest.raises(FormatError):
        profile_operand(np.zeros((4, 4, 4)))
