"""Tests for the point-cloud sparse convolution application."""

import numpy as np
import pytest

from repro.datasets import build_kernel_map, generate_scene, voxelize
from repro.errors import ShapeError
from repro.kernels import SparseConv3d


@pytest.fixture(scope="module")
def small_kernel_map():
    points = generate_scene("pantry", max_points=1500, rng=7)
    voxels = voxelize(points, voxel_size=0.1)
    return build_kernel_map(voxels, kernel_size=3)


def test_sparse_conv_matches_reference(small_kernel_map, rng):
    conv = SparseConv3d(small_kernel_map, in_channels=8, out_channels=12, rng=0)
    features = rng.standard_normal((small_kernel_map.num_voxels, 8))
    out = conv(features)
    np.testing.assert_allclose(out, conv.reference(features), atol=1e-8)
    assert out.shape == (small_kernel_map.num_voxels, 12)


def test_sparse_conv_modeled_cost_and_loc(small_kernel_map, rng):
    conv = SparseConv3d(small_kernel_map, in_channels=8, out_channels=8, rng=0)
    features = rng.standard_normal((small_kernel_map.num_voxels, 8))
    conv(features)
    assert conv.modeled_ms is not None and conv.modeled_ms > 0
    assert conv.lines_of_code == 1
    assert conv.compiled.is_fused
    assert conv.estimate_ms() > 0


def test_sparse_conv_rejects_bad_feature_shape(small_kernel_map):
    conv = SparseConv3d(small_kernel_map, in_channels=8, out_channels=8)
    with pytest.raises(ShapeError):
        conv(np.zeros((small_kernel_map.num_voxels, 5)))


def test_sparse_conv_group_size_override(small_kernel_map, rng):
    conv = SparseConv3d(small_kernel_map, in_channels=4, out_channels=4, group_size=8, rng=1)
    assert conv.group_size == 8
    features = rng.standard_normal((small_kernel_map.num_voxels, 4))
    np.testing.assert_allclose(conv(features), conv.reference(features), atol=1e-8)


def test_identity_kernel_map_behaves_like_linear_layer(rng):
    # A kernel map with only the centre offset is a per-voxel linear layer.
    voxels = np.stack(np.meshgrid(np.arange(3), np.arange(3), np.arange(3)), axis=-1).reshape(-1, 3)
    km = build_kernel_map(voxels, kernel_size=1)
    conv = SparseConv3d(km, in_channels=5, out_channels=6, rng=2)
    features = rng.standard_normal((km.num_voxels, 5))
    np.testing.assert_allclose(conv(features), features @ conv.weight[0], atol=1e-8)
