"""Tests for the structured / unstructured SpMM applications."""

import numpy as np

from repro import InductorConfig
from repro.datasets import random_block_sparse_matrix, random_sparse_matrix
from repro.formats import CSR, GroupCOO
from repro.kernels import StructuredSpMM, UnstructuredSpMM


def test_structured_spmm_correctness(rng):
    matrix = random_block_sparse_matrix(128, (16, 16), 0.3, rng=1).astype(np.float64)
    dense = rng.standard_normal((128, 24))
    op = StructuredSpMM(matrix, block_shape=(16, 16))
    np.testing.assert_allclose(op(dense), matrix @ dense, atol=1e-8)
    assert op.lines_of_code == 1
    assert op.modeled_ms is not None and op.modeled_ms > 0
    assert op.compiled.is_fused


def test_structured_spmm_accepts_prebuilt_format(block_sparse_matrix, rng):
    from repro.formats import BlockGroupCOO

    fmt = BlockGroupCOO.from_dense(block_sparse_matrix, (8, 8), group_size=2)
    op = StructuredSpMM(fmt)
    dense = rng.standard_normal((64, 8))
    np.testing.assert_allclose(op(dense), block_sparse_matrix @ dense, atol=1e-9)


def test_structured_spmm_group_size_autotune(rng):
    matrix = random_block_sparse_matrix(128, (16, 16), 0.25, rng=2).astype(np.float64)
    op = StructuredSpMM(matrix, block_shape=(16, 16), autotune_group_size=True,
                        autotune_num_cols=64)
    dense = rng.standard_normal((128, 16))
    np.testing.assert_allclose(op(dense), matrix @ dense, atol=1e-8)
    assert op.format.group_size >= 1


def test_structured_spmm_estimate_without_execution(rng):
    matrix = random_block_sparse_matrix(128, (16, 16), 0.3, rng=3).astype(np.float64)
    op = StructuredSpMM(matrix, block_shape=(16, 16))
    ms = op.estimate_ms(256)
    assert ms > 0


def test_unstructured_spmm_from_csr(rng):
    matrix = random_sparse_matrix((96, 80), 0.1, rng=4).astype(np.float64)
    csr = CSR.from_dense(matrix)
    op = UnstructuredSpMM(csr)
    dense = rng.standard_normal((80, 32))
    np.testing.assert_allclose(op(dense), matrix @ dense, atol=1e-8)
    assert op.group_size >= 1
    assert op.estimate_ms(128) > 0


def test_unstructured_spmm_from_dense_and_groupcoo(rng):
    matrix = random_sparse_matrix((48, 40), 0.2, rng=5).astype(np.float64)
    dense = rng.standard_normal((40, 8))
    from_dense = UnstructuredSpMM(matrix)
    from_fmt = UnstructuredSpMM(GroupCOO.from_dense(matrix, group_size=2))
    np.testing.assert_allclose(from_dense(dense), matrix @ dense, atol=1e-8)
    np.testing.assert_allclose(from_fmt(dense), matrix @ dense, atol=1e-8)


def test_unstructured_spmm_with_ablation_config(rng):
    matrix = random_sparse_matrix((48, 40), 0.2, rng=6).astype(np.float64)
    dense = rng.standard_normal((40, 8))
    op = UnstructuredSpMM(matrix, config=InductorConfig.torchinductor_default())
    np.testing.assert_allclose(op(dense), matrix @ dense, atol=1e-8)


def test_spmm_expression_is_single_line():
    assert StructuredSpMM.expression.count("\n") == 0
    assert UnstructuredSpMM.expression.count("\n") == 0
