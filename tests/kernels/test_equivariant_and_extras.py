"""Tests for the equivariant tensor product and the extra kernels."""

import numpy as np
import pytest

from repro.datasets import fully_connected_cg_tensor
from repro.formats import COO
from repro.kernels import (
    FullyConnectedTensorProduct,
    coo_elementwise_multiply,
    sddmm,
    spmv,
)


@pytest.mark.parametrize("l_max", [0, 1, 2])
def test_tensor_product_matches_reference(l_max, rng):
    layer = FullyConnectedTensorProduct(l_max=l_max, channels=4)
    x, y, w = layer.random_inputs(batch=6, rng=3)
    out = layer(x, y, w)
    np.testing.assert_allclose(out, layer.reference(x, y, w), atol=1e-8)
    assert out.shape == (6, layer.slot_dimension, 4)


def test_tensor_product_metadata(rng):
    layer = FullyConnectedTensorProduct(l_max=2, channels=8)
    assert layer.lines_of_code == 1
    assert layer.group_size >= 1
    assert layer.slot_dimension == 9
    x, y, w = layer.random_inputs(batch=4, rng=0)
    layer(x, y, w)
    assert layer.modeled_ms is not None and layer.modeled_ms > 0
    assert layer.estimate_ms(batch=16) > 0


def test_tensor_product_batch_mismatch(rng):
    layer = FullyConnectedTensorProduct(l_max=1, channels=4)
    x, y, w = layer.random_inputs(batch=4, rng=0)
    with pytest.raises(Exception):
        layer(x, y[:2], w)


def test_tensor_product_group_size_override():
    layer = FullyConnectedTensorProduct(l_max=1, channels=4, group_size=3)
    assert layer.group_size == 3


def test_cg_grouping_covers_all_entries():
    layer = FullyConnectedTensorProduct(l_max=2, channels=4)
    cg = fully_connected_cg_tensor(2)
    assert np.count_nonzero(layer._grouped["CGV"]) == cg.nnz


# -- extra kernels --------------------------------------------------------------------
def test_spmv(rng, medium_sparse_matrix):
    x = rng.standard_normal(96)
    np.testing.assert_allclose(spmv(medium_sparse_matrix, x), medium_sparse_matrix @ x, atol=1e-8)


def test_coo_elementwise_multiply(rng):
    values = (rng.random(20) < 0.4) * rng.standard_normal(20)
    dense = rng.standard_normal(20)
    out = coo_elementwise_multiply(COO.from_dense(values), dense)
    np.testing.assert_allclose(out, values * dense, atol=1e-10)


def test_coo_elementwise_multiply_requires_rank_one(rng):
    with pytest.raises(ValueError):
        coo_elementwise_multiply(COO.from_dense(np.eye(3)), np.zeros((3, 3)))


def test_sddmm(rng):
    sampling = COO.from_dense((rng.random((12, 9)) < 0.2) * 1.0)
    left = rng.standard_normal((12, 5))
    right = rng.standard_normal((5, 9))
    result = sddmm(sampling, left, right)
    np.testing.assert_allclose(
        result.to_dense(), sampling.to_dense() * (left @ right), atol=1e-9
    )


def test_sddmm_requires_matrix_pattern(rng):
    with pytest.raises(ValueError):
        sddmm(COO.from_dense(np.ones(4)), np.zeros((4, 2)), np.zeros((2, 4)))
