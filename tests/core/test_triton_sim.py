"""Tests for the simulated device, cost model, and Triton-style codegen."""

import pytest

from repro.core.triton_sim import (
    DeviceModel,
    KernelSpec,
    MemoryAccess,
    RTX3090,
    estimate_kernel_time,
    estimate_total_time,
    generate_triton_source,
)
from repro.core.triton_sim.codegen import (
    DotStmt,
    IndexLoadStmt,
    KernelSource,
    LoadStmt,
    MacStmt,
    StoreStmt,
)
from repro.errors import DeviceError


# -- device model ------------------------------------------------------------------
def test_coalesced_time_scales_linearly():
    assert RTX3090.time_coalesced_bytes(2e9) == pytest.approx(2 * RTX3090.time_coalesced_bytes(1e9))


def test_indirect_small_accesses_pay_sector_penalty():
    scattered = RTX3090.time_indirect_accesses(1_000_000, 4)
    contiguous = RTX3090.time_indirect_accesses(1_000_000 // 128, 512)
    assert scattered > contiguous


def test_indirect_footprint_caps_traffic():
    uncapped = RTX3090.time_indirect_accesses(1_000_000, 512)
    capped = RTX3090.time_indirect_accesses(1_000_000, 512, footprint_bytes=1e6)
    assert capped < uncapped


def test_tensor_core_faster_than_cuda_cores():
    flops = 1e12
    assert RTX3090.time_compute(flops, True, "fp16") < RTX3090.time_compute(flops, False, "fp16")


def test_fp32_tensor_core_slower_than_fp16():
    flops = 1e12
    assert RTX3090.time_compute(flops, True, "fp32") > RTX3090.time_compute(flops, True, "fp16")


def test_negative_inputs_rejected():
    with pytest.raises(DeviceError):
        RTX3090.time_coalesced_bytes(-1)
    with pytest.raises(DeviceError):
        RTX3090.time_compute(-1, True)
    with pytest.raises(DeviceError):
        RTX3090.time_atomics(-1)
    with pytest.raises(DeviceError):
        RTX3090.dtype_bytes("fp8")


def test_dtype_bytes():
    assert RTX3090.dtype_bytes("fp16") == 2
    assert RTX3090.dtype_bytes("fp32") == 4


# -- kernel spec -----------------------------------------------------------------------
def make_kernel(**overrides):
    spec = dict(
        name="k",
        loads=[
            MemoryAccess("A", 1e6, 4),
            MemoryAccess("B", 1e6, 4, indirect=True, contiguous_elements=128),
        ],
        stores=[MemoryAccess("C", 1e5, 4, indirect=True, atomic=True)],
        flops=1e9,
        uses_tensor_core=True,
        dtype="fp16",
    )
    spec.update(overrides)
    return KernelSpec(**spec)


def test_kernel_aggregates():
    kernel = make_kernel()
    assert kernel.coalesced_load_bytes == 4e6
    assert kernel.atomic_count == 1e5
    assert kernel.indirect_request_count > 0


def test_breakdown_fields_positive():
    breakdown = estimate_kernel_time(make_kernel())
    assert breakdown.total_ms > 0
    as_dict = breakdown.as_dict()
    assert set(as_dict) == {
        "dram_ms",
        "indirect_ms",
        "compute_ms",
        "atomic_ms",
        "overhead_ms",
        "total_ms",
    }


def test_reshape_transpose_ops_increase_runtime():
    slow = estimate_kernel_time(make_kernel(reshape_transpose_ops=2, flops=1e12))
    fast = estimate_kernel_time(make_kernel(reshape_transpose_ops=0, flops=1e12))
    assert slow.total_ms > fast.total_ms


def test_non_power_of_two_tiles_are_padded():
    padded = estimate_kernel_time(make_kernel(tile_sizes={"m": 48}, flops=1e12))
    exact = estimate_kernel_time(make_kernel(tile_sizes={"m": 64}, flops=1e12))
    assert padded.compute_ms > exact.compute_ms * 0.99


def test_efficiency_overrides():
    fast = estimate_kernel_time(make_kernel(compute_efficiency=0.9, flops=1e13))
    slow = estimate_kernel_time(make_kernel(compute_efficiency=0.1, flops=1e13))
    assert slow.compute_ms > fast.compute_ms


def test_imbalance_multiplies_runtime():
    balanced = estimate_kernel_time(make_kernel())
    imbalanced = estimate_kernel_time(make_kernel(imbalance=2.0))
    assert imbalanced.total_ms > balanced.total_ms


def test_cost_report_totals_and_intermediates():
    producer = KernelSpec(
        name="gather", stores=[MemoryAccess("tmp", 1e6, 4)], loads=[MemoryAccess("B", 1e6, 4)]
    )
    consumer = KernelSpec(
        name="matmul", loads=[MemoryAccess("tmp", 1e6, 4)], stores=[MemoryAccess("C", 1e5, 4)]
    )
    report = estimate_total_time([producer, consumer])
    assert report.num_kernels == 2
    assert report.total_ms == pytest.approx(sum(b.total_ms for b in report.breakdowns))
    assert report.intermediate_bytes == pytest.approx(8e6)
    assert "total" in report.summary()


def test_custom_device_changes_results():
    slow_device = DeviceModel(name="slow", dram_bandwidth_gbps=100.0)
    fast = estimate_kernel_time(make_kernel(), RTX3090)
    slow = estimate_kernel_time(make_kernel(), slow_device)
    assert slow.dram_ms > fast.dram_ms


# -- codegen -----------------------------------------------------------------------------
def make_source(lazy=True, dot=True):
    return KernelSource(
        name="test_kernel",
        arguments=["A", "B", "C", "AK"],
        parallel_vars=[("y", 64), ("x", 64)],
        reduction_vars=[("r", 32)],
        index_loads=[IndexLoadStmt("AK_val", "AK", "r", "R")],
        loads=[
            LoadStmt("A_tile", "A", "y,r", "Y,R"),
            LoadStmt("B_tile", "B", "AK[r],x", "R,X", indirect=True),
        ],
        body=[DotStmt("acc", "A_tile", "B_tile", needs_view_transpose=not lazy)]
        if dot
        else [MacStmt("acc", ["A_tile", "B_tile"])],
        store=StoreStmt("C", "y,x", "acc", atomic=True),
        lazy_broadcasting=lazy,
    )


def test_codegen_lazy_has_no_views():
    source = generate_triton_source(make_source(lazy=True))
    assert "tl.dot" in source and "tl.view" not in source and "tl.trans" not in source
    assert "tl.atomic_add" in source


def test_codegen_eager_has_views():
    source = generate_triton_source(make_source(lazy=False))
    assert "tl.view" in source and "tl.trans" in source


def test_codegen_mac_body_and_store():
    source = generate_triton_source(make_source(dot=False))
    assert "acc += A_tile * B_tile" in source
    assert "tl.sum" in source


def test_codegen_declares_blocks_and_program_ids():
    source = generate_triton_source(make_source())
    assert "YBLOCK: tl.constexpr = 64" in source
    assert "tl.program_id(0)" in source and "tl.program_id(1)" in source
