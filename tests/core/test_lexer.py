"""Tests for the indirect-Einsum tokenizer."""

import pytest

from repro.core.einsum.lexer import Token, TokenKind, tokenize
from repro.errors import EinsumSyntaxError


def kinds(text):
    return [t.kind for t in tokenize(text)]


def test_simple_statement_token_kinds():
    assert kinds("C[m,n] += A[m,k] * B[k,n]") == [
        TokenKind.NAME, TokenKind.LBRACKET, TokenKind.NAME, TokenKind.COMMA, TokenKind.NAME,
        TokenKind.RBRACKET, TokenKind.PLUS_EQUALS,
        TokenKind.NAME, TokenKind.LBRACKET, TokenKind.NAME, TokenKind.COMMA, TokenKind.NAME,
        TokenKind.RBRACKET, TokenKind.STAR,
        TokenKind.NAME, TokenKind.LBRACKET, TokenKind.NAME, TokenKind.COMMA, TokenKind.NAME,
        TokenKind.RBRACKET, TokenKind.END,
    ]


def test_whitespace_is_insignificant():
    assert kinds("C[m , n]+=A[m,k]*B[k,n]") == kinds("C[m,n] += A[m,k] * B[k,n]")


def test_plain_equals():
    tokens = tokenize("C[i] = A[i]")
    assert TokenKind.EQUALS in [t.kind for t in tokens]
    assert TokenKind.PLUS_EQUALS not in [t.kind for t in tokens]


def test_integer_literal_token():
    tokens = tokenize("A[0, k]")
    assert tokens[2].kind is TokenKind.INT
    assert tokens[2].text == "0"


def test_names_can_contain_digits_and_underscores():
    tokens = tokenize("AV_2[p1]")
    assert tokens[0].text == "AV_2"
    assert tokens[2].text == "p1"


def test_positions_are_recorded():
    tokens = tokenize("C[i] += A[i]")
    plus = next(t for t in tokens if t.kind is TokenKind.PLUS_EQUALS)
    assert plus.position == 5


def test_end_sentinel_always_present():
    assert tokenize("A")[-1].kind is TokenKind.END
    assert tokenize("")[-1].kind is TokenKind.END


def test_unexpected_character_raises():
    with pytest.raises(EinsumSyntaxError):
        tokenize("C[i] += A[i] + B[i]")  # '+' alone is not a valid operator
    with pytest.raises(EinsumSyntaxError):
        tokenize("C[i] ? A[i]")


def test_token_repr_mentions_kind():
    token = Token(TokenKind.NAME, "AV", 0)
    assert "NAME" in repr(token)
