"""Tests for the public Insum / sparse_einsum API."""

import numpy as np
import pytest

from repro import Insum, InductorConfig, SparseEinsum, insum, sparse_einsum
from repro.errors import EinsumValidationError, LoweringError
from repro.formats import COO, CSR, BlockGroupCOO, GroupCOO


def test_insum_one_shot_coo_spmm(small_sparse_matrix, rng):
    coo = COO.from_dense(small_sparse_matrix)
    b = rng.standard_normal((12, 4))
    out = insum(
        "C[AM[p],n] += AV[p] * B[AK[p],n]",
        C=np.zeros((8, 4)),
        AV=coo.values,
        AM=coo.coords[0],
        AK=coo.coords[1],
        B=b,
    )
    np.testing.assert_allclose(out, small_sparse_matrix @ b, atol=1e-10)


def test_insum_eager_backend_matches_inductor(small_sparse_matrix, rng):
    coo = COO.from_dense(small_sparse_matrix)
    b = rng.standard_normal((12, 4))
    tensors = dict(
        C=np.zeros((8, 4)), AV=coo.values, AM=coo.coords[0], AK=coo.coords[1], B=b
    )
    fused = insum("C[AM[p],n] += AV[p] * B[AK[p],n]", **tensors)
    eager = insum("C[AM[p],n] += AV[p] * B[AK[p],n]", backend="eager", **tensors)
    np.testing.assert_allclose(fused, eager, atol=1e-10)


def test_insum_unknown_backend():
    with pytest.raises(LoweringError, match="backend"):
        Insum("C[i] += A[i]", backend="tpu")


def test_insum_compile_is_cached(small_sparse_matrix, rng):
    coo = COO.from_dense(small_sparse_matrix)
    b = rng.standard_normal((12, 4))
    op = Insum("C[AM[p],n] += AV[p] * B[AK[p],n]")
    tensors = dict(C=np.zeros((8, 4)), AV=coo.values, AM=coo.coords[0], AK=coo.coords[1], B=b)
    first = op.compile(**tensors)
    second = op.compile(**tensors)
    assert first is second
    assert op.compile_seconds > 0.0


def test_insum_recompiles_for_new_shapes(small_sparse_matrix, rng):
    coo = COO.from_dense(small_sparse_matrix)
    op = Insum("C[AM[p],n] += AV[p] * B[AK[p],n]")
    base = dict(AV=coo.values, AM=coo.coords[0], AK=coo.coords[1])
    first = op.compile(C=np.zeros((8, 4)), B=rng.standard_normal((12, 4)), **base)
    second = op.compile(C=np.zeros((8, 7)), B=rng.standard_normal((12, 7)), **base)
    assert first is not second


def test_sparse_einsum_groupcoo(medium_sparse_matrix, rng):
    b = rng.standard_normal((96, 10))
    out = sparse_einsum(
        "C[m,n] += A[m,k] * B[k,n]", A=GroupCOO.from_dense(medium_sparse_matrix), B=b
    )
    np.testing.assert_allclose(out, medium_sparse_matrix @ b, atol=1e-10)


def test_sparse_einsum_blockgroupcoo_returns_logical_shape(block_sparse_matrix, rng):
    b = rng.standard_normal((64, 10))
    out = sparse_einsum(
        "C[m,n] += A[m,k] * B[k,n]",
        A=BlockGroupCOO.from_dense(block_sparse_matrix, (8, 8), group_size=2),
        B=b,
    )
    assert out.shape == (64, 10)
    np.testing.assert_allclose(out, block_sparse_matrix @ b, atol=1e-10)


def test_sparse_einsum_requires_a_sparse_operand(rng):
    with pytest.raises(EinsumValidationError, match="SparseFormat"):
        sparse_einsum(
            "C[m,n] += A[m,k] * B[k,n]",
            A=rng.standard_normal((4, 4)),
            B=rng.standard_normal((4, 4)),
        )


def test_sparse_einsum_rejects_two_sparse_operands(small_sparse_matrix):
    fmt = COO.from_dense(small_sparse_matrix)
    with pytest.raises(EinsumValidationError, match="single sparse operand"):
        sparse_einsum("C[m,n] += A[m,k] * B[k,n]", A=fmt, B=COO.from_dense(small_sparse_matrix.T))


def test_sparse_einsum_respects_provided_output(medium_sparse_matrix, rng):
    b = rng.standard_normal((96, 3))
    existing = rng.standard_normal((64, 3))
    out = sparse_einsum(
        "C[m,n] += A[m,k] * B[k,n]",
        A=GroupCOO.from_dense(medium_sparse_matrix),
        B=b,
        C=existing.copy(),
    )
    np.testing.assert_allclose(out, existing + medium_sparse_matrix @ b, atol=1e-10)


def test_sparse_einsum_class_exposes_compiled(medium_sparse_matrix, rng):
    op = SparseEinsum("C[m,n] += A[m,k] * B[k,n]")
    out = op(A=GroupCOO.from_dense(medium_sparse_matrix), B=rng.standard_normal((96, 6)))
    assert out.shape == (64, 6)
    assert op.compiled is not None
    assert op.modeled_ms is not None and op.modeled_ms > 0
    assert op.compile_seconds > 0


def test_sparse_einsum_estimate_does_not_require_values(medium_sparse_matrix):
    op = SparseEinsum("C[m,n] += A[m,k] * B[k,n]")
    compiled = op.estimate(
        A=GroupCOO.from_dense(medium_sparse_matrix), B=np.zeros((96, 128), dtype=np.float32)
    )
    assert compiled.estimated_ms > 0


def test_sparse_einsum_with_csr_converted_format(medium_sparse_matrix, rng):
    csr = CSR.from_dense(medium_sparse_matrix)
    out = sparse_einsum(
        "C[m,n] += A[m,k] * B[k,n]", A=GroupCOO.from_csr(csr), B=rng.standard_normal((96, 4))
    )
    assert out.shape == (64, 4)


def test_insum_with_custom_config(small_sparse_matrix, rng):
    coo = COO.from_dense(small_sparse_matrix)
    b = rng.standard_normal((12, 4))
    out = insum(
        "C[AM[p],n] += AV[p] * B[AK[p],n]",
        config=InductorConfig.torchinductor_default(),
        C=np.zeros((8, 4)),
        AV=coo.values,
        AM=coo.coords[0],
        AK=coo.coords[1],
        B=b,
    )
    np.testing.assert_allclose(out, small_sparse_matrix @ b, atol=1e-10)
