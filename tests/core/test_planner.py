"""Tests for the Insum planner (gather / einsum / scatter decomposition)."""

import numpy as np
import pytest

from repro.core.einsum import reference_execute
from repro.core.insum import plan_insum
from repro.errors import LoweringError
from repro.formats import COO, GroupCOO


def coo_spmm_setup(matrix, rng, n=4):
    coo = COO.from_dense(matrix)
    return {
        "C": np.zeros((matrix.shape[0], n)),
        "AV": coo.values,
        "AM": coo.coords[0],
        "AK": coo.coords[1],
        "B": rng.standard_normal((matrix.shape[1], n)),
    }


def test_plan_structure_for_coo_spmm(small_sparse_matrix, rng):
    tensors = coo_spmm_setup(small_sparse_matrix, rng)
    plan = plan_insum("C[AM[p],n] += AV[p] * B[AK[p],n]", tensors)
    assert plan.has_gather and plan.has_scatter
    assert plan.scatter_index == "AM"
    assert plan.scatter_dim == 0
    assert [f.is_indirect for f in plan.factors] == [False, True]
    assert plan.factors[1].gather_index == "AK"
    assert plan.factors[1].subscripts == ["p", "n"]
    assert plan.output_subscripts == ["p", "n"]
    assert plan.einsum_equation == "a,ab->ab"


def test_plan_graph_executes_correctly(small_sparse_matrix, rng):
    tensors = coo_spmm_setup(small_sparse_matrix, rng)
    plan = plan_insum("C[AM[p],n] += AV[p] * B[AK[p],n]", tensors)
    out = plan.graph_module(**tensors)
    np.testing.assert_allclose(out, small_sparse_matrix @ tensors["B"], atol=1e-10)


def test_plan_grouped_spmm_has_reduction(medium_sparse_matrix, rng):
    fmt = GroupCOO.from_dense(medium_sparse_matrix, group_size=4)
    tensors = {
        "C": np.zeros((64, 8)),
        "B": rng.standard_normal((96, 8)),
        **fmt.tensors("A"),
    }
    plan = plan_insum("C[AM[p],n] += AV[p,q] * B[AK[p,q],n]", tensors)
    assert plan.info.reduction_vars == ["q"]
    out = plan.graph_module(**tensors)
    np.testing.assert_allclose(out, medium_sparse_matrix @ tensors["B"], atol=1e-10)


def test_plan_no_scatter_for_direct_output(rng):
    a = rng.standard_normal((4, 6))
    b = rng.standard_normal((6, 3))
    plan = plan_insum(
        "C[m,n] += A[m,k] * B[k,n]", {"C": np.zeros((4, 3)), "A": a, "B": b}
    )
    assert not plan.has_scatter and not plan.has_gather
    np.testing.assert_allclose(
        plan.graph_module(C=np.zeros((4, 3)), A=a, B=b), a @ b, atol=1e-12
    )


def test_plan_multidim_scatter_index(rng):
    # Output scatter through a 2-D index array (grouped sparse convolution form).
    outputs = np.array([[0, 2], [1, 1]])
    values = rng.standard_normal((2, 2))
    tensors = {"Out": np.zeros((3, 4)), "MAPX": outputs, "V": values,
               "In": rng.standard_normal((2, 2, 4))}
    plan = plan_insum("Out[MAPX[p,q],m] += V[p,q] * In[p,q,m]", tensors)
    out = plan.graph_module(**tensors)
    expected = reference_execute("Out[MAPX[p,q],m] += V[p,q] * In[p,q,m]", tensors)
    np.testing.assert_allclose(out, expected, atol=1e-12)


def test_plan_contraction_flops_positive(small_sparse_matrix, rng):
    tensors = coo_spmm_setup(small_sparse_matrix, rng)
    plan = plan_insum("C[AM[p],n] += AV[p] * B[AK[p],n]", tensors)
    assert plan.contraction_flops == 2 * plan.info.iteration_space_size


def test_plan_describe_mentions_stages(small_sparse_matrix, rng):
    tensors = coo_spmm_setup(small_sparse_matrix, rng)
    text = plan_insum("C[AM[p],n] += AV[p] * B[AK[p],n]", tensors).describe()
    assert "gather" in text and "scatter" in text and "einsum" in text


def test_multiple_indirect_axes_in_one_factor_rejected(rng):
    tensors = {
        "C": np.zeros(3),
        "V": np.ones(3),
        "I": np.array([0, 1, 2]),
        "J": np.array([0, 1, 2]),
        "B": rng.standard_normal((3, 3)),
    }
    with pytest.raises(LoweringError, match="one indirect axis"):
        plan_insum("C[I[p]] += V[p] * B[I[p],J[p]]", tensors)


def test_nested_indirection_rejected(rng):
    tensors = {
        "C": np.zeros(3),
        "V": np.ones(3),
        "I": np.array([0, 1, 2]),
        "J": np.array([0, 1, 2]),
        "B": np.ones(3),
    }
    with pytest.raises(LoweringError, match="nested"):
        plan_insum("C[p] += V[p] * B[I[J[p]]]", tensors)


def test_multiple_indirect_output_axes_rejected(rng):
    tensors = {
        "C": np.zeros((3, 3)),
        "V": np.ones(2),
        "I": np.array([0, 1]),
        "J": np.array([1, 2]),
    }
    with pytest.raises(LoweringError, match="one indirect output"):
        plan_insum("C[I[p],J[p]] += V[p]", tensors)


def test_gathered_elements_counted(small_sparse_matrix, rng):
    tensors = coo_spmm_setup(small_sparse_matrix, rng)
    plan = plan_insum("C[AM[p],n] += AV[p] * B[AK[p],n]", tensors)
    nnz = tensors["AV"].shape[0]
    assert plan.factors[1].gathered_elements == nnz * 4
