"""Tests for semantic validation and extent inference."""

import numpy as np
import pytest

from repro.core.einsum import parse_einsum, validate
from repro.errors import EinsumValidationError


def coo_spmm_tensors(rng):
    dense = (rng.random((6, 9)) < 0.4) * rng.standard_normal((6, 9))
    rows, cols = np.nonzero(dense)
    return {
        "C": np.zeros((6, 5)),
        "AV": dense[rows, cols],
        "AM": rows,
        "AK": cols,
        "B": rng.standard_normal((9, 5)),
    }


def test_extent_inference(rng):
    tensors = coo_spmm_tensors(rng)
    info = validate(parse_einsum("C[AM[p],n] += AV[p] * B[AK[p],n]"), tensors)
    assert info.extents["p"] == tensors["AV"].shape[0]
    assert info.extents["n"] == 5
    assert info.output_name == "C"
    assert info.output_vars == ["p", "n"]
    assert info.reduction_vars == []
    assert info.scatter_vars == ["p"]
    assert info.gather_tensors == ["AM", "AK"]


def test_iteration_space_size(rng):
    tensors = coo_spmm_tensors(rng)
    info = validate(parse_einsum("C[AM[p],n] += AV[p] * B[AK[p],n]"), tensors)
    assert info.iteration_space_size == tensors["AV"].shape[0] * 5
    assert info.loop_vars == ["p", "n"]


def test_missing_tensor_binding(rng):
    tensors = coo_spmm_tensors(rng)
    tensors.pop("AK")
    with pytest.raises(EinsumValidationError, match="AK"):
        validate(parse_einsum("C[AM[p],n] += AV[p] * B[AK[p],n]"), tensors)


def test_inconsistent_extents(rng):
    with pytest.raises(EinsumValidationError, match="inconsistent"):
        validate(
            parse_einsum("C[i] += A[i] * B[i]"),
            {"C": np.zeros(4), "A": np.zeros(4), "B": np.zeros(5)},
        )


def test_rank_mismatch(rng):
    with pytest.raises(EinsumValidationError, match="dimensions"):
        validate(parse_einsum("C[i] += A[i,j]"), {"C": np.zeros(4), "A": np.zeros(4)})


def test_non_integer_index_tensor(rng):
    with pytest.raises(EinsumValidationError, match="non-integer"):
        validate(
            parse_einsum("C[I[p]] += V[p]"),
            {"C": np.zeros(4), "I": np.array([0.5, 1.5]), "V": np.ones(2)},
        )


def test_out_of_bounds_index_values(rng):
    with pytest.raises(EinsumValidationError, match="out of"):
        validate(
            parse_einsum("C[I[p]] += V[p]"),
            {"C": np.zeros(3), "I": np.array([0, 5]), "V": np.ones(2)},
        )


def test_bounds_check_can_be_disabled(rng):
    info = validate(
        parse_einsum("C[I[p]] += V[p]"),
        {"C": np.zeros(3), "I": np.array([0, 5]), "V": np.ones(2)},
        check_bounds=False,
    )
    assert info.extents["p"] == 2


def test_constant_index_bounds(rng):
    with pytest.raises(EinsumValidationError, match="constant index"):
        validate(parse_einsum("C[i] += A[7, i]"), {"C": np.zeros(3), "A": np.zeros((4, 3))})


def test_lhs_only_variable_rejected(rng):
    with pytest.raises(EinsumValidationError, match="left-hand side"):
        validate(
            parse_einsum("C[i,j] += A[i]"),
            {"C": np.zeros((3, 4)), "A": np.zeros(3)},
        )
