"""Tests for the Inductor-like backend: dot rewrite, fusion, tiling, autotune, codegen."""

import numpy as np
import pytest

from repro.core.inductor import (
    InductorConfig,
    compile_plan,
    detect_dot,
    fuse_stages,
    lower_to_stages,
)
from repro.core.inductor.autotune import autotune_tiles
from repro.core.inductor.fusion import build_kernel_spec
from repro.core.inductor.tiling import candidate_tiles, default_tiles
from repro.core.insum import plan_insum
from repro.formats import BlockGroupCOO, COO, GroupCOO


@pytest.fixture
def blocked_plan(block_sparse_matrix, rng):
    fmt = BlockGroupCOO.from_dense(block_sparse_matrix, (8, 8), group_size=2)
    tensors = {
        "C": np.zeros((8, 8, 16)),
        "B": rng.standard_normal((8, 8, 16)),
        **fmt.tensors("A"),
    }
    return plan_insum("C[AM[p],bm,n] += AV[p,q,bm,bk] * B[AK[p,q],bk,n]", tensors), tensors


@pytest.fixture
def coo_plan(small_sparse_matrix, rng):
    coo = COO.from_dense(small_sparse_matrix)
    tensors = {
        "C": np.zeros((8, 4)),
        "AV": coo.values,
        "AM": coo.coords[0],
        "AK": coo.coords[1],
        "B": rng.standard_normal((12, 4)),
    }
    return plan_insum("C[AM[p],n] += AV[p] * B[AK[p],n]", tensors), tensors


# -- configuration -----------------------------------------------------------------
def test_config_presets():
    full = InductorConfig.insum()
    assert full.native_dot and full.fuse_gather_scatter and full.lazy_broadcasting
    tc_only = InductorConfig.insum_tensor_core_only()
    assert tc_only.native_dot and not tc_only.lazy_broadcasting
    stock = InductorConfig.torchinductor_default()
    assert not stock.native_dot and not stock.fuse_gather_scatter


def test_config_validation():
    with pytest.raises(ValueError):
        InductorConfig(dtype="fp8").validate()
    with pytest.raises(ValueError):
        InductorConfig(execution_chunk=0).validate()
    with pytest.raises(ValueError):
        InductorConfig(tile_sizes={"m": 0}).validate()


# -- dot detection --------------------------------------------------------------------
def test_dot_detected_for_blocked_spmm(blocked_plan):
    plan, _ = blocked_plan
    dot = detect_dot(plan)
    assert dot is not None
    assert dot.m_vars == ["bm"] and dot.n_vars == ["n"]
    assert set(dot.k_vars) == {"q", "bk"}
    assert dot.batch_vars == ["p"]
    assert dot.tensor_core_eligible("fp16")
    assert "dot[" in dot.describe()


def test_no_dot_for_plain_coo_spmm(coo_plan):
    plan, _ = coo_plan
    assert detect_dot(plan) is None


def test_matvec_shape_not_tensor_core_eligible(medium_sparse_matrix, rng):
    fmt = GroupCOO.from_dense(medium_sparse_matrix, group_size=4)
    tensors = {"C": np.zeros((64, 8)), "B": rng.standard_normal((96, 8)), **fmt.tensors("A")}
    plan = plan_insum("C[AM[p],n] += AV[p,q] * B[AK[p,q],n]", tensors)
    assert detect_dot(plan) is None  # AV has no output var of its own -> matvec


# -- lowering and fusion ----------------------------------------------------------------
def test_lowering_produces_three_stage_kinds(blocked_plan):
    plan, _ = blocked_plan
    stages = lower_to_stages(plan, InductorConfig.insum(dtype="fp16"))
    assert [s.kind for s in stages] == ["gather", "contraction", "scatter"]
    gather = stages[0]
    assert any(load.indirect for load in gather.loads)
    assert stages[1].flops > 0


def test_fusion_single_kernel_with_extension(blocked_plan):
    plan, _ = blocked_plan
    config = InductorConfig.insum(dtype="fp16")
    stages = lower_to_stages(plan, config)
    plans = fuse_stages(stages, detect_dot(plan), config)
    assert len(plans) == 1
    assert plans[0].kinds == ["gather", "contraction", "scatter"]


def test_fusion_splits_with_template_matmul(blocked_plan):
    plan, _ = blocked_plan
    config = InductorConfig.torchinductor_default(dtype="fp16")
    stages = lower_to_stages(plan, config)
    plans = fuse_stages(stages, detect_dot(plan), config)
    assert len(plans) == 3


def test_pointwise_program_fuses_even_without_extension(coo_plan):
    plan, _ = coo_plan
    config = InductorConfig.torchinductor_default()
    stages = lower_to_stages(plan, config)
    plans = fuse_stages(stages, detect_dot(plan), config)
    assert len(plans) == 1  # no matmul template involved -> stock fusion works


def test_fused_kernel_drops_intermediate_traffic(blocked_plan):
    plan, _ = blocked_plan
    config = InductorConfig.insum(dtype="fp16")
    stages = lower_to_stages(plan, config)
    kernel_plans = fuse_stages(stages, detect_dot(plan), config)
    fused = build_kernel_spec(kernel_plans[0], detect_dot(plan), config, {"m": 8, "n": 8, "k": 8})
    buffers = {load.buffer for load in fused.loads} | {store.buffer for store in fused.stores}
    assert not any(name.startswith("tmp_") for name in buffers)


# -- tiling and autotuning -------------------------------------------------------------------
def test_default_tiles_2d_for_dot(blocked_plan):
    plan, _ = blocked_plan
    config = InductorConfig.insum(dtype="fp16")
    tiles = default_tiles(plan, detect_dot(plan), config)
    assert set(tiles) == {"m", "n", "k"}


def test_default_tiles_flattened_without_dot(coo_plan):
    plan, _ = coo_plan
    config = InductorConfig.insum()
    assert set(default_tiles(plan, detect_dot(plan), config)) == {"yx"}


def test_candidate_tiles_are_powers_of_two(blocked_plan):
    plan, _ = blocked_plan
    config = InductorConfig.insum(dtype="fp16")
    for tiles in candidate_tiles(plan, detect_dot(plan), config):
        for value in tiles.values():
            assert value & (value - 1) == 0


def test_autotune_picks_a_candidate(blocked_plan):
    plan, _ = blocked_plan
    config = InductorConfig.insum(dtype="fp16")
    stages = lower_to_stages(plan, config)
    kernel_plans = fuse_stages(stages, detect_dot(plan), config)
    result = autotune_tiles(plan, kernel_plans, detect_dot(plan), config)
    assert result.candidates_evaluated >= 1
    assert result.best_cost_ms > 0
    assert result.modeled_seconds > 0
    assert set(result.best_tiles) == {"m", "n", "k"}


def test_autotune_respects_explicit_tiles(blocked_plan):
    plan, _ = blocked_plan
    config = InductorConfig.insum(dtype="fp16", tile_sizes={"m": 8, "n": 8, "k": 8})
    stages = lower_to_stages(plan, config)
    kernel_plans = fuse_stages(stages, detect_dot(plan), config)
    result = autotune_tiles(plan, kernel_plans, detect_dot(plan), config)
    assert result.best_tiles == {"m": 8, "n": 8, "k": 8}
    assert result.candidates_evaluated == 1


# -- end-to-end compile ---------------------------------------------------------------------
def test_compile_plan_fused_vs_unfused_cost(blocked_plan):
    plan, tensors = blocked_plan
    fused = compile_plan(plan, InductorConfig.insum(dtype="fp16"))
    unfused = compile_plan(plan, InductorConfig.torchinductor_default(dtype="fp16"))
    assert fused.is_fused and not unfused.is_fused
    assert fused.num_kernels == 1 and unfused.num_kernels == 3
    assert fused.estimated_ms < unfused.estimated_ms
    assert unfused.cost.intermediate_bytes > 0
    assert fused.cost.intermediate_bytes == 0


def test_compiled_run_matches_reference(blocked_plan, block_sparse_matrix):
    plan, tensors = blocked_plan
    compiled = compile_plan(plan, InductorConfig.insum(dtype="fp16"))
    out = compiled.run(tensors)
    expected = block_sparse_matrix @ tensors["B"].reshape(64, 16)
    np.testing.assert_allclose(out.reshape(64, 16), expected, atol=1e-8)


def test_lazy_broadcasting_reduces_cost(blocked_plan):
    plan, _ = blocked_plan
    lazy = compile_plan(plan, InductorConfig.insum(dtype="fp16"))
    eager = compile_plan(plan, InductorConfig.insum_tensor_core_only(dtype="fp16"))
    assert lazy.estimated_ms <= eager.estimated_ms
    assert eager.kernels[0].reshape_transpose_ops > 0
    assert lazy.kernels[0].reshape_transpose_ops == 0


def test_describe_and_cost_summary(blocked_plan):
    plan, _ = blocked_plan
    compiled = compile_plan(plan, InductorConfig.insum(dtype="fp16"))
    text = compiled.describe()
    assert "kernel" in text and "tiles" in text
    assert "total" in compiled.cost.summary()


# -- generated source -------------------------------------------------------------------------
def test_source_contains_dot_and_atomic(blocked_plan):
    plan, _ = blocked_plan
    compiled = compile_plan(plan, InductorConfig.insum(dtype="fp16"))
    source = compiled.source()
    assert "@triton.jit" in source
    assert "tl.dot" in source
    assert "tl.atomic_add" in source
    assert "tl.view" not in source and "tl.trans" not in source


def test_eager_broadcasting_source_has_views(blocked_plan):
    plan, _ = blocked_plan
    compiled = compile_plan(plan, InductorConfig.insum_tensor_core_only(dtype="fp16"))
    source = compiled.source()
    assert "tl.view" in source and "tl.trans" in source


def test_source_without_dot_uses_mac(coo_plan):
    plan, _ = coo_plan
    compiled = compile_plan(plan, InductorConfig.insum())
    source = compiled.source()
    assert "tl.dot" not in source
    assert "acc +=" in source
