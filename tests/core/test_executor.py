"""Tests for the fused (chunked) and unfused executors."""

import numpy as np

from repro.core.einsum import reference_execute
from repro.core.inductor.executor import run_fused, run_unfused
from repro.core.insum import plan_insum
from repro.formats import COO, BlockGroupCOO, GroupCOO


def assert_fused_matches_reference(expression, tensors, chunk_size=3):
    plan = plan_insum(expression, tensors)
    expected = reference_execute(expression, tensors)
    fused = run_fused(plan, tensors, chunk_size=chunk_size)
    unfused = run_unfused(plan, tensors)
    np.testing.assert_allclose(fused, expected, atol=1e-9)
    np.testing.assert_allclose(unfused, expected, atol=1e-9)


def test_coo_spmm_all_executors(small_sparse_matrix, rng):
    coo = COO.from_dense(small_sparse_matrix)
    tensors = {
        "C": np.zeros((8, 4)),
        "AV": coo.values,
        "AM": coo.coords[0],
        "AK": coo.coords[1],
        "B": rng.standard_normal((12, 4)),
    }
    assert_fused_matches_reference("C[AM[p],n] += AV[p] * B[AK[p],n]", tensors)


def test_groupcoo_spmm_all_executors(small_sparse_matrix, rng):
    fmt = GroupCOO.from_dense(small_sparse_matrix, group_size=2)
    tensors = {
        "C": np.zeros((8, 4)),
        "B": rng.standard_normal((12, 4)),
        **fmt.tensors("A"),
    }
    assert_fused_matches_reference("C[AM[p],n] += AV[p,q] * B[AK[p,q],n]", tensors)


def test_blockgroupcoo_spmm_all_executors(block_sparse_matrix, rng):
    fmt = BlockGroupCOO.from_dense(block_sparse_matrix, (8, 8), group_size=2)
    tensors = {
        "C": np.zeros((8, 8, 4)),
        "B": rng.standard_normal((8, 8, 4)),
        **fmt.tensors("A"),
    }
    assert_fused_matches_reference(
        "C[AM[p],bm,n] += AV[p,q,bm,bk] * B[AK[p,q],bk,n]", tensors, chunk_size=2
    )


def test_direct_output_executors(rng):
    tensors = {
        "C": np.zeros((5, 3)),
        "A": rng.standard_normal((5, 7)),
        "B": rng.standard_normal((7, 3)),
    }
    assert_fused_matches_reference("C[m,n] += A[m,k] * B[k,n]", tensors, chunk_size=2)


def test_assignment_semantics_in_fused_executor(rng):
    existing = rng.standard_normal(6)
    tensors = {"C": existing.copy(), "A": rng.standard_normal(6)}
    plan = plan_insum("C[i] = A[i]", tensors)
    out = run_fused(plan, tensors, chunk_size=2)
    np.testing.assert_allclose(out, tensors["A"], atol=1e-12)


def test_fused_executor_does_not_mutate_output(rng):
    original = np.zeros((5, 3))
    tensors = {
        "C": original,
        "A": rng.standard_normal((5, 7)),
        "B": rng.standard_normal((7, 3)),
    }
    plan = plan_insum("C[m,n] += A[m,k] * B[k,n]", tensors)
    run_fused(plan, tensors)
    np.testing.assert_allclose(original, 0.0)


def test_chunk_size_one_and_large(small_sparse_matrix, rng):
    coo = COO.from_dense(small_sparse_matrix)
    tensors = {
        "C": np.zeros((8, 4)),
        "AV": coo.values,
        "AM": coo.coords[0],
        "AK": coo.coords[1],
        "B": rng.standard_normal((12, 4)),
    }
    plan = plan_insum("C[AM[p],n] += AV[p] * B[AK[p],n]", tensors)
    expected = reference_execute("C[AM[p],n] += AV[p] * B[AK[p],n]", tensors)
    for chunk in (1, 1000):
        np.testing.assert_allclose(run_fused(plan, tensors, chunk_size=chunk), expected, atol=1e-9)


def test_scatter_on_middle_axis(rng):
    # Z[b, I[p], w] += V[p] * X[b, p, w]  -- scatter dim is 1, chunk var is b.
    tensors = {
        "Z": np.zeros((3, 4, 2)),
        "I": np.array([0, 3, 3]),
        "V": rng.standard_normal(3),
        "X": rng.standard_normal((3, 3, 2)),
    }
    assert_fused_matches_reference("Z[b,I[p],w] += V[p] * X[b,p,w]", tensors, chunk_size=2)


def test_spconv_style_three_factor_fused(rng):
    num_voxels, pairs, channels, out_channels = 6, 9, 3, 4
    tensors = {
        "Out": np.zeros((num_voxels, out_channels)),
        "MAPX": rng.integers(0, num_voxels, size=pairs),
        "MAPY": rng.integers(0, num_voxels, size=pairs),
        "MAPZ": rng.integers(0, 2, size=pairs),
        "MAPV": np.ones(pairs),
        "In": rng.standard_normal((num_voxels, channels)),
        "Weight": rng.standard_normal((2, channels, out_channels)),
    }
    assert_fused_matches_reference(
        "Out[MAPX[p],m] += MAPV[p] * In[MAPY[p],c] * Weight[MAPZ[p],c,m]", tensors, chunk_size=4
    )
