"""Tests for the FX-like graph IR, its operators, and its interpreter."""

import numpy as np
import pytest

from repro.core.fx import Graph, GraphModule, Interpreter, OpCategory, get_op
from repro.core.fx.graph import linearize
from repro.core.fx.ops import OPS, coord_gather, index_add, index_select, scatter_add_coords
from repro.errors import FXGraphError


def build_gather_einsum_scatter_graph():
    graph = Graph()
    a = graph.placeholder("A")
    b = graph.placeholder("B")
    index = graph.placeholder("I")
    out = graph.placeholder("C")
    gathered = graph.call("index_select", b, 0, index)
    product = graph.call("einsum", "p,pn->pn", a, gathered)
    scattered = graph.call("index_add", out, 0, index, product)
    graph.output(scattered)
    return graph


# -- operator library ----------------------------------------------------------
def test_registry_contains_core_ops():
    for name in ["index_select", "einsum", "index_add", "mul", "sum", "reshape", "zeros"]:
        assert name in OPS


def test_get_unknown_op_raises():
    with pytest.raises(FXGraphError):
        get_op("definitely_not_an_op")


def test_categories():
    assert get_op("index_select").category is OpCategory.GATHER
    assert get_op("einsum").category is OpCategory.CONTRACTION
    assert get_op("index_add").category is OpCategory.SCATTER
    assert get_op("mul").category is OpCategory.POINTWISE


def test_index_select_matches_take(rng):
    x = rng.standard_normal((5, 3))
    idx = np.array([4, 0, 0])
    np.testing.assert_allclose(index_select(x, 0, idx), x[idx])


def test_index_select_rejects_2d_index(rng):
    with pytest.raises(FXGraphError):
        index_select(rng.standard_normal((5, 3)), 0, np.zeros((2, 2), dtype=int))


def test_index_add_accumulates_duplicates(rng):
    out = np.zeros((4, 2))
    src = np.ones((3, 2))
    result = index_add(out, 0, np.array([1, 1, 3]), src)
    np.testing.assert_allclose(result[1], [2.0, 2.0])
    np.testing.assert_allclose(result[3], [1.0, 1.0])
    np.testing.assert_allclose(out, 0.0)  # functional: input untouched


def test_index_add_along_nonzero_dim(rng):
    out = np.zeros((2, 3))
    src = rng.standard_normal((2, 2))
    result = index_add(out, 1, np.array([2, 2]), src)
    np.testing.assert_allclose(result[:, 2], src.sum(axis=1))


def test_coord_gather_pairs(rng):
    x = rng.standard_normal((4, 5))
    rows = np.array([0, 3])
    cols = np.array([1, 2])
    np.testing.assert_allclose(coord_gather(x, [rows, cols]), x[rows, cols])


def test_scatter_add_coords(rng):
    out = np.zeros((3, 3))
    result = scatter_add_coords(out, [np.array([0, 0]), np.array([1, 1])], np.array([2.0, 3.0]))
    assert result[0, 1] == 5.0


# -- graph construction and validation ------------------------------------------
def test_graph_names_are_unique():
    graph = Graph()
    first = graph.call("zeros", [2])
    second = graph.call("zeros", [2])
    assert first.name != second.name


def test_graph_validate_detects_missing_output():
    graph = Graph()
    graph.placeholder("A")
    with pytest.raises(FXGraphError, match="output"):
        graph.validate()


def test_graph_format_is_readable():
    graph = build_gather_einsum_scatter_graph()
    text = graph.format()
    assert "index_select" in text and "einsum" in text and "index_add" in text


def test_users_of_and_categories():
    graph = build_gather_einsum_scatter_graph()
    gather = graph.nodes_by_category(OpCategory.GATHER)[0]
    users = graph.users_of(gather)
    assert any(u.target == "einsum" for u in users)


def test_linearize_detects_cycles():
    graph = build_gather_einsum_scatter_graph()
    nodes = list(graph.nodes)
    # Reversed order is still linearizable (it sorts); create a cycle manually.
    nodes[4].args = (nodes[5], *nodes[4].args[1:])
    with pytest.raises(FXGraphError, match="cycle"):
        linearize([nodes[4], nodes[5]])


# -- interpretation -----------------------------------------------------------------
def test_interpreter_runs_gather_einsum_scatter(rng):
    graph = build_gather_einsum_scatter_graph()
    module = GraphModule(graph)
    values = rng.standard_normal(3)
    b = rng.standard_normal((4, 2))
    idx = np.array([0, 2, 2])
    out = module(A=values, B=b, I=idx, C=np.zeros((4, 2)))
    expected = np.zeros((4, 2))
    np.add.at(expected, idx, values[:, None] * b[idx])
    np.testing.assert_allclose(out, expected, atol=1e-12)


def test_interpreter_missing_input(rng):
    module = GraphModule(build_gather_einsum_scatter_graph())
    with pytest.raises(FXGraphError, match="missing input"):
        module(A=np.zeros(3))


def test_graph_module_required_inputs():
    module = GraphModule(build_gather_einsum_scatter_graph())
    assert set(module.required_inputs()) == {"A", "B", "I", "C"}
    assert "def" in module.print_readable()


def test_interpreter_rejects_unknown_node_kind():
    graph = build_gather_einsum_scatter_graph()
    graph.nodes[0].op = "mystery"
    with pytest.raises(FXGraphError):
        Interpreter(graph).run(
            A=np.zeros(3), B=np.zeros((4, 2)), I=np.zeros(3, int), C=np.zeros((4, 2))
        )
