"""Tests for the shared utility helpers."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.utils import (
    Timer,
    as_index_array,
    as_value_array,
    ceil_div,
    fresh_name,
    is_identifier,
    is_power_of_two,
    next_power_of_two,
    prev_power_of_two,
    round_to_power_of_two,
)
from repro.utils.arrays import dense_nnz
from repro.utils.naming import reset_names


def test_ceil_div():
    assert ceil_div(7, 2) == 4
    assert ceil_div(8, 2) == 4
    assert ceil_div(0, 3) == 0
    with pytest.raises(ValueError):
        ceil_div(3, 0)


def test_power_of_two_helpers():
    assert is_power_of_two(1) and is_power_of_two(64)
    assert not is_power_of_two(0) and not is_power_of_two(48)
    assert next_power_of_two(33) == 64
    assert next_power_of_two(32) == 32
    assert prev_power_of_two(33) == 32
    assert round_to_power_of_two(5.6) == 4  # below the geometric midpoint of 4 and 8
    assert round_to_power_of_two(6.0) == 8
    assert round_to_power_of_two(0.3) == 1
    with pytest.raises(ValueError):
        next_power_of_two(0)
    with pytest.raises(ValueError):
        round_to_power_of_two(0)


def test_as_index_array_coercion():
    np.testing.assert_array_equal(as_index_array([1.0, 2.0]), [1, 2])
    assert as_index_array([1, 2]).dtype == np.int64
    with pytest.raises(ShapeError):
        as_index_array([1.5])


def test_as_value_array_coercion():
    assert as_value_array([1, 2]).dtype == np.float64
    assert as_value_array([1, 2], dtype=np.float32).dtype == np.float32


def test_dense_nnz():
    assert dense_nnz(np.array([0.0, 1.0, 1e-9])) == 2
    assert dense_nnz(np.array([0.0, 1.0, 1e-9]), tol=1e-6) == 1


def test_fresh_name_and_identifier():
    reset_names()
    assert fresh_name("buf") == "buf_0"
    assert fresh_name("buf") == "buf_1"
    assert is_identifier("AV_1")
    assert not is_identifier("1AV")
    assert not is_identifier("a-b")


def test_timer_measures_elapsed():
    with Timer() as timer:
        sum(range(10000))
    assert timer.elapsed >= 0.0
    assert timer.elapsed_ms == pytest.approx(timer.elapsed * 1e3)
