"""Tests for the format-agnostic -> format-conscious rewriter."""

import numpy as np
import pytest

from repro.core.einsum import reference_execute, rewrite_sparse_operand
from repro.core.einsum.rewriting import IndexSubstitution
from repro.errors import EinsumValidationError
from repro.formats import COO, ELL, BlockCOO, BlockGroupCOO, GroupCOO


AGNOSTIC = "C[m,n] += A[m,k] * B[k,n]"


def run_rewritten(result, dense_a, rng, n=5):
    """Execute a rewrite result with the reference interpreter and undo views."""
    b = rng.standard_normal((dense_a.shape[1], n))
    c = np.zeros((dense_a.shape[0], n))
    tensors = dict(result.tensors)
    tensors["B"] = b.reshape(result.reshapes["B"]) if "B" in result.reshapes else b
    tensors["C"] = (
        c.reshape(result.output_reshape) if result.output_reshape is not None else c
    )
    out = reference_execute(result.expression, tensors)
    return out.reshape(c.shape), dense_a @ b


def test_coo_rewrite_matches_paper_expression(small_sparse_matrix):
    plan = COO.from_dense(small_sparse_matrix).rewrite_plan("A", ["m", "k"])
    result = rewrite_sparse_operand(AGNOSTIC, plan)
    assert result.expression == "C[AM[p],n] += AV[p] * B[AK[p],n]"
    assert set(result.tensors) == {"AV", "AM", "AK"}


def test_groupcoo_rewrite_matches_paper_expression(small_sparse_matrix):
    plan = GroupCOO.from_dense(small_sparse_matrix, group_size=2).rewrite_plan("A", ["m", "k"])
    result = rewrite_sparse_operand(AGNOSTIC, plan)
    assert result.expression == "C[AM[p],n] += AV[p,q] * B[AK[p,q],n]"


def test_blockgroupcoo_rewrite_matches_paper_expression(block_sparse_matrix):
    fmt = BlockGroupCOO.from_dense(block_sparse_matrix, (8, 8), group_size=2)
    result = rewrite_sparse_operand(
        AGNOSTIC, fmt.rewrite_plan("A", ["m", "k"]),
        {"B": (64, 5), "C": (64, 5)},
    )
    assert result.expression == "C[AM[p],bm,n] += AV[p,q,bm,bk] * B[AK[p,q],bk,n]"
    assert result.reshapes["B"] == (8, 8, 5)
    assert result.output_reshape == (8, 8, 5)


def test_ell_rewrite_has_no_scatter(small_sparse_matrix):
    result = rewrite_sparse_operand(
        AGNOSTIC, ELL.from_dense(small_sparse_matrix).rewrite_plan("A", ["m", "k"])
    )
    assert result.expression == "C[m,n] += AV[m,q] * B[AK[m,q],n]"


@pytest.mark.parametrize("fmt_cls", [COO, GroupCOO, ELL])
def test_rewritten_einsums_compute_spmm(fmt_cls, small_sparse_matrix, rng):
    fmt = fmt_cls.from_dense(small_sparse_matrix)
    result = rewrite_sparse_operand(
        AGNOSTIC, fmt.rewrite_plan("A", ["m", "k"]),
        {"B": (12, 5), "C": (8, 5)},
    )
    out, expected = run_rewritten(result, small_sparse_matrix, rng)
    np.testing.assert_allclose(out, expected, atol=1e-10)


@pytest.mark.parametrize("fmt_cls", [BlockCOO, BlockGroupCOO])
def test_rewritten_block_einsums_compute_spmm(fmt_cls, block_sparse_matrix, rng):
    fmt = fmt_cls.from_dense(block_sparse_matrix, (8, 8))
    result = rewrite_sparse_operand(
        AGNOSTIC, fmt.rewrite_plan("A", ["m", "k"]),
        {"B": (64, 5), "C": (64, 5)},
    )
    out, expected = run_rewritten(result, block_sparse_matrix, rng)
    np.testing.assert_allclose(out, expected, atol=1e-10)


def test_missing_shape_for_split_raises(block_sparse_matrix):
    fmt = BlockCOO.from_dense(block_sparse_matrix, (8, 8))
    with pytest.raises(EinsumValidationError, match="shape"):
        rewrite_sparse_operand(AGNOSTIC, fmt.rewrite_plan("A", ["m", "k"]), {})


def test_unknown_operand_raises(small_sparse_matrix):
    plan = COO.from_dense(small_sparse_matrix).rewrite_plan("A", ["m", "k"])
    with pytest.raises(EinsumValidationError, match="does not appear"):
        rewrite_sparse_operand("C[m,n] += X[m,k] * B[k,n]", plan)


def test_substitution_validation():
    with pytest.raises(EinsumValidationError):
        IndexSubstitution(exprs=())
    with pytest.raises(EinsumValidationError):
        IndexSubstitution(exprs=(None, None), split_sizes=None)  # type: ignore[arg-type]


def test_indivisible_split_raises(block_sparse_matrix):
    fmt = BlockCOO.from_dense(block_sparse_matrix, (8, 8))
    with pytest.raises(EinsumValidationError, match="viewed"):
        rewrite_sparse_operand(
            AGNOSTIC, fmt.rewrite_plan("A", ["m", "k"]), {"B": (63, 5), "C": (64, 5)}
        )
