"""Tests for the indirect-Einsum parser and AST."""

import pytest

from repro.core.einsum import parse_einsum
from repro.core.einsum.ast import IndexVar, IntLiteral, TensorAccess
from repro.errors import EinsumSyntaxError


def test_parse_coo_spmm():
    stmt = parse_einsum("C[AM[p],n] += AV[p] * B[AK[p],n]")
    assert stmt.accumulate is True
    assert stmt.lhs.tensor == "C"
    assert isinstance(stmt.lhs.indices[0], TensorAccess)
    assert isinstance(stmt.lhs.indices[1], IndexVar)
    assert [f.tensor for f in stmt.rhs.factors] == ["AV", "B"]


def test_roundtrip_to_string():
    text = "C[AM[p],bm,n] += AV[p,q,bm,bk] * B[AK[p,q],bk,n]"
    assert str(parse_einsum(text)) == text


def test_parse_assignment_vs_accumulate():
    assert parse_einsum("C[i] = A[i]").accumulate is False
    assert parse_einsum("C[i] += A[i]").accumulate is True


def test_parse_scalar_access():
    stmt = parse_einsum("s = A[i] * B[i]")
    assert stmt.lhs.ndim == 0
    assert stmt.lhs.tensor == "s"


def test_parse_integer_literal_index():
    stmt = parse_einsum("C[i] += A[0, i]")
    literal = stmt.rhs.factors[0].indices[0]
    assert isinstance(literal, IntLiteral)
    assert literal.value == 0


def test_parse_nested_indirection():
    stmt = parse_einsum("C[i] += A[B[D[i]]]")
    outer = stmt.rhs.factors[0].indices[0]
    assert isinstance(outer, TensorAccess)
    inner = outer.indices[0]
    assert isinstance(inner, TensorAccess)
    assert inner.tensor == "D"


def test_tensor_names_include_metadata():
    stmt = parse_einsum("C[AM[p],n] += AV[p] * B[AK[p],n]")
    assert set(stmt.tensor_names()) == {"C", "AM", "AV", "B", "AK"}


def test_index_var_names_in_order():
    stmt = parse_einsum("Out[MAPX[p,q],m] += MAPV[p,q] * In[MAPY[p,q],c] * Weight[MAPZ[p],c,m]")
    assert stmt.index_var_names() == ["p", "q", "m", "c"]


def test_output_and_reduction_vars():
    stmt = parse_einsum("C[m,n] += A[m,k] * B[k,n]")
    assert stmt.output_index_vars() == ["m", "n"]
    assert stmt.reduction_index_vars() == ["k"]


def test_reduction_vars_with_indirect_output():
    stmt = parse_einsum("C[AM[p],n] += AV[p,q] * B[AK[p,q],n]")
    assert stmt.output_index_vars() == ["p", "n"]
    assert stmt.reduction_index_vars() == ["q"]


@pytest.mark.parametrize(
    "bad",
    [
        "",
        "C[i]",
        "C[i] +=",
        "+= A[i]",
        "C[i] += A[i] extra",
        "C[i += A[i]",
        "C[i]] += A[i]",
        "C[] += A[i]",
        "C[i] += A[i] * ",
        "C[i] = = A[i]",
    ],
)
def test_syntax_errors(bad):
    with pytest.raises(EinsumSyntaxError):
        parse_einsum(bad)


def test_non_string_input_rejected():
    with pytest.raises(EinsumSyntaxError):
        parse_einsum(42)  # type: ignore[arg-type]


def test_all_accesses_and_nested_accesses():
    stmt = parse_einsum("C[AM[p],n] += AV[p] * B[AK[p],n]")
    accesses = stmt.all_accesses()
    assert len(accesses) == 3
    nested = accesses[0].nested_accesses()
    assert [a.tensor for a in nested] == ["AM"]


def test_is_direct_flag():
    stmt = parse_einsum("C[m,n] += A[m,k] * B[AK[k],n]")
    assert stmt.rhs.factors[0].is_direct
    assert not stmt.rhs.factors[1].is_direct
