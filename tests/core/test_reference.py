"""Tests for the loop-nest reference interpreter."""

import numpy as np

from repro.core.einsum import reference_execute
from repro.formats import COO


def test_dense_matmul(rng):
    a = rng.standard_normal((4, 5))
    b = rng.standard_normal((5, 3))
    out = reference_execute("C[m,n] += A[m,k] * B[k,n]", {"C": np.zeros((4, 3)), "A": a, "B": b})
    np.testing.assert_allclose(out, a @ b, atol=1e-12)


def test_coo_spmm_matches_dense(rng, small_sparse_matrix):
    coo = COO.from_dense(small_sparse_matrix)
    b = rng.standard_normal((small_sparse_matrix.shape[1], 4))
    out = reference_execute(
        "C[AM[p],n] += AV[p] * B[AK[p],n]",
        {
            "C": np.zeros((small_sparse_matrix.shape[0], 4)),
            "AV": coo.values,
            "AM": coo.coords[0],
            "AK": coo.coords[1],
            "B": b,
        },
    )
    np.testing.assert_allclose(out, small_sparse_matrix @ b, atol=1e-12)


def test_accumulate_keeps_existing_output(rng):
    a = rng.standard_normal(5)
    existing = rng.standard_normal(5)
    out = reference_execute("C[i] += A[i]", {"C": existing, "A": a})
    np.testing.assert_allclose(out, existing + a, atol=1e-12)


def test_assignment_ignores_existing_output(rng):
    a = rng.standard_normal(5)
    existing = rng.standard_normal(5)
    out = reference_execute("C[i] = A[i]", {"C": existing, "A": a})
    np.testing.assert_allclose(out, a, atol=1e-12)


def test_scatter_duplicates_accumulate():
    out = reference_execute(
        "C[I[p]] += V[p]",
        {"C": np.zeros(3), "I": np.array([1, 1, 2]), "V": np.array([1.0, 2.0, 5.0])},
    )
    np.testing.assert_allclose(out, [0.0, 3.0, 5.0])


def test_does_not_mutate_inputs(rng):
    existing = np.zeros(3)
    reference_execute("C[i] += A[i]", {"C": existing, "A": np.ones(3)})
    np.testing.assert_allclose(existing, 0.0)


def test_scalar_output_reduction(rng):
    a = rng.standard_normal(6)
    b = rng.standard_normal(6)
    out = reference_execute("s = A[i] * B[i]", {"s": np.zeros(()), "A": a, "B": b})
    np.testing.assert_allclose(out, np.dot(a, b), atol=1e-12)


def test_constant_index(rng):
    a = rng.standard_normal((3, 4))
    out = reference_execute("C[i] += A[1, i]", {"C": np.zeros(4), "A": a})
    np.testing.assert_allclose(out, a[1], atol=1e-12)


def test_three_factor_product(rng):
    a = rng.standard_normal(4)
    b = rng.standard_normal(4)
    c = rng.standard_normal(4)
    out = reference_execute(
        "D[i] += A[i] * B[i] * C[i]", {"D": np.zeros(4), "A": a, "B": b, "C": c}
    )
    np.testing.assert_allclose(out, a * b * c, atol=1e-12)
