"""Property-based tests: the compiled executors agree with the reference
interpreter on randomly generated indirect Einsums."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.einsum import reference_execute
from repro.core.inductor.executor import run_fused, run_unfused
from repro.core.insum import plan_insum
from repro.formats import COO, GroupCOO


@st.composite
def coo_spmm_problem(draw):
    rows = draw(st.integers(min_value=1, max_value=8))
    cols = draw(st.integers(min_value=1, max_value=8))
    n = draw(st.integers(min_value=1, max_value=6))
    nnz = draw(st.integers(min_value=1, max_value=12))
    row_idx = draw(st.lists(st.integers(0, rows - 1), min_size=nnz, max_size=nnz))
    col_idx = draw(st.lists(st.integers(0, cols - 1), min_size=nnz, max_size=nnz))
    values = draw(
        st.lists(
            st.floats(min_value=-4, max_value=4, allow_nan=False, width=32),
            min_size=nnz,
            max_size=nnz,
        )
    )
    b = draw(
        st.lists(
            st.floats(min_value=-4, max_value=4, allow_nan=False, width=32),
            min_size=cols * n,
            max_size=cols * n,
        )
    )
    return {
        "C": np.zeros((rows, n)),
        "AV": np.asarray(values, dtype=np.float64),
        "AM": np.asarray(row_idx, dtype=np.int64),
        "AK": np.asarray(col_idx, dtype=np.int64),
        "B": np.asarray(b, dtype=np.float64).reshape(cols, n),
    }


@settings(max_examples=40, deadline=None)
@given(coo_spmm_problem())
def test_fused_executor_matches_reference_on_random_coo(tensors):
    expression = "C[AM[p],n] += AV[p] * B[AK[p],n]"
    plan = plan_insum(expression, tensors)
    expected = reference_execute(expression, tensors)
    np.testing.assert_allclose(run_fused(plan, tensors, chunk_size=3), expected, atol=1e-8)
    np.testing.assert_allclose(run_unfused(plan, tensors), expected, atol=1e-8)


@st.composite
def random_sparse_dense_pair(draw):
    rows = draw(st.integers(min_value=2, max_value=10))
    cols = draw(st.integers(min_value=2, max_value=10))
    n = draw(st.integers(min_value=1, max_value=5))
    density = draw(st.floats(min_value=0.05, max_value=0.9))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    matrix = np.where(rng.random((rows, cols)) < density, rng.standard_normal((rows, cols)), 0.0)
    dense = rng.standard_normal((cols, n))
    return matrix, dense


@settings(max_examples=30, deadline=None)
@given(random_sparse_dense_pair(), st.integers(min_value=1, max_value=5))
def test_groupcoo_spmm_matches_numpy_for_any_group_size(pair, group_size):
    matrix, dense = pair
    fmt = GroupCOO.from_dense(matrix, group_size=group_size)
    tensors = {
        "C": np.zeros((matrix.shape[0], dense.shape[1])),
        "B": dense,
        **fmt.tensors("A"),
    }
    plan = plan_insum("C[AM[p],n] += AV[p,q] * B[AK[p,q],n]", tensors)
    np.testing.assert_allclose(run_fused(plan, tensors, chunk_size=2), matrix @ dense, atol=1e-8)


@settings(max_examples=30, deadline=None)
@given(random_sparse_dense_pair())
def test_coo_roundtrip_preserves_spmv(pair):
    matrix, dense = pair
    coo = COO.from_dense(matrix)
    np.testing.assert_allclose(coo.to_dense() @ dense, matrix @ dense, atol=1e-9)
