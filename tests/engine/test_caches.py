"""Unit tests for the engine's caches and primitives.

Covers the contraction-path memo, the identity token / derived-artefact
cache, the segment-sum scatter, the buffer arena, per-instance profile
memoization, and the legacy-mode kill-switch.
"""

import gc

import numpy as np
import pytest

from repro.engine import (
    BufferArena,
    array_token,
    cached_einsum,
    cached_einsum_path,
    derived,
    engine_disabled,
    legacy_mode,
    path_cache_stats,
    plan_scatter,
    segment_add,
)
from repro.formats import BCSR, COO, CSR, ELL, BlockCOO, BlockGroupCOO, GroupCOO
from repro.tuner.profile import profile_operand


# ---------------------------------------------------------------------------
# Contraction-path memo
# ---------------------------------------------------------------------------
def test_cached_einsum_matches_numpy(rng):
    a = rng.standard_normal((6, 7))
    b = rng.standard_normal((7, 5))
    np.testing.assert_allclose(
        cached_einsum("ij,jk->ik", a, b), np.einsum("ij,jk->ik", a, b), atol=1e-12
    )


def test_path_cache_hits_on_repeat_shapes(rng):
    a = rng.standard_normal((4, 9))
    b = rng.standard_normal((9, 3))
    cached_einsum_path("ij,jk->ik", a, b)
    hits_before, _ = path_cache_stats()
    cached_einsum_path("ij,jk->ik", a + 1.0, b - 1.0)  # same shapes, new values
    hits_after, _ = path_cache_stats()
    assert hits_after == hits_before + 1


# ---------------------------------------------------------------------------
# Identity tokens and derived artefacts
# ---------------------------------------------------------------------------
def test_array_token_stable_per_object(rng):
    array = rng.standard_normal(16)
    assert array_token(array) == array_token(array)
    other = array.copy()
    assert array_token(other) != array_token(array)


def test_derived_memoizes_per_object(rng):
    array = rng.integers(0, 8, size=32)
    calls = []

    def build():
        calls.append(1)
        return plan_scatter(array)

    first = derived(array, "test-plan", build)
    second = derived(array, "test-plan", build)
    assert first is second and len(calls) == 1


def test_derived_distinguishes_new_objects_after_gc(rng):
    array = rng.integers(0, 8, size=32)
    token = array_token(array)
    del array
    gc.collect()
    fresh = rng.integers(0, 8, size=32)
    assert array_token(fresh) != token


# ---------------------------------------------------------------------------
# Segment-sum scatter
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("size,targets", [(0, 4), (5, 8), (200, 16), (200, 1)])
def test_segment_add_matches_add_at(rng, size, targets):
    index = rng.integers(0, targets, size=size)
    source = rng.standard_normal((size, 3))
    expected = rng.standard_normal((targets, 3))
    actual = expected.copy()
    np.add.at(expected, index, source)
    segment_add(actual, index, source)
    np.testing.assert_allclose(actual, expected, atol=1e-12)


def test_segment_add_disjoint_rows(rng):
    index = rng.permutation(64)[:32]  # unique targets
    plan = plan_scatter(index)
    assert plan.is_disjoint
    source = rng.standard_normal((32, 4))
    expected = np.zeros((64, 4))
    np.add.at(expected, index, source)
    actual = np.zeros((64, 4))
    segment_add(actual, index, source, plan=plan)
    np.testing.assert_array_equal(actual, expected)


def test_segment_add_broadcast_scalar_source(rng):
    index = rng.integers(0, 4, size=100)
    expected = np.zeros(4)
    np.add.at(expected, index, 1.0)
    actual = np.zeros(4)
    segment_add(actual, index, 1.0)
    np.testing.assert_allclose(actual, expected, atol=1e-12)


def test_plan_scatter_rejects_multidim():
    with pytest.raises(ValueError):
        plan_scatter(np.zeros((2, 2), dtype=np.int64))


# ---------------------------------------------------------------------------
# Buffer arena
# ---------------------------------------------------------------------------
def test_arena_reuses_and_replaces_buffers():
    arena = BufferArena()
    first = arena.get("partial", (4, 4), np.float64)
    second = arena.get("partial", (4, 4), np.float64)
    assert first is second
    resized = arena.get("partial", (2, 8), np.float64)
    assert resized.shape == (2, 8) and resized is not first
    retyped = arena.get("partial", (2, 8), np.float32)
    assert retyped.dtype == np.float32


# ---------------------------------------------------------------------------
# Profile memoization (all seven formats)
# ---------------------------------------------------------------------------
@pytest.mark.parametrize(
    "build",
    [
        lambda d: COO.from_dense(d),
        lambda d: CSR.from_dense(d),
        lambda d: ELL.from_dense(d),
        lambda d: GroupCOO.from_dense(d, group_size=2),
        lambda d: BCSR.from_dense(d, (4, 4)),
        lambda d: BlockCOO.from_dense(d, (4, 4)),
        lambda d: BlockGroupCOO.from_dense(d, (4, 4), group_size=2),
    ],
    ids=["coo", "csr", "ell", "groupcoo", "bcsr", "blockcoo", "blockgroupcoo"],
)
def test_profile_memoized_on_every_format(build, rng):
    dense = np.where(rng.random((16, 16)) < 0.3, rng.standard_normal((16, 16)), 0.0)
    fmt = build(dense)
    first = profile_operand(fmt)
    second = profile_operand(fmt)
    assert first is second  # the O(nnz) extraction ran once
    # A distinct instance re-profiles (and agrees structurally).
    other = build(dense)
    assert profile_operand(other) is not first
    assert profile_operand(other).unstructured_key() == first.unstructured_key()


def test_format_fingerprint_identity_semantics(rng):
    dense = np.where(rng.random((8, 8)) < 0.4, 1.0, 0.0)
    fmt = COO.from_dense(dense)
    assert fmt.fingerprint() == fmt.fingerprint()
    sibling = fmt.with_values(fmt.values * 2.0)  # shared metadata, new values
    assert sibling.fingerprint() == fmt.fingerprint()
    rebuilt = COO.from_dense(dense)  # same pattern, different arrays
    assert rebuilt.fingerprint() != fmt.fingerprint()


# ---------------------------------------------------------------------------
# Plan-cache contract
# ---------------------------------------------------------------------------
def test_plan_cache_entry_carries_specialized_closure(medium_sparse_matrix, rng):
    """A cache hit hands back the specialized closure alongside the plan."""
    from repro import clear_plan_cache
    from repro.core.insum.api import Insum
    from repro.runtime.plan_cache import get_plan_cache, plan_key

    coo = COO.from_dense(medium_sparse_matrix)
    tensors = {
        "C": np.zeros((64, 4)),
        "AV": coo.values,
        "AM": coo.coords[0],
        "AK": coo.coords[1],
        "B": rng.standard_normal((96, 4)),
    }
    clear_plan_cache()
    operator = Insum("C[AM[p],n] += AV[p] * B[AK[p],n]")
    compiled = operator.compile(**tensors)
    key = plan_key(
        operator.expression,
        operator.backend,
        operator.config,
        operator.check_bounds,
        operator._signature(tensors),
        profile_bucket=None,
    )
    entry = get_plan_cache().get(key)
    assert entry is not None
    assert entry.specialized is not None
    assert entry.specialized is compiled.specialized  # one closure, two handles


# ---------------------------------------------------------------------------
# Legacy mode
# ---------------------------------------------------------------------------
def test_legacy_mode_flag_and_parity(medium_sparse_matrix, rng):
    from repro import sparse_einsum

    fmt = COO.from_dense(medium_sparse_matrix)
    dense_rhs = rng.standard_normal((96, 8))
    engine_result = sparse_einsum("C[m,n] += A[m,k] * B[k,n]", A=fmt, B=dense_rhs)
    assert not engine_disabled()
    with legacy_mode():
        assert engine_disabled()
        legacy_result = sparse_einsum("C[m,n] += A[m,k] * B[k,n]", A=fmt, B=dense_rhs)
    assert not engine_disabled()
    np.testing.assert_allclose(engine_result, legacy_result, atol=1e-9)
    np.testing.assert_allclose(engine_result, medium_sparse_matrix @ dense_rhs, atol=1e-9)


def test_bounds_still_checked_on_first_use(rng):
    """The bounds-verdict memo must not suppress first-call validation."""
    from repro.core.insum.api import Insum
    from repro.errors import EinsumValidationError

    bad_index = np.array([0, 99], dtype=np.int64)  # out of range for B
    tensors = {
        "C": np.zeros((4, 2)),
        "AV": np.ones(2),
        "AM": np.array([0, 1], dtype=np.int64),
        "AK": bad_index,
        "B": rng.standard_normal((8, 2)),
    }
    with pytest.raises(EinsumValidationError):
        Insum("C[AM[p],n] += AV[p] * B[AK[p],n]")(**tensors)
