"""Unit tests for the value-free coalescing plumbing in repro.engine.coalesce."""

import numpy as np
import pytest

from repro.core.einsum.parser import parse_einsum
from repro.engine.coalesce import (
    coalesce_key,
    split_results,
    stack_group,
    widen_expression,
)
from repro.formats import COO, CSR, GroupCOO
from repro.runtime.stacked import StackedSparse


def _key(expression, operands):
    statement = parse_einsum(expression)
    return coalesce_key(expression, statement, logical=True, operands=operands)


def test_widen_expression_prepends_stack_index():
    widened, stack = widen_expression(parse_einsum("C[m,n] += A[m,k] * B[k,n]"))
    assert stack == "s"
    assert widened == "C[s,m,n] += A[s,m,k] * B[s,k,n]"


def test_widen_expression_avoids_name_collisions():
    widened, stack = widen_expression(parse_einsum("C[s,n] += A[s,k] * B[k,n]"))
    assert stack != "s" and f"C[{stack},s,n]" in widened


def test_coalesce_key_matches_for_shared_pattern(rng):
    dense = np.where(rng.random((8, 8)) < 0.4, 1.0, 0.0)
    fmt = COO.from_dense(dense)
    first = _key("C[m,n] += A[m,k] * B[k,n]", dict(A=fmt, B=rng.standard_normal((8, 4))))
    second = _key("C[m,n] += A[m,k] * B[k,n]", dict(A=fmt, B=rng.standard_normal((8, 4))))
    assert first is not None and first.key == second.key
    assert first.sparse_name == "A"
    # Same values through with_values (shared metadata) also matches.
    sibling = fmt.with_values(fmt.values * 3.0)
    third = _key("C[m,n] += A[m,k] * B[k,n]", dict(A=sibling, B=rng.standard_normal((8, 4))))
    assert third.key == first.key


def test_coalesce_key_rejections(rng):
    dense = np.where(rng.random((8, 8)) < 0.4, 1.0, 0.0)
    fmt = COO.from_dense(dense)
    b = rng.standard_normal((8, 4))
    expression = "C[m,n] += A[m,k] * B[k,n]"
    statement = parse_einsum(expression)
    # Indirect (non-logical) expressions never coalesce.
    assert coalesce_key(expression, statement, logical=False, operands=dict(A=fmt, B=b)) is None
    # A bound output (caller-provided accumulation base) opts out.
    assert _key(expression, dict(A=fmt, B=b, C=np.zeros((8, 4)))) is None
    # Variable-length and stacked operands opt out.
    assert _key(expression, dict(A=CSR.from_dense(dense), B=b)) is None
    stacked = StackedSparse.from_items([fmt, fmt.with_values(fmt.values)])
    assert _key("C[s,m,n] += A[s,m,k] * B[k,n]", dict(A=stacked, B=b)) is None
    # Different instances (fresh metadata arrays) do not share a key.
    other = COO.from_dense(dense)
    assert (
        _key(expression, dict(A=fmt, B=b)).key != _key(expression, dict(A=other, B=b)).key
    )
    # Different dense signatures do not share a key.
    wider = rng.standard_normal((8, 6))
    assert (
        _key(expression, dict(A=fmt, B=b)).key != _key(expression, dict(A=fmt, B=wider)).key
    )


def test_stack_group_pads_and_split_results_drops_padding(rng):
    dense = np.where(rng.random((6, 6)) < 0.5, rng.standard_normal((6, 6)), 0.0)
    fmt = GroupCOO.from_dense(dense, group_size=2)
    group = [
        dict(A=fmt.with_values(fmt.values * (i + 1)), B=rng.standard_normal((6, 3)))
        for i in range(3)
    ]
    stacked = stack_group(group, "A", pad_to=4)
    assert isinstance(stacked["A"], StackedSparse)
    assert stacked["A"].stack_size == 4
    assert stacked["B"].shape == (4, 6, 3)
    np.testing.assert_array_equal(stacked["B"][3], 0.0)
    np.testing.assert_array_equal(stacked["A"].data[3], 0.0)

    batched = rng.standard_normal((4, 6, 3))
    outputs = split_results(batched, 3)
    assert len(outputs) == 3
    for position, output in enumerate(outputs):
        np.testing.assert_array_equal(output, batched[position])


def test_stack_group_rejects_undersized_pad(rng):
    dense = np.where(rng.random((4, 4)) < 0.5, 1.0, 0.0)
    fmt = COO.from_dense(dense)
    group = [dict(A=fmt, B=np.eye(4)) for _ in range(3)]
    with pytest.raises(ValueError):
        stack_group(group, "A", pad_to=2)
