"""Specialized-closure parity against the loop-nest reference interpreter.

The engine's acceptance bar: for every executable format, accumulate and
non-accumulate statements, and a range of chunk schedules, the
:class:`~repro.engine.specialize.SpecializedKernel` must match the
obviously-correct reference interpreter (and the interpretive fused
executor) on the same operands.
"""

import numpy as np
import pytest

from repro import sparse_einsum
from repro.core.einsum import reference_execute
from repro.core.inductor.config import InductorConfig
from repro.core.inductor.executor import run_fused
from repro.core.insum import plan_insum
from repro.engine.specialize import SpecializedKernel, specialize_plan
from repro.formats import COO, ELL, BlockCOO, BlockGroupCOO, GroupCOO
from repro.runtime.stacked import StackedSparse


def _spmm_tensors(fmt, rng, n_rows, n_cols, width=4, accumulate=True):
    base = rng.standard_normal((n_rows, width)) if accumulate else np.zeros((n_rows, width))
    return {
        "C": base,
        "B": rng.standard_normal((n_cols, width)),
        **fmt.tensors("A"),
    }


CHUNK_SCHEDULES = [
    # (chunk_size, single_shot_budget): budget 0 forces streaming windows.
    (1, 0),
    (3, 0),
    (128, 0),
    (128, 1 << 22),
]


def assert_specialized_matches_reference(expression, tensors):
    plan = plan_insum(expression, tensors)
    expected = reference_execute(expression, tensors)
    fused = run_fused(plan, tensors, chunk_size=3)
    np.testing.assert_allclose(fused, expected, atol=1e-9)
    for chunk_size, budget in CHUNK_SCHEDULES:
        kernel = SpecializedKernel.build(plan, chunk_size=chunk_size, single_shot_budget=budget)
        result = kernel.run(tensors)
        np.testing.assert_allclose(result, expected, atol=1e-9)
        # Repeated execution reuses memoized scatter plans and arena
        # buffers — results must be bit-identical call to call.
        np.testing.assert_array_equal(kernel.run(tensors), result)


def test_coo_spmm_specialized(small_sparse_matrix, rng):
    coo = COO.from_dense(small_sparse_matrix)
    tensors = {
        "C": np.zeros((8, 4)),
        "AV": coo.values,
        "AM": coo.coords[0],
        "AK": coo.coords[1],
        "B": rng.standard_normal((12, 4)),
    }
    assert_specialized_matches_reference("C[AM[p],n] += AV[p] * B[AK[p],n]", tensors)


def test_non_accumulate_statement_specialized(small_sparse_matrix, rng):
    coo = COO.from_dense(small_sparse_matrix)
    tensors = {
        "C": rng.standard_normal((8, 4)),  # existing values must be ignored by '='
        "AV": coo.values,
        "AM": coo.coords[0],
        "AK": coo.coords[1],
        "B": rng.standard_normal((12, 4)),
    }
    assert_specialized_matches_reference("C[AM[p],n] = AV[p] * B[AK[p],n]", tensors)


def test_accumulate_into_existing_output_specialized(small_sparse_matrix, rng):
    coo = COO.from_dense(small_sparse_matrix)
    tensors = {
        "C": rng.standard_normal((8, 4)),
        "AV": coo.values,
        "AM": coo.coords[0],
        "AK": coo.coords[1],
        "B": rng.standard_normal((12, 4)),
    }
    assert_specialized_matches_reference("C[AM[p],n] += AV[p] * B[AK[p],n]", tensors)


def test_groupcoo_spmm_specialized(small_sparse_matrix, rng):
    fmt = GroupCOO.from_dense(small_sparse_matrix, group_size=2)
    tensors = {
        "C": np.zeros((8, 4)),
        "B": rng.standard_normal((12, 4)),
        **fmt.tensors("A"),
    }
    assert_specialized_matches_reference("C[AM[p],n] += AV[p,q] * B[AK[p,q],n]", tensors)


def test_direct_output_no_scatter_specialized(rng):
    # Dense-output contraction: the chunk variable is a plain LHS axis.
    tensors = {
        "C": np.zeros((6, 5)),
        "X": rng.standard_normal((6, 7)),
        "Y": rng.standard_normal((7, 5)),
    }
    assert_specialized_matches_reference("C[i,j] += X[i,k] * Y[k,j]", tensors)


@pytest.mark.parametrize("format_cls", [COO, ELL, GroupCOO])
def test_sparse_einsum_parity_unstructured_formats(format_cls, medium_sparse_matrix, rng):
    """End-to-end: the public API (which routes through the engine) matches dense."""
    fmt = format_cls.from_dense(medium_sparse_matrix)
    dense_rhs = rng.standard_normal((96, 8))
    result = sparse_einsum("C[m,n] += A[m,k] * B[k,n]", A=fmt, B=dense_rhs)
    np.testing.assert_allclose(result, medium_sparse_matrix @ dense_rhs, atol=1e-9)


@pytest.mark.parametrize("format_cls", [BlockCOO, BlockGroupCOO])
def test_sparse_einsum_parity_block_formats(format_cls, rng):
    dense = np.zeros((32, 32))
    for block in range(4):
        dense[block * 8 : block * 8 + 8, block * 8 : block * 8 + 8] = rng.standard_normal((8, 8))
    fmt = format_cls.from_dense(dense, (8, 8))
    dense_rhs = rng.standard_normal((32, 6))
    result = sparse_einsum("C[m,n] += A[m,k] * B[k,n]", A=fmt, B=dense_rhs)
    np.testing.assert_allclose(result, dense @ dense_rhs, atol=1e-9)


def test_stacked_sparse_parity(medium_sparse_matrix, rng):
    mask = medium_sparse_matrix != 0
    stack = np.where(mask[None], rng.standard_normal((5, 64, 96)), 0.0)
    stacked = StackedSparse.from_dense(stack, GroupCOO, group_size=4)
    dense_rhs = rng.standard_normal((96, 8))
    result = sparse_einsum("C[s,m,n] += A[s,m,k] * B[k,n]", A=stacked, B=dense_rhs)
    np.testing.assert_allclose(result, stack @ dense_rhs, atol=1e-9)


@pytest.mark.parametrize("execution_chunk", [1, 7, 64, 4096])
def test_chunk_size_invariance_through_config(execution_chunk, medium_sparse_matrix, rng):
    """The public config's chunk size must not change results."""
    fmt = COO.from_dense(medium_sparse_matrix)
    dense_rhs = rng.standard_normal((96, 8))
    config = InductorConfig(
        execution_chunk=execution_chunk, specialize_single_shot_elements=0
    )
    result = sparse_einsum("C[m,n] += A[m,k] * B[k,n]", A=fmt, B=dense_rhs, config=config)
    np.testing.assert_allclose(result, medium_sparse_matrix @ dense_rhs, atol=1e-9)


def test_specialize_plan_reports_schedule(small_sparse_matrix, rng):
    coo = COO.from_dense(small_sparse_matrix)
    tensors = {
        "C": np.zeros((8, 4)),
        "AV": coo.values,
        "AM": coo.coords[0],
        "AK": coo.coords[1],
        "B": rng.standard_normal((12, 4)),
    }
    plan = plan_insum("C[AM[p],n] += AV[p] * B[AK[p],n]", tensors)
    single = specialize_plan(plan, InductorConfig())
    assert single.single_shot and len(single.windows) == 1
    chunked = specialize_plan(
        plan, InductorConfig(execution_chunk=4, specialize_single_shot_elements=0)
    )
    assert not chunked.single_shot and len(chunked.windows) > 1
    assert "specialized" in single.describe()
