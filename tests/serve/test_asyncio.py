"""The asyncio bridge: asubmit / amap_batches under a real event loop.

Acceptance: the cluster backend serves >= 100 concurrent ``asubmit``
calls from one event loop without deadlock — the shape of an async HTTP
frontend fanning user requests onto the pool.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.errors import EinsumValidationError
from repro.serve import ServeConfig, Session

SPMM_EXPR = "C[m,n] += A[m,k] * B[k,n]"


def test_asubmit_returns_the_result(spmm_operands):
    async def main():
        with Session(backend="threaded") as session:
            return await session.asubmit(SPMM_EXPR, **spmm_operands)

    output = asyncio.run(main())
    assert np.asarray(output).shape == (32, 8)


def test_asubmit_raises_worker_errors_at_the_await(spmm_operands):
    async def main():
        with Session(backend="threaded") as session:
            await session.asubmit(SPMM_EXPR, A=spmm_operands["A"], B=np.zeros((7, 3)))

    with pytest.raises(EinsumValidationError):
        asyncio.run(main())


def test_hundred_concurrent_asubmit_on_cluster(spmm_operands):
    """The acceptance bar: >= 100 concurrent awaits on the cluster, no deadlock."""

    async def main():
        config = ServeConfig(workers=2, worker_threads=2)
        with Session(backend="cluster", config=config) as session:
            coroutines = [
                session.asubmit(SPMM_EXPR, **spmm_operands) for _ in range(100)
            ]
            return await asyncio.wait_for(asyncio.gather(*coroutines), timeout=240)

    outputs = asyncio.run(main())
    assert len(outputs) == 100
    reference = np.asarray(outputs[0])
    for output in outputs[1:]:
        assert np.array_equal(np.asarray(output), reference)


def test_amap_batches_streams_in_order(serve_workload):
    async def main():
        with Session(backend="threaded", config=ServeConfig(workers=2)) as session:
            streamed = []
            async for output in session.amap_batches(serve_workload, window=8):
                streamed.append(np.asarray(output))
            return streamed

    streamed = asyncio.run(main())
    with Session(backend="inline") as session:
        direct = [np.asarray(f.result(30)) for f in session.submit_many(serve_workload)]
    assert len(streamed) == len(direct)
    for expected, actual in zip(direct, streamed):
        np.testing.assert_allclose(actual, expected, atol=1e-9)


def test_concurrent_asubmit_interleaves_with_other_loop_work(spmm_operands):
    """The loop stays live while requests are in flight (no blocking submit)."""

    async def main():
        ticks = 0
        with Session(backend="threaded", config=ServeConfig(workers=2)) as session:
            task = asyncio.ensure_future(
                asyncio.gather(
                    *[session.asubmit(SPMM_EXPR, **spmm_operands) for _ in range(20)]
                )
            )
            while not task.done():
                ticks += 1
                await asyncio.sleep(0.001)
            await task
        return ticks

    assert asyncio.run(main()) >= 1
