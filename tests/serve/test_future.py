"""Future semantics: delivery, timeout, cancellation, callbacks."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.errors import EinsumValidationError, FutureCancelledError, SessionClosedError
from repro.runtime.server import RequestExecutor
from repro.serve import ServeConfig, Session

SPMM_EXPR = "C[m,n] += A[m,k] * B[k,n]"
SPMV_EXPR = "y[m] += A[m,k] * x[k]"


@pytest.fixture
def gated_executor(monkeypatch):
    """Make SPMV requests block on an event until the test releases them.

    Patching :meth:`RequestExecutor.execute` gates every backend at the
    single shared execution choke point, so worker occupancy is
    deterministic instead of a sleep-based race.
    """
    gate = threading.Event()
    entered = threading.Event()
    original = RequestExecutor.execute

    def gated(self, expression, operands):
        if expression == SPMV_EXPR:
            entered.set()
            assert gate.wait(30), "test forgot to open the gate"
        return original(self, expression, operands)

    monkeypatch.setattr(RequestExecutor, "execute", gated)
    yield gate, entered
    gate.set()  # never leave a worker blocked


def _spmv_operands(spmm_operands):
    from repro.formats import COO

    rng = np.random.default_rng(5)
    dense = np.where(rng.random((32, 48)) < 0.2, rng.standard_normal((32, 48)), 0.0)
    return dict(A=COO.from_dense(dense), x=rng.standard_normal(48))


def test_result_and_done_and_latency(spmm_operands):
    with Session(backend="threaded") as session:
        future = session.submit(SPMM_EXPR, **spmm_operands)
        output = future.result(timeout=30)
        assert future.done() and not future.cancelled()
        assert future.expression == SPMM_EXPR
        assert future.latency_ms is not None and future.latency_ms >= 0
        assert output.shape == (32, 8)
        # result() is repeatable (unlike the consuming legacy gather).
        assert np.array_equal(future.result(), output)


def test_worker_error_delivered_through_future(spmm_operands):
    with Session(backend="threaded") as session:
        future = session.submit(SPMM_EXPR, A=spmm_operands["A"], B=np.zeros((7, 3)))
        with pytest.raises(EinsumValidationError):
            future.result(timeout=30)
        assert future.done()
        assert isinstance(future.exception(), EinsumValidationError)


def test_result_timeout(gated_executor, spmm_operands):
    gate, entered = gated_executor
    with Session(backend="threaded", config=ServeConfig(workers=1)) as session:
        blocked = session.submit(SPMV_EXPR, **_spmv_operands(spmm_operands))
        assert entered.wait(10)
        with pytest.raises(TimeoutError):
            blocked.result(timeout=0.05)
        assert not blocked.done()
        gate.set()
        assert blocked.result(timeout=30).shape == (32,)


def test_cancel_not_yet_dispatched_work(gated_executor, spmm_operands):
    gate, entered = gated_executor
    observed = []
    with Session(
        backend="threaded", config=ServeConfig(workers=1, coalesce=False)
    ) as session:
        blocker = session.submit(SPMV_EXPR, **_spmv_operands(spmm_operands))
        assert entered.wait(10)  # the only worker is now occupied
        victim = session.submit(SPMM_EXPR, **spmm_operands)
        victim.add_done_callback(lambda f: observed.append(f.cancelled()))
        assert victim.cancel() is True
        assert victim.cancelled() and victim.done()
        assert victim.cancel() is True  # idempotent
        with pytest.raises(FutureCancelledError):
            victim.result(timeout=5)
        with pytest.raises(FutureCancelledError):
            victim.exception(timeout=5)
        gate.set()
        assert blocker.result(timeout=30) is not None
        # Cancelled work is neither completed nor failed in the stats.
        stats = session.stats()
        assert stats.completed == 1 and stats.failed == 0
    assert observed == [True]


def test_cancel_fails_once_running_or_done(gated_executor, spmm_operands):
    gate, entered = gated_executor
    with Session(backend="threaded", config=ServeConfig(workers=1)) as session:
        running = session.submit(SPMV_EXPR, **_spmv_operands(spmm_operands))
        assert entered.wait(10)
        assert running.cancel() is False  # claimed by a worker: too late
        gate.set()
        running.result(timeout=30)
        assert running.cancel() is False  # already done

        done = session.submit(SPMM_EXPR, **spmm_operands)
        done.result(timeout=30)
        assert done.cancel() is False


def test_inline_futures_are_never_cancellable(spmm_operands):
    with Session(backend="inline") as session:
        future = session.submit(SPMM_EXPR, **spmm_operands)
        assert future.done()  # inline resolves during submit
        assert future.cancel() is False
        assert future.result().shape == (32, 8)


def test_callbacks_fire_on_completion_and_immediately_when_done(spmm_operands):
    fired = []
    with Session(backend="threaded") as session:
        future = session.submit(SPMM_EXPR, **spmm_operands)
        future.add_done_callback(lambda f: fired.append("first"))
        future.result(timeout=30)
        future.add_done_callback(lambda f: fired.append("late"))
        deadline = time.monotonic() + 5
        while "first" not in fired and time.monotonic() < deadline:
            time.sleep(0.01)
    assert fired == ["first", "late"]


def test_callback_exceptions_are_swallowed(spmm_operands):
    with Session(backend="threaded") as session:
        future = session.submit(SPMM_EXPR, **spmm_operands)

        def bad_callback(f):
            raise RuntimeError("callback bug")

        future.add_done_callback(bad_callback)
        assert future.result(timeout=30) is not None  # delivery survived


def test_closed_session_rejects_submission(spmm_operands):
    session = Session(backend="inline")
    session.close()
    with pytest.raises(SessionClosedError):
        session.submit(SPMM_EXPR, **spmm_operands)
    session.close()  # idempotent


def test_context_manager_drains_before_close(spmm_operands):
    with Session(backend="threaded", config=ServeConfig(workers=2)) as session:
        futures = [session.submit(SPMM_EXPR, **spmm_operands) for _ in range(16)]
    # Exiting the context drained everything: all futures resolved.
    assert all(future.done() for future in futures)
    assert all(future.result().shape == (32, 8) for future in futures)


def test_cluster_cancel_of_undispatched_request(monkeypatch, spmm_operands):
    """Cluster cancellation withdraws requests still in the dispatch queue."""
    from repro.cluster.server import ClusterServer

    gate = threading.Event()
    entered = threading.Event()
    original = ClusterServer._dispatch_one

    def stalled_dispatch(self, dispatch):
        entered.set()
        assert gate.wait(30), "test forgot to open the gate"
        return original(self, dispatch)

    monkeypatch.setattr(ClusterServer, "_dispatch_one", stalled_dispatch)
    with Session(backend="cluster", config=ServeConfig(workers=1)) as session:
        blocker = session.submit(SPMM_EXPR, **spmm_operands)
        assert entered.wait(10)  # the dispatcher is now stalled on `blocker`
        victim = session.submit(SPMM_EXPR, **spmm_operands)
        assert victim.cancel() is True
        assert victim.cancelled()
        with pytest.raises(FutureCancelledError):
            victim.result(timeout=5)
        gate.set()
        assert blocker.result(timeout=60).shape == (32, 8)
        stats = session.stats()
        assert stats.completed == 1 and stats.failed == 0
