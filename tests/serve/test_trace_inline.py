"""Inline-backend ``Future.trace()`` coverage and mixed-backend stats parity.

Closes the gap left by the per-tier span tests: the inline backend's
trace must behave like a first-class citizen (present after success
*and* failure, absent before completion, spans covering the measured
latency), and a trace-replay run that mixes backends mid-session must
produce :class:`~repro.serve.ServeStats` that agree with the replay
ledger on every conservation count.
"""

from __future__ import annotations

import pytest

from repro.replay import replay, synthesize
from repro.serve import ServeConfig, Session


@pytest.fixture(scope="module")
def replay_trace(seed):
    """A small mixed-tenant trace shared by the tests in this module."""
    return synthesize("serve-trace-inline", seed=seed, num_records=16, rate_rps=400.0)


class TestInlineFutureTrace:
    def test_trace_present_once_done(self, spmm_operands):
        with Session("inline") as session:
            future = session.submit("C[m,n] += A[m,k] * B[k,n]", **spmm_operands)
            future.result(timeout=60)
        assert future.trace() is not None

    def test_spans_cover_inline_latency(self, spmm_operands):
        with Session("inline") as session:
            future = session.submit("C[m,n] += A[m,k] * B[k,n]", **spmm_operands)
            future.result(timeout=60)
        trace = future.trace()
        spans = trace.spans()
        assert {"queue.wait", "execute"} <= {span.name for span in spans}
        assert future.latency_ms is not None
        assert trace.total_span_ms() <= future.latency_ms * 1.05
        assert trace.total_span_ms() >= future.latency_ms * 0.5

    def test_failed_request_still_carries_trace(self):
        import numpy as np

        with Session("inline") as session:
            future = session.submit("this is not an einsum", x=np.zeros(3))
            with pytest.raises(Exception):
                future.result(timeout=60)
        # The inline tier resolves errors through the same path as
        # results, so the trace survives the failure.
        assert future.trace() is not None

    def test_trace_ids_are_unique_per_request(self, spmm_operands):
        with Session("inline") as session:
            futures = [
                session.submit("C[m,n] += A[m,k] * B[k,n]", **spmm_operands)
                for _ in range(4)
            ]
            for future in futures:
                future.result(timeout=60)
        ids = {future.trace().trace_id for future in futures}
        assert len(ids) == 4

    def test_replayed_inline_requests_are_traced(self, replay_trace):
        with Session("inline") as session:
            report = replay(replay_trace, session, time_scale=0.0)
        assert report.completed == len(replay_trace)


class TestMixedBackendStatsParity:
    def test_stats_account_for_split_replay(self, replay_trace):
        """Mid-session backend mix: ServeStats agree with the replay ledger."""
        half = len(replay_trace) // 2
        first, second = replay_trace.subset(0, half), replay_trace.subset(half)

        inline = Session("inline")
        threaded = Session("threaded", config=ServeConfig(workers=2, coalesce=False))
        try:
            report_inline = replay(first, inline, time_scale=0.0)
            report_threaded = replay(second, threaded, time_scale=0.0)
            stats_inline, stats_threaded = inline.stats(), threaded.stats()
        finally:
            inline.close()
            threaded.close()

        # Each backend's normalized stats obey the invariant on its own...
        for stats in (stats_inline, stats_threaded):
            assert stats.completed + stats.failed + stats.cancelled == stats.submitted
        # ...and the pair accounts for exactly the trace, matching the
        # replay reports request for request.
        merged = report_inline.merge(report_threaded)
        assert merged.submitted == len(replay_trace)
        assert stats_inline.submitted + stats_threaded.submitted == merged.submitted
        assert stats_inline.completed + stats_threaded.completed == merged.completed
        assert stats_inline.backend == "inline"
        assert stats_threaded.backend == "threaded"
        # Latency percentiles normalize to the same field set either way.
        assert stats_inline.to_dict().keys() == stats_threaded.to_dict().keys()
