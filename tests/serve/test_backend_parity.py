"""Backend parity: one workload, three backends, identical bits.

The acceptance bar of the serve tier: a workload submitted through
``Session`` on inline, threaded, and cluster backends returns
*bitwise-equal* results and a normalized :class:`ServeStats` — proof
that the three tiers share one execution path
(:class:`~repro.runtime.server.RequestExecutor`) rather than three
reimplementations.  Coalescing is disabled here because batched
execution is only equal up to floating-point reassociation; parity of
the coalesced path against per-request execution is covered by
``tests/runtime/test_server_coalesce.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve import ServeConfig, ServeStats, Session

BACKEND_CONFIGS = {
    "inline": ServeConfig(),
    "threaded": ServeConfig(workers=2, coalesce=False),
    "cluster": ServeConfig(workers=2, worker_threads=1, coalesce=False),
}


@pytest.fixture(scope="module")
def per_backend_results(serve_workload):
    """The workload's outputs and stats from every backend, computed once."""
    outcome = {}
    for backend, config in BACKEND_CONFIGS.items():
        with Session(backend=backend, config=config) as session:
            futures = session.submit_many(serve_workload)
            outputs = [future.result(timeout=120) for future in futures]
            outcome[backend] = (outputs, session.stats())
    return outcome


def test_all_backends_return_bitwise_equal_results(per_backend_results):
    reference, _ = per_backend_results["inline"]
    for backend in ("threaded", "cluster"):
        outputs, _ = per_backend_results[backend]
        assert len(outputs) == len(reference)
        for index, (expected, actual) in enumerate(zip(reference, outputs)):
            assert np.array_equal(np.asarray(expected), np.asarray(actual)), (
                f"request {index} differs between inline and {backend}"
            )


def test_stats_are_normalized_across_backends(per_backend_results, serve_workload):
    for backend, (_, stats) in per_backend_results.items():
        assert isinstance(stats, ServeStats)
        assert stats.backend == backend
        assert stats.completed == len(serve_workload)
        assert stats.failed == 0
        assert stats.wall_seconds > 0
        assert stats.throughput_rps > 0
        assert stats.p99_latency_ms >= stats.p95_latency_ms >= stats.p50_latency_ms >= 0
        assert stats.cache_hits + stats.cache_misses > 0
        # Every terminal outcome is accounted for, on every backend.
        assert stats.cancelled == 0
        assert stats.completed + stats.failed + stats.cancelled == stats.submitted
        assert stats.submitted == len(serve_workload)
        # Cluster-only counters exist (and are zero) on every backend.
        assert stats.rejected == 0 and stats.requeued == 0
        summary = stats.summary()
        assert backend in summary and "req/s" in summary
    inline_stats = per_backend_results["inline"][1]
    cluster_stats = per_backend_results["cluster"][1]
    assert inline_stats.workers == 1
    assert cluster_stats.workers == 2
    assert cluster_stats.restarts == 0
    assert len(cluster_stats.per_worker) == 2


def test_map_batches_matches_submit_order(serve_workload):
    with Session(backend="threaded", config=ServeConfig(workers=2, coalesce=False)) as session:
        streamed = [np.asarray(out) for out in session.map_batches(serve_workload, window=8)]
    with Session(backend="inline") as session:
        direct = [
            np.asarray(future.result(30)) for future in session.submit_many(serve_workload)
        ]
    assert len(streamed) == len(direct)
    for expected, actual in zip(direct, streamed):
        assert np.array_equal(expected, actual)


def test_sharded_inline_matches_unsharded(serve_workload):
    """num_shards is an inline/threaded knob; results stay exact (disjoint rows)."""
    with Session(backend="inline", config=ServeConfig(num_shards=2)) as session:
        sharded = [np.asarray(f.result(30)) for f in session.submit_many(serve_workload[:6])]
    with Session(backend="inline") as session:
        plain = [np.asarray(f.result(30)) for f in session.submit_many(serve_workload[:6])]
    for expected, actual in zip(plain, sharded):
        np.testing.assert_allclose(actual, expected, atol=1e-12)
