"""Session-level retry and warm failover, end to end on the cluster tier.

Retries resubmit transient failures (admission rejection, worker
crashes) with decorrelated-jitter backoff; failover routes new submits
through a warm fallback backend when the cluster drops below its
healthy-worker floor.  Both are session concerns — the backends stay
oblivious.
"""

from __future__ import annotations

import os
import signal
import time

import numpy as np
import pytest

from repro.errors import ClusterBusyError
from repro.obs.metrics import get_registry
from repro.runtime.server import RequestExecutor
from repro.serve import ServeConfig, Session

SPMM_EXPR = "C[m,n] += A[m,k] * B[k,n]"


def slow_down_executor(monkeypatch, delay: float) -> None:
    """Make every execution take ``delay`` seconds (fork-inherited)."""
    original = RequestExecutor.execute

    def slow_execute(self, expression, operands):
        time.sleep(delay)
        return original(self, expression, operands)

    monkeypatch.setattr(RequestExecutor, "execute", slow_execute)


def busy_session(**retry_fields) -> Session:
    """A one-slot cluster where a second submit is rejected as busy."""
    config = ServeConfig(
        workers=1,
        worker_threads=1,
        coalesce=False,
        admission="reject",
        max_inflight=1,
        **retry_fields,
    )
    return Session("cluster", config=config)


class TestRetry:
    def test_busy_rejection_retries_to_success(self, spmm_operands, monkeypatch):
        slow_down_executor(monkeypatch, 0.3)
        counter = get_registry().counter(
            "repro_retries_total",
            "Resubmissions scheduled by the session-level retry policy.",
            backend="cluster",
        )
        before = counter.value()
        with busy_session(retry_attempts=5, retry_base_delay=0.5) as session:
            blocker = session.submit(SPMM_EXPR, **spmm_operands)
            # The only admission slot is held: this submit is rejected
            # with ClusterBusyError, then retried after the blocker frees
            # the slot.
            victim = session.submit(SPMM_EXPR, **spmm_operands)
            result = victim.result(timeout=120)
            assert result.shape == (32, 8)
            np.testing.assert_allclose(result, blocker.result(timeout=120))
        assert counter.value() >= before + 1

    def test_exhausted_retries_deliver_the_last_error(
        self, spmm_operands, monkeypatch
    ):
        slow_down_executor(monkeypatch, 1.0)
        with busy_session(
            retry_attempts=2, retry_base_delay=0.01, retry_max_delay=0.02
        ) as session:
            blocker = session.submit(SPMM_EXPR, **spmm_operands)
            victim = session.submit(SPMM_EXPR, **spmm_operands)
            # Both attempts land while the blocker still owns the slot.
            error = victim.exception(timeout=60)
            assert isinstance(error, ClusterBusyError)
            assert blocker.result(timeout=120).shape == (32, 8)
            # The retry bookkeeping is cleaned up with the future.
            assert not session._retry_states
            assert not session._pending_retries

    def test_close_cancels_pending_retries_promptly(
        self, spmm_operands, monkeypatch
    ):
        slow_down_executor(monkeypatch, 1.0)
        session = busy_session(
            retry_attempts=3, retry_base_delay=5.0, retry_max_delay=15.0
        )
        blocker = session.submit(SPMM_EXPR, **spmm_operands)
        victim = session.submit(SPMM_EXPR, **spmm_operands)
        # The victim's retry timer is armed 5-15 s out; close() must not
        # wait for it — it claims the timer and delivers the last failure.
        started = time.monotonic()
        session.close()
        assert isinstance(victim.exception(timeout=5), ClusterBusyError)
        assert blocker.done()
        # Well under the armed retry delay: close() didn't sleep it out.
        assert time.monotonic() - started < 4.0

    def test_retry_disabled_by_default(self, spmm_operands):
        with busy_session() as session:
            assert session._retry is None


class TestFailover:
    def test_unhealthy_cluster_routes_new_submits_to_fallback(self, spmm_operands):
        config = ServeConfig(
            workers=2,
            worker_threads=1,
            coalesce=False,
            restart_budget=0,
            health_interval=0.05,
            failover="threaded",
            failover_floor=2,
        )
        with Session("cluster", config=config) as session:
            warm = session.submit(SPMM_EXPR, **spmm_operands).result(timeout=120)
            assert warm.shape == (32, 8)
            assert session.health()["failover"] == {
                "backend": "threaded",
                "floor": 2,
                "active": False,
            }

            # restart_budget=0: the first crash permanently retires the
            # slot, dropping the cluster below the floor of 2.
            os.kill(session._backend.worker_pids[0], signal.SIGKILL)
            deadline = time.monotonic() + 60
            while session._backend.healthy_worker_count >= 2:
                assert time.monotonic() < deadline, "slot was never retired"
                time.sleep(0.02)

            counter = get_registry().counter(
                "repro_failover_submits_total",
                "Submits routed to the warm fallback backend while the "
                "primary was unhealthy.",
                backend="cluster",
            )
            before = counter.value()
            future = session.submit(SPMM_EXPR, **spmm_operands)
            assert future._backend_tag == "fallback"
            np.testing.assert_allclose(future.result(timeout=120), warm)
            assert counter.value() == before + 1
            assert session.health()["failover"]["active"] is True

    def test_healthy_cluster_never_uses_the_fallback(self, spmm_operands):
        config = ServeConfig(
            workers=1,
            worker_threads=1,
            coalesce=False,
            failover="threaded",
            failover_floor=1,
        )
        with Session("cluster", config=config) as session:
            future = session.submit(SPMM_EXPR, **spmm_operands)
            assert future._backend_tag == "primary"
            assert future.result(timeout=120).shape == (32, 8)

    def test_failover_is_cluster_only(self):
        with pytest.raises(ValueError, match="failover"):
            ServeConfig(failover="threaded").validate("threaded")
