"""The unified error taxonomy and submit_many atomicity under admission.

Every serving failure derives from :class:`repro.ServeError`, surfaces
uniformly through :meth:`Future.result`, and a mid-batch admission
rejection hands the caller the partial ticket list instead of leaking
in-flight work.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro import (
    ClusterBusyError,
    FutureCancelledError,
    ServeError,
    SessionClosedError,
    WorkerCrashedError,
)
from repro.errors import ReproError
from repro.serve import ServeConfig, ServeConfigError, Session

SPMM_EXPR = "C[m,n] += A[m,k] * B[k,n]"


def test_taxonomy_roots_and_compatibility():
    for exc_type in (
        ClusterBusyError,
        WorkerCrashedError,
        FutureCancelledError,
        SessionClosedError,
        ServeConfigError,
    ):
        assert issubclass(exc_type, ServeError)
        assert issubclass(exc_type, ReproError)
    # Pre-taxonomy code caught these as RuntimeError; that must keep working.
    assert issubclass(ClusterBusyError, RuntimeError)
    assert issubclass(WorkerCrashedError, RuntimeError)
    assert issubclass(SessionClosedError, RuntimeError)
    assert issubclass(ServeConfigError, ValueError)
    # And all of them are importable from the package root.
    for name in (
        "ServeError",
        "ClusterBusyError",
        "WorkerCrashedError",
        "FutureCancelledError",
        "SessionClosedError",
    ):
        assert name in repro.__all__


def test_legacy_import_locations_still_resolve():
    from repro.cluster.admission import ClusterBusyError as from_admission
    from repro.cluster.server import WorkerCrashedError as from_server

    assert from_admission is ClusterBusyError
    assert from_server is WorkerCrashedError


def test_cluster_enqueue_many_returns_partial_tickets(spmm_operands):
    """A mid-batch admission rejection carries the already-issued tickets."""
    from repro.cluster.server import ClusterServer

    with ClusterServer(
        num_workers=1, worker_threads=1, admission="reject", max_inflight=1
    ) as cluster:
        requests = [(SPMM_EXPR, dict(spmm_operands))] * 12
        with pytest.raises(ClusterBusyError) as excinfo:
            cluster.enqueue_many(requests)
        partial = excinfo.value.partial_tickets
        assert len(partial) >= 1  # the accepted prefix is returned, not leaked
        assert excinfo.value.retry_after > 0
        # The partial batch is collectable: nothing is stranded in flight.
        results = cluster.collect(list(partial), timeout=120)
        assert all(result.ok for result in results)


def test_session_submit_many_fails_only_the_rejected_tail(spmm_operands):
    """Through futures, admission rejections are per-request, not batch-fatal."""
    config = ServeConfig(workers=1, worker_threads=1, admission="reject", max_inflight=1)
    with Session(backend="cluster", config=config) as session:
        futures = session.submit_many([(SPMM_EXPR, dict(spmm_operands))] * 12)
        assert len(futures) == 12  # no mid-iteration raise
        outcomes = {"ok": 0, "busy": 0}
        for future in futures:
            try:
                assert future.result(timeout=120).shape == (32, 8)
                outcomes["ok"] += 1
            except ClusterBusyError as error:
                assert error.retry_after > 0
                outcomes["busy"] += 1
        assert outcomes["ok"] >= 1
        assert outcomes["busy"] >= 1
        assert outcomes["ok"] + outcomes["busy"] == 12


def test_future_raises_serve_errors_uniformly(spmm_operands):
    """One except-clause covers every backend's tier failures."""
    config = ServeConfig(workers=1, worker_threads=1, admission="reject", max_inflight=1)
    with Session(backend="cluster", config=config) as session:
        futures = session.submit_many([(SPMM_EXPR, dict(spmm_operands))] * 12)
        caught = []
        for future in futures:
            try:
                future.result(timeout=120)
            except ServeError as error:
                caught.append(error)
        assert caught  # at least one rejection
        assert all(isinstance(error, ClusterBusyError) for error in caught)


def test_closed_server_raises_session_closed_error(spmm_operands):
    from repro.runtime.server import InsumServer

    server = InsumServer(num_workers=1)
    server.close()
    with pytest.raises(SessionClosedError):
        server.enqueue(SPMM_EXPR, **spmm_operands)
    # SessionClosedError is still a RuntimeError mentioning "closed".
    with pytest.raises(RuntimeError, match="closed"):
        server.enqueue(SPMM_EXPR, **spmm_operands)


def test_worker_error_types_survive_the_future_path(spmm_operands):
    """Non-serve errors (bad requests) keep their concrete type via futures."""
    with Session(backend="inline") as session:
        future = session.submit(SPMM_EXPR, A=spmm_operands["A"], B=np.zeros((5, 2)))
        error = None
        try:
            future.result(timeout=30)
        except ReproError as caught:
            error = caught
        assert error is not None and not isinstance(error, ServeError)
