"""Deadline enforcement matrix: every stage, on every backend.

Three expiry points — already expired at submit, expired while queued
behind slower work, and expired mid-execution — each resolving the
future with :class:`~repro.errors.DeadlineExceededError` instead of
hanging or silently delivering a late result.  Execution is slowed by
monkeypatching :meth:`RequestExecutor.execute`; the cluster backend
inherits the patch through fork at worker spawn.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.errors import DeadlineExceededError
from repro.formats import GroupCOO
from repro.obs.metrics import get_registry
from repro.runtime.server import RequestExecutor
from repro.serve import ServeConfig, Session

SPMM_EXPR = "C[m,n] += A[m,k] * B[k,n]"

BACKENDS = ("inline", "threaded", "cluster")

#: How long the slowed executor holds each request (seconds).
EXECUTE_DELAY = 0.4


@pytest.fixture(scope="module")
def operands():
    rng = np.random.default_rng(17)
    fmt = GroupCOO.from_dense(
        np.where(rng.random((24, 32)) < 0.15, rng.standard_normal((24, 32)), 0.0),
        group_size=4,
    )
    return dict(A=fmt, B=rng.standard_normal((32, 4)))


def make_session(backend: str) -> Session:
    if backend == "inline":
        return Session("inline")
    return Session(backend, config=ServeConfig(workers=1, coalesce=False))


def slow_down_executor(monkeypatch, delay: float = EXECUTE_DELAY) -> None:
    """Make every execution take ``delay`` seconds (fork-inherited)."""
    original = RequestExecutor.execute

    def slow_execute(self, expression, operands):
        time.sleep(delay)
        return original(self, expression, operands)

    monkeypatch.setattr(RequestExecutor, "execute", slow_execute)


class TestExpiredBeforeDispatch:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_zero_budget_is_rejected_without_executing(self, backend, operands):
        with make_session(backend) as session:
            future = session.submit(SPMM_EXPR, deadline_ms=0, **operands)
            with pytest.raises(DeadlineExceededError):
                future.result(timeout=30)
            # The session still serves afterwards — shedding one expired
            # request costs nothing.
            result = session.submit(SPMM_EXPR, **operands).result(timeout=60)
            assert result.shape == (24, 4)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_generous_deadline_does_not_interfere(self, backend, operands):
        with make_session(backend) as session:
            result = session.submit(SPMM_EXPR, deadline_ms=60_000, **operands).result(
                timeout=60
            )
            assert result.shape == (24, 4)


class TestExpiredInQueue:
    @pytest.mark.parametrize("backend", ("threaded", "cluster"))
    def test_queued_request_is_shed_not_executed(self, backend, operands, monkeypatch):
        slow_down_executor(monkeypatch)
        with make_session(backend) as session:
            blocker = session.submit(SPMM_EXPR, **operands)
            victim = session.submit(SPMM_EXPR, deadline_ms=100, **operands)
            with pytest.raises(DeadlineExceededError):
                victim.result(timeout=60)
            assert blocker.result(timeout=120).shape == (24, 4)

    def test_threaded_queue_expiry_names_the_stage(self, operands, monkeypatch):
        slow_down_executor(monkeypatch)
        with make_session("threaded") as session:
            session.submit(SPMM_EXPR, **operands)
            victim = session.submit(SPMM_EXPR, deadline_ms=100, **operands)
            error = victim.exception(timeout=60)
            assert isinstance(error, DeadlineExceededError)
            assert "(queue)" in str(error)


class TestExpiredMidExecute:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_late_completion_converts_to_deadline_error(
        self, backend, operands, monkeypatch
    ):
        slow_down_executor(monkeypatch)
        with make_session(backend) as session:
            future = session.submit(SPMM_EXPR, deadline_ms=150, **operands)
            with pytest.raises(DeadlineExceededError):
                future.result(timeout=60)

    def test_inline_mid_execute_stage_label(self, operands, monkeypatch):
        slow_down_executor(monkeypatch)
        with make_session("inline") as session:
            future = session.submit(SPMM_EXPR, deadline_ms=150, **operands)
            error = future.exception(timeout=60)
            assert isinstance(error, DeadlineExceededError)
            assert "(execute)" in str(error)


class TestDeadlineObservability:
    def test_expired_requests_are_counted_per_tier(self, operands, monkeypatch):
        slow_down_executor(monkeypatch)
        registry = get_registry()
        counter = registry.counter(
            "repro_deadline_expired_total",
            "Requests that exceeded their deadline, by serving tier.",
            backend="threaded",
        )
        before = counter.value()
        with make_session("threaded") as session:
            session.submit(SPMM_EXPR, **operands)
            victim = session.submit(SPMM_EXPR, deadline_ms=100, **operands)
            with pytest.raises(DeadlineExceededError):
                victim.result(timeout=60)
        assert counter.value() >= before + 1

    def test_deadline_error_is_a_serve_error_not_a_timeout(self):
        from repro.errors import ReproError, ServeError

        assert issubclass(DeadlineExceededError, ServeError)
        assert issubclass(DeadlineExceededError, ReproError)
        assert issubclass(DeadlineExceededError, RuntimeError)
        # Deliberately NOT a TimeoutError: Future.result(timeout=...)
        # raising TimeoutError means "you stopped waiting", while a
        # deadline failure means "the request itself is dead".
        assert not issubclass(DeadlineExceededError, TimeoutError)
