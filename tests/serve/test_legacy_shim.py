"""The legacy ticket API: still working, equivalent, and loudly deprecated.

The repository itself no longer calls ``submit``/``submit_many``/
``gather`` (the pytest configuration turns the ``legacy ticket API:``
warning into an error everywhere else); this module is the one place
that exercises the shims on purpose, under ``pytest.warns``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.runtime.server import InsumServer
from repro.serve import ServeConfig, Session

SPMM_EXPR = "C[m,n] += A[m,k] * B[k,n]"

LEGACY = "legacy ticket API"


def test_submit_gather_still_work_and_warn(spmm_operands):
    with InsumServer(num_workers=2) as server:
        with pytest.warns(DeprecationWarning, match=LEGACY):
            ticket = server.submit(SPMM_EXPR, **spmm_operands)
        with pytest.warns(DeprecationWarning, match=LEGACY):
            (result,) = server.gather([ticket])
    assert result.ok
    assert result.unwrap().shape == (32, 8)


def test_submit_many_warns_once_per_call(spmm_operands):
    with InsumServer(num_workers=2) as server:
        with pytest.warns(DeprecationWarning, match=LEGACY) as captured:
            tickets = server.submit_many([(SPMM_EXPR, dict(spmm_operands))] * 3)
        legacy_warnings = [w for w in captured if LEGACY in str(w.message)]
        assert len(legacy_warnings) == 1  # the shim warns; the loop is internal
        with pytest.warns(DeprecationWarning, match=LEGACY):
            results = server.gather(tickets)
    assert all(result.ok for result in results)


def test_shim_results_match_session_futures(serve_workload):
    """Old tickets and new futures produce the same bits for one workload."""
    config = ServeConfig(workers=2, coalesce=False)
    with InsumServer(num_workers=2, coalesce=False) as server:
        with pytest.warns(DeprecationWarning, match=LEGACY):
            tickets = server.submit_many(serve_workload)
        with pytest.warns(DeprecationWarning, match=LEGACY):
            legacy_results = server.gather(tickets)
    with Session(backend="threaded", config=config) as session:
        futures = session.submit_many(serve_workload)
        modern_results = [future.result(timeout=60) for future in futures]
    assert len(legacy_results) == len(modern_results)
    for legacy, modern in zip(legacy_results, modern_results):
        assert np.array_equal(np.asarray(legacy.unwrap()), np.asarray(modern))


def test_cluster_shims_warn_and_work(spmm_operands):
    from repro.cluster.server import ClusterServer

    with ClusterServer(num_workers=1, worker_threads=1) as cluster:
        with pytest.warns(DeprecationWarning, match=LEGACY):
            ticket = cluster.submit(SPMM_EXPR, **spmm_operands)
        with pytest.warns(DeprecationWarning, match=LEGACY):
            (result,) = cluster.gather([ticket], timeout=120)
    assert result.ok
    assert result.unwrap().shape == (32, 8)


def test_run_batch_is_not_deprecated(spmm_operands, recwarn):
    """run_batch exposes no tickets and stays warning-free."""
    with InsumServer(num_workers=2) as server:
        results = server.run_batch([(SPMM_EXPR, dict(spmm_operands))] * 4)
    assert all(result.ok for result in results)
    assert not [w for w in recwarn if LEGACY in str(w.message)]
