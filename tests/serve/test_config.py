"""ServeConfig: per-backend validation and environment construction."""

from __future__ import annotations

import pytest

from repro.serve import ServeConfig, ServeConfigError, Session


def test_defaults_valid_on_every_backend():
    config = ServeConfig()
    for backend in ("inline", "threaded", "cluster"):
        config.validate(backend)  # must not raise


def test_unknown_backend_rejected():
    with pytest.raises(ServeConfigError, match="unknown backend"):
        ServeConfig().validate("gpu-farm")
    with pytest.raises(ServeConfigError, match="unknown backend"):
        Session(backend="gpu-farm")


@pytest.mark.parametrize(
    ("backend", "config", "field"),
    [
        ("inline", ServeConfig(workers=4), "workers"),
        ("inline", ServeConfig(coalesce=True), "coalesce"),
        ("inline", ServeConfig(max_inflight=10), "max_inflight"),
        ("threaded", ServeConfig(max_inflight=10), "max_inflight"),
        ("threaded", ServeConfig(worker_threads=2), "worker_threads"),
        ("threaded", ServeConfig(admission="reject"), "admission"),
        ("threaded", ServeConfig(heartbeat_timeout=5.0), "heartbeat_timeout"),
        ("cluster", ServeConfig(num_shards=2), "num_shards"),
    ],
)
def test_meaningless_combinations_rejected_not_ignored(backend, config, field):
    """A tier-inapplicable field raises and is named — never silently dropped."""
    with pytest.raises(ServeConfigError, match=field):
        config.validate(backend)


def test_validation_messages_name_every_offending_field():
    config = ServeConfig(workers=4, max_inflight=10, admission="reject")
    with pytest.raises(ServeConfigError) as excinfo:
        config.validate("inline")
    message = str(excinfo.value)
    assert "workers" in message and "max_inflight" in message and "admission" in message


def test_value_validation():
    with pytest.raises(ServeConfigError, match="workers"):
        ServeConfig(workers=0).validate("threaded")
    with pytest.raises(ServeConfigError, match="admission"):
        ServeConfig(admission="panic").validate("cluster")
    with pytest.raises(ServeConfigError, match="tune"):
        ServeConfig(tune="guess").validate("inline")


def test_resolved_workers_defaults():
    assert ServeConfig().resolved_workers("inline") == 1
    assert ServeConfig().resolved_workers("threaded") == 4
    assert ServeConfig().resolved_workers("cluster") == 2
    assert ServeConfig(workers=7).resolved_workers("threaded") == 7


def test_from_env_parses_typed_fields():
    config = ServeConfig.from_env(
        {
            "REPRO_SERVE_WORKERS": "8",
            "REPRO_SERVE_COALESCE": "off",
            "REPRO_SERVE_BLOCK_TIMEOUT": "2.5",
            "REPRO_SERVE_TUNE": "measure",
            "UNRELATED": "ignored",
        }
    )
    assert config.workers == 8
    assert config.coalesce is False
    assert config.block_timeout == 2.5
    assert config.tune == "measure"
    assert config.max_inflight is None  # unset stays at the tier default


@pytest.mark.parametrize("raw", ["1", "true", "Yes", "ON"])
def test_from_env_boolean_truthy(raw):
    assert ServeConfig.from_env({"REPRO_SERVE_AUTO_FORMAT": raw}).auto_format is True


def test_from_env_bad_value_raises():
    with pytest.raises(ServeConfigError, match="REPRO_SERVE_WORKERS"):
        ServeConfig.from_env({"REPRO_SERVE_WORKERS": "many"})
    with pytest.raises(ServeConfigError, match="REPRO_SERVE_COALESCE"):
        ServeConfig.from_env({"REPRO_SERVE_COALESCE": "maybe"})


def test_session_from_env_runs_a_request(spmm_operands):
    environ = {"REPRO_SERVE_BACKEND": "threaded", "REPRO_SERVE_WORKERS": "2"}
    with Session.from_env(environ) as session:
        assert session.backend_name == "threaded"
        assert session.config.workers == 2
        future = session.submit("C[m,n] += A[m,k] * B[k,n]", **spmm_operands)
        assert future.result(timeout=30).shape == (32, 8)


def test_session_from_env_rejects_cross_tier_config():
    environ = {"REPRO_SERVE_BACKEND": "threaded", "REPRO_SERVE_MAX_INFLIGHT": "16"}
    with pytest.raises(ServeConfigError, match="max_inflight"):
        Session.from_env(environ)
