"""Shared fixtures for the serve-tier test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.formats import COO, GroupCOO
from repro.kernels import FullyConnectedTensorProduct

SPMM_EXPR = "C[m,n] += A[m,k] * B[k,n]"
SPMV_EXPR = "y[m] += A[m,k] * x[k]"


@pytest.fixture(scope="module")
def spmm_operands():
    """One small SpMM request: a GroupCOO pattern and a dense operand."""
    rng = np.random.default_rng(11)
    fmt = GroupCOO.from_dense(
        np.where(rng.random((32, 48)) < 0.1, rng.standard_normal((32, 48)), 0.0),
        group_size=4,
    )
    return dict(A=fmt, B=rng.standard_normal((48, 8)))


@pytest.fixture(scope="module")
def serve_workload():
    """A mixed workload (SpMM/SpMV/raw-indirect equivariant), 24 requests.

    Mirrors the cluster suite's mixed workload at serve-suite size: the
    backend parity test submits exactly this through all three backends
    and demands bitwise-identical outputs.
    """
    rng = np.random.default_rng(23)
    spmm = GroupCOO.from_dense(
        np.where(rng.random((48, 64)) < 0.08, rng.standard_normal((48, 64)), 0.0),
        group_size=4,
    )
    spmv = COO.from_dense(
        np.where(rng.random((40, 40)) < 0.1, rng.standard_normal((40, 40)), 0.0)
    )
    equivariant = FullyConnectedTensorProduct(l_max=1, channels=4)
    x, y, w = equivariant.random_inputs(batch=2, rng=rng)
    z = np.zeros((2, equivariant.slot_dimension, equivariant.channels))
    recipes = [
        (SPMM_EXPR, lambda: dict(A=spmm, B=rng.standard_normal((64, 8)))),
        (SPMV_EXPR, lambda: dict(A=spmv, x=rng.standard_normal(40))),
        (
            equivariant.expression,
            lambda: dict(Z=z.copy(), X=x, Y=y, W=w, **equivariant._grouped),
        ),
    ]
    pattern = [0, 0, 1, 0, 1, 2, 0, 1]
    return [
        (recipes[pattern[i % len(pattern)]][0], recipes[pattern[i % len(pattern)]][1]())
        for i in range(24)
    ]
