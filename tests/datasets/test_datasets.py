"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.datasets import (
    GRAPH_SPECS,
    SCENE_SPECS,
    build_kernel_map,
    clebsch_gordan,
    fully_connected_cg_tensor,
    generate_scene,
    list_graphs,
    list_scenes,
    load_graph_matrix,
    random_block_sparse_matrix,
    random_sparse_matrix,
    voxelize,
    wigner_3j,
)
from repro.datasets.clebsch_gordan import real_clebsch_gordan_block
from repro.errors import ShapeError


# -- random matrices -------------------------------------------------------------------
def test_random_sparse_matrix_density():
    matrix = random_sparse_matrix((200, 200), 0.1, rng=0)
    assert abs((matrix != 0).mean() - 0.1) < 0.03


def test_random_sparse_matrix_density_bounds():
    with pytest.raises(ShapeError):
        random_sparse_matrix((10, 10), 1.5)


def test_random_block_sparse_matrix_structure():
    matrix = random_block_sparse_matrix(64, (8, 8), 0.25, rng=1)
    blocks = matrix.reshape(8, 8, 8, 8).transpose(0, 2, 1, 3)
    nonzero_blocks = np.any(blocks != 0, axis=(2, 3))
    full_blocks = np.all(blocks != 0, axis=(2, 3))
    np.testing.assert_array_equal(nonzero_blocks, full_blocks)  # blocks are dense or empty


def test_random_block_sparse_matrix_validation():
    with pytest.raises(ShapeError):
        random_block_sparse_matrix(60, (32, 32), 0.1)


# -- graphs ----------------------------------------------------------------------------------
def test_graph_registry_has_fourteen_matrices():
    assert len(GRAPH_SPECS) == 14
    assert set(list_graphs()) == set(GRAPH_SPECS)


def test_graph_matrix_is_scaled_down():
    csr = load_graph_matrix("amazon0505", max_rows=1024)
    assert csr.shape[0] <= 1024
    spec = GRAPH_SPECS["amazon0505"]
    generated_degree = csr.nnz / csr.shape[0]
    assert generated_degree == pytest.approx(spec.average_degree, rel=0.5)


def test_graph_skew_property():
    skewed = load_graph_matrix("artist", max_rows=2048).row_occupancy()
    regular = load_graph_matrix("DD", max_rows=2048).row_occupancy()
    def skew(occ):
        return occ.max() / max(occ.mean(), 1)

    assert skew(skewed) > skew(regular)


def test_graph_reproducibility():
    first = load_graph_matrix("cora")
    second = load_graph_matrix("cora")
    np.testing.assert_array_equal(first.indices, second.indices)


def test_unknown_graph_raises():
    with pytest.raises(ShapeError):
        load_graph_matrix("not-a-graph")


# -- point clouds --------------------------------------------------------------------------------
def test_scene_registry():
    assert len(SCENE_SPECS) == 7
    assert "conferenceRoom" in list_scenes()


def test_scene_generation_and_voxelization():
    points = generate_scene("office", max_points=3000, rng=2)
    assert points.shape[1] == 3
    voxels = voxelize(points, 0.05)
    assert len(np.unique(voxels, axis=0)) == len(voxels)
    assert len(voxels) <= len(points)


def test_voxelize_validation():
    with pytest.raises(ShapeError):
        voxelize(np.zeros((5, 2)))
    with pytest.raises(ShapeError):
        voxelize(np.zeros((5, 3)), voxel_size=0.0)


def test_kernel_map_structure():
    points = generate_scene("pantry", max_points=800, rng=3)
    voxels = voxelize(points, 0.1)
    kernel_map = build_kernel_map(voxels, kernel_size=3)
    assert kernel_map.kernel_volume == 27
    # The centre offset maps every voxel to itself.
    centre = kernel_map.kernel_volume // 2
    assert len(kernel_map.pairs[centre]) == kernel_map.num_voxels
    assert kernel_map.total_pairs >= kernel_map.num_voxels
    arrays = kernel_map.to_coo_arrays()
    assert arrays["MAPX"].shape == arrays["MAPY"].shape == arrays["MAPZ"].shape
    grouped = kernel_map.to_grouped_arrays(group_size=4)
    assert grouped["MAPX"].shape[1] == 4
    assert grouped["MAPZ"].shape[0] == grouped["MAPX"].shape[0]


def test_kernel_map_validation():
    with pytest.raises(ShapeError):
        build_kernel_map(np.zeros((4, 2)))
    with pytest.raises(ShapeError):
        build_kernel_map(np.zeros((4, 3), dtype=np.int64), kernel_size=2)


def test_unknown_scene_raises():
    with pytest.raises(ShapeError):
        generate_scene("basement")


# -- Clebsch-Gordan ---------------------------------------------------------
def test_wigner_3j_selection_rules():
    assert wigner_3j(1, 1, 3, 0, 0, 0) == 0.0  # triangle inequality violated
    assert wigner_3j(1, 1, 2, 1, 1, 0) == 0.0  # m1 + m2 + m3 != 0
    assert wigner_3j(1, 1, 2, 0, 0, 0) == pytest.approx(np.sqrt(2 / 15))


def test_clebsch_gordan_orthogonality():
    # Sum over m1, m2 of CG^2 for fixed (j1, j2, j3) equals 2*j3 + 1... summed over m3.
    total = sum(
        clebsch_gordan(1, m1, 1, m2, 2, m1 + m2) ** 2
        for m1 in range(-1, 2)
        for m2 in range(-1, 2)
        if abs(m1 + m2) <= 2
    )
    assert total == pytest.approx(5.0)


def test_real_cg_block_is_real_and_orthogonal():
    block = real_clebsch_gordan_block(1, 1, 2)
    assert block.shape == (3, 3, 5)
    norms = np.einsum("ijk,ijl->kl", block, block)
    np.testing.assert_allclose(norms, np.eye(5) * norms[0, 0], atol=1e-10)


def test_forbidden_block_is_zero():
    assert not real_clebsch_gordan_block(0, 0, 2).any()


def test_fully_connected_cg_tensor_structure():
    cg = fully_connected_cg_tensor(2)
    assert cg.shape == (9, 9, 9, 15)
    assert cg.num_paths == 15
    assert 0 < cg.density < 0.2  # highly sparse
    arrays = cg.to_coo_arrays()
    assert len(arrays["CGV"]) == cg.nnz
    assert cg.slot_dimension() == 9


def test_cg_tensor_lmax_zero():
    cg = fully_connected_cg_tensor(0)
    assert cg.shape == (1, 1, 1, 1)
    assert cg.nnz == 1


def test_cg_tensor_negative_lmax():
    with pytest.raises(ShapeError):
        fully_connected_cg_tensor(-1)
