"""Open-loop runner behaviour: SLO accounting, verification, merging."""

import json

import pytest

from repro.obs.metrics import get_registry
from repro.replay import SLOTarget, read_trace, replay, replay_file, synthesize
from repro.serve import ServeConfig, Session


@pytest.fixture
def inline_session():
    session = Session("inline")
    yield session
    session.close()


class TestInlineReplay:
    def test_attains_and_verifies(self, small_trace, inline_session, seed):
        report = replay(small_trace, inline_session, time_scale=0.0)
        assert report.submitted == len(small_trace)
        assert report.completed == len(small_trace)
        assert report.failed == report.cancelled == 0
        assert report.attained
        assert report.digest_checked == len(small_trace)
        assert report.digest_mismatches == 0
        assert report.invariant_violations() == []
        assert report.seed == seed

    def test_per_tenant_breakdown_sums(self, small_trace, inline_session):
        report = replay(small_trace, inline_session, time_scale=0.0)
        assert set(report.per_tenant) == set(small_trace.tenants())
        assert sum(t["submitted"] for t in report.per_tenant.values()) == report.submitted

    def test_latency_summary_uses_canonical_percentiles(self, small_trace, inline_session):
        from repro.utils.timing import summarize

        report = replay(small_trace, inline_session, time_scale=0.0)
        recomputed = summarize(report.samples_ms)
        assert report.latency == recomputed

    def test_slo_breach_detected(self, seed, inline_session):
        # An impossible latency target: everything completes, nothing attains.
        trace = synthesize(
            "breach",
            seed=seed,
            num_records=8,
            slo=SLOTarget(latency_ms=1e-6, attainment_target=0.99),
        )
        report = replay(trace, inline_session, time_scale=0.0)
        assert report.completed == 8
        assert report.attainment == 0.0
        assert not report.attained
        assert report.invariant_violations() == []  # missing SLO is not a bug

    def test_paced_replay_respects_offsets(self, seed, inline_session):
        trace = synthesize("paced", seed=seed, num_records=6, rate_rps=200.0, arrival="uniform")
        report = replay(trace, inline_session, time_scale=1.0)
        # Five 5 ms gaps => at least 25 ms of wall time.
        assert report.wall_seconds >= 0.025
        assert report.attained

    def test_registry_counters_updated(self, small_trace, inline_session):
        registry = get_registry()
        counters = [
            registry.counter(
                "replay_requests_total", backend="inline", outcome="ok", tenant=tenant
            )
            for tenant in small_trace.tenants()
        ]
        before = sum(counter.value() for counter in counters)
        replay(small_trace, inline_session, time_scale=0.0)
        after = sum(counter.value() for counter in counters)
        assert after >= before + small_trace.header.records


class TestVerifyModes:
    def test_auto_skips_coalesced_backend(self, small_trace):
        session = Session("threaded", config=ServeConfig(workers=2))
        try:
            report = replay(small_trace, session, time_scale=0.0)
        finally:
            session.close()
        # Coalescing not explicitly disabled -> bit-exactness not promised.
        assert report.digest_checked == 0
        assert report.completed == len(small_trace)

    def test_auto_verifies_uncoalesced_threaded(self, small_trace):
        session = Session("threaded", config=ServeConfig(workers=2, coalesce=False))
        try:
            report = replay(small_trace, session, time_scale=0.0)
        finally:
            session.close()
        assert report.digest_checked == len(small_trace)
        assert report.digest_mismatches == 0

    def test_force_off(self, small_trace, inline_session):
        report = replay(small_trace, inline_session, time_scale=0.0, verify=False)
        assert report.digest_checked == 0

    def test_bad_verify_value(self, small_trace, inline_session):
        with pytest.raises(ValueError, match="verify"):
            replay(small_trace, inline_session, verify="maybe")


class TestMixedBackends:
    def test_split_trace_merges_with_stats_parity(self, small_trace):
        half = len(small_trace) // 2
        first, second = small_trace.subset(0, half), small_trace.subset(half)

        inline = Session("inline")
        threaded = Session("threaded", config=ServeConfig(workers=2, coalesce=False))
        try:
            report_a = replay(first, inline, time_scale=0.0)
            report_b = replay(second, threaded, time_scale=0.0)
            stats_a, stats_b = inline.stats(), threaded.stats()
        finally:
            inline.close()
            threaded.close()

        merged = report_a.merge(report_b)
        assert merged.submitted == len(small_trace)
        assert merged.backend == "inline+threaded"
        assert merged.invariant_violations() == []
        # The merged report must agree with the per-session ServeStats.
        assert merged.completed == stats_a.completed + stats_b.completed
        assert merged.failed == stats_a.failed + stats_b.failed
        assert merged.cancelled == stats_a.cancelled + stats_b.cancelled
        assert merged.submitted == stats_a.submitted + stats_b.submitted
        # Per-tenant totals survive the merge.
        assert sum(t["submitted"] for t in merged.per_tenant.values()) == merged.submitted


class TestReportArtifacts:
    def test_to_dict_and_save(self, small_trace, inline_session, tmp_path):
        report = replay(small_trace, inline_session, time_scale=0.0)
        path = report.save(tmp_path / "report.json")
        payload = json.loads(path.read_text())
        assert payload["slo_attainment"] == pytest.approx(report.attainment)
        assert payload["submitted"] == report.submitted
        assert payload["invariant_violations"] == []
        assert payload["latency_ms"]["p99"] >= payload["latency_ms"]["p50"]

    def test_summary_is_readable(self, small_trace, inline_session):
        report = replay(small_trace, inline_session, time_scale=0.0)
        text = report.summary()
        assert "ATTAINED" in text
        assert "p50/p95/p99" in text


class TestReplayFile:
    def test_round_trip_through_file(self, small_trace, tmp_path):
        path = small_trace.save(tmp_path / "trace.jsonl")
        report = replay_file(path, backend="inline", time_scale=0.0)
        assert report.attained
        assert report.digest_checked == len(small_trace)

    def test_refresh_digests_recomputes(self, small_trace, tmp_path):
        path = small_trace.save(tmp_path / "trace.jsonl")
        # Corrupt the stored digests, as a trace from another machine
        # (different BLAS) effectively is; refresh must fix them.
        doctored = read_trace(path)
        for record in doctored.records:
            record.digest = "sha256:" + "0" * 64
        doctored.save(path)
        report = replay_file(path, backend="inline", time_scale=0.0, refresh_digests=True)
        assert report.digest_mismatches == 0
        assert report.digest_checked == len(small_trace)
