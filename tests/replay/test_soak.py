"""Fault-injection soak suite over the cluster backend.

Each test replays a seeded trace under a deterministic fault schedule
and asserts the conservation invariants the serving stack promises:
every submitted request is accounted for exactly once
(completed + failed + cancelled == submitted — nothing lost, nothing
duplicated), every checked result digest matches, and the cluster
leaves no shared-memory segment behind.  Reports are persisted into
``REPLAY_REPORT_DIR`` (when set) so CI uploads them on pass and fail.
"""

import pytest

from repro.cluster import segment_exists
from repro.replay import FaultInjector, FaultSchedule, replay, synthesize
from repro.serve import ServeConfig, Session

#: Seeded runs the full-catalogue soak performs (acceptance: 10/10).
SOAK_RUNS = 10

#: Small ring so the oversized-operand fault actually exceeds the
#: payload budget (half the ring) and takes the fallback path.
SOAK_RING_CAPACITY = 256 * 1024


def cluster_session() -> Session:
    """A 2-worker uncoalesced cluster session with deterministic rejects."""
    config = ServeConfig(
        workers=2,
        coalesce=False,
        admission="reject",
        ring_capacity=SOAK_RING_CAPACITY,
    )
    return Session("cluster", config=config)


def run_fault(trace, kinds, *, oversized_elements=1 << 15):
    """Replay ``trace`` under the given fault kinds; return (report, stats)."""
    schedule = FaultSchedule.generate(trace.seed, len(trace), kinds=kinds)
    injector = FaultInjector(schedule, oversized_elements=oversized_elements)
    session = cluster_session()
    segments = list(session._backend.segment_names)
    try:
        report = replay(trace, session, time_scale=0.0, injector=injector)
        stats = session.stats()
    finally:
        session.close()
    leaked = [name for name in segments if segment_exists(name)]
    assert leaked == [], f"leaked shm segments: {leaked}"
    assert injector.skipped == [], f"faults not applied: {injector.skipped}"
    return report, stats


def assert_sound(report):
    """The invariants every soak run must satisfy, fault or no fault."""
    assert report.invariant_violations() == []
    assert report.completed + report.failed + report.cancelled == report.submitted
    assert len(report.outcomes) == report.submitted
    assert report.digest_mismatches == 0
    assert report.injected_failures == 0


class TestIndividualFaults:
    def test_worker_kill_restarts_and_requeues(self, seed, report_sink):
        trace = synthesize("soak-kill", seed=seed, num_records=20, rate_rps=400.0)
        report, stats = run_fault(trace, kinds=("worker_kill",))
        report_sink(report)
        assert_sound(report)
        assert stats.restarts >= 1
        # Every stranded request was requeued and completed: nothing lost.
        assert report.completed == report.submitted

    def test_admission_saturation_rejects_deterministically(self, seed, report_sink):
        trace = synthesize("soak-admit", seed=seed, num_records=20, rate_rps=400.0)
        report, stats = run_fault(trace, kinds=("admission_saturation",))
        report_sink(report)
        assert_sound(report)
        assert report.rejected >= 1
        assert stats.rejected >= 1
        # A rejection is failed, never lost.
        assert report.failed >= report.rejected

    def test_oversized_operand_takes_fallback_path(self, seed, report_sink):
        trace = synthesize("soak-oversize", seed=seed, num_records=20, rate_rps=400.0)
        report, _ = run_fault(
            trace, kinds=("oversized_operand",), oversized_elements=1 << 15
        )
        report_sink(report)
        assert_sound(report)
        assert report.injected == 1
        assert report.injected_failures == 0  # fallback produced the right answer

    def test_value_mutation_is_reshipped_not_stale(self, seed, report_sink):
        trace = synthesize("soak-mutate", seed=seed, num_records=20, rate_rps=400.0)
        report, _ = run_fault(trace, kinds=("value_mutation",))
        report_sink(report)
        assert_sound(report)
        # Digest verification is the teeth here: a stale identity-cache
        # hit after an in-place refill would produce a mismatch.
        assert report.digest_checked == report.completed
        assert report.digest_mismatches == 0


class TestFullCatalogueSoak:
    @pytest.mark.parametrize("run", range(SOAK_RUNS))
    def test_soak_run(self, run, seed, report_sink):
        run_seed = seed * 1000 + run
        trace = synthesize(
            f"soak-{run}",
            seed=run_seed,
            num_records=20,
            rate_rps=400.0,
            arrival="poisson" if run % 2 == 0 else "onoff",
            on_ms=15.0,
            off_ms=15.0,
        )
        report, stats = run_fault(
            trace,
            kinds=("worker_kill", "admission_saturation", "oversized_operand", "value_mutation"),
        )
        report_sink(report, label=f"seed{run_seed}")
        assert_sound(report)
        # Cross-check the replay ledger against the backend's own stats:
        # the backend saw every request the replayer submitted.
        assert stats.submitted >= report.submitted
        assert stats.completed + stats.failed + stats.cancelled == stats.submitted


class TestNoFaultAttainment:
    def test_cluster_attains_slo_at_smoke_load(self, seed, report_sink):
        trace = synthesize("smoke-attain", seed=seed, num_records=24, rate_rps=200.0)
        session = Session("cluster", config=ServeConfig(workers=2, coalesce=False))
        try:
            report = replay(trace, session, time_scale=1.0)
        finally:
            session.close()
        report_sink(report)
        assert_sound(report)
        assert report.attained, report.summary()
        assert report.attainment >= 0.99
