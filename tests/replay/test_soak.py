"""Fault-injection soak suite over the cluster backend.

Each test replays a seeded trace under a deterministic fault schedule
and asserts the conservation invariants the serving stack promises:
every submitted request is accounted for exactly once
(completed + failed + cancelled == submitted — nothing lost, nothing
duplicated), every checked result digest matches, and the cluster
leaves no shared-memory segment behind.  Reports are persisted into
``REPLAY_REPORT_DIR`` (when set) so CI uploads them on pass and fail.
"""

import pytest

from repro.cluster import segment_exists
from repro.replay import FAULT_KINDS, FaultInjector, FaultSchedule, replay, synthesize
from repro.serve import ServeConfig, Session

#: Seeded runs the full-catalogue soak performs (acceptance: 10/10).
SOAK_RUNS = 10

#: Small ring so the oversized-operand fault actually exceeds the
#: payload budget (half the ring) and takes the fallback path.
SOAK_RING_CAPACITY = 256 * 1024

#: Session knobs for runs that include the resilience fault kinds:
#: a small restart budget so ``crash_loop_worker`` exhausts it quickly,
#: a fast monitor, a warm threaded fallback so the replay keeps
#: completing work after ``control_thread_exception`` kills the primary
#: control plane, and session-level retries so transient crash give-ups
#: and busy rejections resubmit (through the fallback once the primary
#: is below its floor) instead of surfacing as failures.
RESILIENT_OVERRIDES = dict(
    restart_budget=1,
    health_interval=0.1,
    failover="threaded",
    failover_floor=1,
    retry_attempts=3,
    retry_base_delay=0.05,
    retry_max_delay=0.5,
)


def cluster_session(**overrides) -> Session:
    """A 2-worker uncoalesced cluster session with deterministic rejects."""
    fields = dict(
        workers=2,
        coalesce=False,
        admission="reject",
        ring_capacity=SOAK_RING_CAPACITY,
    )
    fields.update(overrides)
    return Session("cluster", config=ServeConfig(**fields))


def run_fault(trace, kinds, *, oversized_elements=1 << 15, overrides=None, inspect=None):
    """Replay ``trace`` under the given fault kinds; return (report, stats).

    ``overrides`` feeds extra :class:`ServeConfig` fields to the session;
    ``inspect`` is called with the live session after the replay (before
    close) so a test can examine supervisor or health state.
    """
    schedule = FaultSchedule.generate(trace.seed, len(trace), kinds=kinds)
    injector = FaultInjector(schedule, oversized_elements=oversized_elements)
    session = cluster_session(**(overrides or {}))
    segments = list(session._backend.segment_names)
    try:
        report = replay(trace, session, time_scale=0.0, injector=injector)
        stats = session.stats()
        if inspect is not None:
            inspect(session)
    finally:
        session.close()
    leaked = [name for name in segments if segment_exists(name)]
    assert leaked == [], f"leaked shm segments: {leaked}"
    assert injector.skipped == [], f"faults not applied: {injector.skipped}"
    return report, stats


def assert_sound(report):
    """The invariants every soak run must satisfy, fault or no fault."""
    assert report.invariant_violations() == []
    assert report.completed + report.failed + report.cancelled == report.submitted
    assert len(report.outcomes) == report.submitted
    assert report.digest_mismatches == 0
    assert report.injected_failures == 0


class TestIndividualFaults:
    def test_worker_kill_restarts_and_requeues(self, seed, report_sink):
        trace = synthesize("soak-kill", seed=seed, num_records=20, rate_rps=400.0)
        report, stats = run_fault(trace, kinds=("worker_kill",))
        report_sink(report)
        assert_sound(report)
        assert stats.restarts >= 1
        # Every stranded request was requeued and completed: nothing lost.
        assert report.completed == report.submitted

    def test_admission_saturation_rejects_deterministically(self, seed, report_sink):
        trace = synthesize("soak-admit", seed=seed, num_records=20, rate_rps=400.0)
        report, stats = run_fault(trace, kinds=("admission_saturation",))
        report_sink(report)
        assert_sound(report)
        assert report.rejected >= 1
        assert stats.rejected >= 1
        # A rejection is failed, never lost.
        assert report.failed >= report.rejected

    def test_oversized_operand_takes_fallback_path(self, seed, report_sink):
        trace = synthesize("soak-oversize", seed=seed, num_records=20, rate_rps=400.0)
        report, _ = run_fault(
            trace, kinds=("oversized_operand",), oversized_elements=1 << 15
        )
        report_sink(report)
        assert_sound(report)
        assert report.injected == 1
        assert report.injected_failures == 0  # fallback produced the right answer

    def test_value_mutation_is_reshipped_not_stale(self, seed, report_sink):
        trace = synthesize("soak-mutate", seed=seed, num_records=20, rate_rps=400.0)
        report, _ = run_fault(trace, kinds=("value_mutation",))
        report_sink(report)
        assert_sound(report)
        # Digest verification is the teeth here: a stale identity-cache
        # hit after an in-place refill would produce a mismatch.
        assert report.digest_checked == report.completed
        assert report.digest_mismatches == 0

    def test_control_thread_death_fails_over_not_hangs(self, seed, report_sink):
        trace = synthesize("soak-control", seed=seed, num_records=20, rate_rps=400.0)
        report, stats = run_fault(
            trace,
            kinds=("control_thread_exception",),
            overrides=dict(failover="threaded", failover_floor=1),
        )
        report_sink(report)
        assert_sound(report)
        # Everything resolved (soundness above proves no hangs), and the
        # records submitted after the fault were served by the fallback:
        # the primary never saw the whole trace.
        assert report.completed >= 1
        assert stats.submitted < report.submitted

    def test_crash_loop_exhausts_the_restart_budget(self, seed, report_sink):
        trace = synthesize("soak-crashloop", seed=seed, num_records=20, rate_rps=400.0)
        dead = []

        def inspect(session):
            dead.extend(session._backend.supervisor.dead_workers)

        report, _ = run_fault(
            trace,
            kinds=("crash_loop_worker",),
            overrides=dict(restart_budget=1, health_interval=0.1),
            inspect=inspect,
        )
        report_sink(report)
        assert_sound(report)
        assert dead == [0]
        # The surviving slot carried the rest of the trace: nothing lost.
        assert report.completed >= 1

    def test_deadline_storm_sheds_without_losing_requests(self, seed, report_sink):
        trace = synthesize("soak-storm", seed=seed, num_records=20, rate_rps=400.0)
        report, _ = run_fault(trace, kinds=("deadline_storm",))
        report_sink(report)
        assert_sound(report)
        # The zero-budget window produced deadline outcomes, not losses.
        assert report.deadline_exceeded >= 1
        assert report.failed >= report.deadline_exceeded


class TestFullCatalogueSoak:
    @pytest.mark.parametrize("run", range(SOAK_RUNS))
    def test_soak_run(self, run, seed, report_sink):
        run_seed = seed * 1000 + run
        trace = synthesize(
            f"soak-{run}",
            seed=run_seed,
            num_records=20,
            rate_rps=400.0,
            arrival="poisson" if run % 2 == 0 else "onoff",
            on_ms=15.0,
            off_ms=15.0,
        )
        report, stats = run_fault(
            trace, kinds=FAULT_KINDS, overrides=RESILIENT_OVERRIDES
        )
        report_sink(report, label=f"seed{run_seed}")
        assert_sound(report)
        # Cross-check the replay ledger against the primary backend's own
        # stats.  After control_thread_exception the fallback serves the
        # tail, so the primary may have seen fewer submits than the
        # replayer made — but every one it saw is accounted for.
        assert stats.submitted <= report.submitted
        assert stats.completed + stats.failed + stats.cancelled == stats.submitted


class TestNoFaultAttainment:
    def test_cluster_attains_slo_at_smoke_load(self, seed, report_sink):
        trace = synthesize("smoke-attain", seed=seed, num_records=24, rate_rps=200.0)
        session = Session("cluster", config=ServeConfig(workers=2, coalesce=False))
        try:
            report = replay(trace, session, time_scale=1.0)
        finally:
            session.close()
        report_sink(report)
        assert_sound(report)
        assert report.attained, report.summary()
        assert report.attainment >= 0.99


class TestFailoverAttainment:
    def test_degraded_cluster_holds_slo_through_failover(self, report_sink):
        """Acceptance: one slot permanently dead, attainment stays >= 0.95.

        ``restart_budget=0`` retires a worker slot on its first crash;
        with ``failover_floor=2`` the session then routes every new
        submit through the warm threaded fallback, and the committed
        smoke trace must still replay at >= 0.95 SLO attainment.
        """
        import os
        import signal
        import time
        from pathlib import Path

        from repro.replay import read_trace

        trace_path = (
            Path(__file__).resolve().parents[2]
            / "benchmarks"
            / "traces"
            / "mixed_smoke.jsonl"
        )
        trace = read_trace(trace_path)
        trace.refresh_digests()
        config = ServeConfig(
            workers=2,
            worker_threads=1,
            coalesce=False,
            restart_budget=0,
            health_interval=0.1,
            failover="threaded",
            failover_floor=2,
        )
        session = Session("cluster", config=config)
        try:
            backend = session._backend
            os.kill(backend.worker_pids[0], signal.SIGKILL)
            deadline = time.monotonic() + 60
            while backend.healthy_worker_count >= 2:
                assert time.monotonic() < deadline, "slot was never retired"
                time.sleep(0.02)
            assert session.health()["failover"]["active"] is True
            report = replay(trace, session, time_scale=1.0)
        finally:
            session.close()
        report_sink(report, label="failover")
        assert_sound(report)
        assert report.attainment >= 0.95, report.summary()
