"""Property-based tests (seeded, stdlib-only) for the trace codec.

Three properties pin the ``repro-trace/1`` format down: randomly
generated records survive a save/load round trip bit-for-bit; unknown
fields anywhere in the file are tolerated *and preserved*; and the
operand digest depends only on the logical matrix, not the sparse
format it ships in.
"""

import json

import numpy as np
import pytest

from repro.formats import BCSR, COO, CSR, ELL, GroupCOO
from repro.replay import (
    ARRIVALS,
    REGIMES,
    SCHEMA,
    SLOTarget,
    TraceFormatError,
    TraceHeader,
    TraceMaterializer,
    TraceRecord,
    WorkloadTrace,
    digest_array,
    digest_operands,
    read_trace,
    synthesize,
    synthesize_regime,
    write_trace,
)
from repro.utils.rng import rng

NUM_RANDOM_CASES = 25


def random_record(generator) -> TraceRecord:
    """One random-but-valid trace record (the property generator)."""
    tenant = f"tenant-{int(generator.integers(0, 5))}"
    regime = REGIMES[int(generator.integers(0, len(REGIMES)))]
    shape = [int(generator.integers(8, 64)), int(generator.integers(8, 64))]
    record = TraceRecord(
        offset_ms=float(np.round(generator.uniform(0, 5e3), 4)),
        tenant=tenant,
        expression="C[m,n] += A[m,k] * B[k,n]",
        operands={
            "A": {
                "kind": "sparse",
                "regime": regime,
                "shape": shape,
                "density": float(np.round(generator.uniform(0.01, 0.3), 3)),
                "format": "coo",
                "pattern_seed": int(generator.integers(0, 100)),
                "value_seed": int(generator.integers(0, 100)),
            },
            "B": {
                "kind": "dense",
                "shape": [shape[1], int(generator.integers(1, 16))],
                "value_seed": int(generator.integers(0, 1000)),
            },
        },
        digest=f"sha256:{int(generator.integers(0, 2**32)):064x}",
        operand_digest=f"sha256:{int(generator.integers(0, 2**32)):064x}",
    )
    if generator.random() < 0.5:
        record.extras["future_field"] = int(generator.integers(0, 10))
    return record


class TestRoundTrip:
    def test_random_records_round_trip(self, tmp_path, seed):
        generator = rng(seed, "codec-roundtrip")
        for case in range(NUM_RANDOM_CASES):
            records = [random_record(generator) for _ in range(int(generator.integers(1, 8)))]
            records.sort(key=lambda record: record.offset_ms)
            header = TraceHeader(name=f"case-{case}", seed=seed, slo=SLOTarget(100.0, 0.95))
            trace = WorkloadTrace(header, records)
            path = write_trace(tmp_path / f"case-{case}.jsonl", trace)
            loaded = read_trace(path)
            assert loaded.header.to_dict() == trace.header.to_dict()
            assert [r.to_dict() for r in loaded] == [r.to_dict() for r in trace]

    def test_reencode_is_byte_stable(self, tmp_path, seed):
        trace = synthesize("stable", seed=seed, num_records=8, digests=False)
        first = write_trace(tmp_path / "a.jsonl", trace).read_bytes()
        second = write_trace(tmp_path / "b.jsonl", read_trace(tmp_path / "a.jsonl")).read_bytes()
        assert first == second

    def test_synthesis_is_deterministic(self, seed):
        one = synthesize("det", seed=seed, num_records=10, digests=False)
        two = synthesize("det", seed=seed, num_records=10, digests=False)
        assert [r.to_dict() for r in one] == [r.to_dict() for r in two]

    def test_different_seeds_differ(self, seed):
        one = synthesize("det", seed=seed, num_records=10, digests=False)
        two = synthesize("det", seed=seed + 1, num_records=10, digests=False)
        assert [r.to_dict() for r in one] != [r.to_dict() for r in two]


class TestForwardCompat:
    def test_unknown_record_fields_survive(self, tmp_path, seed):
        trace = synthesize("compat", seed=seed, num_records=3, digests=False)
        path = write_trace(tmp_path / "t.jsonl", trace)
        lines = path.read_text().splitlines()
        doctored = [json.loads(line) for line in lines]
        doctored[0]["new_header_knob"] = {"nested": True}
        doctored[1]["priority"] = "gold"
        path.write_text("\n".join(json.dumps(obj) for obj in doctored) + "\n")

        loaded = read_trace(path)
        assert loaded.header.extras["new_header_knob"] == {"nested": True}
        assert loaded.records[0].extras["priority"] == "gold"
        # ... and a re-save keeps them.
        resaved = read_trace(write_trace(tmp_path / "resave.jsonl", loaded))
        assert resaved.records[0].extras["priority"] == "gold"

    def test_wrong_schema_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"schema": "repro-trace/999", "name": "x", "seed": 1}) + "\n")
        with pytest.raises(TraceFormatError, match="repro-trace/999"):
            read_trace(path)

    def test_missing_required_field_rejected(self, tmp_path, seed):
        trace = synthesize("strict", seed=seed, num_records=1, digests=False)
        path = write_trace(tmp_path / "t.jsonl", trace)
        header, record = [json.loads(line) for line in path.read_text().splitlines()]
        del record["expression"]
        path.write_text(json.dumps(header) + "\n" + json.dumps(record) + "\n")
        with pytest.raises(TraceFormatError, match="expression"):
            read_trace(path)

    def test_record_count_mismatch_rejected(self, tmp_path, seed):
        trace = synthesize("count", seed=seed, num_records=3, digests=False)
        path = write_trace(tmp_path / "t.jsonl", trace)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")  # drop one record
        with pytest.raises(TraceFormatError, match="promises 3"):
            read_trace(path)


class TestDigests:
    def test_operand_digest_is_format_independent(self, seed):
        generator = rng(seed, "digest-formats")
        for _ in range(NUM_RANDOM_CASES):
            dense = np.where(
                generator.random((32, 32)) < 0.2, generator.standard_normal((32, 32)), 0.0
            )
            digests = {
                digest_operands({"A": fmt.from_dense(dense)})
                for fmt in (COO, CSR, ELL)
            }
            digests.add(digest_operands({"A": GroupCOO.from_dense(dense, group_size=4)}))
            digests.add(digest_operands({"A": BCSR.from_dense(dense, block_shape=(8, 8))}))
            digests.add(digest_operands({"A": dense}))
            assert len(digests) == 1, "same logical operand digested differently by format"

    def test_operand_digest_sensitive_to_values(self, seed):
        generator = rng(seed, "digest-sensitivity")
        dense = generator.standard_normal((16, 16))
        mutated = dense.copy()
        mutated[3, 3] += 1.0
        assert digest_operands({"A": dense}) != digest_operands({"A": mutated})

    def test_digest_array_covers_dtype_and_shape(self):
        values = np.arange(6, dtype=np.float64)
        assert digest_array(values) != digest_array(values.astype(np.float32))
        assert digest_array(values) != digest_array(values.reshape(2, 3))

    def test_materializer_reproduces_operand_digests(self, small_trace):
        fresh = TraceMaterializer(small_trace.seed)
        for record in small_trace.records[:6]:
            assert digest_operands(fresh.materialize(record)) == record.operand_digest

    def test_materializer_caches_sparse_identity(self, small_trace):
        materializer = TraceMaterializer(small_trace.seed)
        by_tenant = {}
        for record in small_trace:
            sparse = materializer.materialize(record)["A"]
            previous = by_tenant.setdefault(record.tenant, sparse)
            assert previous is sparse, "long-lived pattern must keep one identity"


class TestGenerators:
    @pytest.mark.parametrize("regime", REGIMES)
    def test_each_regime_synthesizes(self, regime, seed):
        trace = synthesize_regime(regime, seed=seed, num_records=4, digests=False)
        assert len(trace) == 4
        assert all(record.tenant == regime for record in trace)
        operands = TraceMaterializer(trace.seed).materialize(trace.records[0])
        assert operands["A"].to_dense().any()

    @pytest.mark.parametrize("arrival", ARRIVALS)
    def test_arrival_processes_are_monotone(self, arrival, seed):
        trace = synthesize(
            f"arr-{arrival}", seed=seed, num_records=20, arrival=arrival, digests=False
        )
        offsets = [record.offset_ms for record in trace]
        assert offsets == sorted(offsets)
        assert offsets[0] == 0.0

    def test_subset_rebases_offsets(self, small_trace):
        subset = small_trace.subset(5, 15)
        assert len(subset) == 10
        assert subset.records[0].offset_ms == 0.0
        assert subset.seed == small_trace.seed
        assert subset.header.slo == small_trace.header.slo

    def test_header_schema_field(self, small_trace):
        assert small_trace.header.to_dict()["schema"] == SCHEMA
