"""Shared fixtures for the replay suite.

Traces are synthesized once per module from the session ``--seed`` so
every test run is reproducible end to end, and soak tests persist their
:class:`~repro.replay.runner.SLOReport` JSON into ``REPLAY_REPORT_DIR``
(when set) so CI can upload the artifacts on pass *and* fail.
"""

import os
from pathlib import Path

import pytest

from repro.replay import WorkloadTrace, synthesize


@pytest.fixture(scope="module")
def small_trace(seed) -> WorkloadTrace:
    """A 24-record mixed-tenant Poisson trace with digests computed."""
    return synthesize("replay-small", seed=seed, num_records=24, rate_rps=400.0)


@pytest.fixture(scope="module")
def bursty_trace(seed) -> WorkloadTrace:
    """A 32-record bursty (on/off) trace with digests computed."""
    return synthesize(
        "replay-bursty",
        seed=seed,
        num_records=32,
        rate_rps=500.0,
        arrival="onoff",
        on_ms=20.0,
        off_ms=20.0,
    )


@pytest.fixture
def report_sink(request):
    """Persist SLO reports into ``REPLAY_REPORT_DIR`` for CI artifacts.

    Returns a callable ``sink(report, label="")``; a no-op when the
    environment variable is unset (local runs).
    """
    directory = os.environ.get("REPLAY_REPORT_DIR")

    def sink(report, label: str = ""):
        if not directory:
            return None
        name = request.node.name.replace("/", "_").replace("[", "-").rstrip("]")
        suffix = f"-{label}" if label else ""
        return report.save(Path(directory) / f"{name}{suffix}.json")

    return sink
