"""Worker-crash handling: health checks, restart, and in-flight requeue."""

from __future__ import annotations

import os
import signal
import time

import numpy as np
import pytest

from repro import ClusterServer
from repro.cluster.server import WorkerCrashedError, _Dispatch
from repro.formats import COO


@pytest.fixture
def pattern():
    rng = np.random.default_rng(11)
    dense = np.where(rng.random((96, 128)) < 0.08, rng.standard_normal((96, 128)), 0.0)
    return dense, COO.from_dense(dense)


def test_crash_restart_and_requeue(pattern):
    """SIGKILL mid-flight: every request still completes, on a new worker."""
    dense, fmt = pattern
    rng = np.random.default_rng(12)
    with ClusterServer(num_workers=2, worker_threads=1, health_interval=0.05) as cluster:
        # Warm the route so the kill target is the worker owning the key.
        warm = cluster.run_batch(
            [("C[m,n] += A[m,k] * B[k,n]", dict(A=fmt, B=rng.standard_normal((128, 8))))],
            timeout=180,
        )
        assert warm[0].ok
        victims = list(cluster.worker_pids)
        operand_sets = [rng.standard_normal((128, 8)) for _ in range(60)]
        tickets = cluster.enqueue_many(
            ("C[m,n] += A[m,k] * B[k,n]", dict(A=fmt, B=operand)) for operand in operand_sets
        )
        os.kill(victims[0], signal.SIGKILL)
        results = cluster.collect(tickets, timeout=120)
        assert all(result.ok for result in results), [
            result.error for result in results if not result.ok
        ][:1]
        for operand, result in zip(operand_sets, results):
            np.testing.assert_allclose(result.unwrap(), dense @ operand, atol=1e-8)
        stats = cluster.stats()
        assert stats.restarts >= 1
        # The killed slot is running a fresh process.
        assert cluster.worker_pids[0] != victims[0]
        assert all(pid is not None for pid in cluster.worker_pids)

        # The pool still serves after the restart.
        after = cluster.run_batch(
            [("C[m,n] += A[m,k] * B[k,n]", dict(A=fmt, B=rng.standard_normal((128, 8))))],
            timeout=180,
        )
        assert after[0].ok


def test_two_consecutive_crashes_recover(pattern):
    """The monitor keeps replacing workers as long as crashes keep coming."""
    _, fmt = pattern
    rng = np.random.default_rng(13)
    with ClusterServer(num_workers=2, worker_threads=1, health_interval=0.05) as cluster:
        for _ in range(2):
            pids = list(cluster.worker_pids)
            tickets = cluster.enqueue_many(
                ("C[m,n] += A[m,k] * B[k,n]", dict(A=fmt, B=rng.standard_normal((128, 4))))
                for _ in range(20)
            )
            os.kill(pids[0], signal.SIGKILL)
            results = cluster.collect(tickets, timeout=120)
            assert all(result.ok for result in results)
            deadline = time.monotonic() + 30
            while cluster.worker_pids[0] == pids[0]:
                assert time.monotonic() < deadline, "worker was never replaced"
                time.sleep(0.05)
        assert cluster.stats().restarts >= 2


def test_requeue_gives_up_after_max_attempts():
    """A request that keeps dying completes with WorkerCrashedError."""
    with ClusterServer(num_workers=1, worker_threads=1, max_attempts=2) as cluster:
        ticket = cluster.enqueue(
            "y[m] += A[m,k] * x[k]", y=np.zeros(2), A=np.zeros((2, 2)), x=np.zeros(2)
        )
        (result,) = cluster.collect([ticket], timeout=60)
        assert result.ok  # sanity: a healthy request is fine
        # Drive the requeue path directly: a dispatch at the attempt
        # ceiling must produce a terminal error, not another dispatch.
        doomed = _Dispatch(
            request_id=10_000,
            expression="y[m] += A[m,k] * x[k]",
            operands={},
            submitted_at=time.perf_counter(),
            attempt=1,
        )
        cluster.admission.acquire()
        with cluster._state:
            cluster._pending.add(doomed.request_id)
        cluster._requeue(doomed, exclude_worker=None)
        (lost,) = cluster.collect([doomed.request_id], timeout=30)
        assert not lost.ok
        assert isinstance(lost.error, WorkerCrashedError)
