"""Unit tests of the shared-memory ring and the operand codec."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.codec import OperandDecoder, OperandEncoder, decode_result, encode_result
from repro.cluster.router import Router, affinity_key
from repro.cluster.shm import HEADER_BYTES, ShmRing, segment_exists
from repro.formats import COO


@pytest.fixture
def ring():
    ring = ShmRing.create("repro-test-ring", 1 << 14)
    yield ring
    ring.close()


class TestShmRing:
    def test_roundtrip(self, ring):
        payload = bytes(range(256))
        offset, release_to = ring.write(payload)
        assert bytes(ring.read(offset, len(payload))) == payload
        assert ring.free_bytes == ring.capacity - len(payload)
        ring.release(release_to)
        assert ring.free_bytes == ring.capacity

    def test_wraparound_pads_to_segment_start(self, ring):
        first = bytes(ring.capacity // 2 - 16)
        _, r1 = ring.write(first)
        ring.release(r1)
        _, r2 = ring.write(bytes(ring.capacity // 2))
        ring.release(r2)
        # The cursor now sits 16 bytes before the wrap point: the next
        # write cannot fit contiguously, so it must land at offset 0
        # with the tail padding consumed.
        chunk = bytes(ring.capacity // 2)
        offset, r3 = ring.write(chunk)
        assert offset == 0
        assert bytes(ring.read(offset, len(chunk))) == chunk
        ring.release(r3)
        assert ring.free_bytes == ring.capacity

    def test_full_ring_blocks_until_released(self, ring):
        _, r1 = ring.write(bytes(ring.max_payload))
        _, r2 = ring.write(bytes(ring.max_payload))
        with pytest.raises(TimeoutError):
            ring.write(b"x", timeout=0.05)
        ring.release(r1)
        ring.release(r2)
        ring.write(b"x", timeout=0.05)

    def test_oversized_payload_rejected(self, ring):
        # Anything over half the capacity could wedge the producer
        # forever at an unlucky cursor position, so write() refuses it
        # up front and the codec falls back to inline pickling.
        with pytest.raises(ValueError):
            ring.write(bytes(ring.max_payload + 1))

    def test_max_payload_never_wedges_mid_ring(self, ring):
        # Regression: a max_payload write must succeed from ANY cursor
        # position once the ring drains (pad + n <= capacity holds).
        _, r1 = ring.write(bytes(ring.capacity // 2 - 8))  # awkward offset
        ring.release(r1)
        offset, r2 = ring.write(bytes(ring.max_payload), timeout=1.0)
        ring.release(r2)
        assert ring.free_bytes == ring.capacity

    def test_attach_sees_writes_and_close_unlinks(self, ring):
        name = ring.name
        other = ShmRing.attach(name)
        offset, release_to = ring.write(b"hello")
        assert bytes(other.read(offset, 5)) == b"hello"
        other.release(release_to)
        assert ring.free_bytes == ring.capacity  # release visible across attach
        other.beat()
        assert ring.heartbeat > 0.0
        other.close()  # non-owner close must not unlink
        assert segment_exists(name)

    def test_read_returns_writable_buffer(self, ring):
        array = np.arange(64, dtype=np.float64)
        offset, release_to = ring.write(array)
        out = np.frombuffer(ring.read(offset, array.nbytes), dtype=np.float64)
        out += 1.0  # must not raise: operands are mutated by accumulation
        np.testing.assert_array_equal(out, array + 1.0)
        ring.release(release_to)

    def test_header_reserves_cacheline(self, ring):
        assert ring.capacity == (1 << 14)
        assert HEADER_BYTES >= 24


class TestCodec:
    def _pair(self, ring):
        return OperandEncoder(ring), OperandDecoder(ring)

    def test_dense_arrays_ride_the_ring(self, ring):
        encoder, decoder = self._pair(ring)
        dense = np.random.default_rng(0).standard_normal((32, 8))
        envelope, controls = encoder.encode_request(1, "expr", {"B": dense}, 0)
        assert controls == []
        assert envelope.operands["B"][0] == "ring"
        operands = decoder.decode(envelope)
        np.testing.assert_array_equal(operands["B"], dense)
        assert ring.free_bytes == ring.capacity  # decode released the space

    def test_repeated_array_cached_worker_side(self, ring):
        encoder, decoder = self._pair(ring)
        stable = np.arange(512, dtype=np.int64)
        kinds = []
        for request_id in range(3):
            envelope, _ = encoder.encode_request(request_id, "expr", {"I": stable}, 0)
            kinds.append(envelope.operands["I"][0])
            out = decoder.decode(envelope)["I"]
            np.testing.assert_array_equal(out, stable)
        # 1st sighting ships plain, 2nd ships + stores, 3rd is a pure ref.
        assert kinds == ["ring", "ring_store", "cached"]

    def test_pattern_broadcast_once_per_fingerprint(self, ring):
        encoder, decoder = self._pair(ring)
        rng = np.random.default_rng(1)
        dense = np.where(rng.random((16, 24)) < 0.2, rng.standard_normal((16, 24)), 0.0)
        fmt = COO.from_dense(dense)
        broadcasts = 0
        for request_id in range(3):
            envelope, controls = encoder.encode_request(request_id, "expr", {"A": fmt}, 0)
            for control in controls:
                assert control[0] == "pattern"
                decoder.store_pattern(control[1], control[2])
                broadcasts += 1
            decoded = decoder.decode(envelope)["A"]
            np.testing.assert_allclose(decoded.to_dense(), dense)
        assert broadcasts == 1
        # All three requests decode to the *same* worker-side instance —
        # the identity the inner server's coalescer keys on.
        envelope, _ = encoder.encode_request(3, "expr", {"A": fmt}, 0)
        first = decoder.decode(envelope)["A"]
        envelope, _ = encoder.encode_request(4, "expr", {"A": fmt}, 0)
        assert decoder.decode(envelope)["A"] is first

    def test_small_and_odd_operands_inline(self, ring):
        encoder, decoder = self._pair(ring)
        envelope, _ = encoder.encode_request(
            1, "expr", {"tiny": np.arange(3), "flag": True}, 0
        )
        assert envelope.operands["tiny"][0] == "inline"
        assert envelope.operands["flag"][0] == "inline"
        operands = decoder.decode(envelope)
        np.testing.assert_array_equal(operands["tiny"], np.arange(3))
        assert operands["flag"] is True

    def test_bad_operand_does_not_desync_cache_mirror(self, ring):
        # Regression: a failing operand must not skip the cache effects
        # of the OTHER descriptors in its envelope — the parent's mirror
        # assumes every ring_store it emitted was applied.
        encoder, decoder = self._pair(ring)
        stable = np.arange(256, dtype=np.int64)
        envelope, _ = encoder.encode_request(0, "expr", {"I": stable}, 0)
        decoder.decode(envelope)  # 1st sighting: plain ring
        envelope, _ = encoder.encode_request(
            1, "expr", {"bad": lambda: None, "I": stable}, 0
        )
        assert envelope.operands["bad"][0] == "bad"
        assert envelope.operands["I"][0] == "ring_store"
        with pytest.raises(TypeError):
            decoder.decode(envelope)  # fails, but must still store I
        envelope, _ = encoder.encode_request(2, "expr", {"I": stable}, 0)
        assert envelope.operands["I"][0] == "cached"
        out = decoder.decode(envelope)["I"]
        np.testing.assert_array_equal(out, stable)

    def test_oversized_array_falls_back_to_inline(self, ring):
        encoder, decoder = self._pair(ring)
        big = np.zeros(ring.max_payload // 8 + 8, dtype=np.float64)
        envelope, _ = encoder.encode_request(0, "expr", {"B": big}, 0)
        assert envelope.operands["B"][0] == "inline"
        np.testing.assert_array_equal(decoder.decode(envelope)["B"], big)

    def test_request_ring_footprint_is_budgeted(self, ring):
        # Regression (deadlock): every ring payload of one request stays
        # resident until the worker receives the envelope, so a request
        # whose operands each fit the ring but cumulatively exceed it
        # would block the dispatcher forever.  Over-budget operands must
        # fall back to inline instead.
        encoder, decoder = self._pair(ring)
        rng = np.random.default_rng(4)
        chunk = ring.max_payload // 8 - 64  # each fits; two don't
        operands = {name: rng.standard_normal(chunk) for name in "ABC"}
        envelope, _ = encoder.encode_request(0, "expr", operands, 0)
        kinds = [envelope.operands[name][0] for name in "ABC"]
        assert kinds == ["ring", "inline", "inline"]
        decoded = decoder.decode(envelope)
        for name, value in operands.items():
            np.testing.assert_array_equal(decoded[name], value)
        assert ring.free_bytes == ring.capacity

    def test_budget_does_not_starve_repeated_metadata(self, ring):
        # Regression: a large fresh operand encoded first must not eat
        # the whole budget on every request — the repeated metadata
        # array would inline-pickle forever and never reach the
        # zero-bytes cached tier the transport is built around.
        encoder, decoder = self._pair(ring)
        rng = np.random.default_rng(5)
        metadata = np.arange(ring.max_payload // 8 - 64, dtype=np.int64)
        kinds = []
        for request_id in range(3):
            fresh = rng.standard_normal(ring.max_payload // 8 - 64)
            envelope, _ = encoder.encode_request(
                request_id, "expr", {"V": fresh, "I": metadata}, 0
            )
            kinds.append(envelope.operands["I"][0])
            decoded = decoder.decode(envelope)
            np.testing.assert_array_equal(decoded["I"], metadata)
            np.testing.assert_array_equal(decoded["V"], fresh)
        # 1st sighting loses the budget race (inline) but is recorded;
        # the 2nd ships + stores; the 3rd is a pure cache reference.
        assert kinds == ["inline", "ring_store", "cached"]

    def test_mutated_cached_array_reships(self, ring):
        # Regression (stale cache): refilling the same buffer with new
        # values per request is a common serving pattern; an identity-only
        # cache would keep answering with the first shipment's bytes.
        encoder, decoder = self._pair(ring)
        buffer = np.arange(512, dtype=np.int64)
        for request_id in range(3):  # promote to the cached tier
            envelope, _ = encoder.encode_request(request_id, "expr", {"I": buffer}, 0)
            decoder.decode(envelope)
        assert envelope.operands["I"][0] == "cached"
        buffer += 1000  # in-place mutation between requests
        envelope, _ = encoder.encode_request(3, "expr", {"I": buffer}, 0)
        assert envelope.operands["I"][0] == "ring_store"  # re-ships + refreshes
        np.testing.assert_array_equal(decoder.decode(envelope)["I"], buffer)
        envelope, _ = encoder.encode_request(4, "expr", {"I": buffer}, 0)
        assert envelope.operands["I"][0] == "cached"  # cached again, new bytes
        np.testing.assert_array_equal(decoder.decode(envelope)["I"], buffer)

    def test_result_roundtrip(self, ring):
        out = np.random.default_rng(2).standard_normal((16, 4))
        descriptor, release_to = encode_result(ring, out)
        assert descriptor[0] == "ring"
        np.testing.assert_array_equal(decode_result(ring, descriptor), out)
        ring.release(release_to)


class TestRouter:
    def test_sticky_and_least_loaded(self):
        router = Router(3)
        load = [5, 0, 2]
        key_a = ("expr-a", ())
        key_b = ("expr-b", ())
        assert router.route(key_a, load) == 1  # least loaded at first sight
        load[1] += 4
        assert router.route(key_a, load) == 1  # sticky despite load change
        assert router.route(key_b, load) == 2  # new key -> now-least-loaded

    def test_forget_worker_reassigns(self):
        router = Router(2)
        key = ("expr", ())
        assert router.route(key, [0, 1]) == 0
        router.forget_worker(0)
        assert router.route(key, [0, 0], exclude=0) == 1

    def test_hot_key_spills_across_pool(self):
        # Regression: a single-key workload (e.g. pure raw indirect
        # Einsum traffic) must not pin one worker while the rest idle.
        router = Router(3, spill_threshold=4)
        key = ("expr", ())
        assert router.route(key, [0, 0, 0]) == 0
        assert router.route(key, [3, 0, 0]) == 0  # below threshold: sticky
        assert router.route(key, [4, 0, 0]) == 1  # saturated: spills
        # The spilled worker joins the sticky set — traffic now balances
        # between the key's workers instead of bouncing randomly.
        assert router.route(key, [4, 1, 0]) == 1
        assert router.route(key, [4, 4, 0]) == 2  # spills again under load
        # No idler worker left: stay on the least-loaded assigned one.
        assert router.route(key, [4, 4, 4]) in (0, 1, 2)
        assert router.route(key, [9, 4, 5]) == 1

    def test_assignment_table_is_bounded(self):
        # Affinity keys embed value-array identity, so clients that
        # rebuild formats per request mint fresh keys forever; the
        # sticky table must not grow with them.
        router = Router(2, max_keys=4)
        for i in range(32):
            router.route((f"expr-{i}", ()), [0, 0])
        assert len(router._assignment) == 4
        # Eviction only forgets stickiness: the key routes again fine.
        assert router.route(("expr-0", ()), [5, 0]) == 1

    def test_spill_prefers_locality_when_pool_is_busy(self):
        # A merely *equally* busy worker is no reason to give up cache
        # locality: spilling requires someone at half the load or less.
        router = Router(2, spill_threshold=4)
        key = ("expr", ())
        assert router.route(key, [0, 0]) == 0
        assert router.route(key, [6, 4]) == 0  # other worker busy too
        assert router.route(key, [6, 3]) == 1  # now meaningfully idler

    def test_affinity_key_distinguishes_patterns(self):
        rng = np.random.default_rng(3)
        dense = np.where(rng.random((8, 8)) < 0.5, 1.0, 0.0)
        fmt_a = COO.from_dense(dense)
        fmt_b = COO.from_dense(dense)
        dense_op = rng.standard_normal((8, 4))
        key_a = affinity_key("C[m,n] += A[m,k] * B[k,n]", {"A": fmt_a, "B": dense_op})
        key_b = affinity_key("C[m,n] += A[m,k] * B[k,n]", {"A": fmt_b, "B": dense_op})
        assert key_a != key_b  # distinct live patterns
        assert key_a == affinity_key(
            "C[m,n] += A[m,k] * B[k,n]", {"A": fmt_a, "B": rng.standard_normal((8, 4))}
        )  # dense values don't affect routing
