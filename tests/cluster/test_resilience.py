"""Cluster resilience: containment, close races, restart budgets, poison.

The containment test is the regression for control-plane thread death:
an exception injected into the dispatch loop must fail every in-flight
future with :class:`~repro.errors.ControlThreadError` — never leave a
``Future.result()`` caller hanging.  The module-level shm-leak fixture
in ``conftest.py`` gives the close-race and crash-loop tests their
teeth: any segment a lost race leaks fails the test.
"""

from __future__ import annotations

import os
import signal
import time

import numpy as np
import pytest

from repro import ClusterServer
from repro.cluster.server import _Dispatch
from repro.errors import (
    ControlThreadError,
    PoisonedRequestError,
    WorkerCrashedError,
)
from repro.formats import COO
from repro.runtime.server import RequestExecutor
from repro.serve import ServeConfig, Session

SPMM_EXPR = "C[m,n] += A[m,k] * B[k,n]"


@pytest.fixture
def operands():
    rng = np.random.default_rng(23)
    dense = np.where(rng.random((48, 64)) < 0.1, rng.standard_normal((48, 64)), 0.0)
    return dict(A=COO.from_dense(dense), B=rng.standard_normal((64, 4)))


def wait_until(predicate, timeout: float, message: str) -> None:
    deadline = time.monotonic() + timeout
    while not predicate():
        assert time.monotonic() < deadline, message
        time.sleep(0.02)


class TestControlThreadContainment:
    def test_dispatcher_death_fails_all_futures_without_hanging(
        self, operands, monkeypatch
    ):
        """Inject an exception into the dispatch loop; nothing may hang."""
        original = RequestExecutor.execute

        def slow_execute(self, expression, ops):
            time.sleep(0.5)
            return original(self, expression, ops)

        monkeypatch.setattr(RequestExecutor, "execute", slow_execute)
        config = ServeConfig(workers=2, coalesce=False)
        with Session("cluster", config=config) as session:
            backend = session._backend
            futures = [session.submit(SPMM_EXPR, **operands) for _ in range(6)]

            def raising_iteration():
                raise RuntimeError("injected dispatcher fault")

            backend._dispatch_iteration = raising_iteration
            with backend._dispatch_cv:
                backend._dispatch_cv.notify_all()

            errors = []
            for future in futures:
                # The containment guarantee: every future resolves.  A
                # request already executing when the fault lands may
                # still fail with the containment error (its in-flight
                # record was cleared), so only classify, don't demand
                # success.
                error = future.exception(timeout=60)
                if error is not None:
                    errors.append(error)
            assert errors, "fault landed after every request completed"
            assert all(isinstance(error, ControlThreadError) for error in errors)

            # New submissions are refused with the same containment error.
            post = session.submit(SPMM_EXPR, **operands)
            assert isinstance(post.exception(timeout=30), ControlThreadError)

            assert backend.healthy_worker_count == 0
            health = backend.health()
            assert health["status"] == "degraded"
            assert "dispatcher" in health["control_error"]


class TestCloseRestartRace:
    @pytest.mark.parametrize("round_", range(2))
    def test_close_during_crash_restart_leaks_nothing(self, round_, operands):
        """close() racing the monitor's restart must not leak segments.

        The conftest shm-leak fixture asserts zero leaked segments after
        the test body — that assertion is the test.
        """
        config = ServeConfig(workers=2, coalesce=False, health_interval=0.05)
        session = Session("cluster", config=config)
        try:
            result = session.submit(SPMM_EXPR, **operands).result(timeout=120)
            assert result.shape == (48, 4)
            pid = session._backend.worker_pids[0]
            os.kill(pid, signal.SIGKILL)
        finally:
            # Immediately: the monitor is (or is about to be) mid-restart.
            session.close()


class TestRestartBudget:
    def test_crash_loop_exhausts_budget_and_retires_the_slot(self, operands):
        """A crash-looping slot dies permanently; the pool routes around it."""
        with ClusterServer(
            num_workers=2,
            worker_threads=1,
            coalesce=False,
            restart_budget=1,
            restart_window=3600.0,
            health_interval=0.05,
        ) as cluster:
            # restart_budget=1: the first crash spends the only token, the
            # second exhausts the bucket.  Kill each new incarnation of
            # slot 0 until the supervisor retires it.
            deadline = time.monotonic() + 60
            killed_pid = None
            while not cluster.supervisor.is_dead(0):
                assert time.monotonic() < deadline, "slot was never retired"
                pid = cluster.worker_pids[0]
                if pid is not None and pid != killed_pid:
                    try:
                        os.kill(pid, signal.SIGKILL)
                    except ProcessLookupError:
                        pass
                    killed_pid = pid
                time.sleep(0.02)

            assert cluster.supervisor.dead_workers == (0,)
            wait_until(
                lambda: cluster.healthy_worker_count == 1,
                timeout=30,
                message="healthy count never converged to the surviving slot",
            )
            health = cluster.health()
            assert health["status"] == "degraded"
            assert health["dead_workers"] == [0]

            # The surviving slot still serves.
            results = cluster.run_batch(
                [(SPMM_EXPR, dict(operands))] * 4, timeout=120
            )
            assert all(result.ok for result in results)


class TestPoisonFailFast:
    def test_quarantined_request_fails_fast_on_resubmit(self, operands):
        """Drive a request through crash-requeues to quarantine directly."""
        with ClusterServer(
            num_workers=1, worker_threads=1, coalesce=False, max_attempts=2
        ) as cluster:
            doomed = _Dispatch(
                request_id=10_000,
                expression=SPMM_EXPR,
                operands=dict(operands),
                submitted_at=time.perf_counter(),
                attempt=1,
                crashes=1,
            )
            cluster.admission.acquire()
            with cluster._state:
                cluster._pending.add(doomed.request_id)
            # Second crash-requeue: attempt and crashes both reach
            # max_attempts, so the request fails out AND is quarantined.
            cluster._requeue(doomed, exclude_worker=None, crashed=True)
            (result,) = cluster.collect([doomed.request_id], timeout=30)
            assert isinstance(result.error, WorkerCrashedError)
            assert len(cluster.quarantine) == 1

            # Resubmitting identical content fails fast at enqueue...
            with pytest.raises(PoisonedRequestError):
                cluster.enqueue(SPMM_EXPR, **operands)

            # ...while different operands are served normally.
            rng = np.random.default_rng(29)
            fresh = dict(operands, B=rng.standard_normal((64, 4)))
            ticket = cluster.enqueue(SPMM_EXPR, **fresh)
            (ok_result,) = cluster.collect([ticket], timeout=120)
            assert ok_result.ok
