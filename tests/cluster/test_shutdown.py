"""Clean shutdown: no leaked processes, no leaked shared-memory segments."""

from __future__ import annotations

import numpy as np
import pytest

from repro import ClusterServer
from repro.cluster import segment_exists
from repro.formats import COO


@pytest.fixture
def small_request():
    rng = np.random.default_rng(31)
    dense = np.where(rng.random((32, 48)) < 0.15, rng.standard_normal((32, 48)), 0.0)
    fmt = COO.from_dense(dense)
    return "C[m,n] += A[m,k] * B[k,n]", dict(A=fmt, B=rng.standard_normal((48, 4)))


def test_close_unlinks_every_segment(small_request):
    expression, operands = small_request
    cluster = ClusterServer(num_workers=2, worker_threads=1)
    segments = list(cluster.segment_names)
    assert len(segments) == 4  # one request + one response ring per worker
    assert all(segment_exists(name) for name in segments)
    results = cluster.run_batch([(expression, operands)] * 6, timeout=180)
    assert all(result.ok for result in results)
    cluster.close()
    leaked = [name for name in segments if segment_exists(name)]
    assert leaked == [], f"shared-memory segments leaked past close(): {leaked}"


def test_close_drains_in_flight_work_first(small_request):
    expression, operands = small_request
    cluster = ClusterServer(num_workers=2, worker_threads=1)
    tickets = cluster.enqueue_many([(expression, operands)] * 10)
    cluster.close()  # must wait for the 10 requests, then stop
    results = cluster.collect(tickets)  # results survive close for gathering
    assert all(result.ok for result in results)


def test_close_is_idempotent_and_submissions_after_close_fail(small_request):
    expression, operands = small_request
    cluster = ClusterServer(num_workers=1, worker_threads=1)
    assert cluster.run_batch([(expression, operands)], timeout=180)[0].ok
    cluster.close()
    cluster.close()  # second close is a no-op
    with pytest.raises(RuntimeError, match="closed"):
        cluster.enqueue(expression, **operands)


def test_worker_processes_exit_on_close(small_request):
    expression, operands = small_request
    cluster = ClusterServer(num_workers=2, worker_threads=1)
    assert cluster.run_batch([(expression, operands)], timeout=180)[0].ok
    processes = [handle.process for handle in cluster._handles]
    cluster.close()
    assert all(not process.is_alive() for process in processes)


def test_restarted_worker_segments_are_reclaimed(small_request):
    """Segments of a replaced incarnation are unlinked at restart time."""
    import os
    import signal
    import time

    expression, operands = small_request
    cluster = ClusterServer(num_workers=1, worker_threads=1, health_interval=0.05)
    try:
        assert cluster.run_batch([(expression, operands)], timeout=180)[0].ok
        old_segments = list(cluster.segment_names)
        old_pid = cluster.worker_pids[0]
        os.kill(old_pid, signal.SIGKILL)
        deadline = time.monotonic() + 30
        while cluster.worker_pids[0] == old_pid:
            assert time.monotonic() < deadline, "worker was never replaced"
            time.sleep(0.05)
        assert cluster.run_batch([(expression, operands)], timeout=180)[0].ok
        assert not any(segment_exists(name) for name in old_segments)
        new_segments = list(cluster.segment_names)
        assert set(new_segments).isdisjoint(old_segments)
    finally:
        cluster.close()
    assert not any(segment_exists(name) for name in cluster.segment_names)
