"""Shared fixtures for the cluster test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.formats import COO, GroupCOO
from repro.kernels import FullyConnectedTensorProduct


@pytest.fixture(scope="module")
def mixed_workload():
    """A small mixed serving workload: SpMM/SpMV traffic + equivariant.

    Mirrors the throughput benchmark's shape — repeated logical
    expressions over long-lived sparse patterns with fresh dense values
    (the coalescing sweet spot), plus a raw indirect Einsum every 8th
    request — at test-suite size.
    """
    rng = np.random.default_rng(7)
    spmm = GroupCOO.from_dense(
        np.where(rng.random((64, 96)) < 0.08, rng.standard_normal((64, 96)), 0.0),
        group_size=4,
    )
    spmv = COO.from_dense(
        np.where(rng.random((48, 48)) < 0.1, rng.standard_normal((48, 48)), 0.0)
    )
    equivariant = FullyConnectedTensorProduct(l_max=1, channels=4)
    x, y, w = equivariant.random_inputs(batch=2, rng=rng)
    z = np.zeros((2, equivariant.slot_dimension, equivariant.channels))
    recipes = [
        ("C[m,n] += A[m,k] * B[k,n]", lambda: dict(A=spmm, B=rng.standard_normal((96, 8)))),
        ("y[m] += A[m,k] * x[k]", lambda: dict(A=spmv, x=rng.standard_normal(48))),
        (
            equivariant.expression,
            lambda: dict(Z=z.copy(), X=x, Y=y, W=w, **equivariant._grouped),
        ),
    ]
    pattern = [0, 0, 1, 0, 0, 1, 0, 2]
    return [
        (recipes[pattern[i % len(pattern)]][0], recipes[pattern[i % len(pattern)]][1]())
        for i in range(48)
    ]
