"""Shared fixtures for the cluster test suite.

Two flakiness guards live here.  Worker counts and collect timeouts
derive from ``os.cpu_count()`` with a floor, so the suite neither
oversubscribes a 2-core CI runner nor under-exercises a wide box.  And
an autouse fixture tracks every shared-memory ring any test's
``ClusterServer`` creates, asserting at teardown that all of them were
unlinked — the shutdown suite's leak check, extended to every cluster
test (soak-style tests that crash workers mid-flight are exactly where
a leak would hide).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.cluster import segment_exists
from repro.cluster.server import ClusterServer
from repro.formats import COO, GroupCOO
from repro.kernels import FullyConnectedTensorProduct
from repro.utils.rng import rng

CPU_COUNT = os.cpu_count() or 2

#: Worker-process count for multi-worker tests: at least 2 (the parity
#: and affinity tests need real distribution), at most 4, and never more
#: than the machine minus one core for the driver.
CLUSTER_WORKERS = max(2, min(4, CPU_COUNT - 1))

#: Collect timeout scaled to how contended the machine likely is: the
#: floor covers a quiet wide box, the scale covers 2-core CI runners
#: where every worker shares a core with the driver.
CLUSTER_TIMEOUT = 60.0 * max(1.0, 4.0 / CPU_COUNT) + 30.0 * CLUSTER_WORKERS


@pytest.fixture(scope="session")
def cluster_workers() -> int:
    """CPU-derived worker count (floor 2, cap 4)."""
    return CLUSTER_WORKERS


@pytest.fixture(scope="session")
def cluster_timeout() -> float:
    """CPU-derived collect/run timeout in seconds."""
    return CLUSTER_TIMEOUT


@pytest.fixture(autouse=True)
def assert_no_leaked_segments(monkeypatch):
    """Fail any cluster test that leaves a shm segment linked behind.

    Wraps ``ClusterServer._start_worker`` to record every ring segment
    created during the test (including rings of restarted workers, which
    the shutdown-suite spot check could not see), then asserts at
    teardown that none still exists.
    """
    created: list[str] = []
    original = ClusterServer._start_worker

    def tracking(self, worker_id, incarnation):
        handle = original(self, worker_id, incarnation)
        created.extend([handle.req_ring.name, handle.resp_ring.name])
        return handle

    monkeypatch.setattr(ClusterServer, "_start_worker", tracking)
    yield
    leaked = [name for name in created if segment_exists(name)]
    assert leaked == [], f"cluster test leaked shm segments: {leaked}"


@pytest.fixture(scope="module")
def mixed_workload(seed):
    """A small mixed serving workload: SpMM/SpMV traffic + equivariant.

    Mirrors the throughput benchmark's shape — repeated logical
    expressions over long-lived sparse patterns with fresh dense values
    (the coalescing sweet spot), plus a raw indirect Einsum every 8th
    request — at test-suite size.  All draws come from named
    ``repro.utils.rng`` streams of the session seed.
    """
    patterns = rng(seed, "cluster-workload/patterns")
    values = rng(seed, "cluster-workload/values")
    spmm = GroupCOO.from_dense(
        np.where(patterns.random((64, 96)) < 0.08, patterns.standard_normal((64, 96)), 0.0),
        group_size=4,
    )
    spmv = COO.from_dense(
        np.where(patterns.random((48, 48)) < 0.1, patterns.standard_normal((48, 48)), 0.0)
    )
    equivariant = FullyConnectedTensorProduct(l_max=1, channels=4)
    x, y, w = equivariant.random_inputs(batch=2, rng=patterns)
    z = np.zeros((2, equivariant.slot_dimension, equivariant.channels))
    recipes = [
        ("C[m,n] += A[m,k] * B[k,n]", lambda: dict(A=spmm, B=values.standard_normal((96, 8)))),
        ("y[m] += A[m,k] * x[k]", lambda: dict(A=spmv, x=values.standard_normal(48))),
        (
            equivariant.expression,
            lambda: dict(Z=z.copy(), X=x, Y=y, W=w, **equivariant._grouped),
        ),
    ]
    pattern = [0, 0, 1, 0, 0, 1, 0, 2]
    return [
        (recipes[pattern[i % len(pattern)]][0], recipes[pattern[i % len(pattern)]][1]())
        for i in range(48)
    ]
