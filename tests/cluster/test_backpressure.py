"""Admission control: bounded in-flight work with explicit backpressure."""

from __future__ import annotations

import numpy as np
import pytest

from repro import ClusterBusyError, ClusterServer
from repro.cluster.admission import AdmissionController
from repro.formats import COO
from repro.utils.rng import rng


@pytest.fixture
def heavy_request(seed):
    """One reasonably expensive SpMM request (compile + a real contraction)."""
    generator = rng(seed, "backpressure/heavy")
    dense = np.where(
        generator.random((256, 256)) < 0.05, generator.standard_normal((256, 256)), 0.0
    )
    fmt = COO.from_dense(dense)
    return lambda: (
        "C[m,n] += A[m,k] * B[k,n]",
        dict(A=fmt, B=generator.standard_normal((256, 32))),
    )


def test_reject_policy_sheds_load_with_retry_after(heavy_request, cluster_timeout):
    """Over-limit submissions fail fast and carry a retry_after estimate."""
    with ClusterServer(
        num_workers=1, worker_threads=1, max_inflight=2, admission="reject"
    ) as cluster:
        tickets: list[int] = []
        rejections: list[ClusterBusyError] = []
        for _ in range(12):
            expression, operands = heavy_request()
            try:
                tickets.append(cluster.enqueue(expression, **operands))
            except ClusterBusyError as error:
                rejections.append(error)
        assert rejections, "submitting 12 requests over a bound of 2 must shed load"
        for error in rejections:
            assert error.retry_after > 0
            assert error.limit == 2
        # Everything that *was* admitted completes normally.
        results = cluster.collect(tickets, timeout=cluster_timeout)
        assert all(result.ok for result in results)
        assert cluster.stats().rejected == len(rejections)


def test_block_policy_applies_backpressure_not_errors(heavy_request, cluster_timeout):
    """The default policy makes submit() wait instead of failing."""
    with ClusterServer(
        num_workers=1, worker_threads=1, max_inflight=2, admission="block"
    ) as cluster:
        requests = [heavy_request() for _ in range(8)]
        tickets = cluster.enqueue_many(requests)  # blocks as needed, never raises
        results = cluster.collect(tickets, timeout=cluster_timeout)
        assert all(result.ok for result in results)
        assert cluster.stats().rejected == 0
        assert cluster.admission.inflight == 0


def test_admission_controller_unit():
    """The gate's counting, rejection, and release bookkeeping."""
    gate = AdmissionController(max_inflight=2, policy="reject")
    gate.acquire()
    gate.acquire()
    with pytest.raises(ClusterBusyError) as excinfo:
        gate.acquire()
    assert excinfo.value.retry_after > 0
    assert gate.rejected == 1
    gate.release(service_seconds=0.05)
    gate.acquire()  # capacity freed
    assert gate.inflight == 2
    gate.release()
    gate.release()
    assert gate.inflight == 0
    with pytest.raises(ValueError):
        AdmissionController(max_inflight=0)
    with pytest.raises(ValueError):
        AdmissionController(policy="drop")
