"""ClusterServer result parity with the threaded InsumServer."""

from __future__ import annotations

import numpy as np

from repro import ClusterServer, InsumServer


def test_mixed_workload_parity(mixed_workload, cluster_workers, cluster_timeout):
    """The cluster serves the mixed workload bit-for-bit compatibly.

    Results may differ from the threaded server only by floating-point
    reassociation of coalesced batches — the same tolerance the
    in-process coalescer is held to.
    """
    with InsumServer(num_workers=cluster_workers) as threaded:
        expected = threaded.run_batch(mixed_workload)
    with ClusterServer(num_workers=cluster_workers, worker_threads=1) as cluster:
        actual = cluster.run_batch(mixed_workload, timeout=cluster_timeout)
        stats = cluster.stats()

    assert all(result.ok for result in expected)
    assert all(result.ok for result in actual), [
        result.error for result in actual if not result.ok
    ][:1]
    for reference, result in zip(expected, actual):
        np.testing.assert_allclose(reference.unwrap(), result.unwrap(), atol=1e-8)

    # The pool-level report accounts for every request exactly once, and
    # worker-side coalescing survived the process boundary.
    assert stats.aggregate.completed == len(mixed_workload)
    assert stats.aggregate.failed == 0
    assert stats.workers == cluster_workers
    assert stats.aggregate.coalesced_requests > 0
    assert sum(worker.completed for worker in stats.per_worker) == len(mixed_workload)


def test_affinity_spreads_distinct_patterns(mixed_workload, cluster_workers, cluster_timeout):
    """Distinct expression+pattern keys land on distinct workers."""
    with ClusterServer(num_workers=cluster_workers, worker_threads=1) as cluster:
        results = cluster.run_batch(mixed_workload, timeout=cluster_timeout)
        stats = cluster.stats()
    assert all(result.ok for result in results)
    busy_workers = [worker for worker in stats.per_worker if worker.completed > 0]
    # Three distinct expression+pattern keys in the workload: at least
    # two workers must share the load however many workers the box has.
    assert len(busy_workers) >= 2


def test_gather_semantics_match_insum_server(mixed_workload, cluster_timeout):
    """Ticket-order results, consumed-on-gather, KeyError on reuse."""
    expression, operands = mixed_workload[0]
    with ClusterServer(num_workers=1, worker_threads=1) as cluster:
        first = cluster.enqueue(expression, **operands)
        second = cluster.enqueue(expression, **operands)
        results = cluster.collect([second, first], timeout=cluster_timeout)
        assert [result.request_id for result in results] == [second, first]
        try:
            cluster.collect([first])
        except KeyError:
            pass
        else:  # pragma: no cover - fails the test
            raise AssertionError("re-gathering a consumed ticket must raise KeyError")


def test_bad_request_is_an_error_not_a_crash(mixed_workload, cluster_timeout):
    """A malformed expression errors per-request; the pool keeps serving."""
    expression, operands = mixed_workload[0]
    with ClusterServer(num_workers=1, worker_threads=1) as cluster:
        bad = cluster.enqueue("this is not an einsum", x=np.zeros(3))
        good = cluster.enqueue(expression, **operands)
        bad_result, good_result = cluster.collect([bad, good], timeout=cluster_timeout)
        assert not bad_result.ok
        assert good_result.ok
        stats = cluster.stats()
        assert stats.aggregate.failed == 1
        assert stats.restarts == 0
