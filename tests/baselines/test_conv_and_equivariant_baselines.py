"""Tests for the convolution, equivariant, and compiler baselines."""

import numpy as np
import pytest

from repro.baselines import (
    CuEquivarianceTensorProduct,
    E3nnTensorProduct,
    SparseTIRCompiler,
    TacoSparseCompiler,
    TorchSparseConv,
)
from repro.datasets import build_kernel_map, generate_scene, voxelize
from repro.errors import LoweringError
from repro.kernels import FullyConnectedTensorProduct, SparseConv3d


@pytest.fixture(scope="module")
def small_conv_problem():
    points = generate_scene("copyRoom", max_points=1200, rng=5)
    voxels = voxelize(points, voxel_size=0.1)
    kernel_map = build_kernel_map(voxels)
    conv = SparseConv3d(kernel_map, in_channels=8, out_channels=8, rng=4)
    rng = np.random.default_rng(6)
    features = rng.standard_normal((kernel_map.num_voxels, 8))
    return kernel_map, conv, features


# -- TorchSparse ----------------------------------------------------------------------
def test_torchsparse_both_algorithms_match_reference(small_conv_problem):
    kernel_map, conv, features = small_conv_problem
    expected = conv.reference(features)
    for algorithm in ("implicit_gemm", "fetch_on_demand"):
        result = TorchSparseConv(kernel_map, algorithm).run(features, conv.weight)
        np.testing.assert_allclose(result.output, expected, atol=1e-8)
        assert result.modeled_ms > 0


def test_torchsparse_unknown_algorithm(small_conv_problem):
    kernel_map, _, _ = small_conv_problem
    with pytest.raises(ValueError):
        TorchSparseConv(kernel_map, "magic")


def test_torchsparse_loc_matches_paper(small_conv_problem):
    kernel_map, _, _ = small_conv_problem
    assert TorchSparseConv(kernel_map).lines_of_code == 4491


def test_ours_beats_torchsparse_in_model(small_conv_problem):
    kernel_map, conv, features = small_conv_problem
    ours = conv.estimate_ms()
    algo1 = TorchSparseConv(kernel_map, "implicit_gemm").modeled_ms(features, conv.weight)
    algo2 = TorchSparseConv(kernel_map, "fetch_on_demand").modeled_ms(features, conv.weight)
    assert ours < algo1 * 1.2
    assert ours < algo2 * 1.2


# -- equivariant baselines ----------------------------------------------------------------
def test_equivariant_baselines_match_reference(rng):
    layer = FullyConnectedTensorProduct(l_max=2, channels=4)
    x, y, w = layer.random_inputs(batch=5, rng=8)
    expected = layer.reference(x, y, w)
    e3nn = E3nnTensorProduct(layer.cg, channels=4).run(x, y, w)
    cueq = CuEquivarianceTensorProduct(layer.cg, channels=4).run(x, y, w)
    np.testing.assert_allclose(e3nn.output, expected, atol=1e-8)
    np.testing.assert_allclose(cueq.output, expected, atol=1e-8)
    assert e3nn.modeled_ms > 0 and cueq.modeled_ms > 0


def test_e3nn_loc_matches_paper():
    layer = FullyConnectedTensorProduct(l_max=1, channels=4)
    assert E3nnTensorProduct(layer.cg, 4).lines_of_code == 225


def test_ours_faster_than_e3nn_in_model():
    layer = FullyConnectedTensorProduct(l_max=2, channels=16)
    ours = layer.estimate_ms(batch=2048)
    x = np.zeros((2048, layer.slot_dimension, 16), dtype=np.float32)
    y = np.zeros((2048, layer.slot_dimension), dtype=np.float32)
    w = np.zeros((2048, layer.cg.num_paths, 16, 16), dtype=np.float32)
    e3nn = E3nnTensorProduct(layer.cg, 16).modeled_ms(x, y, w)
    assert e3nn / ours > 2.0  # the paper reports at least 2x in every setting


def test_cuequivariance_degrades_with_l_max():
    """Dense segment padding makes cuEquivariance fall behind at high l_max."""
    batch = 1024
    ratios = []
    for l_max in (1, 3):
        layer = FullyConnectedTensorProduct(l_max=l_max, channels=16)
        x = np.zeros((batch, layer.slot_dimension, 16), dtype=np.float32)
        y = np.zeros((batch, layer.slot_dimension), dtype=np.float32)
        w = np.zeros((batch, layer.cg.num_paths, 16, 16), dtype=np.float32)
        e3nn = E3nnTensorProduct(layer.cg, 16).modeled_ms(x, y, w)
        cueq = CuEquivarianceTensorProduct(layer.cg, 16).modeled_ms(x, y, w)
        ratios.append(e3nn / cueq)
    assert ratios[1] < ratios[0]  # speedup vs e3nn shrinks as l_max grows


# -- sparse compiler baselines (Table 3) -----------------------------------------------------
def test_taco_pipeline(small_conv_problem):
    kernel_map, conv, features = small_conv_problem
    taco = TacoSparseCompiler()
    assert taco.compile() >= 0
    assert taco.convert(kernel_map) >= 0
    result = taco.run(features, conv.weight)
    np.testing.assert_allclose(result.output, conv.reference(features), atol=1e-8)
    assert result.modeled_ms > conv.estimate_ms()  # unscheduled code is far slower


def test_taco_requires_compile_and_convert(small_conv_problem):
    kernel_map, conv, features = small_conv_problem
    with pytest.raises(LoweringError):
        TacoSparseCompiler().run(features, conv.weight)


def test_sparsetir_pipeline(small_conv_problem):
    kernel_map, conv, features = small_conv_problem
    sparsetir = SparseTIRCompiler()
    sparsetir.compile()
    conversion_ms = sparsetir.convert(kernel_map)
    result = sparsetir.run(features, conv.weight)
    np.testing.assert_allclose(result.output, conv.reference(features), atol=1e-8)
    assert conversion_ms > 0
    assert sparsetir.schedule_lines_of_code == 860
    assert result.modeled_ms >= conv.estimate_ms() * 0.8  # close to ours, but not faster


def test_sparsetir_cpu_conversion_slower_than_taco(small_conv_problem):
    kernel_map, _, _ = small_conv_problem
    taco = TacoSparseCompiler()
    sparsetir = SparseTIRCompiler()
    taco.compile(), sparsetir.compile()
    assert sparsetir.convert(kernel_map) > taco.convert(kernel_map)
