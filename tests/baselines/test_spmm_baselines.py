"""Tests for the SpMM baselines (dense, TorchBSR, Sputnik, cuSPARSE)."""

import numpy as np
import pytest

from repro.baselines import CuSparseSpMM, DenseMatmul, SputnikSpMM, TorchBSRSpMM
from repro.datasets import load_graph_matrix, random_block_sparse_matrix
from repro.errors import ShapeError
from repro.formats import CSR
from repro.kernels import StructuredSpMM, UnstructuredSpMM


@pytest.fixture(scope="module")
def block_matrix():
    return random_block_sparse_matrix(128, (16, 16), 0.25, rng=9).astype(np.float64)


@pytest.fixture(scope="module")
def graph_csr():
    return load_graph_matrix("cora", max_rows=2048)


def test_dense_matmul_baseline(rng, block_matrix):
    dense = rng.standard_normal((128, 32))
    result = DenseMatmul().run(block_matrix, dense)
    np.testing.assert_allclose(result.output, block_matrix @ dense, atol=1e-8)
    assert result.modeled_ms > 0


def test_torchbsr_baseline_correctness(rng, block_matrix):
    dense = rng.standard_normal((128, 32))
    result = TorchBSRSpMM(block_matrix, (16, 16)).run(dense)
    np.testing.assert_allclose(result.output, block_matrix @ dense, atol=1e-8)


def test_torchbsr_loc_matches_paper(block_matrix):
    assert TorchBSRSpMM(block_matrix, (16, 16)).lines_of_code == 202


def test_sputnik_and_cusparse_correctness(rng, graph_csr):
    dense = rng.standard_normal((graph_csr.shape[1], 16)).astype(np.float32)
    expected = graph_csr.to_dense() @ dense
    np.testing.assert_allclose(SputnikSpMM(graph_csr).run(dense).output, expected, atol=1e-3)
    np.testing.assert_allclose(CuSparseSpMM(graph_csr).run(dense).output, expected, atol=1e-3)


def test_sputnik_fp16_row_limit():
    indptr = np.arange(2**16 + 1, dtype=np.int64)
    indices = np.zeros(2**16, dtype=np.int64)
    data = np.ones(2**16)
    big = CSR((2**16, 4), indptr, indices, data)
    with pytest.raises(ShapeError, match="FP16"):
        SputnikSpMM(big, dtype="fp16")
    SputnikSpMM(big, dtype="fp32")  # fp32 path has no such limit


def test_sputnik_loc_matches_paper(graph_csr):
    assert SputnikSpMM(graph_csr).lines_of_code == 1918


def test_cusparse_imbalance_grows_with_skew(graph_csr):
    skewed = load_graph_matrix("artist", max_rows=2048)
    regular = load_graph_matrix("Yeast", max_rows=2048)
    dense = np.zeros((2048, 16), dtype=np.float32)
    skewed_kernel = CuSparseSpMM(skewed)._kernels(dense)[0]
    regular_kernel = CuSparseSpMM(regular)._kernels(np.zeros((regular.shape[1], 16)))[0]
    assert skewed_kernel.imbalance > regular_kernel.imbalance


def test_sputnik_mitigates_imbalance_relative_to_cusparse():
    skewed = load_graph_matrix("soc-BlogCatalog", max_rows=2048)
    dense = np.zeros((skewed.shape[1], 16), dtype=np.float32)
    cusparse_imbalance = CuSparseSpMM(skewed)._kernels(dense)[0].imbalance
    sputnik_imbalance = SputnikSpMM(skewed)._kernels(dense)[0].imbalance
    assert sputnik_imbalance < cusparse_imbalance


def test_structured_spmm_shape_vs_baselines(block_matrix):
    """The Figure 10 orderings hold at a reduced scale in the cost model."""
    num_cols = 512
    dense = np.zeros((128, num_cols), dtype=np.float32)
    ours = StructuredSpMM(block_matrix, block_shape=(16, 16)).estimate_ms(num_cols)
    torchbsr = TorchBSRSpMM(block_matrix, (16, 16)).modeled_ms(dense)
    assert ours <= torchbsr * 1.3  # ours is competitive with the hand-written kernel


def test_unstructured_spmm_vs_cusparse_modeled(graph_csr):
    ours = UnstructuredSpMM(graph_csr).estimate_ms(128)
    dense = np.zeros((graph_csr.shape[1], 128), dtype=np.float32)
    cusparse = CuSparseSpMM(graph_csr).modeled_ms(dense)
    assert ours < cusparse * 1.5


def test_hypersparse_advantage_over_bcsr():
    """In the hypersparse regime BCSR pays its full-output overhead (Fig. 10)."""
    hypersparse = random_block_sparse_matrix(512, (32, 32), 0.02, rng=11).astype(np.float64)
    dense = np.zeros((512, 512), dtype=np.float32)
    ours = StructuredSpMM(hypersparse).estimate_ms(512)
    torchbsr = TorchBSRSpMM(hypersparse).modeled_ms(dense)
    assert ours < torchbsr
