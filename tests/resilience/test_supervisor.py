"""Unit tests for WorkerSupervisor and PoisonQuarantine (injected clock)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.resilience.supervisor import PoisonQuarantine, WorkerSupervisor, poison_key


class TestWorkerSupervisor:
    def test_restarts_within_budget_then_exhausts(self):
        sup = WorkerSupervisor(budget=2, window=1000.0, backoff_base=0.0)
        assert sup.decide(0, now=0.0) == "restart"
        assert sup.decide(0, now=10.0) == "restart"
        # Window is huge, so effectively no refill: third crash kills it.
        assert sup.decide(0, now=20.0) == "exhausted"
        assert sup.is_dead(0)
        assert sup.dead_workers == (0,)
        # Death is permanent, whatever the clock says later.
        assert sup.decide(0, now=1_000_000.0) == "exhausted"

    def test_zero_budget_dies_on_first_crash(self):
        sup = WorkerSupervisor(budget=0, window=60.0)
        assert sup.decide(3, now=0.0) == "exhausted"
        assert sup.is_dead(3)

    def test_tokens_refill_over_the_window(self):
        sup = WorkerSupervisor(budget=2, window=10.0, backoff_base=0.0, backoff_cap=0.0)
        assert sup.decide(0, now=0.0) == "restart"
        assert sup.decide(0, now=1.0) == "restart"
        # Bucket empty; 5 seconds refills one of two tokens (2/10 per s).
        assert sup.decide(0, now=6.0) == "restart"
        assert not sup.is_dead(0)

    def test_backoff_defers_a_fast_crash_loop(self):
        sup = WorkerSupervisor(budget=8, window=60.0, backoff_base=0.1, backoff_cap=2.0)
        assert sup.decide(0, now=0.0) == "restart"  # streak -> 1
        # Second crash lands immediately: backoff of 0.1 s has not elapsed.
        assert sup.decide(0, now=0.01) == "defer"
        assert sup.backoff_remaining(0, now=0.01) == pytest.approx(0.09)
        # Once the backoff elapses the restart is granted (streak -> 2)...
        assert sup.decide(0, now=0.15) == "restart"
        # ...and the next backoff has doubled.
        assert sup.decide(0, now=0.2) == "defer"
        assert sup.backoff_remaining(0, now=0.2) == pytest.approx(0.15)

    def test_stable_uptime_resets_the_streak(self):
        sup = WorkerSupervisor(budget=8, window=60.0, backoff_base=0.1, backoff_cap=1.0)
        assert sup.decide(0, now=0.0) == "restart"
        assert sup.decide(0, now=0.2) == "restart"  # streak 2, backoff now 0.2
        # Crash after a long stable stretch (>= backoff_cap): streak resets,
        # so the tight first-crash backoff applies again, not 0.4.
        assert sup.decide(0, now=10.0) == "restart"
        assert sup.decide(0, now=10.05) == "defer"
        assert sup.backoff_remaining(0, now=10.05) == pytest.approx(0.05)

    def test_slots_are_independent(self):
        sup = WorkerSupervisor(budget=1, window=1000.0)
        assert sup.decide(0, now=0.0) == "restart"
        assert sup.decide(0, now=1.0) == "exhausted"
        assert sup.decide(1, now=1.0) == "restart"
        assert sup.dead_workers == (0,)

    def test_mark_dead_and_stats(self):
        sup = WorkerSupervisor(budget=4, window=60.0, backoff_base=0.0)
        assert sup.decide(2, now=0.0) == "restart"
        sup.mark_dead(5)
        stats = sup.stats()
        assert stats["restarts"] == {2: 1}
        assert stats["dead_workers"] == [5]

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="budget"):
            WorkerSupervisor(budget=-1)
        with pytest.raises(ValueError, match="window"):
            WorkerSupervisor(window=0.0)


class TestPoisonKey:
    def test_same_content_same_key_across_rebuilds(self):
        a = {"A": np.arange(6, dtype=np.float64).reshape(2, 3)}
        b = {"A": np.arange(6, dtype=np.float64).reshape(2, 3).copy()}
        assert poison_key("E", a) == poison_key("E", b)

    def test_key_is_sensitive_to_every_component(self):
        base = {"A": np.arange(6, dtype=np.float64).reshape(2, 3)}
        key = poison_key("E", base)
        assert poison_key("F", base) != key  # expression
        assert poison_key("E", {"B": base["A"]}) != key  # operand name
        assert poison_key("E", {"A": base["A"].reshape(3, 2)}) != key  # shape
        assert poison_key("E", {"A": base["A"].astype(np.float32)}) != key  # dtype
        mutated = base["A"].copy()
        mutated[0, 0] += 1.0
        assert poison_key("E", {"A": mutated}) != key  # content

    def test_sparse_format_operands_hash_by_content_not_identity(self):
        from repro.formats import COO

        dense = np.eye(4)
        a = COO.from_dense(dense)
        rebuilt = COO.from_dense(dense.copy())
        assert poison_key("E", {"A": a}) == poison_key("E", {"A": rebuilt})
        mutated = dense.copy()
        mutated[0, 0] = 2.0
        assert poison_key("E", {"A": COO.from_dense(mutated)}) != poison_key(
            "E", {"A": a}
        )

    def test_operand_order_does_not_matter(self):
        x = np.ones(3)
        y = np.zeros(3)
        assert poison_key("E", {"X": x, "Y": y}) == poison_key("E", {"Y": y, "X": x})


class TestPoisonQuarantine:
    def test_record_and_contains(self):
        quarantine = PoisonQuarantine()
        assert not quarantine.contains("k1")
        quarantine.record("k1")
        assert quarantine.contains("k1")
        assert len(quarantine) == 1

    def test_lru_eviction_at_capacity(self):
        quarantine = PoisonQuarantine(capacity=2)
        quarantine.record("a")
        quarantine.record("b")
        quarantine.contains("a")  # refresh "a": "b" is now least recent
        quarantine.record("c")
        assert quarantine.contains("a")
        assert not quarantine.contains("b")
        assert quarantine.contains("c")
        assert len(quarantine) == 2

    def test_stats_counts_repeat_offenders(self):
        quarantine = PoisonQuarantine()
        quarantine.record("k")
        quarantine.record("k")
        assert quarantine.stats() == {"size": 1, "keys": {"k": 2}}

    def test_capacity_validation(self):
        with pytest.raises(ValueError, match="capacity"):
            PoisonQuarantine(capacity=0)
