"""Unit tests for RetryPolicy: pure state, seeded RNG, zero sleeps."""

from __future__ import annotations

import random

import pytest

from repro.errors import (
    ClusterBusyError,
    ControlThreadError,
    DeadlineExceededError,
    PoisonedRequestError,
    SessionClosedError,
    WorkerCrashedError,
)
from repro.resilience.retry import RetryPolicy


def seeded_policy(**kwargs) -> RetryPolicy:
    kwargs.setdefault("rng", random.Random(1234))
    return RetryPolicy(**kwargs)


class TestClassification:
    def test_transient_failures_are_retryable(self):
        policy = seeded_policy()
        assert policy.retryable(WorkerCrashedError("worker died"))
        assert policy.retryable(ClusterBusyError(8, 8, 0.02))
        # Control-plane death indicts the backend, not the request: a
        # resubmit is safe and (with failover) lands on the fallback.
        assert policy.retryable(ControlThreadError("dispatcher died"))

    def test_deterministic_failures_are_not(self):
        policy = seeded_policy()
        assert not policy.retryable(ValueError("bad operand"))
        assert not policy.retryable(SessionClosedError("closed"))
        assert not policy.retryable(DeadlineExceededError("too late"))

    def test_poison_is_never_retryable_despite_subclassing_crash(self):
        policy = seeded_policy()
        poison = PoisonedRequestError("quarantined")
        assert isinstance(poison, WorkerCrashedError)
        assert not policy.retryable(poison)

    def test_should_retry_respects_attempt_budget(self):
        policy = seeded_policy(max_attempts=3)
        crash = WorkerCrashedError("boom")
        assert policy.should_retry(1, crash)
        assert policy.should_retry(2, crash)
        assert not policy.should_retry(3, crash)
        assert not policy.should_retry(1, ValueError("deterministic"))

    def test_single_attempt_disables_retries(self):
        policy = seeded_policy(max_attempts=1)
        assert not policy.should_retry(1, WorkerCrashedError("boom"))


class TestBackoff:
    def test_delays_stay_within_bounds(self):
        policy = seeded_policy(base_delay=0.05, max_delay=2.0)
        prev = None
        for attempt in range(1, 50):
            delay = policy.delay(attempt, prev_delay=prev)
            assert 0.05 <= delay <= 2.0
            prev = delay

    def test_decorrelated_jitter_is_deterministic_under_a_seed(self):
        a = seeded_policy(rng=random.Random(7))
        b = seeded_policy(rng=random.Random(7))
        draws_a = [a.delay(i) for i in range(1, 10)]
        draws_b = [b.delay(i) for i in range(1, 10)]
        assert draws_a == draws_b

    def test_first_retry_draw_uses_base_as_prev(self):
        policy = seeded_policy(base_delay=0.1, max_delay=10.0)
        # prev defaults to base, so the draw is uniform in [base, 3*base].
        for _ in range(100):
            assert 0.1 <= policy.delay(1) <= 0.3

    def test_retry_after_hint_floors_the_draw(self):
        policy = seeded_policy(base_delay=0.01, max_delay=2.0)
        busy = ClusterBusyError(8, 8, 0.5)
        for _ in range(50):
            assert policy.delay(1, error=busy) >= 0.5

    def test_retry_after_hint_is_still_capped(self):
        policy = seeded_policy(base_delay=0.01, max_delay=0.2)
        busy = ClusterBusyError(8, 8, 60.0)
        assert policy.delay(1, error=busy) <= 0.2

    def test_prev_delay_below_base_is_lifted_to_base(self):
        policy = seeded_policy(base_delay=0.1, max_delay=10.0)
        for _ in range(100):
            assert 0.1 <= policy.delay(2, prev_delay=0.001) <= 0.3


class TestValidation:
    def test_rejects_zero_attempts(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)

    def test_rejects_inverted_delay_bounds(self):
        with pytest.raises(ValueError, match="base_delay"):
            RetryPolicy(base_delay=1.0, max_delay=0.5)

    def test_rejects_negative_base(self):
        with pytest.raises(ValueError, match="base_delay"):
            RetryPolicy(base_delay=-0.1)
