"""Unit tests for fallback-config derivation."""

from __future__ import annotations

import pytest

from repro.resilience.failover import FALLBACK_BACKENDS, fallback_config
from repro.serve import ServeConfig


def cluster_config(**overrides) -> ServeConfig:
    fields = dict(
        workers=2,
        worker_threads=2,
        coalesce=False,
        admission="reject",
        max_inflight=64,
        ring_capacity=1 << 20,
        restart_budget=1,
        failover="threaded",
        failover_floor=2,
        retry_attempts=3,
        compile_backend="inductor",
        check_bounds=False,
    )
    fields.update(overrides)
    return ServeConfig(**fields)


def test_threaded_fallback_keeps_worker_and_coalesce_settings():
    config = cluster_config()
    derived = fallback_config(config, "threaded")
    assert derived.workers == 2
    assert derived.coalesce is False
    # Cluster-gated fields are stripped...
    for name in (
        "worker_threads", "admission", "max_inflight", "ring_capacity",
        "restart_budget", "retry_attempts", "failover", "failover_floor",
    ):
        assert getattr(derived, name) is None, name
    # ...and the result validates for the fallback tier.
    derived.validate("threaded")


def test_inline_fallback_also_drops_pool_knobs():
    derived = fallback_config(cluster_config(failover="inline"), "inline")
    assert derived.workers is None
    assert derived.coalesce is None
    assert derived.coalesce_max is None
    derived.validate("inline")


def test_common_compiler_fields_survive_derivation():
    derived = fallback_config(cluster_config(), "threaded")
    assert derived.compile_backend == "inductor"
    assert derived.check_bounds is False


def test_fallback_never_recurses():
    derived = fallback_config(cluster_config(), "threaded")
    assert derived.failover is None
    assert derived.failover_floor is None


def test_unknown_fallback_backend_rejected():
    assert FALLBACK_BACKENDS == ("inline", "threaded")
    with pytest.raises(ValueError, match="failover backend"):
        fallback_config(cluster_config(), "cluster")
