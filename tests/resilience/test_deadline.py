"""Unit tests for the deadline primitive (pure, fake-clock, no sleeps)."""

from __future__ import annotations

import threading

import pytest

from repro.errors import DeadlineExceededError
from repro.resilience.deadline import (
    Deadline,
    deadline_error,
    expired_result,
    push_pending,
    take_pending,
)
from repro.runtime.server import InsumResult


class TestDeadline:
    def test_after_ms_anchors_on_injected_now(self):
        deadline = Deadline.after_ms(250.0, now=1000.0)
        assert deadline.expires_at == 1000.25
        assert not deadline.expired(now=1000.2)
        assert deadline.expired(now=1000.25)  # inclusive boundary
        assert deadline.expired(now=1001.0)

    def test_zero_and_negative_budgets_are_born_expired(self):
        assert Deadline.after_ms(0.0, now=5.0).expired(now=5.0)
        assert Deadline.after_ms(-10.0, now=5.0).expired(now=5.0)

    def test_remaining_clamps_at_zero(self):
        deadline = Deadline.after_ms(100.0, now=10.0)
        assert deadline.remaining_s(now=10.0) == pytest.approx(0.1)
        assert deadline.remaining_s(now=10.05) == pytest.approx(0.05)
        assert deadline.remaining_s(now=11.0) == 0.0

    def test_from_epoch_round_trips_and_passes_none(self):
        deadline = Deadline.after_ms(50.0, now=3.0)
        rebuilt = Deadline.from_epoch(deadline.expires_at)
        assert rebuilt == deadline
        assert Deadline.from_epoch(None) is None


class TestExpiredResult:
    def _result(self) -> InsumResult:
        return InsumResult(request_id=7, expression="E", output=object())

    def test_converts_late_completion(self):
        result = self._result()
        expired_result(result, Deadline(expires_at=0.0), stage="execute")
        assert result.output is None
        assert isinstance(result.error, DeadlineExceededError)
        assert "request 7" in str(result.error)
        assert "(execute)" in str(result.error)

    def test_no_deadline_is_a_noop(self):
        result = self._result()
        expired_result(result, None)
        assert result.error is None and result.output is not None

    def test_unexpired_deadline_is_a_noop(self):
        result = self._result()
        expired_result(result, Deadline.after_ms(60_000.0))
        assert result.error is None and result.output is not None

    def test_existing_error_wins_over_conversion(self):
        result = self._result()
        original = RuntimeError("worker failed first")
        result.error = original
        expired_result(result, Deadline(expires_at=0.0))
        assert result.error is original

    def test_deadline_error_message_carries_stage(self):
        error = deadline_error(42, "queue")
        assert isinstance(error, DeadlineExceededError)
        assert "request 42" in str(error) and "(queue)" in str(error)


class TestPendingHandoff:
    def test_push_take_round_trip_clears_the_slot(self):
        deadline = Deadline.after_ms(100.0)
        push_pending(deadline)
        assert take_pending() is deadline
        assert take_pending() is None  # claimed exactly once

    def test_push_none_is_ignored(self):
        push_pending(None)
        assert take_pending() is None

    def test_slot_is_thread_local(self):
        push_pending(Deadline.after_ms(100.0))
        seen: list = []
        thread = threading.Thread(target=lambda: seen.append(take_pending()))
        thread.start()
        thread.join()
        assert seen == [None]  # the other thread sees nothing...
        assert take_pending() is not None  # ...and ours is still parked
