"""Registry exactness and Prometheus exposition under concurrency."""

from __future__ import annotations

import threading
import time

import pytest

from repro.obs.metrics import (
    DEFAULT_SIZE_BUCKETS,
    MetricsRegistry,
    get_registry,
    validate_prometheus_text,
)

THREADS = 8
INCS_PER_THREAD = 5000


def hammer(target, args=(), threads=THREADS):
    """Run ``target(*args)`` concurrently from ``threads`` threads."""
    pool = [threading.Thread(target=target, args=args) for _ in range(threads)]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()


def test_counter_total_is_exact_under_contention():
    registry = MetricsRegistry()
    counter = registry.counter("repro_test_hits_total", "test counter")

    def work():
        for _ in range(INCS_PER_THREAD):
            counter.inc()

    hammer(work)
    assert counter.value() == THREADS * INCS_PER_THREAD


def test_histogram_count_and_buckets_are_exact_under_contention():
    registry = MetricsRegistry()
    histogram = registry.histogram(
        "repro_test_sizes", "test histogram", buckets=DEFAULT_SIZE_BUCKETS
    )

    def work():
        for index in range(INCS_PER_THREAD):
            histogram.observe(float(index % 100))

    hammer(work)
    snapshot = histogram.snapshot()
    assert snapshot["count"] == THREADS * INCS_PER_THREAD
    # The +Inf bucket equals the count, and cumulative counts never decrease.
    bounds, counts = zip(*snapshot["buckets"])
    assert bounds[-1] == float("inf")
    assert counts[-1] == snapshot["count"]
    assert list(counts) == sorted(counts)


def test_snapshots_are_monotonic_while_writers_run():
    registry = MetricsRegistry()
    counter = registry.counter("repro_test_mono_total")
    stop = threading.Event()
    observed: list[float] = []

    def write():
        while not stop.is_set():
            counter.inc()

    def read():
        while not stop.is_set():
            tree = registry.snapshot()
            observed.append(tree["repro_test_mono_total"]["series"][0]["value"])

    writers = [threading.Thread(target=write) for _ in range(4)]
    reader = threading.Thread(target=read)
    for thread in writers + [reader]:
        thread.start()
    deadline = time.time() + 10.0
    while len(observed) < 200 and time.time() < deadline:
        time.sleep(0.001)
    stop.set()
    for thread in writers + [reader]:
        thread.join()
    assert observed == sorted(observed), "counter snapshot went backwards"


def test_same_labels_return_same_child_and_kinds_conflict():
    registry = MetricsRegistry()
    first = registry.counter("repro_test_total", "h", backend="x")
    second = registry.counter("repro_test_total", backend="x")
    assert first is second
    registry.counter("repro_test_total", backend="y").inc(3)
    with pytest.raises(ValueError, match="already registered"):
        registry.gauge("repro_test_total")


def test_counter_rejects_negative_increment():
    registry = MetricsRegistry()
    with pytest.raises(ValueError, match="cannot decrease"):
        registry.counter("repro_test_neg_total").inc(-1)


def test_render_prometheus_passes_its_own_validator():
    registry = MetricsRegistry()
    registry.counter("repro_demo_total", "Requests.", backend="threaded").inc(7)
    registry.gauge("repro_demo_inflight", "In flight.").set(2.5)
    histogram = registry.histogram("repro_demo_ms", "Latency.", buckets=(1.0, 10.0))
    histogram.observe(0.5)
    histogram.observe(5.0)
    histogram.observe(50.0)
    text = registry.render_prometheus()
    assert validate_prometheus_text(text) == []
    assert 'repro_demo_total{backend="threaded"} 7' in text
    assert 'repro_demo_ms_bucket{le="+Inf"} 3' in text
    assert "repro_demo_ms_count 3" in text


def test_validator_flags_malformed_expositions():
    assert validate_prometheus_text("repro_x_total 1\n")  # no # TYPE
    assert validate_prometheus_text("# TYPE repro_x_total counter\nrepro_x_total one\n")
    broken_histogram = (
        "# TYPE repro_h histogram\n"
        'repro_h_bucket{le="1"} 5\n'
        'repro_h_bucket{le="+Inf"} 3\n'  # decreasing cumulative counts
        "repro_h_sum 1\n"
        "repro_h_count 3\n"
    )
    problems = validate_prometheus_text(broken_histogram)
    assert any("decrease" in problem for problem in problems)
    no_inf = (
        "# TYPE repro_h histogram\n"
        'repro_h_bucket{le="1"} 5\n'
        "repro_h_sum 1\n"
        "repro_h_count 5\n"
    )
    assert any("+Inf" in problem for problem in validate_prometheus_text(no_inf))


def test_global_registry_renders_validly():
    # The process-wide registry has accumulated real series from other
    # tests by the time this runs; it must always render parseably.
    assert validate_prometheus_text(get_registry().render_prometheus()) == []
