"""Trace plumbing: spans across all three serving tiers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.formats import COO
from repro.obs import trace as obs_trace
from repro.obs.trace import Trace
from repro.serve import ServeConfig, Session


def small_request(rng):
    dense = np.where(rng.random((24, 32)) < 0.2, rng.standard_normal((24, 32)), 0.0)
    return (
        "C[m,n] += A[m,k] * B[k,n]",
        dict(A=COO.from_dense(dense), B=rng.standard_normal((32, 8))),
    )


def assert_non_overlapping(spans):
    ordered = sorted(spans, key=lambda span: (span.start, span.end))
    for earlier, later in zip(ordered, ordered[1:]):
        assert later.start >= earlier.end - 1e-6, (
            f"span {later.name} overlaps {earlier.name}"
        )


def test_span_between_builds_from_stamps_and_sorts():
    trace = Trace("t-1")
    trace.stamp("a", 1.0)
    trace.stamp("b", 2.0)
    trace.stamp("c", 2.5)
    assert trace.span_between("second", "b", "c")
    assert trace.span_between("first", "a", "b", batch_size=4)
    assert not trace.span_between("missing", "a", "nope")
    spans = trace.spans()
    assert [span.name for span in spans] == ["first", "second"]
    assert spans[0].meta == {"batch_size": 4}
    assert spans[0].duration_ms == pytest.approx(1000.0)


def test_export_merge_roundtrip_preserves_parent_stamps():
    parent = Trace("t-2")
    parent.stamp("submit", 1.0)
    worker = Trace("t-2")
    worker.stamp("submit", 99.0)  # must NOT overwrite the parent's stamp
    worker.stamp("exec.end", 3.0)
    worker.add_span("execute", 2.0, 3.0, coalesced=False)
    parent.merge(worker.export())
    assert parent.stamp_of("submit") == 1.0
    assert parent.stamp_of("exec.end") == 3.0
    assert [span.name for span in parent.spans()] == ["execute"]


def test_maybe_start_respects_disable_switch():
    old = obs_trace.set_enabled(False)
    try:
        assert obs_trace.maybe_start() is None
    finally:
        obs_trace.set_enabled(old)
    trace = obs_trace.maybe_start("adopted-id")
    assert trace is not None and trace.trace_id == "adopted-id"


def test_pending_slot_is_take_once():
    trace = Trace("t-3")
    obs_trace.push_pending(trace)
    assert obs_trace.take_pending() is trace
    assert obs_trace.take_pending() is None


@pytest.mark.parametrize(
    "backend,config",
    [
        ("inline", ServeConfig()),
        ("threaded", ServeConfig(workers=2)),
    ],
)
def test_in_process_future_trace_has_queue_and_execute_spans(backend, config, rng):
    expression, operands = small_request(rng)
    with Session(backend=backend, config=config) as session:
        future = session.submit(expression, **operands)
        future.result(timeout=60)
    trace = future.trace()
    assert trace is not None
    names = {span.name for span in trace.spans()}
    assert {"queue.wait", "execute"} <= names
    assert_non_overlapping(trace.spans())


def test_cluster_trace_covers_wall_latency(rng):
    """Acceptance: >= 4 non-overlapping spans covering >= 90% of latency."""
    expression, operands = small_request(rng)
    config = ServeConfig(workers=2, worker_threads=1)
    with Session(backend="cluster", config=config) as session:
        # Warm, then measure one request end to end.
        session.submit(expression, **operands).result(timeout=120)
        future = session.submit(expression, **operands)
        future.result(timeout=120)
    trace = future.trace()
    assert trace is not None
    spans = trace.spans()
    assert len(spans) >= 4
    assert_non_overlapping(spans)
    names = {span.name for span in spans}
    assert {"queue.dispatch", "ring.transit", "execute", "ring.respond"} <= names
    coverage = trace.total_span_ms() / future.latency_ms
    assert coverage >= 0.9, f"spans cover only {coverage:.1%} of wall latency"


def test_tracing_disabled_yields_no_trace(rng):
    expression, operands = small_request(rng)
    old = obs_trace.set_enabled(False)
    try:
        with Session(backend="inline") as session:
            future = session.submit(expression, **operands)
            future.result(timeout=60)
        assert future.trace() is None
    finally:
        obs_trace.set_enabled(old)
