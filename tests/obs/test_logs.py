"""Structured logging: JSON schema, extras, and idempotent configuration."""

from __future__ import annotations

import io
import json
import logging

from repro.obs.logs import JsonFormatter, TextFormatter, configure_logging, get_logger


def capture(format: str = "json", level: str = "DEBUG") -> io.StringIO:
    stream = io.StringIO()
    configure_logging(level=level, format=format, stream=stream, force=True)
    return stream


def restore_defaults() -> None:
    configure_logging(force=True)


def test_json_records_carry_schema_and_extras():
    stream = capture()
    try:
        get_logger("testsub").info(
            "request failed", extra={"trace_id": "t-9", "request_id": 4}
        )
        record = json.loads(stream.getvalue())
        assert record["level"] == "INFO"
        assert record["logger"] == "repro.testsub"
        assert record["message"] == "request failed"
        assert record["trace_id"] == "t-9" and record["request_id"] == 4
        assert isinstance(record["ts"], float)
    finally:
        restore_defaults()


def test_json_formatter_never_raises_on_unserializable_extras():
    formatter = JsonFormatter()
    record = logging.LogRecord("repro.x", logging.WARNING, __file__, 1, "msg", (), None)
    record.payload = object()  # json.dumps would choke without default=repr
    parsed = json.loads(formatter.format(record))
    assert parsed["payload"].startswith("<object object")


def test_json_records_include_formatted_exceptions():
    stream = capture()
    try:
        try:
            raise ValueError("boom")
        except ValueError:
            get_logger("testsub").exception("it failed")
        record = json.loads(stream.getvalue())
        assert "ValueError: boom" in record["exc"]
    finally:
        restore_defaults()


def test_text_format_appends_extras():
    stream = capture(format="text")
    try:
        get_logger("testsub").warning("spilled", extra={"worker": 3})
        line = stream.getvalue()
        assert "spilled" in line and "worker=3" in line
        assert not line.lstrip().startswith("{")
    finally:
        restore_defaults()


def test_default_level_keeps_libraries_quiet():
    stream = io.StringIO()
    root = configure_logging(stream=stream, force=True)  # env default: WARNING
    try:
        assert root.level == logging.WARNING
        get_logger("testsub").info("should not appear")
        assert stream.getvalue() == ""
    finally:
        restore_defaults()


def test_configure_is_idempotent_without_force():
    root = configure_logging(level="ERROR", format="text", force=True)
    try:
        handler_count = len(root.handlers)
        again = configure_logging(level="DEBUG")  # ignored: already configured
        assert again is root
        assert len(root.handlers) == handler_count
        assert root.level == logging.ERROR
    finally:
        restore_defaults()


def test_text_formatter_is_single_line():
    formatter = TextFormatter()
    record = logging.LogRecord("repro.y", logging.INFO, __file__, 1, "hello", (), None)
    assert "\n" not in formatter.format(record)
