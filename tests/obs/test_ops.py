"""The ops endpoint and registry truth against live serving tiers."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import numpy as np

from repro.formats import COO
from repro.obs.metrics import get_registry, validate_prometheus_text
from repro.obs.ops import PROMETHEUS_CONTENT_TYPE, OpsServer
from repro.serve import ServeConfig, Session


def fetch(url: str):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, response.headers.get("Content-Type"), response.read()


def build_workload(rng, count=12):
    dense = np.where(rng.random((24, 32)) < 0.2, rng.standard_normal((24, 32)), 0.0)
    sparse = COO.from_dense(dense)
    return [
        ("C[m,n] += A[m,k] * B[k,n]", dict(A=sparse, B=rng.standard_normal((32, 8))))
        for _ in range(count)
    ]


def completed_total(backend: str) -> float:
    return get_registry().counter(
        "repro_requests_total", backend=backend, outcome="completed"
    ).value()


def test_ops_server_without_session_serves_registry_only():
    with OpsServer() as ops:
        status, content_type, body = fetch(ops.url("/metrics"))
        assert status == 200
        assert content_type == PROMETHEUS_CONTENT_TYPE
        assert validate_prometheus_text(body.decode()) == []
        status, _, body = fetch(ops.url("/healthz"))
        assert status == 200
        assert json.loads(body)["scope"] == "process"
        try:
            fetch(ops.url("/nope"))
        except urllib.error.HTTPError as error:
            assert error.code == 404
        else:
            raise AssertionError("expected a 404")


def test_threaded_session_ops_endpoint_serves_all_three_paths(rng):
    with Session(backend="threaded", config=ServeConfig(workers=2)) as session:
        ops = session.serve_ops()
        assert session.serve_ops() is ops  # idempotent
        for future in session.submit_many(build_workload(rng)):
            future.result(timeout=60)
        status, content_type, body = fetch(ops.url("/metrics"))
        assert status == 200 and content_type == PROMETHEUS_CONTENT_TYPE
        text = body.decode()
        assert validate_prometheus_text(text) == []
        assert 'repro_serve_completed{backend="threaded"} 12' in text
        status, _, body = fetch(ops.url("/healthz"))
        health = json.loads(body)
        assert status == 200 and health["status"] == "ok"
        assert health["backend"] == "threaded"
        assert all(worker["alive"] for worker in health["workers"])
        status, _, body = fetch(ops.url("/statsz"))
        stats = json.loads(body)
        assert status == 200
        assert stats["completed"] == 12 and stats["submitted"] == 12
        assert stats["p99_latency_ms"] >= stats["p50_latency_ms"]


def test_cluster_scrape_exposes_required_series(rng):
    """Acceptance: a cluster session under load serves valid Prometheus text
    including the plan-cache hit rate, coalesce rate, admission rejections,
    and per-backend latency histograms."""
    config = ServeConfig(workers=2, worker_threads=1)
    with Session(backend="cluster", config=config) as session:
        ops = session.serve_ops()
        for future in session.submit_many(build_workload(rng, count=16)):
            future.result(timeout=120)
        _, _, body = fetch(ops.url("/metrics"))
    text = body.decode()
    assert validate_prometheus_text(text) == []
    assert 'repro_serve_plan_cache_hit_rate{backend="cluster"}' in text
    assert 'repro_serve_coalesce_rate{backend="cluster"}' in text
    assert "# TYPE repro_admission_rejected_total counter" in text
    assert 'repro_request_latency_ms_bucket{backend="cluster",le="+Inf"}' in text
    assert 'repro_serve_completed{backend="cluster"} 16' in text


def test_registry_counts_exactly_under_threads_and_live_cluster(rng):
    """Hammer the registry from N threads while a live cluster serves, and
    assert both the hammered counter and the serving counters are exact."""
    registry = get_registry()
    hammered = registry.counter("repro_test_obs_hammer_total", "test")
    base_hammer = hammered.value()
    base_completed = completed_total("cluster")
    workload = build_workload(rng, count=20)

    def hammer():
        for _ in range(2000):
            hammered.inc()

    threads = [threading.Thread(target=hammer) for _ in range(6)]
    snapshots: list[float] = []
    config = ServeConfig(workers=2, worker_threads=1)
    with Session(backend="cluster", config=config) as session:
        for thread in threads:
            thread.start()
        futures = session.submit_many(workload)
        for future in futures:
            future.result(timeout=120)
            snapshots.append(completed_total("cluster"))
        for thread in threads:
            thread.join()
    assert hammered.value() - base_hammer == 6 * 2000
    assert completed_total("cluster") - base_completed == len(workload)
    assert snapshots == sorted(snapshots), "completed counter went backwards"
    assert completed_total("cluster") == snapshots[-1]
