"""Authenticator and TenantQuota: the two gates ahead of a Session slot."""

from __future__ import annotations

import threading

import pytest

from repro.errors import GatewayAuthError, TenantQuotaError
from repro.gateway import ANONYMOUS_TENANT, Authenticator, GatewayConfig, TenantQuota


class TestAuthenticator:
    def test_disabled_keyring_is_anonymous(self):
        auth = Authenticator(None)
        assert not auth.enabled
        assert auth.authenticate(None) == ANONYMOUS_TENANT
        assert auth.authenticate("whatever") == ANONYMOUS_TENANT

    def test_known_key_resolves_tenant(self):
        auth = Authenticator({"key-a": "acme"})
        assert auth.enabled
        assert auth.authenticate("key-a") == "acme"
        assert auth.authenticate("  key-a  ") == "acme"  # header whitespace

    @pytest.mark.parametrize("key", [None, "", "   "])
    def test_missing_key_is_401(self, key):
        with pytest.raises(GatewayAuthError) as excinfo:
            Authenticator({"key-a": "acme"}).authenticate(key)
        assert excinfo.value.status == 401

    def test_unknown_key_is_403(self):
        with pytest.raises(GatewayAuthError) as excinfo:
            Authenticator({"key-a": "acme"}).authenticate("key-z")
        assert excinfo.value.status == 403


class TestTenantQuota:
    def quota(self, **overrides) -> TenantQuota:
        config = GatewayConfig(
            api_keys={"k1": "acme", "k2": "beta"},
            quota_retry_after=0.125,
            **overrides,
        )
        return TenantQuota(config)

    def test_unlimited_without_config(self):
        quota = self.quota()
        for _ in range(64):
            quota.acquire("acme")
        assert quota.inflight("acme") == 64

    def test_rejects_at_limit_with_fields(self):
        quota = self.quota(max_inflight_per_tenant=2)
        quota.acquire("acme")
        quota.acquire("acme")
        with pytest.raises(TenantQuotaError) as excinfo:
            quota.acquire("acme")
        error = excinfo.value
        assert (error.tenant, error.inflight, error.limit) == ("acme", 2, 2)
        assert error.retry_after == 0.125

    def test_release_frees_the_slot(self):
        quota = self.quota(max_inflight_per_tenant=1)
        quota.acquire("acme")
        quota.release("acme")
        quota.acquire("acme")  # would raise if the slot leaked
        assert quota.inflight("acme") == 1

    def test_tenants_are_isolated(self):
        quota = self.quota(max_inflight_per_tenant=1)
        quota.acquire("acme")
        quota.acquire("beta")  # acme saturating its quota never blocks beta
        with pytest.raises(TenantQuotaError):
            quota.acquire("acme")

    def test_per_tenant_override(self):
        quota = self.quota(max_inflight_per_tenant=4, tenant_quotas={"acme": 1})
        quota.acquire("acme")
        with pytest.raises(TenantQuotaError):
            quota.acquire("acme")
        for _ in range(4):
            quota.acquire("beta")

    def test_thread_safety_never_overshoots(self):
        quota = self.quota(max_inflight_per_tenant=8)
        admitted = []
        barrier = threading.Barrier(16)

        def worker():
            barrier.wait()
            try:
                quota.acquire("acme")
                admitted.append(1)
            except TenantQuotaError:
                pass

        threads = [threading.Thread(target=worker) for _ in range(16)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(admitted) == 8
        assert quota.inflight("acme") == 8
