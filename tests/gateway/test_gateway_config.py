"""GatewayConfig: combination rejection and ``REPRO_GATEWAY_*`` parsing."""

from __future__ import annotations

import pytest

from repro.gateway import GatewayConfig, GatewayConfigError


class TestValidation:
    def test_defaults_are_valid(self):
        GatewayConfig().validate()

    def test_cache_sizes_rejected_without_binary_wire(self):
        with pytest.raises(GatewayConfigError, match="binary=False"):
            GatewayConfig(binary=False, array_cache_size=8).validate()
        with pytest.raises(GatewayConfigError, match="binary=False"):
            GatewayConfig(binary=False, pattern_cache_size=8).validate()

    def test_tenant_quotas_require_keyring(self):
        with pytest.raises(GatewayConfigError, match="requires api_keys"):
            GatewayConfig(tenant_quotas={"acme": 4}).validate()

    def test_empty_keyring_rejected(self):
        with pytest.raises(GatewayConfigError, match="non-empty"):
            GatewayConfig(api_keys={}).validate()

    def test_quota_for_unknown_tenant_rejected(self):
        with pytest.raises(GatewayConfigError, match="ghost"):
            GatewayConfig(
                api_keys={"k": "acme"}, tenant_quotas={"ghost": 4}
            ).validate()

    @pytest.mark.parametrize(
        "field", ["max_inflight_per_tenant", "array_cache_size", "pattern_cache_size"]
    )
    def test_counts_below_one_rejected(self, field):
        with pytest.raises(GatewayConfigError, match=field):
            GatewayConfig(**{field: 0}).validate()

    def test_quota_value_below_one_rejected(self):
        with pytest.raises(GatewayConfigError, match="acme"):
            GatewayConfig(api_keys={"k": "acme"}, tenant_quotas={"acme": 0}).validate()

    def test_out_of_range_port_rejected(self):
        with pytest.raises(GatewayConfigError, match="port"):
            GatewayConfig(port=70000).validate()

    def test_negative_retry_after_rejected(self):
        with pytest.raises(GatewayConfigError, match="quota_retry_after"):
            GatewayConfig(quota_retry_after=-1.0).validate()

    def test_consistent_config_passes(self):
        GatewayConfig(
            api_keys={"k1": "acme", "k2": "beta"},
            max_inflight_per_tenant=8,
            tenant_quotas={"acme": 2},
        ).validate()


class TestTenantLimit:
    def test_override_beats_default(self):
        config = GatewayConfig(
            api_keys={"k1": "acme", "k2": "beta"},
            max_inflight_per_tenant=8,
            tenant_quotas={"acme": 2},
        )
        assert config.tenant_limit("acme") == 2
        assert config.tenant_limit("beta") == 8

    def test_unlimited_when_unset(self):
        assert GatewayConfig().tenant_limit("anyone") is None


class TestFromEnv:
    def test_unset_environment_gives_defaults(self):
        assert GatewayConfig.from_env({}) == GatewayConfig()

    def test_full_environment_parse(self):
        config = GatewayConfig.from_env(
            {
                "REPRO_GATEWAY_HOST": "0.0.0.0",
                "REPRO_GATEWAY_PORT": "8123",
                "REPRO_GATEWAY_API_KEYS": "key-a=acme, key-b=beta",
                "REPRO_GATEWAY_TENANT_QUOTAS": "acme=64",
                "REPRO_GATEWAY_MAX_INFLIGHT_PER_TENANT": "128",
                "REPRO_GATEWAY_QUOTA_RETRY_AFTER": "0.2",
                "REPRO_GATEWAY_MAX_BODY_BYTES": "1048576",
            }
        )
        assert config.host == "0.0.0.0"
        assert config.port == 8123
        assert config.api_keys == {"key-a": "acme", "key-b": "beta"}
        assert config.tenant_quotas == {"acme": 64}
        assert config.max_inflight_per_tenant == 128
        assert config.quota_retry_after == 0.2
        assert config.max_body_bytes == 1048576

    @pytest.mark.parametrize("raw,expected", [("on", True), ("0", False), ("FALSE", False)])
    def test_boolean_parse(self, raw, expected):
        assert GatewayConfig.from_env({"REPRO_GATEWAY_BINARY": raw}).binary is expected

    @pytest.mark.parametrize(
        "name,raw",
        [
            ("REPRO_GATEWAY_PORT", "not-a-port"),
            ("REPRO_GATEWAY_BINARY", "maybe"),
            ("REPRO_GATEWAY_API_KEYS", "no-equals-sign"),
            ("REPRO_GATEWAY_TENANT_QUOTAS", "acme=lots"),
        ],
    )
    def test_unparseable_value_names_the_variable(self, name, raw):
        with pytest.raises(GatewayConfigError, match=name):
            GatewayConfig.from_env({name: raw})

    def test_invalid_combination_rejected_at_parse(self):
        with pytest.raises(GatewayConfigError):
            GatewayConfig.from_env(
                {"REPRO_GATEWAY_BINARY": "off", "REPRO_GATEWAY_ARRAY_CACHE_SIZE": "8"}
            )
