"""Shared fixtures for the gateway test suite.

One module-scoped inline session fronted by a keyed gateway carries the
bulk of the e2e tests (auth, parity, deadlines, metrics); the SpMM
operand fixture mirrors the serve suite's shape so gateway results can
be compared bitwise against direct ``Session.submit``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.formats import GroupCOO
from repro.gateway import GatewayClient, GatewayConfig, GatewayServer
from repro.serve import Session

SPMM_EXPR = "C[m,n] += A[m,k] * B[k,n]"

#: The e2e keyring: two named tenants.
API_KEYS = {"key-acme": "acme", "key-beta": "beta"}


@pytest.fixture(scope="module")
def spmm_operands():
    """One small SpMM request: a GroupCOO pattern and a dense operand."""
    rng = np.random.default_rng(11)
    fmt = GroupCOO.from_dense(
        np.where(rng.random((32, 48)) < 0.1, rng.standard_normal((32, 48)), 0.0),
        group_size=4,
    )
    return dict(A=fmt, B=rng.standard_normal((48, 8)))


@pytest.fixture(scope="module")
def inline_gateway():
    """An inline session serving a keyed gateway; yields (session, server)."""
    session = Session("inline")
    server = session.serve_gateway(config=GatewayConfig(api_keys=dict(API_KEYS)))
    yield session, server
    session.close()


@pytest.fixture
def acme_client(inline_gateway):
    """A binary-wire client authenticated as tenant ``acme``."""
    _, server = inline_gateway
    with GatewayClient(server.url(""), api_key="key-acme") as client:
        yield client


@pytest.fixture
def open_gateway():
    """An unauthenticated (anonymous-tenant) gateway over a fresh session."""
    session = Session("inline")
    server = GatewayServer(session, config=GatewayConfig()).start()
    yield session, server
    server.stop()
    session.close()
