"""Trace replay through the live HTTP gateway.

The PR's acceptance path: ``benchmarks/traces/mixed_smoke.jsonl``
replayed through a gateway on the cluster backend must hold its SLO
with zero digest mismatches, while ``/metrics`` exposes valid
``repro_gateway_*`` series carrying tenant labels.
"""

from __future__ import annotations

import threading
import time
import urllib.request
from pathlib import Path

import pytest

from repro.gateway import GatewayClient, GatewayConfig
from repro.obs.metrics import get_registry, validate_prometheus_text
from repro.replay import read_trace, replay, synthesize
from repro.serve import ServeConfig, Session

MIXED_SMOKE = Path(__file__).resolve().parents[2] / "benchmarks" / "traces" / "mixed_smoke.jsonl"


def tenant_keyring(trace):
    tenant_keys = {tenant: f"test-key-{tenant}" for tenant in trace.tenants()}
    api_keys = {key: tenant for tenant, key in tenant_keys.items()}
    return tenant_keys, api_keys


class TestSynthesizedReplay:
    def test_multi_tenant_trace_verifies_through_gateway(self, seed):
        trace = synthesize("gateway-replay", seed=seed, num_records=24, rate_rps=400.0)
        tenant_keys, api_keys = tenant_keyring(trace)
        with Session("inline") as session:
            server = session.serve_gateway(config=GatewayConfig(api_keys=api_keys))
            with GatewayClient(server.url(""), tenant_keys=tenant_keys) as client:
                report = replay(trace, client, verify=True, time_scale=0.0)
        assert report.submitted == report.completed == len(trace)
        assert report.failed == report.cancelled == 0
        assert report.digest_checked == len(trace)
        assert report.digest_mismatches == 0
        assert report.invariant_violations() == []
        # The tenant column survives the HTTP hop into the breakdown.
        assert set(report.per_tenant) == set(trace.tenants())
        total = sum(entry["submitted"] for entry in report.per_tenant.values())
        assert total == report.submitted

    def test_per_tenant_counters_carry_the_gateway_label(self, seed):
        trace = synthesize("gateway-labels", seed=seed, num_records=12, rate_rps=400.0)
        tenant_keys, api_keys = tenant_keyring(trace)
        registry = get_registry()
        counters = {
            tenant: registry.counter(
                "repro_gateway_requests_total", tenant=tenant, outcome="ok"
            )
            for tenant in trace.tenants()
        }
        before = {tenant: counter.value() for tenant, counter in counters.items()}
        with Session("inline") as session:
            server = session.serve_gateway(config=GatewayConfig(api_keys=api_keys))
            with GatewayClient(server.url(""), tenant_keys=tenant_keys) as client:
                replay(trace, client, verify=True, time_scale=0.0)
        per_tenant = {
            record.tenant: sum(1 for r in trace.records if r.tenant == record.tenant)
            for record in trace.records
        }
        for tenant, expected in per_tenant.items():
            assert counters[tenant].value() == before[tenant] + expected


@pytest.mark.skipif(not MIXED_SMOKE.exists(), reason="smoke trace not checked in")
class TestMixedSmokeAcceptance:
    def test_cluster_gateway_holds_slo_with_metrics_scrape(self):
        trace = read_trace(MIXED_SMOKE)
        trace.refresh_digests()
        tenant_keys, api_keys = tenant_keyring(trace)
        scraped: list[str] = []

        with Session(
            "cluster", config=ServeConfig(workers=2, coalesce=False)
        ) as session:
            server = session.serve_gateway(config=GatewayConfig(api_keys=api_keys))
            ops = session.serve_ops()

            def scrape_mid_replay():
                time.sleep(0.2)
                try:
                    with urllib.request.urlopen(ops.url("/metrics"), timeout=10) as reply:
                        scraped.append(reply.read().decode("utf-8"))
                except OSError:
                    pass

            scraper = threading.Thread(target=scrape_mid_replay, daemon=True)
            scraper.start()
            with GatewayClient(server.url(""), tenant_keys=tenant_keys) as client:
                report = replay(trace, client, verify=True, time_scale=1.0)
            scraper.join(timeout=15)
            if not scraped:  # replay finished before the scraper woke
                with urllib.request.urlopen(ops.url("/metrics"), timeout=10) as reply:
                    scraped.append(reply.read().decode("utf-8"))

        assert report.digest_mismatches == 0
        assert report.digest_checked == len(trace)
        assert report.attainment >= 0.95
        assert report.invariant_violations() == []
        text = scraped[0]
        assert validate_prometheus_text(text) == []
        gateway_lines = [
            line
            for line in text.splitlines()
            if line.startswith("repro_gateway_requests_total") and "tenant=" in line
        ]
        assert gateway_lines, "no tenant-labelled repro_gateway_* series in the scrape"
