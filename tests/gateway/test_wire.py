"""The wire codec: framing, operand specs, cache mirror, error contract."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.errors import (
    ClusterBusyError,
    ControlThreadError,
    DeadlineExceededError,
    FutureCancelledError,
    GatewayAuthError,
    GatewayError,
    PoisonedRequestError,
    SessionClosedError,
    TenantQuotaError,
    WireFormatError,
    WorkerCrashedError,
)
from repro.formats import BCSR, BlockCOO, BlockGroupCOO, COO, CSR, ELL, GroupCOO
from repro.gateway.wire import (
    BINARY_CONTENT_TYPE,
    JSON_CONTENT_TYPE,
    WIRE_MAGIC,
    WireDecoder,
    WireEncoder,
    decode_error,
    decode_result_body,
    decode_result_entry,
    encode_batch_results,
    encode_error,
    encode_result,
    http_status,
    pack_frame,
    unpack_frame,
)


@pytest.fixture
def dense_pair(rng):
    a = rng.standard_normal((6, 9))
    b = rng.standard_normal((9, 4))
    return a, b


# ---------------------------------------------------------------------------
# Framing
# ---------------------------------------------------------------------------
class TestFraming:
    def test_round_trip(self):
        header, payload = unpack_frame(pack_frame({"expression": "x"}, b"\x01\x02"))
        assert header == {"expression": "x"}
        assert bytes(payload) == b"\x01\x02"

    def test_bad_magic_rejected(self):
        body = b"NOPE" + pack_frame({})[len(WIRE_MAGIC) :]
        with pytest.raises(WireFormatError):
            unpack_frame(body)

    def test_truncated_header_rejected(self):
        body = pack_frame({"expression": "x"})
        with pytest.raises(WireFormatError):
            unpack_frame(body[: len(body) - 4])

    def test_non_object_header_rejected(self):
        encoded = json.dumps([1, 2]).encode()
        body = WIRE_MAGIC + len(encoded).to_bytes(4, "little") + encoded
        with pytest.raises(WireFormatError):
            unpack_frame(body)


# ---------------------------------------------------------------------------
# Operand round trips (both encodings, all formats)
# ---------------------------------------------------------------------------
SPARSE_BUILDERS = {
    "coo": lambda dense: COO.from_dense(dense),
    "csr": lambda dense: CSR.from_dense(dense),
    "ell": lambda dense: ELL.from_dense(dense),
    "groupcoo": lambda dense: GroupCOO.from_dense(dense, group_size=4),
    "blockcoo": lambda dense: BlockCOO.from_dense(dense, block_shape=(8, 8)),
    "bcsr": lambda dense: BCSR.from_dense(dense, block_shape=(8, 8)),
    "blockgroupcoo": lambda dense: BlockGroupCOO.from_dense(
        dense, block_shape=(8, 8), group_size=2
    ),
}


def _round_trip(operands, binary):
    content_type, body = WireEncoder().encode_request("C[m,n] += A[m,k] * B[k,n]",
                                                      operands, binary=binary)
    requests = WireDecoder().decode_request(content_type, body)
    assert len(requests) == 1
    expression, decoded = requests[0]
    assert expression == "C[m,n] += A[m,k] * B[k,n]"
    return decoded


@pytest.mark.parametrize("binary", [True, False], ids=["binary", "json"])
@pytest.mark.parametrize("name", sorted(SPARSE_BUILDERS))
def test_sparse_operand_round_trip(name, binary, block_sparse_matrix):
    fmt = SPARSE_BUILDERS[name](block_sparse_matrix)
    decoded = _round_trip({"A": fmt, "B": np.ones((64, 3))}, binary)
    assert type(decoded["A"]) is type(fmt)
    np.testing.assert_array_equal(decoded["A"].to_dense(), fmt.to_dense())
    np.testing.assert_array_equal(decoded["B"], np.ones((64, 3)))


@pytest.mark.parametrize("binary", [True, False], ids=["binary", "json"])
def test_scalar_and_dense_round_trip(binary, dense_pair):
    a, b = dense_pair
    decoded = _round_trip({"A": a, "B": b, "alpha": 2.5, "name": "x", "flag": True}, binary)
    np.testing.assert_array_equal(decoded["A"], a)
    np.testing.assert_array_equal(decoded["B"], b)
    assert decoded["alpha"] == 2.5
    assert decoded["name"] == "x"
    assert decoded["flag"] is True


def test_object_dtype_rejected():
    with pytest.raises(WireFormatError):
        WireEncoder().encode_request("e", {"A": np.array([object()])}, binary=False)


def test_unsupported_operand_type_rejected():
    with pytest.raises(WireFormatError):
        WireEncoder().encode_request("e", {"A": {"not": "wire-safe"}}, binary=True)


def test_unknown_content_type_rejected():
    with pytest.raises(WireFormatError):
        WireDecoder().decode_request("text/html", b"<html>")


def test_batch_round_trip(dense_pair):
    a, b = dense_pair
    content_type, body = WireEncoder().encode_batch(
        [("e1", {"A": a}), ("e2", {"B": b})], binary=True
    )
    assert content_type == BINARY_CONTENT_TYPE
    requests = WireDecoder().decode_request(content_type, body)
    assert [expression for expression, _ in requests] == ["e1", "e2"]
    np.testing.assert_array_equal(requests[0][1]["A"], a)
    np.testing.assert_array_equal(requests[1][1]["B"], b)


# ---------------------------------------------------------------------------
# The per-connection cache mirror
# ---------------------------------------------------------------------------
class TestCacheMirror:
    def test_stable_array_cached_from_third_send(self, dense_pair):
        a, _ = dense_pair
        encoder, decoder = WireEncoder(), WireDecoder()
        sizes = []
        for _ in range(3):
            content_type, body = encoder.encode_request("e", {"A": a}, binary=True)
            decoded = decoder.decode_request(content_type, body)
            np.testing.assert_array_equal(decoded[0][1]["A"], a)
            sizes.append(len(body))
        # Send 1 ships the blob, send 2 ships blob_store, send 3 hits the cache.
        header, _ = unpack_frame(body)
        assert header["operands"]["A"][0] == "cached"
        assert sizes[2] < sizes[0]

    def test_inplace_mutation_reships(self, dense_pair):
        a, _ = dense_pair
        encoder, decoder = WireEncoder(), WireDecoder()
        for _ in range(3):
            content_type, body = encoder.encode_request("e", {"A": a}, binary=True)
            decoder.decode_request(content_type, body)
        a[0, 0] += 1.0  # same buffer, new content: the checksum gate must miss
        content_type, body = encoder.encode_request("e", {"A": a}, binary=True)
        header, _ = unpack_frame(body)
        assert header["operands"]["A"][0] != "cached"
        decoded = decoder.decode_request(content_type, body)
        np.testing.assert_array_equal(decoded[0][1]["A"], a)

    def test_pattern_shipped_once_and_identity_cached(self, block_sparse_matrix):
        fmt = GroupCOO.from_dense(block_sparse_matrix, group_size=4)
        encoder, decoder = WireEncoder(), WireDecoder()
        content_type, body = encoder.encode_request("e", {"A": fmt}, binary=True)
        first = decoder.decode_request(content_type, body)[0][1]["A"]
        content_type, body = encoder.encode_request("e", {"A": fmt}, binary=True)
        header, _ = unpack_frame(body)
        assert header["operands"]["A"][0] == "pattern"
        second = decoder.decode_request(content_type, body)[0][1]["A"]
        # One live instance per key: identity survives across requests, so
        # fingerprint-keyed caches (and coalescing keys) stay stable.
        assert second is first
        np.testing.assert_array_equal(first.to_dense(), fmt.to_dense())

    def test_dangling_cached_token_rejected(self):
        with pytest.raises(WireFormatError):
            WireDecoder().decode_request(
                BINARY_CONTENT_TYPE,
                pack_frame({"expression": "e", "operands": {"A": ["cached", 12345]}}),
            )

    def test_cache_effects_applied_before_failure(self):
        encoder, decoder = WireEncoder(), WireDecoder()
        # Batch where the FIRST entry is malformed but the second stores a
        # pattern: the decoder must still apply the second entry's cache
        # effect before re-raising, or the mirror drifts.
        fmt = COO.from_dense(np.eye(4))
        payload = bytearray()
        good = encoder._encode_entry("e", {"A": fmt}, payload)
        bad = {"operands": {}}  # no expression
        body = pack_frame({"requests": [bad, good]}, payload)
        with pytest.raises(WireFormatError):
            decoder.decode_request(BINARY_CONTENT_TYPE, body)
        # The pattern is now resident: a bare reference must resolve.
        content_type, body = encoder.encode_request("e", {"A": fmt}, binary=True)
        decoded = decoder.decode_request(content_type, body)
        np.testing.assert_array_equal(decoded[0][1]["A"].to_dense(), np.eye(4))


# ---------------------------------------------------------------------------
# Results
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("binary", [True, False], ids=["binary", "json"])
def test_result_round_trip(binary, rng):
    output = rng.standard_normal((5, 7))
    content_type, body = encode_result({"latency_ms": 1.5}, output, binary=binary)
    entry, payload = decode_result_body(content_type, body)
    assert entry["latency_ms"] == 1.5
    np.testing.assert_array_equal(decode_result_entry(entry, payload), output)


@pytest.mark.parametrize("binary", [True, False], ids=["binary", "json"])
def test_batch_results_mix_outputs_and_errors(binary, rng):
    output = rng.standard_normal(4)
    content_type, body = encode_batch_results(
        [
            {"output": output, "latency_ms": 0.5},
            {"error": DeadlineExceededError("too slow"), "status": 504},
        ],
        binary=binary,
    )
    parsed, payload = decode_result_body(content_type, body)
    ok, failed = parsed["results"]
    np.testing.assert_array_equal(decode_result_entry(ok, payload), output)
    assert failed["status"] == 504
    assert isinstance(decode_error(failed), DeadlineExceededError)


# ---------------------------------------------------------------------------
# Error contract
# ---------------------------------------------------------------------------
STATUS_TABLE = [
    (GatewayAuthError("missing", status=401), 401),
    (GatewayAuthError("unknown", status=403), 403),
    (ClusterBusyError(8, 8, 0.1), 429),
    (TenantQuotaError("acme", 4, 4, 0.05), 429),
    (DeadlineExceededError("late"), 504),
    (FutureCancelledError("gone"), 409),
    (PoisonedRequestError("poison"), 422),
    (WorkerCrashedError("crash"), 503),
    (ControlThreadError("dead"), 503),
    (SessionClosedError("closed"), 503),
    (WireFormatError("bad frame"), 400),
    (GatewayError("other"), 422),
    (RuntimeError("unknown"), 500),
]


@pytest.mark.parametrize(
    "error,status", STATUS_TABLE, ids=[type(e).__name__ + str(s) for e, s in STATUS_TABLE]
)
def test_http_status_table(error, status):
    assert http_status(error) == status


def test_tenant_quota_error_round_trips_fields():
    rebuilt = decode_error(encode_error(TenantQuotaError("acme", 7, 4, 0.25)))
    assert isinstance(rebuilt, TenantQuotaError)
    assert isinstance(rebuilt, ClusterBusyError)  # taxonomy preserved
    assert (rebuilt.tenant, rebuilt.inflight, rebuilt.limit) == ("acme", 7, 4)
    assert rebuilt.retry_after == 0.25


def test_cluster_busy_error_round_trips_fields():
    rebuilt = decode_error(encode_error(ClusterBusyError(9, 8, 0.5)))
    assert isinstance(rebuilt, ClusterBusyError)
    assert (rebuilt.inflight, rebuilt.limit, rebuilt.retry_after) == (9, 8, 0.5)


def test_auth_error_round_trips_status():
    rebuilt = decode_error(encode_error(GatewayAuthError("unknown API key", status=403)))
    assert isinstance(rebuilt, GatewayAuthError)
    assert rebuilt.status == 403


@pytest.mark.parametrize(
    "error",
    [DeadlineExceededError("late"), PoisonedRequestError("p"), WireFormatError("w")],
    ids=lambda e: type(e).__name__,
)
def test_known_types_come_back_as_themselves(error):
    rebuilt = decode_error(encode_error(error))
    assert type(rebuilt) is type(error)
    assert str(rebuilt) == str(error)


def test_unknown_type_degrades_to_gateway_error():
    rebuilt = decode_error({"error": {"type": "FancyNewError", "message": "boom"}})
    assert isinstance(rebuilt, GatewayError)
    assert "FancyNewError" in str(rebuilt)


def test_malformed_error_body_degrades():
    assert isinstance(decode_error({"error": "not-an-object"}), GatewayError)
