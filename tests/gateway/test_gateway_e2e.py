"""End-to-end gateway behaviour over live HTTP connections.

The bar for each path: the *client-visible* contract — bitwise parity
with direct ``Session.submit``, the exact repro exception types
re-raised across the wire, deadline shedding before a Session slot is
spent, and 429 ``retry_after`` hints honoured by the client's
:class:`~repro.resilience.RetryPolicy`.
"""

from __future__ import annotations

import http.client
import json
import random
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import numpy as np
import pytest

from repro.errors import (
    ClusterBusyError,
    DeadlineExceededError,
    EinsumError,
    GatewayAuthError,
    TenantQuotaError,
    WireFormatError,
)
from repro.gateway import GatewayClient, GatewayConfig, GatewayServer
from repro.gateway.wire import (
    API_KEY_HEADER,
    DEADLINE_HEADER,
    JSON_CONTENT_TYPE,
    WireEncoder,
    encode_error,
    encode_result,
)
from repro.obs.metrics import get_registry
from repro.resilience import RetryPolicy
from repro.runtime.server import InsumResult
from repro.serve import Future, ServeConfig, Session

SPMM_EXPR = "C[m,n] += A[m,k] * B[k,n]"


def submit_and_wait(client, operands, **kwargs):
    return client.submit(SPMM_EXPR, **kwargs, **operands).result(timeout=60)


# ---------------------------------------------------------------------------
# Parity with direct Session.submit
# ---------------------------------------------------------------------------
class TestParity:
    def test_binary_wire_is_bitwise_equal(self, inline_gateway, acme_client, spmm_operands):
        session, _ = inline_gateway
        direct = session.submit(SPMM_EXPR, **spmm_operands).result(timeout=60)
        for _ in range(3):  # repeats drive the blob_store -> cached path
            via_gateway = submit_and_wait(acme_client, spmm_operands)
            assert np.array_equal(direct, via_gateway)

    def test_json_wire_is_bitwise_equal(self, inline_gateway, spmm_operands):
        session, server = inline_gateway
        direct = session.submit(SPMM_EXPR, **spmm_operands).result(timeout=60)
        with GatewayClient(server.url(""), api_key="key-beta", binary=False) as client:
            assert np.array_equal(direct, submit_and_wait(client, spmm_operands))

    @pytest.mark.parametrize("backend", ["inline", "threaded", "cluster"])
    def test_backends_behind_gateway_agree(self, backend, spmm_operands):
        configs = {
            "inline": ServeConfig(),
            "threaded": ServeConfig(workers=2, coalesce=False),
            "cluster": ServeConfig(workers=2, worker_threads=1, coalesce=False),
        }
        with Session("inline") as reference_session:
            reference = reference_session.submit(SPMM_EXPR, **spmm_operands).result(timeout=60)
        with Session(backend, config=configs[backend]) as session:
            server = session.serve_gateway()
            with GatewayClient(server.url("")) as client:
                futures = client.submit_many(
                    [(SPMM_EXPR, spmm_operands)] * 4
                )
                for future in futures:
                    assert np.array_equal(reference, future.result(timeout=120))

    def test_submit_many_mixes_success_and_error(self, acme_client, spmm_operands):
        futures = acme_client.submit_many(
            [(SPMM_EXPR, spmm_operands), ("this is not an einsum", {"A": np.eye(3)})]
        )
        assert futures[0].result(timeout=60).shape == (32, 8)
        with pytest.raises(EinsumError):
            futures[1].result(timeout=60)


# ---------------------------------------------------------------------------
# Auth
# ---------------------------------------------------------------------------
class TestAuth:
    def test_missing_key_is_401(self, inline_gateway, spmm_operands):
        _, server = inline_gateway
        with GatewayClient(server.url("")) as client:
            with pytest.raises(GatewayAuthError) as excinfo:
                submit_and_wait(client, spmm_operands)
        assert excinfo.value.status == 401

    def test_unknown_key_is_403(self, inline_gateway, spmm_operands):
        _, server = inline_gateway
        with GatewayClient(server.url(""), api_key="key-wrong") as client:
            with pytest.raises(GatewayAuthError) as excinfo:
                submit_and_wait(client, spmm_operands)
        assert excinfo.value.status == 403

    def test_anonymous_gateway_needs_no_key(self, open_gateway, spmm_operands):
        _, server = open_gateway
        with GatewayClient(server.url("")) as client:
            assert submit_and_wait(client, spmm_operands).shape == (32, 8)


# ---------------------------------------------------------------------------
# Deadlines
# ---------------------------------------------------------------------------
class TestDeadlines:
    def test_expired_header_sheds_at_the_edge(self, inline_gateway, spmm_operands):
        # Raw HTTP so the client's own pre-flight deadline check cannot
        # fire first: the 504 must come from the server edge.
        _, server = inline_gateway
        content_type, body = WireEncoder().encode_request(
            SPMM_EXPR, spmm_operands, binary=False
        )
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
        try:
            conn.request(
                "POST",
                "/v1/submit",
                body=body,
                headers={
                    "Content-Type": content_type,
                    API_KEY_HEADER: "key-acme",
                    DEADLINE_HEADER: "0.000001",
                },
            )
            response = conn.getresponse()
            payload = json.loads(response.read())
        finally:
            conn.close()
        assert response.status == 504
        assert payload["error"]["type"] == "DeadlineExceededError"

    def test_client_deadline_raises_same_type(self, acme_client, spmm_operands):
        with pytest.raises(DeadlineExceededError):
            submit_and_wait(acme_client, spmm_operands, deadline_ms=0.000001)

    def test_malformed_deadline_header_is_400(self, inline_gateway, spmm_operands):
        _, server = inline_gateway
        content_type, body = WireEncoder().encode_request(
            SPMM_EXPR, spmm_operands, binary=False
        )
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
        try:
            conn.request(
                "POST",
                "/v1/submit",
                body=body,
                headers={
                    "Content-Type": content_type,
                    API_KEY_HEADER: "key-acme",
                    DEADLINE_HEADER: "soon",
                },
            )
            response = conn.getresponse()
            payload = json.loads(response.read())
        finally:
            conn.close()
        assert response.status == 400
        assert payload["error"]["type"] == "WireFormatError"


# ---------------------------------------------------------------------------
# Per-tenant quotas (stub session: settlement is under test control)
# ---------------------------------------------------------------------------
class _StubSession:
    """A Session double whose futures settle only when the test says so."""

    def __init__(self):
        self.futures: list[Future] = []
        self.submitted = threading.Event()

    def submit(self, expression, *, deadline_ms=None, **operands):
        future = Future(session=None)
        self.futures.append(future)
        self.submitted.set()
        return future

    def health(self):
        return {"status": "ok"}


class TestTenantQuotaE2E:
    def test_second_inflight_request_is_429(self, rng):
        stub = _StubSession()
        config = GatewayConfig(
            api_keys={"key-acme": "acme"},
            max_inflight_per_tenant=1,
            quota_retry_after=0.07,
        )
        with GatewayServer(stub, config=config) as server:
            no_retry = RetryPolicy(max_attempts=1)
            with GatewayClient(
                server.url(""), api_key="key-acme", retry_policy=no_retry
            ) as client:
                operands = {"A": rng.standard_normal((2, 2))}
                first = client.submit("e", **operands)
                assert stub.submitted.wait(timeout=30)
                # The slot is held while the first future is unsettled:
                # the next request must be shed with the quota's hint.
                with pytest.raises(TenantQuotaError) as excinfo:
                    client.submit("e", **operands).result(timeout=30)
                assert excinfo.value.tenant == "acme"
                assert excinfo.value.retry_after == 0.07
                output = np.ones((2, 2))
                stub.futures[0]._deliver(
                    InsumResult(request_id=0, expression="e", output=output)
                )
                assert np.array_equal(first.result(timeout=30), output)


# ---------------------------------------------------------------------------
# RetryPolicy honours 429 retry_after
# ---------------------------------------------------------------------------
class TestRetryAfter:
    def test_client_backs_off_at_least_retry_after(self, rng):
        output = rng.standard_normal((3, 3))
        arrivals: list[float] = []

        class Handler(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"

            def do_POST(self):
                self.rfile.read(int(self.headers.get("Content-Length", 0)))
                arrivals.append(time.monotonic())
                if len(arrivals) == 1:
                    body = json.dumps(encode_error(ClusterBusyError(2, 2, 0.15))).encode()
                    status = 429
                    content_type = JSON_CONTENT_TYPE
                else:
                    content_type, body = encode_result(
                        {"latency_ms": 0.1}, output, binary=False
                    )
                    status = 200
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, format, *args):
                pass

        httpd = ThreadingHTTPServer(("127.0.0.1", 0), Handler)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        try:
            policy = RetryPolicy(
                max_attempts=3, base_delay=0.001, max_delay=1.0, rng=random.Random(7)
            )
            url = f"http://127.0.0.1:{httpd.server_address[1]}"
            with GatewayClient(url, retry_policy=policy) as client:
                result = client.submit("e", A=np.eye(2)).result(timeout=30)
            assert np.array_equal(result, output)
            assert len(arrivals) == 2
            # The drawn backoff is floored by the server's hint.
            assert arrivals[1] - arrivals[0] >= 0.15
        finally:
            httpd.shutdown()
            httpd.server_close()
            thread.join(timeout=5)

    def test_no_retry_policy_gives_up_immediately(self, rng):
        calls: list[float] = []

        class Handler(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"

            def do_POST(self):
                self.rfile.read(int(self.headers.get("Content-Length", 0)))
                calls.append(time.monotonic())
                body = json.dumps(encode_error(ClusterBusyError(2, 2, 0.01))).encode()
                self.send_response(429)
                self.send_header("Content-Type", JSON_CONTENT_TYPE)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, format, *args):
                pass

        httpd = ThreadingHTTPServer(("127.0.0.1", 0), Handler)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        try:
            url = f"http://127.0.0.1:{httpd.server_address[1]}"
            with GatewayClient(url, retry_policy=RetryPolicy(max_attempts=1)) as client:
                with pytest.raises(ClusterBusyError):
                    client.submit("e", A=np.eye(2)).result(timeout=30)
            assert len(calls) == 1
        finally:
            httpd.shutdown()
            httpd.server_close()
            thread.join(timeout=5)


# ---------------------------------------------------------------------------
# Observability through the gateway
# ---------------------------------------------------------------------------
class TestObservability:
    def test_request_counters_carry_tenant_and_outcome(
        self, inline_gateway, acme_client, spmm_operands
    ):
        registry = get_registry()
        ok = registry.counter("repro_gateway_requests_total", tenant="acme", outcome="ok")
        before = ok.value()
        submit_and_wait(acme_client, spmm_operands)
        assert ok.value() == before + 1

    def test_auth_failures_count_against_presented_identity(
        self, inline_gateway, spmm_operands
    ):
        _, server = inline_gateway
        registry = get_registry()
        unauthorized = registry.counter(
            "repro_gateway_requests_total", tenant="anonymous", outcome="unauthorized"
        )
        before = unauthorized.value()
        with GatewayClient(server.url("")) as client:
            with pytest.raises(GatewayAuthError):
                submit_and_wait(client, spmm_operands)
        assert unauthorized.value() == before + 1

    def test_trace_spans_cover_the_gateway_path(self, acme_client, spmm_operands):
        future = acme_client.submit(SPMM_EXPR, **spmm_operands)
        future.result(timeout=60)
        trace = future.trace()
        assert trace is not None
        names = {span.name for span in trace.spans()}
        # Gateway-side spans AND session-side spans in one trace: proof
        # the server merged the settled future's trace into the response.
        assert {"gateway.decode", "gateway.wait", "gateway.respond"} <= names
        assert "execute" in names

    def test_ops_endpoint_advertises_the_gateway(self, inline_gateway):
        session, server = inline_gateway
        ops = session.serve_ops()
        conn = http.client.HTTPConnection("127.0.0.1", ops.port, timeout=30)
        try:
            conn.request("GET", "/v1")
            payload = json.loads(conn.getresponse().read())
        finally:
            conn.close()
        assert payload["api_version"] == "v1"
        assert payload["gateway"]["port"] == server.port


# ---------------------------------------------------------------------------
# Surface and lifecycle
# ---------------------------------------------------------------------------
class TestSurface:
    def test_health_and_index(self, acme_client):
        health = acme_client.health()
        assert health["http_status"] == 200
        assert health["status"] == "ok"
        index = acme_client.api_index()
        assert index["api_version"] == "v1"
        assert "POST /v1/submit" in index["endpoints"]

    def test_unknown_path_is_404_and_wrong_method_is_405(self, acme_client):
        status, _, _ = acme_client._simple_request("GET", "/nope")
        assert status == 404
        status, _, _ = acme_client._simple_request("GET", "/v1/submit")
        assert status == 405

    def test_binary_disabled_gateway_rejects_binary_wire(self, spmm_operands):
        with Session("inline") as session:
            server = session.serve_gateway(config=GatewayConfig(binary=False))
            with GatewayClient(server.url(""), binary=True) as client:
                with pytest.raises(WireFormatError):
                    submit_and_wait(client, spmm_operands)
            with GatewayClient(server.url(""), binary=False) as client:
                assert submit_and_wait(client, spmm_operands).shape == (32, 8)

    def test_session_from_env_starts_and_stops_the_gateway(
        self, monkeypatch, spmm_operands
    ):
        monkeypatch.setenv("REPRO_GATEWAY_PORT", "0")
        monkeypatch.setenv("REPRO_GATEWAY_API_KEYS", "env-key=envtenant")
        session = Session.from_env()
        try:
            server = session.gateway
            assert server is not None
            with GatewayClient(server.url(""), api_key="env-key") as client:
                assert submit_and_wait(client, spmm_operands).shape == (32, 8)
        finally:
            session.close()
        assert session.gateway is None

    def test_stop_is_idempotent_and_refuses_traffic(self, spmm_operands):
        session = Session("inline")
        server = GatewayServer(session, config=GatewayConfig()).start()
        port = server.port
        server.stop()
        server.stop()
        with pytest.raises(OSError):
            conn = http.client.HTTPConnection("127.0.0.1", port, timeout=2)
            try:
                conn.request("GET", "/v1")
                conn.getresponse()
            finally:
                conn.close()
        session.close()
