"""Tests for the analysis helpers (LoC accounting, metrics, reporting)."""

import pytest

from repro.analysis import (
    PAPER_BASELINE_LOC,
    count_lines_of_code,
    format_series,
    format_table,
    geometric_mean,
    loc_saving,
    speedup,
)


def test_count_lines_of_code_skips_blank_and_comments():
    source = """
# a comment
x = 1

y = 2  # trailing comment counts as code
"""
    assert count_lines_of_code(source) == 2


def test_paper_baseline_loc_table():
    assert PAPER_BASELINE_LOC["sparse_convolution"] == ("TorchSparse", 4491)
    assert PAPER_BASELINE_LOC["structured_spmm"][1] == 202


def test_loc_saving_matches_table1():
    assert loc_saving("structured_spmm", 1) == 202
    assert loc_saving("unstructured_spmm", 1) == 1918
    assert loc_saving("equivariant_tensor_product", 1) == 225
    assert loc_saving("sparse_convolution", 1) == 4491


def test_loc_saving_validation():
    with pytest.raises(KeyError):
        loc_saving("unknown", 1)
    with pytest.raises(ValueError):
        loc_saving("structured_spmm", 0)


def test_speedup():
    assert speedup(2.0, 1.0) == 2.0
    assert speedup(1.0, 2.0) == 0.5
    with pytest.raises(ValueError):
        speedup(1.0, 0.0)
    with pytest.raises(ValueError):
        speedup(-1.0, 1.0)


def test_geometric_mean():
    assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
    assert geometric_mean([2.0, 2.0, 2.0]) == pytest.approx(2.0)
    with pytest.raises(ValueError):
        geometric_mean([])
    with pytest.raises(ValueError):
        geometric_mean([1.0, 0.0])


def test_format_table_alignment():
    table = format_table(["name", "value"], [["a", 1.5], ["long-name", 20.0]], title="T")
    lines = table.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[1] and "value" in lines[1]
    assert len(lines) == 5
    assert "1.50" in table and "20.00" in table


def test_format_series():
    text = format_series("g", [1, 2], {"runtime": [0.5, 0.25], "size": [10.0, 20.0]})
    assert "runtime" in text and "size" in text
    assert "0.500" in text
