"""End-to-end tests for the InsumServer front door."""

import numpy as np
import pytest

from repro import InsumServer, insum, sparse_einsum
from repro.errors import EinsumValidationError
from repro.formats import COO, GroupCOO


def _mixed_workload(rng, count=100):
    """``count`` requests cycling over three distinct expressions.

    Shapes are fixed per expression so a warm plan cache serves every
    repeat — the serving pattern the runtime is built for.
    """
    spmm_matrix = np.where(rng.random((32, 48)) < 0.2, rng.standard_normal((32, 48)), 0.0)
    spmv_matrix = np.where(rng.random((24, 24)) < 0.3, rng.standard_normal((24, 24)), 0.0)
    spmm = GroupCOO.from_dense(spmm_matrix, group_size=4)
    spmv = COO.from_dense(spmv_matrix)
    recipes = [
        ("C[m,n] += A[m,k] * B[k,n]", lambda: dict(A=spmm, B=rng.standard_normal((48, 8)))),
        ("y[m] += A[m,k] * x[k]", lambda: dict(A=spmv, x=rng.standard_normal(24))),
        ("C[m,n] += A[k,m] * B[k,n]", lambda: dict(A=spmv, B=rng.standard_normal((24, 6)))),
    ]
    return [
        (expression, make())
        for expression, make in (recipes[i % len(recipes)] for i in range(count))
    ]


def test_mixed_100_request_workload_end_to_end(rng):
    """The ISSUE acceptance scenario: 100 requests over 3 expressions.

    Every request's output must be identical to a direct ``sparse_einsum``
    call (same code path, deterministic NumPy execution), and the plan
    cache must serve >90% of lookups over the window.
    """
    requests = _mixed_workload(rng, count=100)
    with InsumServer(num_workers=4) as server:
        results = server.run_batch(requests)
        stats = server.stats()

    assert len(results) == 100
    assert stats.completed == 100 and stats.failed == 0
    for result, (expression, operands) in zip(results, requests):
        assert result.ok
        np.testing.assert_array_equal(result.unwrap(), sparse_einsum(expression, **operands))
    assert len({expression for expression, _ in requests}) == 3
    assert stats.cache_hit_rate > 0.9
    assert stats.throughput_rps > 0
    assert stats.p95_latency_ms >= stats.p50_latency_ms > 0
    assert "hit rate" in stats.summary()


def test_submit_gather_out_of_order(rng):
    dense = np.where(rng.random((8, 8)) < 0.5, rng.standard_normal((8, 8)), 0.0)
    fmt = COO.from_dense(dense)
    with InsumServer(num_workers=2) as server:
        first = server.enqueue("C[m,n] += A[m,k] * B[k,n]", A=fmt, B=np.eye(8))
        second = server.enqueue("C[m,n] += A[m,k] * B[k,n]", A=fmt, B=2.0 * np.eye(8))
        late, early = server.collect([second, first])
    np.testing.assert_allclose(early.unwrap(), dense, atol=1e-12)
    np.testing.assert_allclose(late.unwrap(), 2.0 * dense, atol=1e-12)
    assert early.request_id == first and late.request_id == second


def test_dense_indirect_requests_use_insum_path(rng):
    coo = COO.from_dense(np.where(rng.random((8, 12)) < 0.4, 1.0, 0.0))
    b = rng.standard_normal((12, 4))
    operands = dict(
        C=np.zeros((8, 4)), AV=coo.values, AM=coo.coords[0], AK=coo.coords[1], B=b
    )
    expression = "C[AM[p],n] += AV[p] * B[AK[p],n]"
    with InsumServer(num_workers=2) as server:
        ticket = server.enqueue(expression, **operands)
        (result,) = server.collect([ticket])
    np.testing.assert_array_equal(result.unwrap(), insum(expression, **operands))


def test_failed_request_reports_error_and_server_survives(rng):
    fmt = COO.from_dense(np.eye(4))
    with InsumServer(num_workers=2) as server:
        bad = server.enqueue("C[m,n] += A[m,k] * B[k,n]", A=fmt, B=np.zeros((7, 3)))
        good = server.enqueue("C[m,n] += A[m,k] * B[k,n]", A=fmt, B=np.eye(4))
        bad_result, good_result = server.collect([bad, good])
        stats = server.stats()
    assert not bad_result.ok
    with pytest.raises(EinsumValidationError):
        bad_result.unwrap()
    assert good_result.ok
    np.testing.assert_array_equal(good_result.unwrap(), np.eye(4))
    assert stats.failed == 1 and stats.completed == 1


def test_gather_all_without_tickets(rng):
    fmt = COO.from_dense(np.eye(4))
    with InsumServer(num_workers=2) as server:
        for scale in (1.0, 2.0, 3.0):
            server.enqueue("C[m,n] += A[m,k] * B[k,n]", A=fmt, B=scale * np.eye(4))
        results = server.collect()
    assert [r.request_id for r in results] == [0, 1, 2]
    assert all(r.ok for r in results)


def test_operator_reuse_across_requests(rng):
    fmt = COO.from_dense(np.eye(4))
    with InsumServer(num_workers=1) as server:
        for _ in range(5):
            server.enqueue("C[m,n] += A[m,k] * B[k,n]", A=fmt, B=np.eye(4))
        server.collect()
        assert server.expressions_served == ["C[m,n] += A[m,k] * B[k,n]"]


def test_reset_stats_opens_new_window(rng):
    fmt = COO.from_dense(np.eye(4))
    with InsumServer(num_workers=1) as server:
        server.enqueue("C[m,n] += A[m,k] * B[k,n]", A=fmt, B=np.eye(4))
        server.collect()
        server.reset_stats()
        assert server.stats().completed == 0
        server.enqueue("C[m,n] += A[m,k] * B[k,n]", A=fmt, B=np.eye(4))
        server.collect()
        stats = server.stats()
    assert stats.completed == 1
    assert stats.cache_hit_rate == 1.0  # warm cache: the repeat is a pure hit


def test_sharded_server_matches_unsharded(rng):
    dense = np.where(rng.random((64, 32)) < 0.2, np.round(rng.standard_normal((64, 32)) * 8), 0.0)
    fmt = GroupCOO.from_dense(dense, group_size=4)
    b = np.round(rng.standard_normal((32, 6)) * 8)
    expression = "C[m,n] += A[m,k] * B[k,n]"
    with InsumServer(num_workers=2, num_shards=4) as server:
        ticket = server.enqueue(expression, A=fmt, B=b)
        (result,) = server.collect([ticket])
    np.testing.assert_array_equal(result.unwrap(), dense @ b)


def test_gather_consumed_or_unknown_ticket_raises_keyerror(rng):
    fmt = COO.from_dense(np.eye(4))
    with InsumServer(num_workers=1) as server:
        ticket = server.enqueue("C[m,n] += A[m,k] * B[k,n]", A=fmt, B=np.eye(4))
        (result,) = server.collect([ticket])
        assert result.ok
        with pytest.raises(KeyError, match="not in flight"):
            server.collect([ticket])  # already consumed: must not block forever
        with pytest.raises(KeyError, match="not in flight"):
            server.collect([999])  # never submitted


def test_submit_after_close_raises(rng):
    server = InsumServer(num_workers=1)
    server.close()
    with pytest.raises(RuntimeError, match="closed"):
        server.enqueue("C[i] += A[i]", A=np.ones(3), C=np.zeros(3))
