"""Concurrency tests for same-plan request coalescing in InsumServer."""

import numpy as np
import pytest

import repro.engine.coalesce as coalesce_module
from repro import InsumServer, sparse_einsum
from repro.kernels import FullyConnectedTensorProduct


@pytest.fixture
def spmm_pattern(rng):
    dense = np.where(rng.random((48, 64)) < 0.1, rng.standard_normal((48, 64)), 0.0)
    from repro.formats import GroupCOO

    return dense, GroupCOO.from_dense(dense, group_size=4)


def test_coalesced_batches_return_per_request_results(spmm_pattern, rng):
    """Many same-plan requests, distinct values: every ticket gets its own answer."""
    dense, fmt = spmm_pattern
    requests = [
        ("C[m,n] += A[m,k] * B[k,n]", dict(A=fmt, B=rng.standard_normal((64, 8))))
        for _ in range(48)
    ]
    with InsumServer(num_workers=4) as server:
        results = server.run_batch(requests)
        stats = server.stats()
    assert all(result.ok for result in results)
    for result, (_, operands) in zip(results, requests):
        np.testing.assert_allclose(result.unwrap(), dense @ operands["B"], atol=1e-9)
    # With 48 identical-key requests racing 4 workers, at least some must
    # have been served through coalesced batches.
    assert stats.coalesced_requests > 0 and stats.coalesced_batches > 0
    assert stats.coalesced_requests >= 2 * stats.coalesced_batches
    assert 0.0 < stats.coalesce_rate <= 1.0


def test_coalescing_keeps_distinct_patterns_apart(rng):
    """Two patterns behind one expression must never share a batch's metadata."""
    from repro.formats import COO

    dense_a = np.where(rng.random((16, 16)) < 0.3, rng.standard_normal((16, 16)), 0.0)
    dense_b = np.where(rng.random((16, 16)) < 0.3, rng.standard_normal((16, 16)), 0.0)
    fmt_a, fmt_b = COO.from_dense(dense_a), COO.from_dense(dense_b)
    requests = []
    for i in range(32):
        dense, fmt = (dense_a, fmt_a) if i % 2 == 0 else (dense_b, fmt_b)
        requests.append(
            (dense, ("C[m,n] += A[m,k] * B[k,n]", dict(A=fmt, B=rng.standard_normal((16, 4)))))
        )
    with InsumServer(num_workers=2) as server:
        results = server.run_batch([request for _, request in requests])
    for result, (dense, (_, operands)) in zip(results, requests):
        assert result.ok
        np.testing.assert_allclose(result.unwrap(), dense @ operands["B"], atol=1e-9)


def test_coalesce_off_is_bitwise_identical_to_direct_calls(spmm_pattern, rng):
    dense, fmt = spmm_pattern
    requests = [
        ("C[m,n] += A[m,k] * B[k,n]", dict(A=fmt, B=rng.standard_normal((64, 8))))
        for _ in range(12)
    ]
    with InsumServer(num_workers=2, coalesce=False) as server:
        results = server.run_batch(requests)
        stats = server.stats()
    assert stats.coalesced_requests == 0
    for result, (expression, operands) in zip(results, requests):
        np.testing.assert_array_equal(result.unwrap(), sparse_einsum(expression, **operands))


def test_indirect_requests_are_not_coalesced(spmm_pattern, rng):
    """Raw indirect Einsums (bound output) ride the per-request path untouched."""
    dense, fmt = spmm_pattern
    equivariant = FullyConnectedTensorProduct(l_max=1, channels=4)
    x, y, w = equivariant.random_inputs(batch=2, rng=rng)
    z = np.zeros((2, equivariant.slot_dimension, equivariant.channels))
    requests = []
    for i in range(12):
        if i % 3 == 2:
            requests.append(
                (equivariant.expression, dict(Z=z.copy(), X=x, Y=y, W=w, **equivariant._grouped))
            )
        else:
            requests.append(
                ("C[m,n] += A[m,k] * B[k,n]", dict(A=fmt, B=rng.standard_normal((64, 8))))
            )
    with InsumServer(num_workers=2) as server:
        results = server.run_batch(requests)
    for result, (expression, operands) in zip(results, requests):
        assert result.ok
        np.testing.assert_allclose(result.unwrap(), _direct(expression, operands), atol=1e-9)


def _direct(expression, operands):
    from repro import insum

    if any(hasattr(value, "format_name") for value in operands.values()):
        return sparse_einsum(expression, **operands)
    return insum(expression, **operands)


def test_group_failure_falls_back_to_per_request(monkeypatch, spmm_pattern, rng):
    """A crash in the batched path must degrade, not fail the requests."""
    dense, fmt = spmm_pattern

    def boom(*args, **kwargs):
        raise RuntimeError("forced batching failure")

    monkeypatch.setattr(coalesce_module, "stack_group", boom)
    requests = [
        ("C[m,n] += A[m,k] * B[k,n]", dict(A=fmt, B=rng.standard_normal((64, 8))))
        for _ in range(16)
    ]
    with InsumServer(num_workers=2) as server:
        results = server.run_batch(requests)
        stats = server.stats()
    assert stats.coalesced_requests == 0  # every batch fell back
    for result, (_, operands) in zip(results, requests):
        assert result.ok
        np.testing.assert_allclose(result.unwrap(), dense @ operands["B"], atol=1e-9)


def test_bad_request_inside_window_still_fails_cleanly(spmm_pattern, rng):
    dense, fmt = spmm_pattern
    good = ("C[m,n] += A[m,k] * B[k,n]", dict(A=fmt, B=rng.standard_normal((64, 8))))
    bad = ("C[m,n] += A[m,k] * B[k,n]", dict(A=fmt, B=rng.standard_normal((7, 8))))
    requests = [good, bad] + [good] * 6
    with InsumServer(num_workers=1) as server:
        results = server.run_batch(requests)
        stats = server.stats()
    assert not results[1].ok
    assert stats.failed == 1 and stats.completed == len(requests) - 1
    for position, result in enumerate(results):
        if position == 1:
            continue
        np.testing.assert_allclose(result.unwrap(), dense @ requests[position][1]["B"], atol=1e-9)


def test_single_worker_coalesces_queued_backlog(spmm_pattern, rng):
    dense, fmt = spmm_pattern
    requests = [
        ("C[m,n] += A[m,k] * B[k,n]", dict(A=fmt, B=rng.standard_normal((64, 8))))
        for _ in range(20)
    ]
    with InsumServer(num_workers=1, coalesce_max=8) as server:
        results = server.run_batch(requests)
        stats = server.stats()
    assert all(result.ok for result in results)
    assert stats.coalesced_requests > 0
    for result, (_, operands) in zip(results, requests):
        np.testing.assert_allclose(result.unwrap(), dense @ operands["B"], atol=1e-9)
