"""Tests for the ShardedExecutor: exactness, fallback, parallel paths."""

import numpy as np
import pytest

from repro import ShardedExecutor, StackedSparse, sparse_einsum
from repro.errors import EinsumValidationError
from repro.formats import COO, ELL, BlockGroupCOO, GroupCOO


def integer_matrix(rng, m, k, density=0.2):
    mask = rng.random((m, k)) < density
    dense = np.where(mask, np.round(rng.standard_normal((m, k)) * 8.0), 0.0)
    if not dense.any():
        dense[0, 0] = 1.0
    return dense


@pytest.mark.parametrize("num_shards", [2, 3, 4, 8])
def test_groupcoo_sharded_matches_sequential_bit_for_bit(rng, num_shards):
    dense = integer_matrix(rng, 64, 48)
    fmt = GroupCOO.from_dense(dense, group_size=4)
    b = np.round(rng.standard_normal((48, 9)) * 8.0)
    reference = sparse_einsum("C[m,n] += A[m,k] * B[k,n]", A=fmt, B=b)
    executor = ShardedExecutor(num_shards=num_shards)
    sharded = executor.run("C[m,n] += A[m,k] * B[k,n]", A=fmt, B=b)
    assert executor.last_mode == "sharded"
    assert 2 <= executor.last_num_shards <= num_shards
    np.testing.assert_array_equal(sharded, reference)


def test_coo_sharded_matches_sequential(rng):
    dense = integer_matrix(rng, 40, 30)
    fmt = COO.from_dense(dense)
    b = np.round(rng.standard_normal((30, 5)) * 8.0)
    executor = ShardedExecutor(num_shards=4)
    out = executor.run("C[m,n] += A[m,k] * B[k,n]", A=fmt, B=b)
    np.testing.assert_array_equal(out, dense @ b)


def test_blockgroupcoo_sharded(rng):
    dense = np.zeros((64, 64))
    for block_row in range(8):
        dense[block_row * 8 : block_row * 8 + 8, :8] = np.round(
            rng.standard_normal((8, 8)) * 4.0
        )
    fmt = BlockGroupCOO.from_dense(dense, (8, 8), group_size=2)
    b = np.round(rng.standard_normal((64, 6)) * 4.0)
    executor = ShardedExecutor(num_shards=4)
    out = executor.run("C[m,n] += A[m,k] * B[k,n]", A=fmt, B=b)
    assert executor.last_mode == "sharded"
    np.testing.assert_array_equal(out, dense @ b)


def test_stacked_sparse_shards_by_base_rows(rng):
    mask = rng.random((32, 24)) < 0.25
    dense = np.where(mask[None], np.round(rng.standard_normal((4, 32, 24)) * 8.0), 0.0)
    stacked = StackedSparse.from_dense(dense, GroupCOO, group_size=2)
    b = np.round(rng.standard_normal((24, 5)) * 8.0)
    executor = ShardedExecutor(num_shards=4)
    out = executor.run("C[s,m,n] += A[s,m,k] * B[k,n]", A=stacked, B=b)
    assert executor.last_mode == "sharded"
    np.testing.assert_array_equal(out, dense @ b)


def test_unsupported_format_falls_back_to_sequential(rng):
    dense = integer_matrix(rng, 16, 12)
    fmt = ELL.from_dense(dense)  # no scatter_row_ids hook
    b = np.round(rng.standard_normal((12, 3)) * 8.0)
    executor = ShardedExecutor(num_shards=4)
    out = executor.run("C[m,n] += A[m,k] * B[k,n]", A=fmt, B=b)
    assert executor.last_mode == "sequential"
    np.testing.assert_array_equal(out, dense @ b)


def test_tiny_matrix_falls_back_when_one_shard(rng):
    dense = np.zeros((4, 4))
    dense[0, 0] = 3.0  # single unit -> single shard -> sequential
    fmt = COO.from_dense(dense)
    executor = ShardedExecutor(num_shards=4)
    out = executor.run("C[m,n] += A[m,k] * B[k,n]", A=fmt, B=np.eye(4))
    assert executor.last_mode == "sequential"
    np.testing.assert_array_equal(out, dense)


def test_initial_output_added_exactly_once(rng):
    dense = integer_matrix(rng, 32, 16)
    fmt = GroupCOO.from_dense(dense, group_size=2)
    b = np.round(rng.standard_normal((16, 4)) * 8.0)
    initial = np.round(rng.standard_normal((32, 4)) * 8.0)
    executor = ShardedExecutor(num_shards=4)
    out = executor.run("C[m,n] += A[m,k] * B[k,n]", A=fmt, B=b, C=initial.copy())
    np.testing.assert_array_equal(out, initial + dense @ b)


def test_requires_exactly_one_sparse_operand(rng):
    executor = ShardedExecutor(num_shards=2)
    with pytest.raises(EinsumValidationError, match="exactly one"):
        executor.run("C[m,n] += A[m,k] * B[k,n]", A=np.eye(4), B=np.eye(4))


def test_spmv_sharded(rng):
    dense = integer_matrix(rng, 48, 32)
    fmt = COO.from_dense(dense)
    x = np.round(rng.standard_normal(32) * 8.0)
    executor = ShardedExecutor(num_shards=3)
    out = executor.run("y[m] += A[m,k] * x[k]", A=fmt, x=x)
    np.testing.assert_array_equal(out, dense @ x)
