"""Tests for StackedSparse: construction, round-trips, widened execution."""

import numpy as np
import pytest

from repro import StackedSparse, sparse_einsum
from repro.errors import FormatError, ShapeError
from repro.formats import BCSR, COO, ELL, BlockGroupCOO, GroupCOO


def integer_stack(rng, stack, m, k, density=0.2):
    """A stack of same-union-pattern matrices with integer-valued entries.

    Integer values keep floating-point addition exact, so batched and
    per-item executions must agree bit-for-bit regardless of reduction
    order.
    """
    mask = rng.random((m, k)) < density
    values = np.round(rng.standard_normal((stack, m, k)) * 8.0)
    dense = np.where(mask[None, :, :], values, 0.0)
    if not dense.any():
        dense[:, 0, 0] = 1.0
    return dense


# ---------------------------------------------------------------------------
# Construction
# ---------------------------------------------------------------------------
def test_from_dense_round_trip_groupcoo(rng):
    dense = integer_stack(rng, 4, 16, 24)
    stacked = StackedSparse.from_dense(dense, GroupCOO, group_size=4)
    assert stacked.stack_size == 4
    assert stacked.shape == (4, 16, 24)
    np.testing.assert_array_equal(stacked.to_dense(), dense)


def test_from_dense_round_trip_coo(rng):
    dense = integer_stack(rng, 3, 8, 12)
    stacked = StackedSparse.from_dense(dense, COO)
    np.testing.assert_array_equal(stacked.to_dense(), dense)


def test_from_dense_round_trip_ell(rng):
    dense = integer_stack(rng, 3, 8, 12)
    stacked = StackedSparse.from_dense(dense, ELL)
    np.testing.assert_array_equal(stacked.to_dense(), dense)


def test_from_dense_round_trip_bcsr(rng):
    dense = integer_stack(rng, 3, 16, 16, density=0.3)
    stacked = StackedSparse.from_dense(dense, BCSR, block_shape=(4, 4))
    np.testing.assert_array_equal(stacked.to_dense(), dense)


def test_from_dense_union_pattern_allows_per_item_zeros(rng):
    # Item 0 and item 1 have *different* nonzero positions; the union
    # pattern must carry both, storing explicit zeros where an item is zero.
    a = np.zeros((2, 4, 4))
    a[0, 0, 0] = 2.0
    a[1, 3, 3] = 5.0
    stacked = StackedSparse.from_dense(a, COO)
    np.testing.assert_array_equal(stacked.to_dense(), a)
    assert stacked.base.nnz == 2  # union pattern has both positions


def test_from_items_shares_metadata(rng):
    dense = integer_stack(rng, 3, 12, 10)
    pattern = GroupCOO.from_dense(np.where(dense.any(axis=0), 1.0, 0.0), group_size=2)
    items = [pattern.with_values(np.zeros_like(pattern.values)) for _ in range(3)]
    stacked = StackedSparse.from_items(items)
    assert stacked.stack_size == 3
    assert stacked.base.tensors("A")["AM"] is items[0].tensors("A")["AM"]


def test_from_items_rejects_mismatched_patterns(rng):
    a = COO.from_dense(np.eye(4))
    b = COO.from_dense(np.fliplr(np.eye(4)))
    with pytest.raises(FormatError, match="pattern"):
        StackedSparse.from_items([a, b])


def test_from_items_rejects_mixed_classes(rng):
    a = COO.from_dense(np.eye(4))
    b = GroupCOO.from_dense(np.eye(4), group_size=1)
    with pytest.raises(FormatError, match="expected"):
        StackedSparse.from_items([a, b])


def test_data_shape_validated(rng):
    base = COO.from_dense(np.eye(4))
    with pytest.raises(ShapeError):
        StackedSparse(base, np.zeros((2, base.nnz + 1)))


def test_item_accessor_views_one_slice(rng):
    dense = integer_stack(rng, 4, 10, 10)
    stacked = StackedSparse.from_dense(dense, COO)
    np.testing.assert_array_equal(stacked.item(2).to_dense(), dense[2])
    assert len(list(stacked.items())) == 4


# ---------------------------------------------------------------------------
# Widened execution: bit-for-bit against the per-item reference
# ---------------------------------------------------------------------------
@pytest.mark.parametrize(
    "factory,kwargs",
    [
        (COO, {}),
        (GroupCOO, {"group_size": 4}),
        (ELL, {}),
    ],
)
def test_stacked_spmm_matches_per_item_bit_for_bit(rng, factory, kwargs):
    dense = integer_stack(rng, 5, 16, 24)
    stacked = StackedSparse.from_dense(dense, factory, **kwargs)
    b = np.round(rng.standard_normal((24, 7)) * 8.0)
    batched = sparse_einsum("C[s,m,n] += A[s,m,k] * B[k,n]", A=stacked, B=b)
    reference = np.stack(
        [
            sparse_einsum("C[m,n] += A[m,k] * B[k,n]", A=item, B=b)
            for item in stacked.items()
        ]
    )
    np.testing.assert_array_equal(batched, reference)
    np.testing.assert_array_equal(batched, dense @ b)


def test_stacked_blockgroupcoo_spmm(rng):
    dense = np.zeros((3, 32, 32))
    dense[:, :8, :8] = np.round(rng.standard_normal((3, 8, 8)) * 4.0)
    dense[:, 16:24, 8:16] = np.round(rng.standard_normal((3, 8, 8)) * 4.0)
    stacked = StackedSparse.from_dense(
        dense, BlockGroupCOO, block_shape=(8, 8), group_size=2
    )
    b = np.round(rng.standard_normal((32, 5)) * 4.0)
    batched = sparse_einsum("C[s,m,n] += A[s,m,k] * B[k,n]", A=stacked, B=b)
    np.testing.assert_array_equal(batched, dense @ b)


def test_stacked_with_per_item_dense_operand(rng):
    dense = integer_stack(rng, 4, 12, 16)
    stacked = StackedSparse.from_dense(dense, GroupCOO, group_size=2)
    b = np.round(rng.standard_normal((4, 16, 6)) * 8.0)
    batched = sparse_einsum("C[s,m,n] += A[s,m,k] * B[s,k,n]", A=stacked, B=b)
    np.testing.assert_array_equal(batched, np.einsum("smk,skn->smn", dense, b))


def test_stacked_float_values_match_to_tolerance(rng):
    dense = np.where(
        rng.random((16, 20))[None] < 0.25, rng.standard_normal((6, 16, 20)), 0.0
    )
    stacked = StackedSparse.from_dense(dense, GroupCOO, group_size=4)
    b = rng.standard_normal((20, 8))
    batched = sparse_einsum("C[s,m,n] += A[s,m,k] * B[k,n]", A=stacked, B=b)
    np.testing.assert_allclose(batched, dense @ b, atol=1e-12)


def test_stack_index_collision_raises(rng):
    dense = integer_stack(rng, 2, 8, 8)
    stacked = StackedSparse.from_dense(dense, COO)
    with pytest.raises(FormatError, match="collides"):
        # COO introduces the position variable "p"; using it as the stack
        # index must be rejected, not silently miscompiled.
        sparse_einsum("C[p,m,n] += A[p,m,k] * B[k,n]", A=stacked, B=np.zeros((8, 3)))


def test_rank_mismatch_raises(rng):
    from repro.errors import EinsumValidationError

    stacked = StackedSparse.from_dense(integer_stack(rng, 2, 8, 8), COO)
    with pytest.raises(EinsumValidationError, match="accessed with"):
        sparse_einsum("C[m,n] += A[m,k] * B[k,n]", A=stacked, B=np.zeros((8, 3)))


def test_nesting_rejected(rng):
    stacked = StackedSparse.from_dense(integer_stack(rng, 2, 8, 8), COO)
    with pytest.raises(FormatError, match="nesting"):
        StackedSparse(stacked, stacked.data[None])
