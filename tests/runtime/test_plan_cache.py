"""Tests for the process-wide PlanCache and its API integration."""

import numpy as np
import pytest

from repro import Insum, clear_plan_cache, get_plan_cache, insum, sparse_einsum
from repro.formats import COO, GroupCOO
from repro.runtime.plan_cache import CachedPlan, PlanCache


@pytest.fixture(autouse=True)
def fresh_cache():
    """Isolate every test from compilations cached by earlier tests."""
    clear_plan_cache()
    yield
    clear_plan_cache()


def _spmm_tensors(rng, n_cols=4):
    dense = np.where(rng.random((8, 12)) < 0.4, rng.standard_normal((8, 12)), 0.0)
    coo = COO.from_dense(dense)
    return dict(
        C=np.zeros((8, n_cols)),
        AV=coo.values,
        AM=coo.coords[0],
        AK=coo.coords[1],
        B=rng.standard_normal((12, n_cols)),
    )


# ---------------------------------------------------------------------------
# The cache data structure itself
# ---------------------------------------------------------------------------
def test_lru_eviction_order():
    cache = PlanCache(maxsize=2)
    cache.put("a", CachedPlan(plan=1, compiled=1))
    cache.put("b", CachedPlan(plan=2, compiled=2))
    assert cache.get("a") is not None  # promotes "a" to MRU
    cache.put("c", CachedPlan(plan=3, compiled=3))  # evicts "b"
    assert "b" not in cache
    assert "a" in cache and "c" in cache
    stats = cache.stats()
    assert stats.evictions == 1
    assert stats.size == 2


def test_stats_counters_and_hit_rate():
    cache = PlanCache(maxsize=4)
    assert cache.get("missing") is None
    cache.put("k", CachedPlan(plan=None, compiled=None))
    assert cache.get("k") is not None
    stats = cache.stats()
    assert (stats.hits, stats.misses) == (1, 1)
    assert stats.hit_rate == 0.5
    assert "hit rate" in stats.summary()


def test_stats_since_delta():
    cache = PlanCache()
    cache.get("x")
    mark = cache.stats()
    cache.put("x", CachedPlan(plan=None, compiled=None))
    cache.get("x")
    cache.get("x")
    delta = cache.stats().since(mark)
    assert (delta.hits, delta.misses) == (2, 0)


def test_resize_evicts_lru():
    cache = PlanCache(maxsize=4)
    for key in "abcd":
        cache.put(key, CachedPlan(plan=key, compiled=key))
    cache.resize(2)
    assert len(cache) == 2
    assert "c" in cache and "d" in cache


def test_put_is_first_writer_wins():
    cache = PlanCache()
    first = cache.put("k", CachedPlan(plan="first", compiled="first"))
    second = cache.put("k", CachedPlan(plan="second", compiled="second"))
    assert first is second
    assert second.compiled == "first"


def test_invalid_maxsize_rejected():
    with pytest.raises(ValueError):
        PlanCache(maxsize=0)


# ---------------------------------------------------------------------------
# Signature correctness (the dtype satellite fix)
# ---------------------------------------------------------------------------
def test_signature_distinguishes_dtypes(rng):
    tensors = _spmm_tensors(rng)
    op = Insum("C[AM[p],n] += AV[p] * B[AK[p],n]")
    as_f64 = op.compile(**tensors)
    tensors32 = dict(tensors, B=tensors["B"].astype(np.float32))
    as_f32 = op.compile(**tensors32)
    assert as_f64 is not as_f32  # same shapes, different dtypes


def test_signature_shared_for_identical_shapes_and_dtypes(rng):
    tensors = _spmm_tensors(rng)
    op = Insum("C[AM[p],n] += AV[p] * B[AK[p],n]")
    first = op.compile(**tensors)
    second = op.compile(**{k: v.copy() for k, v in tensors.items()})
    assert first is second


# ---------------------------------------------------------------------------
# One-shot helpers route through the global cache
# ---------------------------------------------------------------------------
def test_one_shot_insum_reuses_global_cache(rng):
    tensors = _spmm_tensors(rng)
    expected = get_plan_cache().stats().misses
    insum("C[AM[p],n] += AV[p] * B[AK[p],n]", **tensors)
    insum("C[AM[p],n] += AV[p] * B[AK[p],n]", **tensors)
    insum("C[AM[p],n] += AV[p] * B[AK[p],n]", **tensors)
    stats = get_plan_cache().stats()
    assert stats.misses == expected + 1  # one compile, then pure hits
    assert stats.hits >= 2


def test_one_shot_sparse_einsum_reuses_global_cache(rng):
    dense = np.where(rng.random((16, 24)) < 0.3, rng.standard_normal((16, 24)), 0.0)
    fmt = GroupCOO.from_dense(dense, group_size=4)
    b = rng.standard_normal((24, 5))
    sparse_einsum("C[m,n] += A[m,k] * B[k,n]", A=fmt, B=b)
    mark = get_plan_cache().stats()
    out = sparse_einsum("C[m,n] += A[m,k] * B[k,n]", A=fmt, B=b)
    delta = get_plan_cache().stats().since(mark)
    assert delta.misses == 0 and delta.hits == 1
    np.testing.assert_allclose(out, dense @ b, atol=1e-10)


def test_distinct_backends_do_not_share_kernels(rng):
    tensors = _spmm_tensors(rng)
    fused = Insum("C[AM[p],n] += AV[p] * B[AK[p],n]").compile(**tensors)
    eager = Insum("C[AM[p],n] += AV[p] * B[AK[p],n]", backend="eager").compile(**tensors)
    assert fused is not eager


def test_bounds_still_checked_on_cache_hit(rng):
    from repro.errors import EinsumValidationError

    tensors = _spmm_tensors(rng)
    insum("C[AM[p],n] += AV[p] * B[AK[p],n]", **tensors)
    bad = dict(tensors, AM=np.full_like(tensors["AM"], 99))
    with pytest.raises(EinsumValidationError, match="out of"):
        insum("C[AM[p],n] += AV[p] * B[AK[p],n]", **bad)


def test_cross_instance_sharing(rng):
    tensors = _spmm_tensors(rng)
    first = Insum("C[AM[p],n] += AV[p] * B[AK[p],n]").compile(**tensors)
    second = Insum("C[AM[p],n] += AV[p] * B[AK[p],n]").compile(**tensors)
    assert first is second
