"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng(seed) -> np.random.Generator:
    """A deterministic per-test generator derived from the session ``--seed``.

    A named :func:`repro.utils.rng` stream rather than a hard-coded
    ``default_rng`` seed, so ``pytest --seed N`` reproduces the whole
    suite's draws and no test can perturb another's stream.
    """
    from repro.utils.rng import rng as rng_stream

    return rng_stream(seed, "tests/shared")


@pytest.fixture
def small_sparse_matrix(rng) -> np.ndarray:
    """A small random sparse matrix with ~25% density (8 x 12)."""
    mask = rng.random((8, 12)) < 0.25
    values = rng.standard_normal((8, 12))
    values[values == 0] = 1.0
    return np.where(mask, values, 0.0)


@pytest.fixture
def medium_sparse_matrix(rng) -> np.ndarray:
    """A 64 x 96 random sparse matrix with ~15% density."""
    mask = rng.random((64, 96)) < 0.15
    values = rng.standard_normal((64, 96))
    values[values == 0] = 1.0
    return np.where(mask, values, 0.0)


@pytest.fixture
def block_sparse_matrix(rng) -> np.ndarray:
    """A 64 x 64 matrix whose nonzeros form dense 8 x 8 blocks (~30% of blocks)."""
    dense = np.zeros((64, 64))
    block_mask = rng.random((8, 8)) < 0.3
    for i in range(8):
        for j in range(8):
            if block_mask[i, j]:
                block = rng.standard_normal((8, 8))
                block[block == 0] = 1.0
                dense[i * 8 : (i + 1) * 8, j * 8 : (j + 1) * 8] = block
    if not dense.any():
        dense[:8, :8] = 1.0
    return dense
