"""Tests for GroupCOO, BlockCOO, BCSR, and BlockGroupCOO."""

import numpy as np
import pytest

from repro.errors import FormatError, ShapeError
from repro.formats import BCSR, BlockCOO, BlockGroupCOO, CSR, GroupCOO


# -- GroupCOO -----------------------------------------------------------------------
def test_groupcoo_roundtrip(medium_sparse_matrix):
    fmt = GroupCOO.from_dense(medium_sparse_matrix, group_size=3)
    np.testing.assert_allclose(fmt.to_dense(), medium_sparse_matrix)
    assert fmt.nnz == np.count_nonzero(medium_sparse_matrix)
    assert fmt.group_size == 3


def test_groupcoo_group_size_one_is_coo(small_sparse_matrix):
    fmt = GroupCOO.from_dense(small_sparse_matrix, group_size=1)
    assert fmt.num_groups == fmt.nnz
    assert fmt.padding_ratio == 0.0


def test_groupcoo_max_group_size_is_ell_like(small_sparse_matrix):
    occ = np.count_nonzero(small_sparse_matrix, axis=1)
    fmt = GroupCOO.from_dense(small_sparse_matrix, group_size=int(occ.max()))
    # One group per nonempty row, like ELL without empty rows.
    assert fmt.num_groups == int((occ > 0).sum())


def test_groupcoo_heuristic_group_size(medium_sparse_matrix):
    fmt = GroupCOO.from_dense(medium_sparse_matrix)
    assert fmt.group_size >= 1
    assert fmt.group_size & (fmt.group_size - 1) == 0  # power of two


def test_groupcoo_empty_matrix():
    fmt = GroupCOO.from_dense(np.zeros((4, 6)), group_size=2)
    assert fmt.num_groups == 0 and fmt.nnz == 0
    np.testing.assert_allclose(fmt.to_dense(), 0.0)


def test_groupcoo_indirect_access_count(medium_sparse_matrix):
    fmt = GroupCOO.from_dense(medium_sparse_matrix, group_size=4)
    assert fmt.indirect_access_count() == fmt.num_groups + fmt.num_groups * 4


def test_groupcoo_invalid_group_size(medium_sparse_matrix):
    with pytest.raises(FormatError):
        GroupCOO.from_dense(medium_sparse_matrix, group_size=0)


def test_groupcoo_validation(small_sparse_matrix):
    with pytest.raises(ShapeError):
        GroupCOO((8, 12), np.zeros(2, int), np.zeros((3, 2), int), np.zeros((3, 2)))
    with pytest.raises(ShapeError):
        GroupCOO((8, 12), np.array([9, 0]), np.zeros((2, 2), int), np.zeros((2, 2)))


def test_groupcoo_tensors_naming(medium_sparse_matrix):
    fmt = GroupCOO.from_dense(medium_sparse_matrix, group_size=2)
    assert set(fmt.tensors("A")) == {"AV", "AM", "AK"}


# -- BlockCOO -------------------------------------------------------------------------
def test_blockcoo_roundtrip(block_sparse_matrix):
    fmt = BlockCOO.from_dense(block_sparse_matrix, (8, 8))
    np.testing.assert_allclose(fmt.to_dense(), block_sparse_matrix)
    assert fmt.grid_shape == (8, 8)
    assert fmt.num_blocks == int(
        np.any(
            block_sparse_matrix.reshape(8, 8, 8, 8).transpose(0, 2, 1, 3) != 0, axis=(2, 3)
        ).sum()
    )


def test_blockcoo_shape_must_divide():
    with pytest.raises(ShapeError):
        BlockCOO.from_dense(np.zeros((10, 10)), (3, 3))


def test_blockcoo_rewrite_has_splits(block_sparse_matrix):
    plan = BlockCOO.from_dense(block_sparse_matrix, (8, 8)).rewrite_plan("A", ["m", "k"])
    assert plan.substitutions["m"].split_sizes == (8, 8)
    assert plan.substitutions["k"].split_sizes == (8, 8)


# -- BCSR ------------------------------------------------------------------------------
def test_bcsr_roundtrip(block_sparse_matrix):
    fmt = BCSR.from_dense(block_sparse_matrix, (8, 8))
    np.testing.assert_allclose(fmt.to_dense(), block_sparse_matrix)
    assert fmt.block_row_occupancy().sum() == fmt.num_blocks


def test_bcsr_from_blockcoo(block_sparse_matrix):
    blockcoo = BlockCOO.from_dense(block_sparse_matrix, (8, 8))
    bcsr = BCSR.from_blockcoo(blockcoo)
    np.testing.assert_allclose(bcsr.to_dense(), block_sparse_matrix)


def test_bcsr_not_fixed_length(block_sparse_matrix):
    fmt = BCSR.from_dense(block_sparse_matrix, (8, 8))
    with pytest.raises(FormatError, match="fixed-length"):
        fmt.rewrite_plan("A", ["m", "k"])


def test_bcsr_row_pointer_storage_includes_empty_rows(block_sparse_matrix):
    fmt = BCSR.from_dense(block_sparse_matrix, (8, 8))
    assert fmt.indptr.shape == (fmt.num_block_rows + 1,)
    assert fmt.index_count() == fmt.indptr.size + fmt.indices.size


# -- BlockGroupCOO ----------------------------------------------------------------------
def test_blockgroupcoo_roundtrip(block_sparse_matrix):
    fmt = BlockGroupCOO.from_dense(block_sparse_matrix, (8, 8), group_size=2)
    np.testing.assert_allclose(fmt.to_dense(), block_sparse_matrix)
    assert fmt.group_size == 2
    assert fmt.block_shape == (8, 8)


def test_blockgroupcoo_heuristic_group_size(block_sparse_matrix):
    fmt = BlockGroupCOO.from_dense(block_sparse_matrix, (8, 8))
    assert fmt.group_size >= 1


def test_blockgroupcoo_padding_and_counts(block_sparse_matrix):
    fmt = BlockGroupCOO.from_dense(block_sparse_matrix, (8, 8), group_size=3)
    assert 0 <= fmt.padding_ratio < 1
    assert fmt.num_stored_blocks == fmt.num_groups * 3
    assert fmt.indirect_access_count() == fmt.num_groups + fmt.num_stored_blocks


def test_blockgroupcoo_memory_smaller_than_padded_ell_like(block_sparse_matrix):
    small_group = BlockGroupCOO.from_dense(block_sparse_matrix, (8, 8), group_size=1)
    occupancy = np.count_nonzero(
        np.any(block_sparse_matrix.reshape(8, 8, 8, 8).transpose(0, 2, 1, 3), axis=(2, 3)), axis=1
    )
    huge_group = BlockGroupCOO.from_dense(
        block_sparse_matrix, (8, 8), group_size=int(occupancy.max())
    )
    assert small_group.value_count() <= huge_group.value_count()


def test_blockgroupcoo_empty_matrix():
    fmt = BlockGroupCOO.from_dense(np.zeros((16, 16)), (8, 8), group_size=2)
    assert fmt.num_groups == 0
    np.testing.assert_allclose(fmt.to_dense(), 0.0)


def test_blockgroupcoo_validation():
    with pytest.raises(ShapeError):
        BlockGroupCOO(
            (10, 10), (3, 3), np.zeros(0, int), np.zeros((0, 2), int), np.zeros((0, 2, 3, 3))
        )
    with pytest.raises(FormatError):
        BlockGroupCOO.from_dense(np.zeros((16, 16)), (8, 8), group_size=0)


def test_blockgroupcoo_csr_conversion_consistency(block_sparse_matrix):
    # CSR and BlockGroupCOO agree on the underlying matrix.
    csr = CSR.from_dense(block_sparse_matrix)
    fmt = BlockGroupCOO.from_dense(block_sparse_matrix, (8, 8), group_size=2)
    np.testing.assert_allclose(csr.to_dense(), fmt.to_dense())
