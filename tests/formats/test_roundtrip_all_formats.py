"""Round-trip suite: ``from_dense -> to_dense`` identity and ``nnz``
consistency for all seven formats on random, empty, and single-row inputs."""

import numpy as np
import pytest

from repro.formats import BCSR, COO, CSR, ELL, BlockCOO, BlockGroupCOO, GroupCOO

# Each entry: (format name, constructor taking one dense matrix).
# Block formats use a block height of 1 so the same three matrices
# (including the single-row one) exercise every format.
FORMATS = [
    ("COO", lambda dense: COO.from_dense(dense)),
    ("CSR", lambda dense: CSR.from_dense(dense)),
    ("ELL", lambda dense: ELL.from_dense(dense)),
    ("GroupCOO", lambda dense: GroupCOO.from_dense(dense, group_size=3)),
    ("BCSR", lambda dense: BCSR.from_dense(dense, (1, 4))),
    ("BlockCOO", lambda dense: BlockCOO.from_dense(dense, (1, 4))),
    ("BlockGroupCOO", lambda dense: BlockGroupCOO.from_dense(dense, (1, 4), group_size=2)),
]


def random_matrix(rng):
    mask = rng.random((9, 16)) < 0.3
    values = rng.standard_normal((9, 16))
    values[values == 0] = 1.0
    dense = np.where(mask, values, 0.0)
    if not dense.any():
        dense[0, 0] = 1.0
    return dense


MATRICES = {
    "random": random_matrix,
    "empty": lambda rng: np.zeros((9, 16)),
    "single_row": lambda rng: np.concatenate(
        [np.zeros((1, 4)), np.ones((1, 8)), np.zeros((1, 4))], axis=1
    ),
}


@pytest.mark.parametrize("format_name,build", FORMATS, ids=[name for name, _ in FORMATS])
@pytest.mark.parametrize("matrix_name", sorted(MATRICES))
def test_round_trip_identity(rng, format_name, build, matrix_name):
    dense = MATRICES[matrix_name](rng)
    fmt = build(dense)
    np.testing.assert_array_equal(
        fmt.to_dense(),
        dense,
        err_msg=f"{format_name} round trip failed on the {matrix_name} matrix",
    )


@pytest.mark.parametrize("format_name,build", FORMATS, ids=[name for name, _ in FORMATS])
@pytest.mark.parametrize("matrix_name", sorted(MATRICES))
def test_nnz_matches_dense_count(rng, format_name, build, matrix_name):
    dense = MATRICES[matrix_name](rng)
    fmt = build(dense)
    assert fmt.nnz == int(np.count_nonzero(dense)), (
        f"{format_name} reports nnz={fmt.nnz} on the {matrix_name} matrix, "
        f"dense has {int(np.count_nonzero(dense))}"
    )


@pytest.mark.parametrize("format_name,build", FORMATS, ids=[name for name, _ in FORMATS])
def test_shape_and_density_preserved(rng, format_name, build):
    dense = random_matrix(rng)
    fmt = build(dense)
    assert fmt.shape == dense.shape
    expected_density = np.count_nonzero(dense) / dense.size
    assert fmt.density == pytest.approx(expected_density)
    assert fmt.sparsity == pytest.approx(1.0 - expected_density)


@pytest.mark.parametrize("format_name,build", FORMATS, ids=[name for name, _ in FORMATS])
def test_with_values_keeps_pattern_and_swaps_values(rng, format_name, build):
    """The runtime's stacking hook: same pattern, scaled values."""
    dense = random_matrix(rng)
    fmt = build(dense)
    values = fmt.tensors("A")["AV"]
    doubled = fmt.with_values(values * 2.0)
    np.testing.assert_array_equal(doubled.to_dense(), dense * 2.0)
