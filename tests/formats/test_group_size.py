"""Tests for the group-size cost model and heuristic (Section 4.2)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.formats.group_size import (
    GroupSizeModel,
    exact_indirect_access_count,
    optimal_group_size,
    power_of_two_candidates,
    relaxed_indirect_access_count,
    select_group_size,
)


PAPER_OCC = [3, 1, 1, 2]  # Figure 4's example occupancy


def test_exact_cost_matches_figure4_example():
    # g=1: groups = 7, F = 2 * 7 = 14 ; g=2: groups = 2+1+1+1 = 5, F = 3*5 = 15
    assert exact_indirect_access_count(PAPER_OCC, 1) == 14
    assert exact_indirect_access_count(PAPER_OCC, 2) == 15
    assert exact_indirect_access_count(PAPER_OCC, 3) == 4 * 4


def test_exact_cost_ignores_empty_rows():
    assert exact_indirect_access_count([0, 3, 0], 2) == exact_indirect_access_count([3], 2)


def test_relaxed_cost_formula():
    occ = [4, 4]
    # S=8, n=2: F~ = S + S/g + n*g + n
    assert relaxed_indirect_access_count(occ, 2) == pytest.approx(8 + 4 + 4 + 2)


def test_relaxed_upper_bounds_exact_at_integer_g():
    occ = [5, 3, 8, 1]
    for g in range(1, 10):
        assert relaxed_indirect_access_count(occ, g) >= exact_indirect_access_count(occ, g) - 1e-9


def test_optimal_group_size_closed_form():
    occ = np.full(16, 64)
    assert optimal_group_size(occ) == pytest.approx(8.0)  # sqrt(1024/16)


def test_optimal_group_size_skips_empty_rows():
    assert optimal_group_size([0, 0, 16]) == pytest.approx(4.0)
    assert optimal_group_size([0, 0, 0]) == 1.0


def test_power_of_two_candidates_bracket_g_star():
    candidates = power_of_two_candidates(6.0)
    assert 4 in candidates and 8 in candidates
    assert all(c & (c - 1) == 0 for c in candidates)


def test_power_of_two_candidates_respect_max():
    assert max(power_of_two_candidates(100.0, max_group=16)) <= 16


def test_select_group_size_minimises_exact_cost():
    occ = np.full(64, 36)
    chosen = select_group_size(occ)
    g_star = optimal_group_size(occ)
    assert chosen in power_of_two_candidates(g_star, max_group=64)


def test_select_group_size_uses_runtime_callback():
    occ = np.full(8, 32)
    chosen = select_group_size(occ, runtime_fn=lambda g: abs(g - 4))
    assert chosen == 4


def test_invalid_group_sizes_rejected():
    with pytest.raises(ValueError):
        exact_indirect_access_count(PAPER_OCC, 0)
    with pytest.raises(ValueError):
        relaxed_indirect_access_count(PAPER_OCC, 0)


def test_group_size_model_sweep():
    model = GroupSizeModel(np.asarray(PAPER_OCC))
    sweep = model.sweep([1, 2, 3])
    assert set(sweep) == {1, 2, 3}
    assert sweep[1]["indirect_accesses"] == 14
    assert model.total_nonzeros == 7
    assert model.padded_slots(2) == 10
    assert model.format_size(2) > model.total_nonzeros


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=64), min_size=1, max_size=40),
    st.integers(min_value=1, max_value=64),
)
def test_exact_cost_structure_property(occupancy, group_size):
    """F(g) = (g+1) * total groups, and groups shrink as g grows."""
    cost = exact_indirect_access_count(occupancy, group_size)
    groups = sum(-(-o // group_size) for o in occupancy if o > 0)
    assert cost == (group_size + 1) * groups
    larger = exact_indirect_access_count(occupancy, group_size + 1)
    larger_groups = sum(-(-o // (group_size + 1)) for o in occupancy if o > 0)
    assert larger_groups <= groups
    assert larger >= 0 and cost >= 0
