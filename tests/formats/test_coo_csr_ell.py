"""Tests for the COO, CSR, and ELL formats."""

import numpy as np
import pytest

from repro.errors import FormatError, ShapeError
from repro.formats import COO, CSR, ELL


# -- COO ---------------------------------------------------------------------------
def test_coo_roundtrip(small_sparse_matrix):
    coo = COO.from_dense(small_sparse_matrix)
    np.testing.assert_allclose(coo.to_dense(), small_sparse_matrix)
    assert coo.nnz == np.count_nonzero(small_sparse_matrix)


def test_coo_higher_rank_roundtrip(rng):
    dense = (rng.random((3, 4, 5)) < 0.2) * rng.standard_normal((3, 4, 5))
    coo = COO.from_dense(dense)
    np.testing.assert_allclose(coo.to_dense(), dense)
    assert coo.index_count() == coo.nnz * 3


def test_coo_duplicate_coordinates_accumulate():
    coo = COO((3,), np.array([1.0, 2.0]), (np.array([1, 1]),))
    np.testing.assert_allclose(coo.to_dense(), [0.0, 3.0, 0.0])


def test_coo_validation_errors():
    with pytest.raises(ShapeError):
        COO((3, 3), np.ones((2, 2)), (np.zeros(2, int), np.zeros(2, int)))
    with pytest.raises(ShapeError):
        COO((3, 3), np.ones(2), (np.zeros(2, int),))
    with pytest.raises(ShapeError):
        COO((3, 3), np.ones(2), (np.array([0, 5]), np.zeros(2, int)))


def test_coo_sorted_by_axis(small_sparse_matrix):
    coo = COO.from_dense(small_sparse_matrix).sorted_by_axis(1)
    assert np.all(np.diff(coo.coords[1]) >= 0)
    np.testing.assert_allclose(coo.to_dense(), small_sparse_matrix)


def test_coo_density_and_repr(small_sparse_matrix):
    coo = COO.from_dense(small_sparse_matrix)
    assert 0 < coo.density < 1
    assert coo.sparsity == pytest.approx(1 - coo.density)
    assert "COO" in repr(coo)


def test_coo_memory_bytes(small_sparse_matrix):
    coo = COO.from_dense(small_sparse_matrix)
    assert coo.memory_bytes(4, 4) == coo.nnz * 4 + coo.nnz * 2 * 4


def test_coo_rank_mismatch_in_rewrite(small_sparse_matrix):
    coo = COO.from_dense(small_sparse_matrix)
    with pytest.raises(FormatError):
        coo.rewrite_plan("A", ["i"])


# -- CSR -----------------------------------------------------------------------------
def test_csr_roundtrip(small_sparse_matrix):
    csr = CSR.from_dense(small_sparse_matrix)
    np.testing.assert_allclose(csr.to_dense(), small_sparse_matrix)
    np.testing.assert_array_equal(
        csr.row_occupancy(), np.count_nonzero(small_sparse_matrix, axis=1)
    )


def test_csr_from_coo_and_back(small_sparse_matrix):
    coo = COO.from_dense(small_sparse_matrix)
    csr = CSR.from_coo(coo)
    np.testing.assert_allclose(csr.to_dense(), small_sparse_matrix)
    np.testing.assert_allclose(csr.to_coo().to_dense(), small_sparse_matrix)


def test_csr_is_not_fixed_length(small_sparse_matrix):
    csr = CSR.from_dense(small_sparse_matrix)
    assert not csr.fixed_length
    with pytest.raises(FormatError, match="fixed-length"):
        csr.rewrite_plan("A", ["m", "k"])


def test_csr_validation_errors():
    with pytest.raises(ShapeError):
        CSR((2, 2, 2), np.array([0, 1, 2]), np.array([0, 1]), np.ones(2))
    with pytest.raises(ShapeError):
        CSR((2, 2), np.array([0, 1]), np.array([0, 1]), np.ones(2))
    with pytest.raises(ShapeError):
        CSR((2, 2), np.array([0, 2, 1]), np.array([0, 1]), np.ones(2))
    with pytest.raises(ShapeError):
        CSR((2, 2), np.array([0, 1, 2]), np.array([0, 7]), np.ones(2))


def test_csr_tensors_naming(small_sparse_matrix):
    csr = CSR.from_dense(small_sparse_matrix)
    assert set(csr.tensors("A")) == {"AP", "AK", "AV"}


# -- ELL --------------------------------------------------------------------------------
def test_ell_roundtrip(small_sparse_matrix):
    ell = ELL.from_dense(small_sparse_matrix)
    np.testing.assert_allclose(ell.to_dense(), small_sparse_matrix)
    assert ell.width == int(np.count_nonzero(small_sparse_matrix, axis=1).max())


def test_ell_padding_ratio(small_sparse_matrix):
    ell = ELL.from_dense(small_sparse_matrix)
    assert 0 <= ell.padding_ratio < 1
    assert ell.value_count() == small_sparse_matrix.shape[0] * ell.width


def test_ell_empty_matrix():
    ell = ELL.from_dense(np.zeros((4, 5)))
    assert ell.nnz == 0 and ell.width == 0
    np.testing.assert_allclose(ell.to_dense(), 0.0)


def test_ell_rewrite_plan_requires_matrix(small_sparse_matrix):
    ell = ELL.from_dense(small_sparse_matrix)
    with pytest.raises(FormatError):
        ell.rewrite_plan("A", ["i", "j", "k"])


def test_ell_validation_errors():
    with pytest.raises(ShapeError):
        ELL((4,), np.zeros((4, 2)), np.zeros((4, 2), int))
    with pytest.raises(ShapeError):
        ELL((4, 5), np.zeros((3, 2)), np.zeros((3, 2), int))
    with pytest.raises(ShapeError):
        ELL((4, 5), np.zeros((4, 2)), np.zeros((4, 3), int))
