"""Tests for block extraction plus property-based format roundtrips."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ShapeError
from repro.formats import BCSR, BlockCOO, BlockGroupCOO, COO, CSR, ELL, GroupCOO
from repro.formats.blocking import block_occupancy, blocks_to_dense, dense_to_blocks, nonzero_blocks


def test_dense_to_blocks_roundtrip(block_sparse_matrix):
    blocks = dense_to_blocks(block_sparse_matrix, (8, 8))
    assert blocks.shape == (8, 8, 8, 8)
    np.testing.assert_allclose(blocks_to_dense(blocks), block_sparse_matrix)


def test_dense_to_blocks_requires_divisible_shape():
    with pytest.raises(ShapeError):
        dense_to_blocks(np.zeros((10, 8)), (4, 4))
    with pytest.raises(ShapeError):
        dense_to_blocks(np.zeros((8,)), (4, 4))
    with pytest.raises(ShapeError):
        dense_to_blocks(np.zeros((8, 8)), (0, 4))


def test_nonzero_blocks_and_occupancy(block_sparse_matrix):
    rows, cols, blocks = nonzero_blocks(block_sparse_matrix, (8, 8))
    assert blocks.shape[1:] == (8, 8)
    assert len(rows) == len(cols) == len(blocks)
    occupancy = block_occupancy(block_sparse_matrix, (8, 8))
    assert occupancy.sum() == len(rows)


@st.composite
def random_dense_matrix(draw):
    rows = draw(st.integers(min_value=1, max_value=12))
    cols = draw(st.integers(min_value=1, max_value=12))
    density = draw(st.floats(min_value=0.0, max_value=1.0))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    values = rng.standard_normal((rows, cols))
    values[values == 0] = 1.0
    return np.where(rng.random((rows, cols)) < density, values, 0.0)


@settings(max_examples=40, deadline=None)
@given(random_dense_matrix())
def test_flat_formats_roundtrip_property(dense):
    for fmt_cls in (COO, CSR, ELL):
        fmt = fmt_cls.from_dense(dense)
        np.testing.assert_allclose(fmt.to_dense(), dense, atol=1e-12)
        assert fmt.nnz == np.count_nonzero(dense)


@settings(max_examples=40, deadline=None)
@given(random_dense_matrix(), st.integers(min_value=1, max_value=6))
def test_groupcoo_roundtrip_property(dense, group_size):
    fmt = GroupCOO.from_dense(dense, group_size=group_size)
    np.testing.assert_allclose(fmt.to_dense(), dense, atol=1e-12)
    assert fmt.value_count() % group_size == 0


@st.composite
def random_block_matrix(draw):
    grid = draw(st.integers(min_value=1, max_value=4))
    block = draw(st.sampled_from([2, 4]))
    density = draw(st.floats(min_value=0.0, max_value=1.0))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    size = grid * block
    dense = np.zeros((size, size))
    for i in range(grid):
        for j in range(grid):
            if rng.random() < density:
                values = rng.standard_normal((block, block))
                values[values == 0] = 1.0
                dense[i * block : (i + 1) * block, j * block : (j + 1) * block] = values
    return dense, (block, block)


@settings(max_examples=40, deadline=None)
@given(random_block_matrix(), st.integers(min_value=1, max_value=4))
def test_block_formats_roundtrip_property(matrix_and_block, group_size):
    dense, block_shape = matrix_and_block
    for fmt in (
        BlockCOO.from_dense(dense, block_shape),
        BCSR.from_dense(dense, block_shape),
        BlockGroupCOO.from_dense(dense, block_shape, group_size=group_size),
    ):
        np.testing.assert_allclose(fmt.to_dense(), dense, atol=1e-12)


@settings(max_examples=30, deadline=None)
@given(random_dense_matrix())
def test_format_memory_accounting_property(dense):
    """Stored value slots never undercount the actual nonzeros."""
    for fmt_cls in (COO, CSR, ELL, GroupCOO):
        fmt = fmt_cls.from_dense(dense)
        assert fmt.value_count() >= fmt.nnz
        assert fmt.memory_bytes() >= fmt.nnz * 4
