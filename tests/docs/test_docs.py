"""Tier-1 enforcement of the documentation gates the CI docs job runs.

Running the checkers inside the test suite keeps the docs honest locally,
not only on CI: a missing public docstring or a broken relative link in
``docs/*.md`` / ``README.md`` fails ``pytest`` the same way it would fail
the workflow.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
DOC_PAGES = [
    "docs/ARCHITECTURE.md",
    "docs/FORMATS.md",
    "docs/BENCHMARKS.md",
    "docs/PERFORMANCE.md",
    "docs/SERVING.md",
    "docs/API.md",
]


def _run(args: list[str]) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, *args],
        cwd=REPO,
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
    )


def test_docs_pages_exist():
    for page in DOC_PAGES:
        assert (REPO / page).is_file(), f"missing documentation page {page}"


def test_public_api_docstrings():
    result = _run(["scripts/check_docstrings.py"])
    assert result.returncode == 0, result.stdout + result.stderr


def test_documentation_links():
    result = _run(["scripts/check_links.py", *DOC_PAGES, "README.md"])
    assert result.returncode == 0, result.stdout + result.stderr


def test_readme_mentions_auto_format():
    readme = (REPO / "README.md").read_text(encoding="utf-8")
    assert 'format="auto"' in readme
    for page in DOC_PAGES:
        assert page in readme, f"README does not link {page}"
