"""Synthetic stand-ins for the TC-GNN sparse-matrix suite (Figure 11).

The paper's unstructured SpMM study uses fourteen real-world matrices from
the TC-GNN datasets.  This module generates synthetic matrices with the
same names, whose published node counts, nonzero counts, and degree-
distribution character (heavily skewed for the social graphs, near-regular
for the biochemical ones) are reproduced at a configurable scale.  Figure
11's qualitative behaviour — Sputnik winning on heavily skewed inputs,
cuSPARSE suffering from load imbalance, GroupCOO paying padding on skew —
depends only on those properties.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ShapeError
from repro.formats.csr import CSR


@dataclass(frozen=True)
class GraphSpec:
    """Published characteristics of one TC-GNN matrix.

    ``skew`` selects the degree-distribution family used by the generator:
    ``"power_law"`` (social / web graphs with a heavy tail), ``"moderate"``
    (citation and co-purchase graphs), or ``"regular"`` (molecule /
    protein graphs whose degrees are narrowly distributed).
    """

    name: str
    num_rows: int
    num_nonzeros: int
    skew: str

    @property
    def average_degree(self) -> float:
        return self.num_nonzeros / self.num_rows


#: Published sizes of the TC-GNN matrices used in Figure 11.
GRAPH_SPECS: dict[str, GraphSpec] = {
    spec.name: spec
    for spec in [
        GraphSpec("amazon0505", 410_236, 4_878_874, "moderate"),
        GraphSpec("amazon0601", 403_394, 4_886_816, "moderate"),
        GraphSpec("artist", 50_515, 1_638_396, "power_law"),
        GraphSpec("citeseer", 3_327, 9_464, "moderate"),
        GraphSpec("com-amazon", 334_863, 1_851_744, "moderate"),
        GraphSpec("cora", 2_708, 10_858, "moderate"),
        GraphSpec("DD", 334_925, 1_686_092, "regular"),
        GraphSpec("OVCAR-8H", 1_889_542, 3_946_402, "regular"),
        GraphSpec("ppi", 56_944, 1_612_348, "power_law"),
        GraphSpec("PROTEINS_full", 43_466, 162_088, "regular"),
        GraphSpec("pubmed", 19_717, 88_676, "moderate"),
        GraphSpec("soc-BlogCatalog", 88_784, 4_186_390, "power_law"),
        GraphSpec("Yeast", 1_710_902, 3_636_546, "regular"),
        GraphSpec("YeastH", 3_139_988, 6_487_230, "regular"),
    ]
}


def list_graphs() -> list[str]:
    """Names of the available synthetic TC-GNN matrices."""
    return sorted(GRAPH_SPECS)


def _degree_sequence(spec: GraphSpec, num_rows: int, nnz_target: int, rng) -> np.ndarray:
    """Draw a per-row nonzero count with the spec's distribution shape."""
    average = max(1.0, nnz_target / num_rows)
    if spec.skew == "power_law":
        # Heavy-tailed (Zipf-like) degrees: a few hub rows hold a large
        # share of the nonzeros, like 'artist' and 'soc-BlogCatalog'.
        raw = rng.pareto(1.6, size=num_rows) + 1.0
    elif spec.skew == "regular":
        # Molecule graphs: degrees concentrated around the mean.
        raw = rng.normal(loc=1.0, scale=0.15, size=num_rows).clip(0.3, 2.0)
    else:
        # Citation / co-purchase graphs: moderately skewed.
        raw = rng.lognormal(mean=0.0, sigma=0.8, size=num_rows)
    degrees = np.maximum(1, np.round(raw * average / raw.mean())).astype(np.int64)
    # Rescale to hit the nonzero target as closely as possible.
    scale = nnz_target / degrees.sum()
    degrees = np.maximum(1, np.round(degrees * scale)).astype(np.int64)
    return np.minimum(degrees, num_rows)


def load_graph_matrix(
    name: str,
    max_rows: int = 8_192,
    rng: np.random.Generator | int | None = None,
) -> CSR:
    """Generate the synthetic matrix registered under ``name`` as CSR.

    Parameters
    ----------
    name:
        One of :func:`list_graphs`.
    max_rows:
        Matrices larger than this are scaled down proportionally (rows and
        nonzeros by the same factor) so the NumPy benchmark harness stays
        tractable; the degree-distribution shape is preserved.
    rng:
        Seed or generator; each matrix name uses its own default seed so
        repeated calls are reproducible.
    """
    if name not in GRAPH_SPECS:
        raise ShapeError(f"unknown graph {name!r}; available: {', '.join(list_graphs())}")
    spec = GRAPH_SPECS[name]
    if rng is None:
        rng = abs(hash(name)) % (2**32)
    rng = np.random.default_rng(rng)

    scale = min(1.0, max_rows / spec.num_rows)
    num_rows = max(64, int(spec.num_rows * scale))
    nnz_target = max(num_rows, int(spec.num_nonzeros * scale))

    degrees = _degree_sequence(spec, num_rows, nnz_target, rng)
    indptr = np.zeros(num_rows + 1, dtype=np.int64)
    np.cumsum(degrees, out=indptr[1:])
    nnz = int(indptr[-1])

    indices = np.empty(nnz, dtype=np.int64)
    for row in range(num_rows):
        start, end = indptr[row], indptr[row + 1]
        degree = end - start
        # Sampling without replacement per row keeps the matrix simple
        # (0/1-ish structure) while preserving the degree distribution.
        if degree >= num_rows:
            cols = np.arange(num_rows)
        else:
            cols = rng.choice(num_rows, size=degree, replace=False)
        indices[start:end] = np.sort(cols)
    data = rng.standard_normal(nnz).astype(np.float32)
    data[data == 0] = 1.0
    return CSR((num_rows, num_rows), indptr, indices, data)
