"""Synthetic indoor point clouds and sparse-convolution kernel maps.

Stands in for the S3DIS Area-6 scans used in Figure 12.  Each scene is a
box-shaped room: points are sampled on the floor, ceiling, walls, and a few
furniture boxes, then quantised into 5 cm voxels exactly as in the paper's
setup.  Sparse 3-D convolution needs a *kernel map*: for every kernel
offset, the list of (output voxel, input voxel) pairs whose positions
differ by that offset.  The map is returned both as per-offset pair lists
(what TorchSparse-style baselines consume) and as a flat COO ``Map`` tensor
(what the indirect-Einsum formulation consumes).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from repro.errors import ShapeError


@dataclass(frozen=True)
class SceneSpec:
    """Geometry of one synthetic room."""

    name: str
    size_m: tuple[float, float, float]
    num_points: int
    num_furniture: int


#: Seven scenes named after the S3DIS Area-6 rooms used in Figure 12.
SCENE_SPECS: dict[str, SceneSpec] = {
    spec.name: spec
    for spec in [
        SceneSpec("conferenceRoom", (8.0, 6.0, 3.0), 120_000, 6),
        SceneSpec("copyRoom", (4.0, 3.5, 3.0), 50_000, 3),
        SceneSpec("hallway", (12.0, 2.5, 3.0), 80_000, 2),
        SceneSpec("lounge", (9.0, 7.0, 3.0), 110_000, 8),
        SceneSpec("office", (6.0, 5.0, 3.0), 90_000, 7),
        SceneSpec("openspace", (14.0, 10.0, 3.0), 160_000, 10),
        SceneSpec("pantry", (3.5, 3.0, 3.0), 40_000, 4),
    ]
}


def list_scenes() -> list[str]:
    """Names of the available synthetic scenes."""
    return sorted(SCENE_SPECS)


def generate_scene(
    name: str,
    max_points: int | None = 60_000,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Generate the point cloud of one scene as an ``(N, 3)`` float array."""
    if name not in SCENE_SPECS:
        raise ShapeError(f"unknown scene {name!r}; available: {', '.join(list_scenes())}")
    spec = SCENE_SPECS[name]
    if rng is None:
        rng = abs(hash(name)) % (2**32)
    rng = np.random.default_rng(rng)

    num_points = spec.num_points if max_points is None else min(spec.num_points, max_points)
    sx, sy, sz = spec.size_m

    surfaces: list[np.ndarray] = []

    def plane(count: int, fixed_axis: int, fixed_value: float) -> np.ndarray:
        points = rng.random((count, 3)) * np.array([sx, sy, sz])
        points[:, fixed_axis] = fixed_value + rng.normal(0, 0.01, size=count)
        return points

    structural = int(num_points * 0.7)
    per_surface = max(1, structural // 6)
    surfaces.append(plane(per_surface, 2, 0.0))        # floor
    surfaces.append(plane(per_surface, 2, sz))         # ceiling
    surfaces.append(plane(per_surface, 0, 0.0))        # walls
    surfaces.append(plane(per_surface, 0, sx))
    surfaces.append(plane(per_surface, 1, 0.0))
    surfaces.append(plane(per_surface, 1, sy))

    furniture_points = num_points - 6 * per_surface
    per_item = max(1, furniture_points // max(1, spec.num_furniture))
    for _ in range(spec.num_furniture):
        center = rng.random(3) * np.array([sx - 1.5, sy - 1.5, 0.0]) + np.array([0.75, 0.75, 0.0])
        dims = rng.uniform(0.4, 1.5, size=3) * np.array([1.0, 1.0, 0.8])
        local = rng.random((per_item, 3)) * dims
        # Keep only points near the surface of the furniture box.
        shell = np.min(np.minimum(local, dims - local), axis=1) < 0.05
        surfaces.append(center + local[shell])

    cloud = np.concatenate(surfaces, axis=0)
    return cloud[:num_points].astype(np.float64)


def voxelize(points: np.ndarray, voxel_size: float = 0.05) -> np.ndarray:
    """Quantise a point cloud into unique integer voxel coordinates ``(V, 3)``."""
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] != 3:
        raise ShapeError(f"expected an (N, 3) point array, got shape {points.shape}")
    if voxel_size <= 0:
        raise ShapeError(f"voxel size must be positive, got {voxel_size}")
    voxels = np.floor(points / voxel_size).astype(np.int64)
    return np.unique(voxels, axis=0)


@dataclass
class KernelMap:
    """The input-output pairing of a sparse convolution.

    Attributes
    ----------
    num_voxels:
        Number of active voxels (inputs and outputs coincide for the
        stride-1, "submanifold" convolution evaluated in the paper).
    offsets:
        ``(K, 3)`` integer kernel offsets (K = 27 for a 3x3x3 kernel).
    pairs:
        For each offset ``k``, an ``(n_k, 2)`` array of
        ``(output_index, input_index)`` pairs.
    """

    num_voxels: int
    offsets: np.ndarray
    pairs: list[np.ndarray]

    @property
    def kernel_volume(self) -> int:
        return len(self.pairs)

    @property
    def total_pairs(self) -> int:
        return int(sum(len(p) for p in self.pairs))

    def occupancy(self) -> np.ndarray:
        """Number of pairs per kernel offset (drives Fetch-on-Demand cost)."""
        return np.array([len(p) for p in self.pairs], dtype=np.int64)

    # -- Map tensor form used by the indirect Einsum --------------------------
    def to_coo_arrays(self) -> dict[str, np.ndarray]:
        """Flatten into the ``MAPX`` / ``MAPY`` / ``MAPZ`` / ``MAPV`` arrays.

        ``MAPX[p]`` is the output voxel, ``MAPY[p]`` the input voxel,
        ``MAPZ[p]`` the kernel-offset index, and ``MAPV[p]`` is 1.0 — the
        COO representation of the sparse ``Map`` tensor in Section 6.4.
        """
        outputs, inputs, offsets = [], [], []
        for offset_index, pair_block in enumerate(self.pairs):
            if len(pair_block) == 0:
                continue
            outputs.append(pair_block[:, 0])
            inputs.append(pair_block[:, 1])
            offsets.append(np.full(len(pair_block), offset_index, dtype=np.int64))
        map_x = np.concatenate(outputs) if outputs else np.zeros(0, dtype=np.int64)
        map_y = np.concatenate(inputs) if inputs else np.zeros(0, dtype=np.int64)
        map_z = np.concatenate(offsets) if offsets else np.zeros(0, dtype=np.int64)
        return {
            "MAPX": map_x,
            "MAPY": map_y,
            "MAPZ": map_z,
            "MAPV": np.ones(len(map_x), dtype=np.float32),
        }

    def to_grouped_arrays(self, group_size: int | None = None) -> dict[str, np.ndarray]:
        """Group pairs by kernel offset (the ``MAPZ`` grouping of Section 6.4).

        Returns ``MAPX``/``MAPY``/``MAPV`` of shape ``(groups, group_size)``
        and ``MAPZ`` of shape ``(groups,)``; padded slots point at voxel 0
        with value 0 so they contribute nothing.
        """
        from repro.formats.group_size import select_group_size
        from repro.utils.arrays import ceil_div

        occupancy = self.occupancy()
        if group_size is None:
            group_size = select_group_size(occupancy)
        group_size = max(1, int(group_size))

        group_x, group_y, group_v, group_z = [], [], [], []
        for offset_index, pair_block in enumerate(self.pairs):
            count = len(pair_block)
            if count == 0:
                continue
            num_groups = ceil_div(count, group_size)
            padded_x = np.zeros(num_groups * group_size, dtype=np.int64)
            padded_y = np.zeros(num_groups * group_size, dtype=np.int64)
            padded_v = np.zeros(num_groups * group_size, dtype=np.float32)
            padded_x[:count] = pair_block[:, 0]
            padded_y[:count] = pair_block[:, 1]
            padded_v[:count] = 1.0
            for g in range(num_groups):
                window = slice(g * group_size, (g + 1) * group_size)
                group_x.append(padded_x[window])
                group_y.append(padded_y[window])
                group_v.append(padded_v[window])
                group_z.append(offset_index)

        if group_x:
            return {
                "MAPX": np.stack(group_x),
                "MAPY": np.stack(group_y),
                "MAPV": np.stack(group_v),
                "MAPZ": np.asarray(group_z, dtype=np.int64),
            }
        return {
            "MAPX": np.zeros((0, group_size), dtype=np.int64),
            "MAPY": np.zeros((0, group_size), dtype=np.int64),
            "MAPV": np.zeros((0, group_size), dtype=np.float32),
            "MAPZ": np.zeros((0,), dtype=np.int64),
        }


def build_kernel_map(voxels: np.ndarray, kernel_size: int = 3) -> KernelMap:
    """Build the kernel map of a stride-1 submanifold sparse convolution."""
    voxels = np.asarray(voxels, dtype=np.int64)
    if voxels.ndim != 2 or voxels.shape[1] != 3:
        raise ShapeError(f"expected (V, 3) voxel coordinates, got shape {voxels.shape}")
    if kernel_size < 1 or kernel_size % 2 == 0:
        raise ShapeError(f"kernel size must be odd and positive, got {kernel_size}")

    index_of = {tuple(coord): i for i, coord in enumerate(voxels)}
    half = kernel_size // 2
    offsets = np.array(
        list(itertools.product(range(-half, half + 1), repeat=3)), dtype=np.int64
    )

    pairs: list[np.ndarray] = []
    for offset in offsets:
        neighbours = voxels + offset
        block = []
        for out_index, coord in enumerate(neighbours):
            in_index = index_of.get(tuple(coord))
            if in_index is not None:
                block.append((out_index, in_index))
        pairs.append(
            np.asarray(block, dtype=np.int64).reshape(-1, 2)
            if block
            else np.zeros((0, 2), dtype=np.int64)
        )
    return KernelMap(num_voxels=len(voxels), offsets=offsets, pairs=pairs)
