"""Random sparse and block-sparse matrix generators."""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError


def random_sparse_matrix(
    shape: tuple[int, int],
    density: float,
    rng: np.random.Generator | int | None = None,
    dtype=np.float32,
) -> np.ndarray:
    """A dense array with uniformly random nonzeros at the given density.

    Values are drawn from a standard normal; exactly-zero draws are nudged
    so structural and numerical sparsity coincide.
    """
    if not 0.0 <= density <= 1.0:
        raise ShapeError(f"density must be in [0, 1], got {density}")
    rng = np.random.default_rng(rng)
    mask = rng.random(shape) < density
    values = rng.standard_normal(shape).astype(dtype)
    values[values == 0] = 1.0
    return np.where(mask, values, np.zeros_like(values))


def random_block_sparse_matrix(
    size: int,
    block_shape: tuple[int, int] = (32, 32),
    block_density: float = 0.1,
    rng: np.random.Generator | int | None = None,
    dtype=np.float32,
) -> np.ndarray:
    """A square matrix whose nonzeros form dense ``block_shape`` blocks.

    ``block_density`` is the fraction of blocks that are nonzero — the
    paper's "90 % uniform sparsity using 32x32 dense blocks" corresponds to
    ``block_density=0.1``.
    """
    if size % block_shape[0] or size % block_shape[1]:
        raise ShapeError(f"size {size} is not a multiple of the block shape {block_shape}")
    if not 0.0 <= block_density <= 1.0:
        raise ShapeError(f"block density must be in [0, 1], got {block_density}")
    rng = np.random.default_rng(rng)
    grid = (size // block_shape[0], size // block_shape[1])
    block_mask = rng.random(grid) < block_density
    dense = np.zeros((size, size), dtype=dtype)
    rows, cols = np.nonzero(block_mask)
    for row, col in zip(rows, cols):
        block = rng.standard_normal(block_shape).astype(dtype)
        block[block == 0] = 1.0
        dense[
            row * block_shape[0] : (row + 1) * block_shape[0],
            col * block_shape[1] : (col + 1) * block_shape[1],
        ] = block
    return dense
