"""Exact Clebsch–Gordan coefficients and the 4-D CG tensor of Section 6.5.

The equivariant tensor-product case study contracts a sparse 4-D tensor of
real Clebsch–Gordan (CG) coefficients against dense feature tensors.  This
module computes those coefficients exactly:

* :func:`wigner_3j` uses the Racah formula with exact integer factorials;
* :func:`clebsch_gordan` converts Wigner 3j symbols to CG coefficients;
* :func:`real_clebsch_gordan_block` changes basis to real spherical
  harmonics (the basis e3nn uses), which is where the sparsity pattern of
  the 4-D tensor comes from;
* :func:`fully_connected_cg_tensor` assembles the full ``CG[i, j, k, path]``
  tensor for all paths ``(l1, l2) -> l_out`` with ``l`` values up to
  ``l_max``, matching the paper's ``uvw`` fully connected tensor product.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from functools import lru_cache
from math import factorial, sqrt

import numpy as np

from repro.errors import ShapeError


# ---------------------------------------------------------------------------
# Wigner 3j / CG in the complex spherical-harmonic basis
# ---------------------------------------------------------------------------
def _triangle_coefficient(j1: int, j2: int, j3: int) -> float:
    return (
        factorial(j1 + j2 - j3)
        * factorial(j1 - j2 + j3)
        * factorial(-j1 + j2 + j3)
        / factorial(j1 + j2 + j3 + 1)
    )


@lru_cache(maxsize=None)
def wigner_3j(j1: int, j2: int, j3: int, m1: int, m2: int, m3: int) -> float:
    """Wigner 3j symbol for integer angular momenta (Racah formula)."""
    for j, m in ((j1, m1), (j2, m2), (j3, m3)):
        if j < 0 or abs(m) > j:
            return 0.0
    if m1 + m2 + m3 != 0:
        return 0.0
    if j3 < abs(j1 - j2) or j3 > j1 + j2:
        return 0.0

    prefactor = sqrt(
        _triangle_coefficient(j1, j2, j3)
        * factorial(j1 + m1)
        * factorial(j1 - m1)
        * factorial(j2 + m2)
        * factorial(j2 - m2)
        * factorial(j3 + m3)
        * factorial(j3 - m3)
    )
    t_min = max(0, j2 - j3 - m1, j1 - j3 + m2)
    t_max = min(j1 + j2 - j3, j1 - m1, j2 + m2)
    total = 0.0
    for t in range(t_min, t_max + 1):
        denominator = (
            factorial(t)
            * factorial(j3 - j2 + m1 + t)
            * factorial(j3 - j1 - m2 + t)
            * factorial(j1 + j2 - j3 - t)
            * factorial(j1 - m1 - t)
            * factorial(j2 + m2 - t)
        )
        total += (-1.0) ** t / denominator
    return (-1.0) ** (j1 - j2 - m3) * prefactor * total


def clebsch_gordan(j1: int, m1: int, j2: int, m2: int, j3: int, m3: int) -> float:
    """Clebsch–Gordan coefficient ``<j1 m1 j2 m2 | j3 m3>`` (complex basis)."""
    if m1 + m2 != m3:
        return 0.0
    return (-1.0) ** (j1 - j2 + m3) * sqrt(2 * j3 + 1) * wigner_3j(j1, j2, j3, m1, m2, -m3)


# ---------------------------------------------------------------------------
# Change of basis to real spherical harmonics
# ---------------------------------------------------------------------------
def _real_basis_matrix(degree: int) -> np.ndarray:
    """Unitary matrix mapping complex to real spherical harmonics of a degree.

    Rows are indexed by the real harmonic index (m = -degree..degree
    ordered), columns by the complex harmonic m.  Uses the standard
    Condon–Shortley convention, matching e3nn's real basis up to a global
    per-degree phase.
    """
    dim = 2 * degree + 1
    matrix = np.zeros((dim, dim), dtype=np.complex128)
    for m in range(-degree, degree + 1):
        row = m + degree
        if m < 0:
            matrix[row, m + degree] = 1j / sqrt(2)
            matrix[row, -m + degree] = -1j * (-1) ** m / sqrt(2)
        elif m == 0:
            matrix[row, degree] = 1.0
        else:
            matrix[row, -m + degree] = 1 / sqrt(2)
            matrix[row, m + degree] = (-1) ** m / sqrt(2)
    return matrix


def real_clebsch_gordan_block(l1: int, l2: int, l3: int) -> np.ndarray:
    """The CG block ``C[m1, m2, m3]`` in the real spherical-harmonic basis."""
    if l3 < abs(l1 - l2) or l3 > l1 + l2:
        return np.zeros((2 * l1 + 1, 2 * l2 + 1, 2 * l3 + 1))
    complex_block = np.zeros((2 * l1 + 1, 2 * l2 + 1, 2 * l3 + 1), dtype=np.complex128)
    for m1 in range(-l1, l1 + 1):
        for m2 in range(-l2, l2 + 1):
            m3 = m1 + m2
            if abs(m3) <= l3:
                complex_block[m1 + l1, m2 + l2, m3 + l3] = clebsch_gordan(
                    l1, m1, l2, m2, l3, m3
                )
    u1 = _real_basis_matrix(l1)
    u2 = _real_basis_matrix(l2)
    u3 = _real_basis_matrix(l3)
    rotated = np.einsum(
        "ai,bj,ck,ijk->abc", u1, u2, np.conj(u3), complex_block, optimize=True
    )
    real_part = np.real(rotated)
    imag_part = np.imag(rotated)
    # Depending on the parity of l1 + l2 + l3 the rotated block is either
    # purely real or purely imaginary; pick whichever carries the weight.
    if np.abs(imag_part).max() > np.abs(real_part).max():
        block = imag_part
    else:
        block = real_part
    block[np.abs(block) < 1e-12] = 0.0
    return block


# ---------------------------------------------------------------------------
# The 4-D CG tensor of the fully connected tensor product
# ---------------------------------------------------------------------------
@dataclass
class CGTensor:
    """The assembled sparse CG tensor and its path bookkeeping.

    Attributes
    ----------
    l_max:
        Maximum angular momentum of the inputs and outputs.
    dense:
        The dense 4-D array ``CG[i, j, k, path]``; it is small (a few
        thousand entries) but highly sparse, which is exactly why the paper
        stores it in COO form.
    paths:
        The ``(l1, l2, l_out)`` triple of each path (the last axis).
    """

    l_max: int
    dense: np.ndarray
    paths: list[tuple[int, int, int]]

    @property
    def shape(self) -> tuple[int, ...]:
        return self.dense.shape

    @property
    def nnz(self) -> int:
        return int(np.count_nonzero(self.dense))

    @property
    def density(self) -> float:
        return self.nnz / self.dense.size

    @property
    def num_paths(self) -> int:
        return len(self.paths)

    def slot_dimension(self) -> int:
        """Total number of spherical-harmonic slots per side, sum of (2l+1)."""
        return sum(2 * degree + 1 for degree in range(self.l_max + 1))

    def to_coo_arrays(self, name: str = "CG") -> dict[str, np.ndarray]:
        """COO arrays named as in the paper: CGI, CGJ, CGK, CGL, CGV."""
        i, j, k, path = np.nonzero(self.dense)
        return {
            f"{name}I": i.astype(np.int64),
            f"{name}J": j.astype(np.int64),
            f"{name}K": k.astype(np.int64),
            f"{name}L": path.astype(np.int64),
            f"{name}V": self.dense[i, j, k, path].astype(np.float64),
        }


def fully_connected_cg_tensor(l_max: int) -> CGTensor:
    """Assemble ``CG[i, j, k, path]`` for all paths with l values up to l_max."""
    if l_max < 0:
        raise ShapeError(f"l_max must be non-negative, got {l_max}")
    slot_offset = {}
    offset = 0
    for degree in range(l_max + 1):
        slot_offset[degree] = offset
        offset += 2 * degree + 1
    total_slots = offset

    paths = [
        (l1, l2, l3)
        for l1, l2 in itertools.product(range(l_max + 1), repeat=2)
        for l3 in range(abs(l1 - l2), min(l1 + l2, l_max) + 1)
    ]
    dense = np.zeros((total_slots, total_slots, total_slots, len(paths)))
    for path_index, (l1, l2, l3) in enumerate(paths):
        block = real_clebsch_gordan_block(l1, l2, l3)
        dense[
            slot_offset[l3] : slot_offset[l3] + 2 * l3 + 1,
            slot_offset[l1] : slot_offset[l1] + 2 * l1 + 1,
            slot_offset[l2] : slot_offset[l2] + 2 * l2 + 1,
            path_index,
        ] = np.transpose(block, (2, 0, 1))
    return CGTensor(l_max=l_max, dense=dense, paths=paths)
