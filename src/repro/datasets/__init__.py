"""Synthetic workload generators standing in for the paper's datasets.

The paper evaluates on TC-GNN sparse matrices, S3DIS indoor point clouds,
and real Clebsch–Gordan coefficient tensors.  None of those can be
downloaded in this offline environment, so this package generates
synthetic equivalents whose *structural* properties (sizes, nonzero
counts, degree skew, voxel occupancy, CG sparsity) match the published
characteristics; DESIGN.md documents each substitution.
"""

from repro.datasets.blocksparse import random_block_sparse_matrix, random_sparse_matrix
from repro.datasets.graphs import GRAPH_SPECS, GraphSpec, load_graph_matrix, list_graphs
from repro.datasets.pointclouds import (
    SCENE_SPECS,
    KernelMap,
    SceneSpec,
    build_kernel_map,
    generate_scene,
    list_scenes,
    voxelize,
)
from repro.datasets.clebsch_gordan import (
    CGTensor,
    clebsch_gordan,
    fully_connected_cg_tensor,
    wigner_3j,
)

__all__ = [
    "random_block_sparse_matrix",
    "random_sparse_matrix",
    "GRAPH_SPECS",
    "GraphSpec",
    "load_graph_matrix",
    "list_graphs",
    "SCENE_SPECS",
    "SceneSpec",
    "KernelMap",
    "build_kernel_map",
    "generate_scene",
    "list_scenes",
    "voxelize",
    "CGTensor",
    "clebsch_gordan",
    "fully_connected_cg_tensor",
    "wigner_3j",
]
