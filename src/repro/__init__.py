"""repro: a reproduction of "Insum: Sparse GPU Kernels Simplified and
Optimized with Indirect Einsums" (ASPLOS 2026).

Public API highlights
---------------------
* :func:`repro.insum` / :class:`repro.Insum` — execute an indirect Einsum
  written over the arrays of a fixed-length sparse format.
* :func:`repro.sparse_einsum` — the one-line format-agnostic API: pass a
  :class:`repro.formats.SparseFormat` operand and a classic Einsum string.
* :mod:`repro.formats` — COO, CSR, ELL, BCSR, BlockCOO, GroupCOO,
  BlockGroupCOO and the group-size heuristic of Section 4.2.
* :mod:`repro.kernels` — the paper's four case-study applications
  (structured/unstructured SpMM, point-cloud sparse convolution, the
  equivariant tensor product) built on the public API.
* :mod:`repro.baselines` — the hand-written libraries and sparse compilers
  the paper compares against, re-implemented at the algorithm level.
* :mod:`repro.core` — the compiler itself: the indirect-Einsum frontend,
  the FX-like graph IR, the extended Inductor-like backend, and the
  simulated Triton/GPU layer.
* :mod:`repro.tuner` — cost-model-driven adaptive format selection:
  :func:`repro.auto_format` and the ``insum(..., format="auto")`` path,
  scored by microbenchmark-calibrated analytical costs.
* :mod:`repro.cluster` — multi-process serving: :class:`repro.ClusterServer`
  dispatches the ``InsumServer`` surface across worker processes over
  shared-memory ring transport (see ``docs/SERVING.md``).
* :mod:`repro.serve` — the serving front door: :class:`repro.Session`
  with one ``submit()``-returns-:class:`repro.Future` surface over
  inline, threaded, and cluster execution, configured by a typed
  :class:`repro.ServeConfig` and reporting a normalized
  :class:`repro.ServeStats` (see ``docs/API.md`` for migration from the
  legacy ticket API).
* :mod:`repro.obs` — observability across every tier: the process-wide
  metrics registry, per-request traces (``Future.trace()``), structured
  JSON logs, and the ``/metrics`` / ``/healthz`` / ``/statsz`` ops HTTP
  endpoint (``Session.serve_ops()``; see ``docs/OBSERVABILITY.md``).
* :mod:`repro.replay` — workload-trace replay: versioned JSONL traces
  (``repro-trace/1``), an open-loop replayer over any backend emitting
  an SLO report with latency/attainment/goodput, and a seeded fault
  injector behind the ``tests/replay`` soak suite (see
  ``docs/REPLAY.md``).
* :mod:`repro.resilience` — the failure-handling layer over every
  serving tier: per-request deadlines (``submit(deadline_ms=...)`` →
  :class:`repro.DeadlineExceededError`), a session
  :class:`repro.resilience.RetryPolicy` with decorrelated-jitter
  backoff, crash-loop supervision with restart budgets and poison
  quarantine, and warm failover to a fallback backend (see
  ``docs/RESILIENCE.md``).
* :mod:`repro.gateway` — the HTTP front door: a versioned ``/v1`` wire
  API over :class:`repro.Session` (``Session.serve_gateway()``), with
  JSON and binary operand encodings, per-tenant API-key auth and
  admission quotas, header-carried deadlines shed at the edge, and a
  Session-shaped :class:`repro.GatewayClient` (see ``docs/GATEWAY.md``).

See ``docs/ARCHITECTURE.md`` for the full pipeline walk-through,
``docs/FORMATS.md`` for the format zoo, and ``docs/BENCHMARKS.md`` for the
paper-figure harnesses.
"""

from repro.cluster import ClusterBusyError, ClusterServer, ClusterStats, WorkerCrashedError
from repro.core.insum import Insum, SparseEinsum, insum, sparse_einsum
from repro.core.inductor import InductorConfig
from repro.core.triton_sim import DeviceModel, RTX3090
from repro.errors import (
    ControlThreadError,
    DeadlineExceededError,
    FutureCancelledError,
    GatewayAuthError,
    GatewayError,
    PoisonedRequestError,
    ServeError,
    SessionClosedError,
    TenantQuotaError,
    WireFormatError,
)
from repro.gateway import GatewayClient, GatewayConfig, GatewayServer
from repro.resilience import RetryPolicy
from repro.runtime import (
    InsumServer,
    PlanCache,
    ShardedExecutor,
    StackedSparse,
    clear_plan_cache,
    configure_plan_cache,
    get_plan_cache,
)
from repro.obs import OpsServer, configure_logging, get_logger, get_registry
from repro.serve import Future, ServeConfig, ServeStats, Session
from repro.tuner import (
    CostModel,
    SparsityProfile,
    auto_format,
    profile_operand,
)

__version__ = "1.7.0"

__all__ = [
    "ClusterBusyError",
    "ClusterServer",
    "ClusterStats",
    "ControlThreadError",
    "DeadlineExceededError",
    "Future",
    "FutureCancelledError",
    "GatewayAuthError",
    "GatewayClient",
    "GatewayConfig",
    "GatewayError",
    "GatewayServer",
    "PoisonedRequestError",
    "RetryPolicy",
    "TenantQuotaError",
    "WireFormatError",
    "ServeConfig",
    "ServeError",
    "ServeStats",
    "Session",
    "SessionClosedError",
    "WorkerCrashedError",
    "Insum",
    "SparseEinsum",
    "insum",
    "sparse_einsum",
    "InductorConfig",
    "DeviceModel",
    "RTX3090",
    "InsumServer",
    "PlanCache",
    "ShardedExecutor",
    "StackedSparse",
    "clear_plan_cache",
    "configure_plan_cache",
    "get_plan_cache",
    "CostModel",
    "SparsityProfile",
    "auto_format",
    "profile_operand",
    "OpsServer",
    "configure_logging",
    "get_logger",
    "get_registry",
    "__version__",
]
