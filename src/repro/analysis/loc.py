"""Lines-of-code accounting for Table 1.

The paper counts the code a user must write per application: one indirect
Einsum line with Insum versus hundreds to thousands of lines of Triton or
CUDA for the hand-written libraries.  The baseline numbers below are the
ones published in the paper (they refer to external codebases we cannot
measure locally); our own counts are measured from the expression strings
of the application classes in :mod:`repro.kernels`.
"""

from __future__ import annotations

#: Lines of code of the hand-written baselines as reported in Table 1.
PAPER_BASELINE_LOC: dict[str, tuple[str, int]] = {
    "structured_spmm": ("TorchBSR", 202),
    "unstructured_spmm": ("Sputnik", 1918),
    "equivariant_tensor_product": ("e3nn", 225),
    "sparse_convolution": ("TorchSparse", 4491),
}


def count_lines_of_code(text: str) -> int:
    """Count non-empty, non-comment lines of a source snippet."""
    count = 0
    for line in text.splitlines():
        stripped = line.strip()
        if stripped and not stripped.startswith("#"):
            count += 1
    return count


def loc_saving(application: str, our_loc: int) -> float:
    """LoC saving factor versus the paper's hand-written baseline."""
    if application not in PAPER_BASELINE_LOC:
        raise KeyError(
            f"unknown application {application!r}; known: {sorted(PAPER_BASELINE_LOC)}"
        )
    if our_loc <= 0:
        raise ValueError("our_loc must be positive")
    _, baseline_loc = PAPER_BASELINE_LOC[application]
    return baseline_loc / our_loc
