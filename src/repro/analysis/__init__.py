"""Measurement helpers: lines-of-code accounting, metrics, and reporting."""

from repro.analysis.loc import PAPER_BASELINE_LOC, count_lines_of_code, loc_saving
from repro.analysis.metrics import geometric_mean, speedup
from repro.analysis.reporting import format_series, format_table

__all__ = [
    "PAPER_BASELINE_LOC",
    "count_lines_of_code",
    "loc_saving",
    "geometric_mean",
    "speedup",
    "format_series",
    "format_table",
]
