"""Performance metrics shared by the benchmark harnesses."""

from __future__ import annotations

from typing import Iterable

import numpy as np


def speedup(baseline_ms: float, ours_ms: float) -> float:
    """How many times faster ``ours`` is than ``baseline`` (>1 means faster)."""
    if ours_ms <= 0:
        raise ValueError(f"ours_ms must be positive, got {ours_ms}")
    if baseline_ms < 0:
        raise ValueError(f"baseline_ms must be non-negative, got {baseline_ms}")
    return baseline_ms / ours_ms


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean, the aggregate the paper reports for Figures 11 and 12."""
    data = np.asarray(list(values), dtype=np.float64)
    if data.size == 0:
        raise ValueError("geometric_mean of an empty sequence")
    if np.any(data <= 0):
        raise ValueError("geometric_mean requires strictly positive values")
    return float(np.exp(np.mean(np.log(data))))
