"""Workload-trace replay: committed traces, open-loop load, SLO gates.

The replay layer turns every serving performance and robustness claim
into something reproducible from a file in the repository:

- :mod:`repro.replay.trace` — the versioned JSONL trace format, its
  deterministic synthetic generators (four tuner regimes, mixed
  multi-tenant populations, uniform/Poisson/bursty arrivals), and the
  :class:`TraceMaterializer` that rebuilds operand arrays from specs.
- :mod:`repro.replay.runner` — the open-loop replayer over a serve
  :class:`~repro.serve.Session` (any backend) and the
  :class:`SLOReport` it emits (percentiles vs. targets, attainment,
  goodput, failure taxonomy, conservation invariants).
- :mod:`repro.replay.faults` — seeded fault injection (worker kill,
  admission saturation, oversized operands, in-place mutation) driven
  from the replayer's hooks; the basis of the soak suite.

See ``docs/REPLAY.md`` for the trace schema, the SLO report fields, and
the fault catalogue.
"""

from repro.replay.faults import FAULT_KINDS, FaultEvent, FaultInjector, FaultSchedule
from repro.replay.runner import OUTCOMES, RequestOutcome, SLOReport, replay, replay_file
from repro.replay.trace import (
    ARRIVALS,
    REGIMES,
    SCHEMA,
    SLOTarget,
    TenantSpec,
    TraceFormatError,
    TraceHeader,
    TraceMaterializer,
    TraceRecord,
    WorkloadTrace,
    compute_digests,
    default_tenants,
    digest_array,
    digest_operands,
    read_trace,
    synthesize,
    synthesize_regime,
    write_trace,
)

__all__ = [
    "ARRIVALS",
    "FAULT_KINDS",
    "OUTCOMES",
    "REGIMES",
    "SCHEMA",
    "FaultEvent",
    "FaultInjector",
    "FaultSchedule",
    "RequestOutcome",
    "SLOReport",
    "SLOTarget",
    "TenantSpec",
    "TraceFormatError",
    "TraceHeader",
    "TraceMaterializer",
    "TraceRecord",
    "WorkloadTrace",
    "compute_digests",
    "default_tenants",
    "digest_array",
    "digest_operands",
    "read_trace",
    "replay",
    "replay_file",
    "synthesize",
    "synthesize_regime",
    "write_trace",
]
