"""The versioned JSONL workload-trace format and its synthetic generators.

A *workload trace* is the unit of reproducibility for every serving
performance or robustness claim the repository makes: one committed
JSONL file fully determines a stream of requests — who sent them
(tenant), when (arrival offset), what (expression + operand specs), and
what the correct answer is (expected-result digest).  The open-loop
replayer (:mod:`repro.replay.runner`) turns a trace plus a
:class:`repro.serve.Session` into an :class:`~repro.replay.runner.SLOReport`.

File layout (``repro-trace/1``): the first line is the header object,
every following line one record, e.g.::

    {"schema": "repro-trace/1", "name": "mixed-smoke", "seed": 7,
     "slo": {"latency_ms": 250.0, "attainment_target": 0.99}, "records": 96}
    {"offset_ms": 3.1, "tenant": "uniform", "expression": "C[m,n] += ...",
     "operands": {"A": {"kind": "sparse", ...}, "B": {"kind": "dense", ...}},
     "digest": "sha256:...", "operand_digest": "sha256:..."}

Operands are *specs*, not payloads: a dense spec is ``(shape,
value_seed)`` and a sparse spec is ``(regime, shape, density, format,
pattern_seed, value_seed)``; :class:`TraceMaterializer` re-creates the
actual arrays deterministically from the trace seed, caching sparse
instances so long-lived patterns keep one identity across records (the
property the engine's fingerprint caches and the cluster's
pattern-shipping cache key on).  Unknown fields — in the header or any
record — are preserved round-trip, so future schema extensions stay
forward compatible.

Digests: ``operand_digest`` hashes the *logical* dense content of every
operand and is therefore format independent (the same pattern shipped
as COO or GroupCOO digests identically); ``digest`` hashes the exact
bytes of the canonical (inline, uncoalesced) execution's result.  Result
digests are bitwise and therefore machine-local — BLAS builds differ —
so replay harnesses on a different machine call
:meth:`WorkloadTrace.refresh_digests` once before verifying (see
``docs/REPLAY.md``).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from repro.formats import BCSR, COO, CSR, ELL, BlockCOO, GroupCOO
from repro.formats.base import SparseFormat
from repro.utils.rng import rng

#: The schema identifier written to (and required of) every trace file.
SCHEMA = "repro-trace/1"

#: The four tuner sparsity regimes every generator understands.
REGIMES = ("uniform", "powerlaw", "blockdiag", "pointcloud")

#: Arrival processes :func:`synthesize` can lay records on.
ARRIVALS = ("uniform", "poisson", "onoff")

SPMM_EXPRESSION = "C[m,n] += A[m,k] * B[k,n]"
SPMV_EXPRESSION = "y[m] += A[m,k] * x[k]"


class TraceFormatError(ValueError):
    """A trace file (or record dict) violates the ``repro-trace/1`` schema."""


# ---------------------------------------------------------------------------
# Digests
# ---------------------------------------------------------------------------
def digest_array(array: np.ndarray) -> str:
    """The bitwise digest of one array: sha256 over dtype, shape, and bytes.

    Used for expected-*result* digests, where the serving tiers are held
    to bit-identical execution (see ``tests/serve/test_backend_parity.py``).
    """
    array = np.ascontiguousarray(array)
    hasher = hashlib.sha256()
    hasher.update(str(array.dtype).encode())
    hasher.update(str(array.shape).encode())
    hasher.update(array.tobytes())
    return f"sha256:{hasher.hexdigest()}"


def digest_operands(operands: Mapping[str, Any]) -> str:
    """A format-independent digest of a request's logical operand content.

    Sparse operands are hashed through their dense projection, so the
    same logical matrix shipped as COO, GroupCOO, or BCSR produces the
    same digest — the stability property the trace codec's property
    tests pin down.

    Parameters
    ----------
    operands:
        Operand arrays/formats by name (the dict a request is submitted
        with).
    """
    hasher = hashlib.sha256()
    for name in sorted(operands):
        value = operands[name]
        logical = value.to_dense() if isinstance(value, SparseFormat) else np.asarray(value)
        hasher.update(name.encode())
        hasher.update(digest_array(logical).encode())
    return f"sha256:{hasher.hexdigest()}"


# ---------------------------------------------------------------------------
# Header and records
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class SLOTarget:
    """The trace's service-level objective: a latency bound and a floor.

    A request *attains* the SLO when it completes successfully (digest
    intact) within ``latency_ms`` end-to-end; the replay passes when the
    attained fraction reaches ``attainment_target``.
    """

    latency_ms: float = 250.0
    attainment_target: float = 0.99

    def to_dict(self) -> dict[str, float]:
        """The JSON shape stored in the trace header."""
        return {"latency_ms": self.latency_ms, "attainment_target": self.attainment_target}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SLOTarget":
        """Parse the header's ``slo`` object (missing fields keep defaults)."""
        return cls(
            latency_ms=float(payload.get("latency_ms", cls.latency_ms)),
            attainment_target=float(payload.get("attainment_target", cls.attainment_target)),
        )


@dataclass
class TraceHeader:
    """The first line of a trace file: identity, seed, SLO, record count.

    ``extras`` holds any header fields this version does not understand,
    preserved verbatim on re-save (forward compatibility).
    """

    name: str
    seed: int
    slo: SLOTarget = field(default_factory=SLOTarget)
    records: int = 0
    extras: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """The JSON object written as the file's first line."""
        payload = {
            "schema": SCHEMA,
            "name": self.name,
            "seed": self.seed,
            "slo": self.slo.to_dict(),
            "records": self.records,
        }
        payload.update(self.extras)
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "TraceHeader":
        """Parse (and schema-check) a header object.

        Raises
        ------
        TraceFormatError
            When the ``schema`` field is missing or names a different
            major version.
        """
        schema = payload.get("schema")
        if schema != SCHEMA:
            raise TraceFormatError(
                f"unsupported trace schema {schema!r} (this reader speaks {SCHEMA!r})"
            )
        known = {"schema", "name", "seed", "slo", "records"}
        return cls(
            name=str(payload.get("name", "")),
            seed=int(payload.get("seed", 0)),
            slo=SLOTarget.from_dict(payload.get("slo", {})),
            records=int(payload.get("records", 0)),
            extras={key: value for key, value in payload.items() if key not in known},
        )


@dataclass
class TraceRecord:
    """One request of a workload trace.

    ``operands`` maps operand names to JSON specs (see module docstring);
    ``digest`` is the expected-result digest (None until computed);
    ``operand_digest`` the format-independent input digest.  ``extras``
    round-trips unknown fields.
    """

    offset_ms: float
    tenant: str
    expression: str
    operands: dict[str, dict[str, Any]]
    digest: str | None = None
    operand_digest: str | None = None
    extras: dict[str, Any] = field(default_factory=dict)

    _KNOWN = frozenset(
        {"offset_ms", "tenant", "expression", "operands", "digest", "operand_digest"}
    )

    def to_dict(self) -> dict[str, Any]:
        """The JSON object written as one trace line."""
        payload: dict[str, Any] = {
            "offset_ms": round(float(self.offset_ms), 4),
            "tenant": self.tenant,
            "expression": self.expression,
            "operands": self.operands,
        }
        if self.digest is not None:
            payload["digest"] = self.digest
        if self.operand_digest is not None:
            payload["operand_digest"] = self.operand_digest
        payload.update(self.extras)
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "TraceRecord":
        """Parse one record object, tolerating (and keeping) unknown fields.

        Raises
        ------
        TraceFormatError
            When a required field (tenant, expression, operands) is
            missing.
        """
        for required in ("tenant", "expression", "operands"):
            if required not in payload:
                raise TraceFormatError(f"trace record is missing the {required!r} field")
        return cls(
            offset_ms=float(payload.get("offset_ms", 0.0)),
            tenant=str(payload["tenant"]),
            expression=str(payload["expression"]),
            operands={str(k): dict(v) for k, v in dict(payload["operands"]).items()},
            digest=payload.get("digest"),
            operand_digest=payload.get("operand_digest"),
            extras={k: v for k, v in payload.items() if k not in cls._KNOWN},
        )


# ---------------------------------------------------------------------------
# The trace object and its JSONL codec
# ---------------------------------------------------------------------------
class WorkloadTrace:
    """A header plus an offset-ordered list of records.

    Constructed by :func:`read_trace`, :func:`synthesize`, or directly
    from parts; saved with :func:`write_trace` / :meth:`save`.
    """

    def __init__(self, header: TraceHeader, records: Sequence[TraceRecord]):
        self.header = header
        self.records = list(records)
        self.header.records = len(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    @property
    def name(self) -> str:
        """The trace's name (header field)."""
        return self.header.name

    @property
    def seed(self) -> int:
        """The base seed every materialization stream derives from."""
        return self.header.seed

    @property
    def duration_ms(self) -> float:
        """The last record's arrival offset (0.0 for an empty trace)."""
        return self.records[-1].offset_ms if self.records else 0.0

    def tenants(self) -> tuple[str, ...]:
        """The distinct tenant names, in first-appearance order."""
        seen: dict[str, None] = {}
        for record in self.records:
            seen.setdefault(record.tenant, None)
        return tuple(seen)

    def subset(self, start: int, stop: int | None = None) -> "WorkloadTrace":
        """A new trace over ``records[start:stop]``, offsets rebased to zero.

        The subset shares the parent's seed and SLO, so materialization
        of the surviving records is unchanged — this is how a replay run
        splits one trace across two sessions (e.g. the mixed-backend
        parity test).

        Parameters
        ----------
        start / stop:
            Record slice bounds (``stop=None`` keeps the tail).
        """
        sliced = self.records[start:stop]
        base = sliced[0].offset_ms if sliced else 0.0
        rebased = [replace(record, offset_ms=record.offset_ms - base) for record in sliced]
        header = TraceHeader(
            name=f"{self.header.name}[{start}:{'' if stop is None else stop}]",
            seed=self.header.seed,
            slo=self.header.slo,
            records=len(rebased),
            extras=dict(self.header.extras),
        )
        return WorkloadTrace(header, rebased)

    def refresh_digests(self) -> int:
        """Recompute every record's digests on *this* machine; returns count.

        Result digests are bitwise and BLAS builds differ between
        machines, so a harness replaying a trace generated elsewhere
        refreshes digests once (a canonical inline execution per record)
        and then holds the serving tiers to bit-exact agreement with it.
        """
        compute_digests(self)
        return len(self.records)

    def save(self, path: str | Path) -> Path:
        """Write the trace as JSONL (see :func:`write_trace`)."""
        return write_trace(path, self)


def write_trace(path: str | Path, trace: WorkloadTrace) -> Path:
    """Write ``trace`` to ``path`` as one-header-then-records JSONL.

    Parameters
    ----------
    path:
        Destination file; parent directories are created.
    trace:
        The trace to serialize.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    trace.header.records = len(trace.records)
    lines = [json.dumps(trace.header.to_dict(), sort_keys=True)]
    lines.extend(json.dumps(record.to_dict(), sort_keys=True) for record in trace.records)
    path.write_text("\n".join(lines) + "\n")
    return path


def read_trace(path: str | Path) -> WorkloadTrace:
    """Parse a ``repro-trace/1`` JSONL file into a :class:`WorkloadTrace`.

    Unknown fields anywhere are preserved; a header/record that violates
    the schema raises :class:`TraceFormatError` naming the line.

    Parameters
    ----------
    path:
        The trace file to read.
    """
    path = Path(path)
    lines = [line for line in path.read_text().splitlines() if line.strip()]
    if not lines:
        raise TraceFormatError(f"{path}: empty trace file")
    try:
        header = TraceHeader.from_dict(json.loads(lines[0]))
    except json.JSONDecodeError as error:
        raise TraceFormatError(f"{path}:1: not JSON ({error})") from None
    records = []
    for number, line in enumerate(lines[1:], start=2):
        try:
            records.append(TraceRecord.from_dict(json.loads(line)))
        except json.JSONDecodeError as error:
            raise TraceFormatError(f"{path}:{number}: not JSON ({error})") from None
        except TraceFormatError as error:
            raise TraceFormatError(f"{path}:{number}: {error}") from None
    if header.records and header.records != len(records):
        raise TraceFormatError(
            f"{path}: header promises {header.records} records, file has {len(records)}"
        )
    return WorkloadTrace(header, records)


# ---------------------------------------------------------------------------
# Pattern generators (the four tuner regimes)
# ---------------------------------------------------------------------------
def _uniform_pattern(shape, density, generator) -> np.ndarray:
    return generator.random(shape) < density


def _powerlaw_pattern(shape, density, generator) -> np.ndarray:
    rows, cols = shape
    # Zipf-ish row occupancy: row r gets density weight ~ 1/(r+1),
    # rescaled so the overall density matches the request.
    weights = 1.0 / (np.arange(rows) + 1.0)
    weights *= density * rows / weights.sum()
    return generator.random(shape) < np.minimum(weights, 1.0)[:, None]


def _blockdiag_pattern(shape, density, generator, block: int = 8) -> np.ndarray:
    rows, cols = shape
    mask = np.zeros(shape, dtype=bool)
    # Dense blocks on the diagonal until the target density is met.
    target = int(density * rows * cols)
    steps = min(rows, cols) // block
    order = generator.permutation(steps) if steps else np.array([], dtype=int)
    for step in order:
        if mask.sum() >= target:
            break
        r, c = step * block, step * block
        mask[r : r + block, c : c + block] = True
    # Sprinkle random off-diagonal blocks for any remaining budget.
    while mask.sum() < target and steps:
        r = int(generator.integers(0, max(1, rows - block)))
        c = int(generator.integers(0, max(1, cols - block)))
        mask[r : r + block, c : c + block] = True
    return mask


def _pointcloud_pattern(shape, density, generator) -> np.ndarray:
    rows, cols = shape
    n = min(rows, cols)
    points = generator.random((n, 3))
    deltas = points[:, None, :] - points[None, :, :]
    distance = np.sqrt((deltas**2).sum(axis=-1))
    # Pick the radius that yields the requested density over the n*n block.
    radius = np.quantile(distance, min(1.0, density))
    mask = np.zeros(shape, dtype=bool)
    mask[:n, :n] = distance <= radius
    return mask


_PATTERNS: dict[str, Callable] = {
    "uniform": _uniform_pattern,
    "powerlaw": _powerlaw_pattern,
    "blockdiag": _blockdiag_pattern,
    "pointcloud": _pointcloud_pattern,
}


def _build_format(dense: np.ndarray, spec: Mapping[str, Any]) -> SparseFormat:
    name = str(spec.get("format", "coo")).lower()
    if name == "coo":
        return COO.from_dense(dense)
    if name == "csr":
        return CSR.from_dense(dense)
    if name == "ell":
        return ELL.from_dense(dense)
    if name == "groupcoo":
        group_size = spec.get("group_size")
        return GroupCOO.from_dense(dense, group_size=group_size)
    if name == "blockcoo":
        block_shape = tuple(spec.get("block_shape", (8, 8)))
        return BlockCOO.from_dense(dense, block_shape=block_shape)
    if name == "bcsr":
        block_shape = tuple(spec.get("block_shape", (8, 8)))
        return BCSR.from_dense(dense, block_shape=block_shape)
    raise TraceFormatError(f"unknown sparse format {name!r} in operand spec")


# ---------------------------------------------------------------------------
# Materialization
# ---------------------------------------------------------------------------
class TraceMaterializer:
    """Deterministically re-creates a record's operand arrays from specs.

    One materializer per replay run: sparse operands are cached by spec,
    so every record naming the same (regime, shape, density, format,
    pattern_seed, value_seed) receives the *same live instance* — which
    keeps the engine's identity-fingerprint caches and the cluster's
    pattern-shipping cache hot, exactly as a long-lived serving client
    would.  Dense operands are fresh arrays per record unless the spec
    sets ``reuse`` (or :meth:`materialize` is told to force it), in
    which case the values are written *in place* into one long-lived
    buffer per (tenant, operand) — the refill-same-buffer client
    pattern the cluster codec's crc32 re-ship gate exists for.

    Parameters
    ----------
    seed:
        The trace's base seed; every value stream derives from it.
    """

    def __init__(self, seed: int):
        self.seed = int(seed)
        self._sparse_cache: dict[str, SparseFormat] = {}
        self._buffers: dict[tuple[str, str, tuple[int, ...]], np.ndarray] = {}

    # -- spec-level helpers --------------------------------------------------
    def _dense_values(self, spec: Mapping[str, Any]) -> np.ndarray:
        shape = tuple(int(dim) for dim in spec["shape"])
        stream = f"dense/{int(spec.get('value_seed', 0))}"
        return rng(self.seed, stream).standard_normal(shape)

    def _sparse_instance(self, spec: Mapping[str, Any]) -> SparseFormat:
        key = json.dumps(spec, sort_keys=True)
        cached = self._sparse_cache.get(key)
        if cached is not None:
            return cached
        regime = str(spec.get("regime", "uniform"))
        if regime not in _PATTERNS:
            raise TraceFormatError(f"unknown sparsity regime {regime!r} in operand spec")
        shape = tuple(int(dim) for dim in spec["shape"])
        density = float(spec.get("density", 0.05))
        pattern_rng = rng(self.seed, f"pattern/{int(spec.get('pattern_seed', 0))}")
        mask = _PATTERNS[regime](shape, density, pattern_rng)
        if not mask.any():
            mask[0, 0] = True  # a pattern must have at least one entry
        values = rng(self.seed, f"sparse-values/{int(spec.get('value_seed', 0))}")
        dense = np.where(mask, values.standard_normal(shape), 0.0)
        instance = _build_format(dense, spec)
        self._sparse_cache[key] = instance
        return instance

    def reused_buffer_keys(
        self, record: TraceRecord, force_reuse: bool = False
    ) -> list[tuple[str, str, tuple[int, ...]]]:
        """The shared-buffer keys :meth:`materialize` would write in place.

        The replayer must wait for any outstanding request still reading
        one of these buffers before materializing the record (mutating an
        operand under an in-flight request corrupts it on every backend).

        Parameters
        ----------
        record:
            The record about to be materialized.
        force_reuse:
            Treat every dense spec as ``reuse`` (the value-mutation
            fault's switch).
        """
        keys = []
        for name, spec in record.operands.items():
            if spec.get("kind") != "dense":
                continue
            if not (force_reuse or spec.get("reuse")):
                continue
            shape = tuple(int(dim) for dim in spec["shape"])
            keys.append((record.tenant, name, shape))
        return keys

    def materialize(self, record: TraceRecord, force_reuse: bool = False) -> dict[str, Any]:
        """The record's operand arrays, rebuilt deterministically from specs.

        Parameters
        ----------
        record:
            The trace record to materialize.
        force_reuse:
            Write every dense operand's values into its tenant's shared
            buffer in place (see class docstring) even when the spec
            does not ask for reuse.
        """
        operands: dict[str, Any] = {}
        for name, spec in record.operands.items():
            kind = spec.get("kind", "dense")
            if kind == "sparse":
                operands[name] = self._sparse_instance(spec)
            elif kind == "dense":
                values = self._dense_values(spec)
                if force_reuse or spec.get("reuse"):
                    key = (record.tenant, name, values.shape)
                    buffer = self._buffers.get(key)
                    if buffer is None:
                        buffer = values.copy()
                        self._buffers[key] = buffer
                    else:
                        buffer[...] = values
                    operands[name] = buffer
                else:
                    operands[name] = values
            else:
                raise TraceFormatError(f"unknown operand kind {kind!r} in record spec")
        return operands


def compute_digests(trace: WorkloadTrace) -> None:
    """Fill every record's ``digest``/``operand_digest`` in place.

    Executes each record once through a canonical
    :class:`~repro.runtime.server.RequestExecutor` (inline, uncoalesced,
    unsharded, default compiler config) — the same execution the serve
    tier's inline backend performs, which the threaded and cluster tiers
    are bit-identical to when coalescing is off.

    Parameters
    ----------
    trace:
        The trace to annotate (records are modified in place).
    """
    from repro.runtime.server import RequestExecutor

    materializer = TraceMaterializer(trace.seed)
    executor = RequestExecutor()
    try:
        for record in trace.records:
            operands = materializer.materialize(record)
            record.operand_digest = digest_operands(operands)
            record.digest = digest_array(executor.execute(record.expression, operands))
    finally:
        executor.close()


# ---------------------------------------------------------------------------
# Synthesis
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class TenantSpec:
    """One tenant of a synthetic multi-tenant trace.

    Each tenant owns a single long-lived sparse operand (one of the four
    tuner regimes, in a chosen format) and issues one expression shape
    against it with fresh dense values per request — the serving steady
    state the benchmarks model.

    Parameters
    ----------
    name:
        Tenant label recorded on every one of its requests.
    regime:
        Sparsity regime of its pattern (see :data:`REGIMES`).
    shape / density:
        The sparse operand's logical shape and fill.
    format:
        Trace-format name: ``coo``, ``csr``, ``ell``, ``groupcoo``,
        ``blockcoo``, or ``bcsr``.
    expression:
        ``"spmm"`` or ``"spmv"``.
    rhs_cols:
        SpMM right-hand-side column count.
    weight:
        Relative share of the trace's requests this tenant receives.
    reuse_dense:
        Mark the tenant's dense operands ``reuse`` (the in-place
        refill pattern; exercises the cluster's mutation re-ship).
    """

    name: str
    regime: str = "uniform"
    shape: tuple[int, int] = (96, 128)
    density: float = 0.06
    format: str = "groupcoo"
    expression: str = "spmm"
    rhs_cols: int = 8
    weight: float = 1.0
    reuse_dense: bool = False

    def sparse_spec(self, pattern_seed: int, value_seed: int) -> dict[str, Any]:
        """The tenant's sparse operand spec (shared across its records)."""
        spec: dict[str, Any] = {
            "kind": "sparse",
            "regime": self.regime,
            "shape": list(self.shape),
            "density": self.density,
            "format": self.format,
            "pattern_seed": pattern_seed,
            "value_seed": value_seed,
        }
        if self.format == "groupcoo":
            spec["group_size"] = 4
        if self.format in ("blockcoo", "bcsr"):
            spec["block_shape"] = [8, 8]
        return spec


def default_tenants() -> tuple[TenantSpec, ...]:
    """The stock mixed-tenant population: one tenant per tuner regime."""
    return (
        TenantSpec("uniform", regime="uniform", shape=(96, 128), density=0.06,
                   format="coo", expression="spmm", weight=3.0),
        TenantSpec("powerlaw", regime="powerlaw", shape=(128, 128), density=0.05,
                   format="coo", expression="spmv", weight=2.0),
        TenantSpec("blockdiag", regime="blockdiag", shape=(128, 128), density=0.06,
                   format="groupcoo", expression="spmm", weight=2.0),
        TenantSpec("pointcloud", regime="pointcloud", shape=(96, 96), density=0.05,
                   format="groupcoo", expression="spmm", weight=1.0),
    )


def _arrival_offsets(
    arrival: str, num_records: int, rate_rps: float, seed: int, on_ms: float, off_ms: float
) -> list[float]:
    if arrival not in ARRIVALS:
        raise TraceFormatError(f"unknown arrival process {arrival!r}; expected {ARRIVALS}")
    generator = rng(seed, f"arrivals/{arrival}")
    mean_gap_ms = 1e3 / rate_rps
    if arrival == "uniform":
        return [index * mean_gap_ms for index in range(num_records)]
    if arrival == "poisson":
        gaps = generator.exponential(mean_gap_ms, size=num_records)
        return list(np.concatenate([[0.0], np.cumsum(gaps)[:-1]]))
    # on/off bursty: Poisson arrivals at double rate during ON windows,
    # silence during OFF windows — the tail-latency stressor.
    offsets: list[float] = []
    clock = 0.0
    while len(offsets) < num_records:
        window_end = clock + on_ms
        while clock < window_end and len(offsets) < num_records:
            offsets.append(clock)
            clock += float(generator.exponential(mean_gap_ms / 2.0))
        clock = window_end + off_ms
    return offsets


def synthesize(
    name: str,
    *,
    seed: int,
    num_records: int = 96,
    rate_rps: float = 100.0,
    arrival: str = "poisson",
    tenants: Sequence[TenantSpec] | None = None,
    slo: SLOTarget | None = None,
    on_ms: float = 250.0,
    off_ms: float = 250.0,
    digests: bool = True,
) -> WorkloadTrace:
    """Generate a seeded multi-tenant workload trace.

    Fully deterministic in ``(name, seed, parameters)``: arrivals, tenant
    assignment, and every operand value derive from independent
    :func:`repro.utils.rng` streams, so the same call reproduces the same
    byte-identical trace file anywhere.

    Parameters
    ----------
    name:
        The trace's name (header field).
    seed:
        Base seed for every stream.
    num_records:
        Number of requests.
    rate_rps:
        Mean offered load (requests per second of trace time).
    arrival:
        ``"uniform"`` (fixed gaps), ``"poisson"`` (exponential gaps), or
        ``"onoff"`` (bursty: Poisson at double rate inside ON windows of
        ``on_ms``, silent for ``off_ms`` between them).
    tenants:
        Tenant population (default: one tenant per tuner regime, see
        :func:`default_tenants`).
    slo:
        The trace's SLO (default :class:`SLOTarget`).
    on_ms / off_ms:
        On/off window lengths for ``arrival="onoff"``.
    digests:
        Compute expected-result digests now (one canonical execution per
        record; disable for huge traces and call
        :meth:`WorkloadTrace.refresh_digests` later).
    """
    tenants = tuple(tenants) if tenants is not None else default_tenants()
    if not tenants:
        raise TraceFormatError("synthesize needs at least one tenant")
    offsets = _arrival_offsets(arrival, num_records, rate_rps, seed, on_ms, off_ms)
    weights = np.array([tenant.weight for tenant in tenants], dtype=float)
    weights /= weights.sum()
    assignment = rng(seed, "tenant-assignment").choice(len(tenants), size=num_records, p=weights)

    records = []
    for index in range(num_records):
        tenant = tenants[int(assignment[index])]
        tenant_id = int(assignment[index])
        sparse = tenant.sparse_spec(pattern_seed=tenant_id, value_seed=1000 + tenant_id)
        dense_spec: dict[str, Any] = {"kind": "dense", "value_seed": index}
        if tenant.reuse_dense:
            dense_spec["reuse"] = True
        if tenant.expression == "spmm":
            expression = SPMM_EXPRESSION
            dense_spec["shape"] = [tenant.shape[1], tenant.rhs_cols]
            operands = {"A": sparse, "B": dense_spec}
        elif tenant.expression == "spmv":
            expression = SPMV_EXPRESSION
            dense_spec["shape"] = [tenant.shape[1]]
            operands = {"A": sparse, "x": dense_spec}
        else:
            raise TraceFormatError(
                f"unknown tenant expression {tenant.expression!r} (spmm or spmv)"
            )
        records.append(
            TraceRecord(
                offset_ms=float(offsets[index]),
                tenant=tenant.name,
                expression=expression,
                operands=operands,
            )
        )
    header = TraceHeader(name=name, seed=seed, slo=slo or SLOTarget(), records=len(records))
    trace = WorkloadTrace(header, records)
    if digests:
        compute_digests(trace)
    return trace


def synthesize_regime(
    regime: str, *, seed: int, num_records: int = 32, rate_rps: float = 200.0, **kwargs: Any
) -> WorkloadTrace:
    """A single-tenant trace for one tuner regime (convenience wrapper).

    Parameters
    ----------
    regime:
        One of :data:`REGIMES`.
    seed / num_records / rate_rps:
        As in :func:`synthesize`.
    **kwargs:
        Forwarded to :func:`synthesize` (e.g. ``arrival=``,
        ``digests=``).
    """
    if regime not in REGIMES:
        raise TraceFormatError(f"unknown regime {regime!r}; expected one of {REGIMES}")
    fmt = "groupcoo" if regime == "blockdiag" else "coo"
    tenant = TenantSpec(regime, regime=regime, format=fmt)
    return synthesize(
        f"{regime}-single",
        seed=seed,
        num_records=num_records,
        rate_rps=rate_rps,
        tenants=(tenant,),
        **kwargs,
    )


__all__ = [
    "ARRIVALS",
    "REGIMES",
    "SCHEMA",
    "SLOTarget",
    "TenantSpec",
    "TraceFormatError",
    "TraceHeader",
    "TraceMaterializer",
    "TraceRecord",
    "WorkloadTrace",
    "compute_digests",
    "default_tenants",
    "digest_array",
    "digest_operands",
    "read_trace",
    "synthesize",
    "synthesize_regime",
    "write_trace",
]
