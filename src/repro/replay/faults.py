"""Deterministic fault injection for trace replay.

A :class:`FaultSchedule` is a seeded list of ``(record index, fault)``
events — derived from :func:`repro.utils.rng` streams, so the same
``(seed, num_records)`` always produces the same schedule — and a
:class:`FaultInjector` applies those events from the replayer's
per-record hooks.  Faults target the failure paths the cluster tier
claims to survive; the soak suite (``tests/replay/test_soak.py``)
replays under each fault and asserts the :class:`~repro.replay.runner.
SLOReport` conservation invariant (completed+failed+cancelled ==
submitted) and zero digest mismatches.

The fault catalogue (see ``docs/REPLAY.md`` for the full table):

``worker_kill``
    SIGKILL a cluster worker mid-trace.  Exercises crash detection,
    restart, and in-flight requeue; a no-op on backends without worker
    processes.
``admission_saturation``
    Collapse the admission window to zero for exactly one record, then
    restore it.  With a ``reject`` policy the targeted request fails
    deterministically with ``ClusterBusyError`` — admission pressure
    without racing on real queue depth.
``oversized_operand``
    Submit an extra out-of-trace request whose dense operand exceeds
    the shm ring's payload budget, forcing the inline-pickle fallback
    path.  The injector computes the expected product itself and checks
    the answer at finalize; a surviving wrong answer counts as an
    injected failure.
``value_mutation``
    Force the next few records to refill their dense operands *in
    place* in shared client buffers, exercising the codec's checksum
    gate that must re-ship mutated arrays instead of serving the stale
    identity-cache entry.
``control_thread_exception``
    Raise from inside the cluster's dispatcher loop (via the
    ``_dispatch_iteration`` seam).  Exercises control-plane containment:
    every in-flight future must fail with
    :class:`~repro.errors.ControlThreadError` — never hang — and a
    session with ``failover`` configured must route subsequent submits
    to its warm fallback backend.
``crash_loop_worker``
    SIGKILL the same worker slot repeatedly until its
    :class:`~repro.resilience.WorkerSupervisor` restart budget is
    exhausted and the slot goes permanently dead.  Exercises the token
    bucket, router dead-set exclusion, and degraded health reporting.
``deadline_storm``
    Stamp a burst of consecutive records with an already-expired
    ``deadline_ms``, forcing deterministic
    :class:`~repro.errors.DeadlineExceededError` outcomes that the SLO
    report must count in its own ``deadline`` bucket without breaking
    conservation.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass, field

import numpy as np

from repro.replay.trace import SPMM_EXPRESSION, TraceRecord
from repro.serve import Session
from repro.serve.future import Future
from repro.utils.rng import rng

#: Every fault kind the injector understands, in catalogue order.
FAULT_KINDS = (
    "worker_kill",
    "admission_saturation",
    "oversized_operand",
    "value_mutation",
    "control_thread_exception",
    "crash_loop_worker",
    "deadline_storm",
)

#: How many consecutive records a ``value_mutation`` event forces into
#: in-place reuse mode.
MUTATION_WINDOW = 4

#: How many consecutive records a ``deadline_storm`` event stamps with
#: an already-expired deadline.
DEADLINE_STORM_WINDOW = 4


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: what to inject, and at which record index.

    ``param`` disambiguates within a kind (e.g. which worker to kill).
    """

    kind: str
    at_index: int
    param: int = 0


@dataclass
class FaultSchedule:
    """A seeded, ordered set of fault events for one replay run."""

    seed: int
    events: list[FaultEvent] = field(default_factory=list)

    @classmethod
    def generate(
        cls,
        seed: int,
        num_records: int,
        kinds: tuple[str, ...] = FAULT_KINDS,
        events_per_kind: int = 1,
    ) -> "FaultSchedule":
        """Derive a deterministic schedule from ``(seed, num_records)``.

        Event indices come from the ``"faults/<kind>"`` RNG stream, are
        kept clear of the first and last few records (so startup and
        drain stay clean), and never collide across kinds.

        Parameters
        ----------
        seed:
            The run's base seed.
        num_records:
            Length of the trace being replayed.
        kinds:
            Which fault kinds to schedule (default: the full catalogue).
        events_per_kind:
            Number of events of each kind.
        """
        margin = min(3, max(0, num_records // 4))
        low, high = margin, max(margin + 1, num_records - margin)
        taken: set[int] = set()
        events = []
        for kind in kinds:
            if kind not in FAULT_KINDS:
                raise ValueError(f"unknown fault kind {kind!r}; expected one of {FAULT_KINDS}")
            generator = rng(seed, f"faults/{kind}")
            for ordinal in range(events_per_kind):
                index = int(generator.integers(low, high))
                while index in taken:
                    index = (index + 1) % num_records
                taken.add(index)
                events.append(FaultEvent(kind=kind, at_index=index, param=ordinal))
        events.sort(key=lambda event: (event.at_index, event.kind))
        return cls(seed=seed, events=events)

    def at(self, index: int) -> list[FaultEvent]:
        """The events scheduled for record ``index`` (usually 0 or 1)."""
        return [event for event in self.events if event.at_index == index]


class FaultInjector:
    """Applies a :class:`FaultSchedule` from the replayer's hooks.

    One injector per replay run.  The replayer calls
    :meth:`before_record` just before materializing each record (its
    return value forces in-place operand reuse for the mutation fault),
    :meth:`after_record` right after submitting it, and
    :meth:`finalize` once the trace has drained, which settles any
    injected out-of-band requests and reports their pass/fail counts.

    Parameters
    ----------
    schedule:
        The seeded fault schedule to apply.
    oversized_elements:
        Element count of the oversized dense operand (must exceed the
        target ring's payload budget to force the fallback path; the
        soak suite pairs this with a deliberately small ring).
    """

    def __init__(self, schedule: FaultSchedule, oversized_elements: int = 1 << 16):
        self.schedule = schedule
        self.oversized_elements = int(oversized_elements)
        self.applied: list[FaultEvent] = []
        self.skipped: list[FaultEvent] = []
        self._mutation_until = -1
        self._storm_until = -1
        self._storm_saved: tuple[bool, object] | None = None
        self._saved_window: int | None = None
        self._injected: list[tuple[Future, np.ndarray]] = []

    # -- hook: before each record -------------------------------------------
    def before_record(self, session: Session, index: int, record: TraceRecord) -> bool:
        """Apply the faults scheduled at ``index``; return force-reuse flag.

        Parameters
        ----------
        session:
            The replaying session (its backend is probed for
            cluster-only capabilities).
        index / record:
            The record about to be materialized and submitted.
        """
        self._restore_admission(session)
        force_reuse = index <= self._mutation_until
        for event in self.schedule.at(index):
            if event.kind == "worker_kill":
                if self._kill_worker(session, event.param):
                    self.applied.append(event)
                else:
                    self.skipped.append(event)
            elif event.kind == "admission_saturation":
                if self._saturate_admission(session):
                    self.applied.append(event)
                else:
                    self.skipped.append(event)
            elif event.kind == "value_mutation":
                self._mutation_until = index + MUTATION_WINDOW
                force_reuse = True
                self.applied.append(event)
            elif event.kind == "oversized_operand":
                self._inject_oversized(session)
                self.applied.append(event)
            elif event.kind == "control_thread_exception":
                if self._break_control_thread(session):
                    self.applied.append(event)
                else:
                    self.skipped.append(event)
            elif event.kind == "crash_loop_worker":
                if self._crash_loop_worker(session, event.param):
                    self.applied.append(event)
                else:
                    self.skipped.append(event)
            elif event.kind == "deadline_storm":
                self._storm_until = index + DEADLINE_STORM_WINDOW
                self.applied.append(event)
        if index <= self._storm_until:
            # Stamp an already-expired deadline on the record for this one
            # submission; after_record restores the original extras value.
            self._storm_saved = (
                "deadline_ms" in record.extras,
                record.extras.get("deadline_ms"),
            )
            record.extras["deadline_ms"] = 0.0
        return force_reuse

    # -- hook: after each record --------------------------------------------
    def after_record(
        self, session: Session, index: int, record: TraceRecord, future: Future
    ) -> None:
        """Undo single-record faults (admission window) after submission.

        Parameters
        ----------
        session / index / record / future:
            The just-submitted request and its session.
        """
        # The saturated window must stay collapsed only for the one
        # record it targeted; restore it on the next hook invocation or
        # here once the targeted submit has gone through.
        self._restore_admission(session)
        if self._storm_saved is not None:
            had_key, original = self._storm_saved
            if had_key:
                record.extras["deadline_ms"] = original
            else:
                record.extras.pop("deadline_ms", None)
            self._storm_saved = None

    # -- hook: end of run ----------------------------------------------------
    def finalize(self, session: Session, timeout: float) -> tuple[int, int]:
        """Settle injected out-of-band requests; return (ok, failed).

        Parameters
        ----------
        session:
            The replaying session.
        timeout:
            Seconds to wait for each injected request.
        """
        self._restore_admission(session)
        ok = failed = 0
        for future, expected in self._injected:
            try:
                result = future.result(timeout=timeout)
            except Exception:  # noqa: BLE001 - any loss/error is a failure
                failed += 1
                continue
            if np.allclose(result, expected, rtol=1e-10, atol=1e-12):
                ok += 1
            else:
                failed += 1
        return ok, failed

    # -- individual faults ---------------------------------------------------
    def _kill_worker(self, session: Session, param: int) -> bool:
        backend = session._backend
        pids = getattr(backend, "worker_pids", None)
        if not pids:
            return False
        # Never target a slot the supervisor already retired: its pid is
        # a corpse (or a reused pid), and a crash_loop_worker fault
        # earlier in the run may have exhausted its budget.
        supervisor = getattr(backend, "supervisor", None)
        candidates = [
            (slot, pid)
            for slot, pid in enumerate(pids)
            if pid is not None
            and (supervisor is None or not supervisor.is_dead(slot))
        ]
        if not candidates:
            return False
        _, victim = candidates[param % len(candidates)]
        try:
            os.kill(victim, signal.SIGKILL)
        except (OSError, ProcessLookupError):
            return False
        # Give the health monitor a beat to notice before the next
        # submission lands; keeps the kill deterministic in effect
        # (restart + requeue) rather than racing the submit.
        deadline = time.perf_counter() + 5.0
        while time.perf_counter() < deadline:
            current = getattr(backend, "worker_pids", [])
            if victim not in current:
                break
            time.sleep(0.01)
        return True

    def _break_control_thread(self, session: Session) -> bool:
        backend = session._backend
        if getattr(backend, "_dispatch_iteration", None) is None:
            return False
        # Shadow the instance's dispatch seam with a raising wrapper; the
        # dispatcher thread hits it on its next round and must contain the
        # failure (fail in-flight futures, refuse new enqueues) rather
        # than hang.  One-shot by construction: the dispatcher exits.
        def raising_iteration() -> bool:
            raise RuntimeError("injected control-plane fault")

        backend._dispatch_iteration = raising_iteration  # type: ignore[method-assign]
        # Nudge the dispatcher awake so the fault lands promptly even on
        # an idle queue.
        cv = getattr(backend, "_dispatch_cv", None)
        if cv is not None:
            with cv:
                cv.notify_all()
        # Wait for containment to land before the replay submits the next
        # record: at time_scale=0 the whole tail would otherwise race the
        # dying dispatcher into the primary and fail, instead of
        # deterministically seeing the control error (and the failover
        # path when one is configured).
        deadline = time.perf_counter() + 5.0
        while time.perf_counter() < deadline:
            if getattr(backend, "_control_error", None) is not None:
                break
            time.sleep(0.005)
        return True

    def _crash_loop_worker(self, session: Session, param: int) -> bool:
        backend = session._backend
        supervisor = getattr(backend, "supervisor", None)
        pids = getattr(backend, "worker_pids", None)
        if supervisor is None or not pids:
            return False
        slot = param % len(pids)
        # Kill every incarnation the supervisor brings up until the slot's
        # restart budget drains and it is marked permanently dead (bounded
        # by a wall-clock budget so a generous restart budget cannot wedge
        # the replay).
        deadline = time.perf_counter() + 10.0
        last_pid: int | None = None
        while time.perf_counter() < deadline and not supervisor.is_dead(slot):
            current = getattr(backend, "worker_pids", [])
            if slot >= len(current):
                break
            pid = current[slot]
            if pid != last_pid:
                try:
                    os.kill(pid, signal.SIGKILL)
                except (OSError, ProcessLookupError):
                    pass
                last_pid = pid
            time.sleep(0.02)
        return supervisor.is_dead(slot)

    def _saturate_admission(self, session: Session) -> bool:
        admission = getattr(session._backend, "admission", None)
        if admission is None:
            return False
        if self._saved_window is None:
            self._saved_window = admission.max_inflight
        admission.max_inflight = 0
        return True

    def _restore_admission(self, session: Session) -> None:
        if self._saved_window is None:
            return
        admission = getattr(session._backend, "admission", None)
        if admission is not None:
            admission.max_inflight = self._saved_window
        self._saved_window = None

    def _inject_oversized(self, session: Session) -> None:
        # A dense @ dense product big enough to blow the ring's payload
        # budget; expected value computed here, checked at finalize.
        side = max(8, int(np.sqrt(self.oversized_elements)))
        generator = rng(self.schedule.seed, f"oversized/{len(self._injected)}")
        a = generator.standard_normal((side, side))
        b = generator.standard_normal((side, 4))
        from repro.formats import COO

        sparse_a = COO.from_dense(a)
        expected = a @ b
        future = session.submit(SPMM_EXPRESSION, A=sparse_a, B=b)
        self._injected.append((future, expected))


__all__ = [
    "DEADLINE_STORM_WINDOW",
    "FAULT_KINDS",
    "MUTATION_WINDOW",
    "FaultEvent",
    "FaultInjector",
    "FaultSchedule",
]
