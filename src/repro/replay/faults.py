"""Deterministic fault injection for trace replay.

A :class:`FaultSchedule` is a seeded list of ``(record index, fault)``
events — derived from :func:`repro.utils.rng` streams, so the same
``(seed, num_records)`` always produces the same schedule — and a
:class:`FaultInjector` applies those events from the replayer's
per-record hooks.  Faults target the failure paths the cluster tier
claims to survive; the soak suite (``tests/replay/test_soak.py``)
replays under each fault and asserts the :class:`~repro.replay.runner.
SLOReport` conservation invariant (completed+failed+cancelled ==
submitted) and zero digest mismatches.

The fault catalogue (see ``docs/REPLAY.md`` for the full table):

``worker_kill``
    SIGKILL a cluster worker mid-trace.  Exercises crash detection,
    restart, and in-flight requeue; a no-op on backends without worker
    processes.
``admission_saturation``
    Collapse the admission window to zero for exactly one record, then
    restore it.  With a ``reject`` policy the targeted request fails
    deterministically with ``ClusterBusyError`` — admission pressure
    without racing on real queue depth.
``oversized_operand``
    Submit an extra out-of-trace request whose dense operand exceeds
    the shm ring's payload budget, forcing the inline-pickle fallback
    path.  The injector computes the expected product itself and checks
    the answer at finalize; a surviving wrong answer counts as an
    injected failure.
``value_mutation``
    Force the next few records to refill their dense operands *in
    place* in shared client buffers, exercising the codec's checksum
    gate that must re-ship mutated arrays instead of serving the stale
    identity-cache entry.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass, field

import numpy as np

from repro.replay.trace import SPMM_EXPRESSION, TraceRecord
from repro.serve import Session
from repro.serve.future import Future
from repro.utils.rng import rng

#: Every fault kind the injector understands, in catalogue order.
FAULT_KINDS = (
    "worker_kill",
    "admission_saturation",
    "oversized_operand",
    "value_mutation",
)

#: How many consecutive records a ``value_mutation`` event forces into
#: in-place reuse mode.
MUTATION_WINDOW = 4


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: what to inject, and at which record index.

    ``param`` disambiguates within a kind (e.g. which worker to kill).
    """

    kind: str
    at_index: int
    param: int = 0


@dataclass
class FaultSchedule:
    """A seeded, ordered set of fault events for one replay run."""

    seed: int
    events: list[FaultEvent] = field(default_factory=list)

    @classmethod
    def generate(
        cls,
        seed: int,
        num_records: int,
        kinds: tuple[str, ...] = FAULT_KINDS,
        events_per_kind: int = 1,
    ) -> "FaultSchedule":
        """Derive a deterministic schedule from ``(seed, num_records)``.

        Event indices come from the ``"faults/<kind>"`` RNG stream, are
        kept clear of the first and last few records (so startup and
        drain stay clean), and never collide across kinds.

        Parameters
        ----------
        seed:
            The run's base seed.
        num_records:
            Length of the trace being replayed.
        kinds:
            Which fault kinds to schedule (default: all four).
        events_per_kind:
            Number of events of each kind.
        """
        margin = min(3, max(0, num_records // 4))
        low, high = margin, max(margin + 1, num_records - margin)
        taken: set[int] = set()
        events = []
        for kind in kinds:
            if kind not in FAULT_KINDS:
                raise ValueError(f"unknown fault kind {kind!r}; expected one of {FAULT_KINDS}")
            generator = rng(seed, f"faults/{kind}")
            for ordinal in range(events_per_kind):
                index = int(generator.integers(low, high))
                while index in taken:
                    index = (index + 1) % num_records
                taken.add(index)
                events.append(FaultEvent(kind=kind, at_index=index, param=ordinal))
        events.sort(key=lambda event: (event.at_index, event.kind))
        return cls(seed=seed, events=events)

    def at(self, index: int) -> list[FaultEvent]:
        """The events scheduled for record ``index`` (usually 0 or 1)."""
        return [event for event in self.events if event.at_index == index]


class FaultInjector:
    """Applies a :class:`FaultSchedule` from the replayer's hooks.

    One injector per replay run.  The replayer calls
    :meth:`before_record` just before materializing each record (its
    return value forces in-place operand reuse for the mutation fault),
    :meth:`after_record` right after submitting it, and
    :meth:`finalize` once the trace has drained, which settles any
    injected out-of-band requests and reports their pass/fail counts.

    Parameters
    ----------
    schedule:
        The seeded fault schedule to apply.
    oversized_elements:
        Element count of the oversized dense operand (must exceed the
        target ring's payload budget to force the fallback path; the
        soak suite pairs this with a deliberately small ring).
    """

    def __init__(self, schedule: FaultSchedule, oversized_elements: int = 1 << 16):
        self.schedule = schedule
        self.oversized_elements = int(oversized_elements)
        self.applied: list[FaultEvent] = []
        self.skipped: list[FaultEvent] = []
        self._mutation_until = -1
        self._saved_window: int | None = None
        self._injected: list[tuple[Future, np.ndarray]] = []

    # -- hook: before each record -------------------------------------------
    def before_record(self, session: Session, index: int, record: TraceRecord) -> bool:
        """Apply the faults scheduled at ``index``; return force-reuse flag.

        Parameters
        ----------
        session:
            The replaying session (its backend is probed for
            cluster-only capabilities).
        index / record:
            The record about to be materialized and submitted.
        """
        self._restore_admission(session)
        force_reuse = index <= self._mutation_until
        for event in self.schedule.at(index):
            if event.kind == "worker_kill":
                if self._kill_worker(session, event.param):
                    self.applied.append(event)
                else:
                    self.skipped.append(event)
            elif event.kind == "admission_saturation":
                if self._saturate_admission(session):
                    self.applied.append(event)
                else:
                    self.skipped.append(event)
            elif event.kind == "value_mutation":
                self._mutation_until = index + MUTATION_WINDOW
                force_reuse = True
                self.applied.append(event)
            elif event.kind == "oversized_operand":
                self._inject_oversized(session)
                self.applied.append(event)
        return force_reuse

    # -- hook: after each record --------------------------------------------
    def after_record(
        self, session: Session, index: int, record: TraceRecord, future: Future
    ) -> None:
        """Undo single-record faults (admission window) after submission.

        Parameters
        ----------
        session / index / record / future:
            The just-submitted request and its session.
        """
        # The saturated window must stay collapsed only for the one
        # record it targeted; restore it on the next hook invocation or
        # here once the targeted submit has gone through.
        self._restore_admission(session)

    # -- hook: end of run ----------------------------------------------------
    def finalize(self, session: Session, timeout: float) -> tuple[int, int]:
        """Settle injected out-of-band requests; return (ok, failed).

        Parameters
        ----------
        session:
            The replaying session.
        timeout:
            Seconds to wait for each injected request.
        """
        self._restore_admission(session)
        ok = failed = 0
        for future, expected in self._injected:
            try:
                result = future.result(timeout=timeout)
            except Exception:  # noqa: BLE001 - any loss/error is a failure
                failed += 1
                continue
            if np.allclose(result, expected, rtol=1e-10, atol=1e-12):
                ok += 1
            else:
                failed += 1
        return ok, failed

    # -- individual faults ---------------------------------------------------
    def _kill_worker(self, session: Session, param: int) -> bool:
        backend = session._backend
        pids = getattr(backend, "worker_pids", None)
        if not pids:
            return False
        victim = pids[param % len(pids)]
        try:
            os.kill(victim, signal.SIGKILL)
        except (OSError, ProcessLookupError):
            return False
        # Give the health monitor a beat to notice before the next
        # submission lands; keeps the kill deterministic in effect
        # (restart + requeue) rather than racing the submit.
        deadline = time.perf_counter() + 5.0
        while time.perf_counter() < deadline:
            current = getattr(backend, "worker_pids", [])
            if victim not in current:
                break
            time.sleep(0.01)
        return True

    def _saturate_admission(self, session: Session) -> bool:
        admission = getattr(session._backend, "admission", None)
        if admission is None:
            return False
        if self._saved_window is None:
            self._saved_window = admission.max_inflight
        admission.max_inflight = 0
        return True

    def _restore_admission(self, session: Session) -> None:
        if self._saved_window is None:
            return
        admission = getattr(session._backend, "admission", None)
        if admission is not None:
            admission.max_inflight = self._saved_window
        self._saved_window = None

    def _inject_oversized(self, session: Session) -> None:
        # A dense @ dense product big enough to blow the ring's payload
        # budget; expected value computed here, checked at finalize.
        side = max(8, int(np.sqrt(self.oversized_elements)))
        generator = rng(self.schedule.seed, f"oversized/{len(self._injected)}")
        a = generator.standard_normal((side, side))
        b = generator.standard_normal((side, 4))
        from repro.formats import COO

        sparse_a = COO.from_dense(a)
        expected = a @ b
        future = session.submit(SPMM_EXPRESSION, A=sparse_a, B=b)
        self._injected.append((future, expected))


__all__ = [
    "FAULT_KINDS",
    "MUTATION_WINDOW",
    "FaultEvent",
    "FaultInjector",
    "FaultSchedule",
]
