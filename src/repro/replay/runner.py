"""Open-loop trace replay over a serve :class:`~repro.serve.Session`.

The replayer submits each trace record at its recorded arrival offset
and *never* closes the loop on slow responses: a backend falling behind
sees the full offered load pile up (queueing, admission pressure, tail
latency) instead of the flattering closed-loop picture where a slow
server quietly throttles its own clients.  The one deliberate exception
is shared-buffer safety — a record that refills a reused dense buffer in
place waits for the previous request reading that buffer, because
mutating an operand under an in-flight request is a client bug, not
load.

Every request's end-to-end latency and outcome feed the run's
:class:`SLOReport` — percentiles via the one canonical implementation
(:func:`repro.utils.timing.summarize`), counts mirrored into the
:mod:`repro.obs` metrics registry — and, when verification is on, the
result bytes are checked against the trace's expected digests.

Digest verification (``verify="auto"``) engages only where the serving
stack promises bit-exact results: the inline backend, or any backend
with coalescing explicitly disabled (coalesced batches reassociate
floating-point sums).  Pass ``verify=True``/``False`` to force it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.obs.metrics import DEFAULT_LATENCY_BUCKETS_MS, get_registry
from repro.replay.trace import TraceMaterializer, WorkloadTrace, digest_array
from repro.serve import Session
from repro.serve.future import Future, FutureCancelledError
from repro.utils.timing import LatencySummary, summarize

#: Outcome labels a replayed request can end in.
OUTCOMES = ("ok", "mismatch", "error", "rejected", "cancelled", "timeout", "deadline")


@dataclass
class RequestOutcome:
    """One replayed request's fate.

    ``outcome`` is one of :data:`OUTCOMES`; ``slo_ok`` is True when the
    request completed cleanly within the trace's latency target.
    """

    index: int
    tenant: str
    outcome: str
    latency_ms: float
    slo_ok: bool
    error: str | None = None


@dataclass
class SLOReport:
    """What a replay run measured, and whether the SLO held.

    The count fields obey the conservation invariant the soak suite
    asserts: every submitted request is accounted for exactly once as
    completed, failed, or cancelled (``rejected`` and
    ``deadline_exceeded`` are sub-categories of failed; ``mismatch`` a
    sub-category of completed).  ``attainment``
    is the fraction of trace requests that completed cleanly within
    ``slo_latency_ms``; the run *attains* when that fraction reaches
    ``attainment_target``.
    """

    trace_name: str
    backend: str
    seed: int
    slo_latency_ms: float
    attainment_target: float
    submitted: int = 0
    completed: int = 0
    failed: int = 0
    cancelled: int = 0
    rejected: int = 0
    deadline_exceeded: int = 0
    timeouts: int = 0
    injected: int = 0
    injected_failures: int = 0
    digest_checked: int = 0
    digest_mismatches: int = 0
    wall_seconds: float = 0.0
    offered_rps: float = 0.0
    achieved_rps: float = 0.0
    goodput_rps: float = 0.0
    attainment: float = 0.0
    latency: LatencySummary | None = None
    per_tenant: dict[str, dict[str, float]] = field(default_factory=dict)
    outcomes: list[RequestOutcome] = field(default_factory=list)
    samples_ms: list[float] = field(default_factory=list)

    @property
    def attained(self) -> bool:
        """True when the run met its attainment target."""
        return self.attainment >= self.attainment_target

    def invariant_violations(self) -> list[str]:
        """Conservation/correctness violations, empty when the run is sound.

        Checks that no request was lost or double-counted
        (``completed + failed + cancelled == submitted`` and one recorded
        outcome per submission) and that every checked digest matched.
        """
        problems = []
        accounted = self.completed + self.failed + self.cancelled
        if accounted != self.submitted:
            problems.append(
                f"completed+failed+cancelled == {accounted}, submitted == {self.submitted}"
            )
        if len(self.outcomes) != self.submitted:
            problems.append(
                f"{len(self.outcomes)} recorded outcomes for {self.submitted} submissions"
            )
        if self.digest_mismatches:
            problems.append(f"{self.digest_mismatches} result-digest mismatches")
        if self.injected_failures:
            problems.append(f"{self.injected_failures} injected-request failures")
        return problems

    def to_dict(self) -> dict[str, Any]:
        """The JSON shape benchmarks and CI artifacts persist."""
        latency = self.latency or summarize(self.samples_ms)
        return {
            "trace": self.trace_name,
            "backend": self.backend,
            "seed": self.seed,
            "slo": {
                "latency_ms": self.slo_latency_ms,
                "attainment_target": self.attainment_target,
            },
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "cancelled": self.cancelled,
            "rejected": self.rejected,
            "deadline_exceeded": self.deadline_exceeded,
            "timeouts": self.timeouts,
            "injected": self.injected,
            "injected_failures": self.injected_failures,
            "digest_checked": self.digest_checked,
            "digest_mismatches": self.digest_mismatches,
            "wall_seconds": round(self.wall_seconds, 4),
            "offered_rps": round(self.offered_rps, 2),
            "achieved_rps": round(self.achieved_rps, 2),
            "goodput_rps": round(self.goodput_rps, 2),
            "slo_attainment": round(self.attainment, 6),
            "attained": self.attained,
            "latency_ms": {
                "p50": latency.p50_ms,
                "p95": latency.p95_ms,
                "p99": latency.p99_ms,
                "mean": latency.mean_ms,
                "max": latency.max_ms,
            },
            "per_tenant": self.per_tenant,
            "invariant_violations": self.invariant_violations(),
        }

    def save(self, path: str | Path) -> Path:
        """Write :meth:`to_dict` as JSON (CI uploads these as artifacts).

        Parameters
        ----------
        path:
            Destination file; parent directories are created.
        """
        import json

        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n")
        return path

    def summary(self) -> str:
        """A one-paragraph human-readable digest of the run."""
        latency = self.latency or summarize(self.samples_ms)
        verdict = "ATTAINED" if self.attained else "MISSED"
        return (
            f"[{self.trace_name} @ {self.backend}] {verdict} "
            f"{self.attainment:.1%} of target {self.attainment_target:.0%} "
            f"(SLO {self.slo_latency_ms:.0f} ms): {self.submitted} submitted, "
            f"{self.completed} completed, {self.failed} failed "
            f"({self.rejected} rejected, {self.deadline_exceeded} deadline, "
            f"{self.timeouts} timeouts), "
            f"{self.cancelled} cancelled; p50/p95/p99 "
            f"{latency.p50_ms:.1f}/{latency.p95_ms:.1f}/{latency.p99_ms:.1f} ms; "
            f"goodput {self.goodput_rps:.1f} rps over {self.wall_seconds:.2f} s"
        )

    def merge(self, other: "SLOReport") -> "SLOReport":
        """Combine two runs (e.g. one trace split across two backends).

        Counts add, samples concatenate (percentiles recomputed over the
        union), rates re-derive from the combined wall time, and the
        backend label joins the two.  Used by the mid-session
        backend-mix parity test.

        Parameters
        ----------
        other:
            The second run's report (same SLO definition expected).
        """
        merged = SLOReport(
            trace_name=self.trace_name,
            backend=f"{self.backend}+{other.backend}",
            seed=self.seed,
            slo_latency_ms=self.slo_latency_ms,
            attainment_target=self.attainment_target,
        )
        for name in (
            "submitted", "completed", "failed", "cancelled", "rejected",
            "deadline_exceeded", "timeouts", "injected", "injected_failures",
            "digest_checked", "digest_mismatches",
        ):
            setattr(merged, name, getattr(self, name) + getattr(other, name))
        merged.samples_ms = list(self.samples_ms) + list(other.samples_ms)
        merged.latency = summarize(merged.samples_ms) if merged.samples_ms else None
        merged.outcomes = list(self.outcomes) + list(other.outcomes)
        merged.wall_seconds = self.wall_seconds + other.wall_seconds
        ok_in_slo = sum(1 for outcome in merged.outcomes if outcome.slo_ok)
        merged.attainment = ok_in_slo / merged.submitted if merged.submitted else 0.0
        if merged.wall_seconds > 0:
            merged.offered_rps = merged.submitted / merged.wall_seconds
            merged.achieved_rps = merged.completed / merged.wall_seconds
            merged.goodput_rps = ok_in_slo / merged.wall_seconds
        tenants = set(self.per_tenant) | set(other.per_tenant)
        for tenant in tenants:
            a = self.per_tenant.get(tenant, {})
            b = other.per_tenant.get(tenant, {})
            submitted = a.get("submitted", 0) + b.get("submitted", 0)
            ok = a.get("ok", 0) + b.get("ok", 0)
            merged.per_tenant[tenant] = {
                "submitted": submitted,
                "ok": ok,
                "attainment": ok / submitted if submitted else 0.0,
            }
        return merged


def _should_verify(session: Session, verify: bool | str) -> bool:
    if isinstance(verify, bool):
        return verify
    if verify != "auto":
        raise ValueError(f"verify must be True, False, or 'auto', not {verify!r}")
    if session.backend_name == "inline":
        return True
    return session.config.coalesce is False


def _wait_quietly(future: Future, timeout: float) -> None:
    try:
        future.exception(timeout=timeout)
    except (TimeoutError, FutureCancelledError):
        pass


@dataclass
class _Pending:
    index: int
    tenant: str
    future: Future
    submitted_at: float
    expected_digest: str | None


def replay(
    trace: WorkloadTrace,
    session: Session,
    *,
    verify: bool | str = "auto",
    time_scale: float = 1.0,
    drain_timeout: float = 60.0,
    injector: Any | None = None,
) -> SLOReport:
    """Replay ``trace`` through ``session`` open-loop; return the report.

    Each record is submitted at ``offset_ms * time_scale`` of wall time
    after the run starts, whether or not earlier requests have finished.
    After the last submission the run drains (bounded by
    ``drain_timeout``), classifies every future, and computes SLO
    attainment against the trace header's target.  Requests still
    pending at the drain deadline are cancelled and counted as timeouts
    (failed) — the report's conservation invariant always holds.

    Parameters
    ----------
    trace:
        The workload to replay (its header carries seed and SLO).
    session:
        An open serve session; any backend.  The session is *not* closed.
    verify:
        ``"auto"`` (default) checks result digests only where bit-exact
        execution is promised — inline backend, or coalescing explicitly
        off; ``True``/``False`` force.  Unverified runs report
        ``digest_checked == 0``.
    time_scale:
        Multiplier on trace offsets: ``1.0`` replays in real time,
        ``0.0`` submits as fast as possible, ``2.0`` at half speed.
    drain_timeout:
        Seconds to wait for stragglers after the last submission.
    injector:
        Optional :class:`repro.replay.faults.FaultInjector`; its hooks
        run around every submission and its injected out-of-band
        requests are settled and folded into the report.
    """
    check_digests = _should_verify(session, verify)
    materializer = TraceMaterializer(trace.seed)
    registry = get_registry()
    latency_hist = registry.histogram(
        "replay_request_latency_ms",
        "End-to-end replayed request latency",
        buckets=DEFAULT_LATENCY_BUCKETS_MS,
        backend=session.backend_name,
    )

    report = SLOReport(
        trace_name=trace.name,
        backend=session.backend_name,
        seed=trace.seed,
        slo_latency_ms=trace.header.slo.latency_ms,
        attainment_target=trace.header.slo.attainment_target,
    )
    pending: list[_Pending] = []
    busy_buffers: dict[tuple[str, str, tuple[int, ...]], Future] = {}
    start = time.perf_counter()

    for index, record in enumerate(trace.records):
        if time_scale > 0:
            target = start + (record.offset_ms / 1e3) * time_scale
            delay = target - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
        force_reuse = False
        if injector is not None:
            force_reuse = bool(injector.before_record(session, index, record))
        buffer_keys = materializer.reused_buffer_keys(record, force_reuse)
        for key in buffer_keys:
            occupant = busy_buffers.get(key)
            if occupant is not None and not occupant.done():
                _wait_quietly(occupant, drain_timeout)
        operands = materializer.materialize(record, force_reuse)
        submitted_at = time.perf_counter()
        deadline_ms = record.extras.get("deadline_ms")
        submit_kwargs: dict[str, Any] = {
            "deadline_ms": None if deadline_ms is None else float(deadline_ms),
        }
        if getattr(session, "accepts_tenant", False):
            # Session-shaped HTTP clients (repro.gateway.GatewayClient)
            # route each record through its tenant's API key, so the
            # gateway's per-tenant accounting sees the trace's mix.
            submit_kwargs["tenant"] = record.tenant
        future = session.submit(record.expression, **submit_kwargs, **operands)
        report.submitted += 1
        for key in buffer_keys:
            busy_buffers[key] = future
        pending.append(
            _Pending(index, record.tenant, future, submitted_at, record.digest)
        )
        if injector is not None:
            injector.after_record(session, index, record, future)

    deadline = time.perf_counter() + drain_timeout
    tenant_counts: dict[str, dict[str, float]] = {}
    for item in pending:
        remaining = max(0.0, deadline - time.perf_counter())
        outcome = _settle(item, remaining, check_digests, report)
        report.outcomes.append(outcome)
        report.samples_ms.append(outcome.latency_ms)
        latency_hist.observe(outcome.latency_ms)
        registry.counter(
            "replay_requests_total",
            "Replayed requests by outcome",
            backend=session.backend_name,
            outcome=outcome.outcome,
            tenant=item.tenant,
        ).inc()
        bucket = tenant_counts.setdefault(item.tenant, {"submitted": 0, "ok": 0})
        bucket["submitted"] += 1
        if outcome.slo_ok:
            bucket["ok"] += 1

    if injector is not None:
        injected_ok, injected_bad = injector.finalize(session, drain_timeout)
        report.injected = injected_ok + injected_bad
        report.injected_failures = injected_bad

    report.wall_seconds = time.perf_counter() - start
    report.latency = summarize(report.samples_ms) if report.samples_ms else None
    ok_in_slo = sum(1 for outcome in report.outcomes if outcome.slo_ok)
    report.attainment = ok_in_slo / report.submitted if report.submitted else 0.0
    if report.wall_seconds > 0:
        report.offered_rps = report.submitted / report.wall_seconds
        report.achieved_rps = report.completed / report.wall_seconds
        report.goodput_rps = ok_in_slo / report.wall_seconds
    for tenant, bucket in tenant_counts.items():
        submitted = bucket["submitted"]
        report.per_tenant[tenant] = {
            "submitted": submitted,
            "ok": bucket["ok"],
            "attainment": bucket["ok"] / submitted if submitted else 0.0,
        }
    registry.gauge(
        "replay_slo_attainment",
        "SLO attainment of the most recent replay run",
        backend=session.backend_name,
    ).set(report.attainment)
    return report


def _settle(
    item: _Pending, timeout: float, check_digests: bool, report: SLOReport
) -> RequestOutcome:
    """Classify one pending future into a :class:`RequestOutcome`."""
    from repro.cluster import ClusterBusyError
    from repro.errors import DeadlineExceededError

    slo_ms = report.slo_latency_ms
    try:
        result = item.future.result(timeout=timeout)
    except FutureCancelledError:
        report.cancelled += 1
        latency = _latency_ms(item)
        return RequestOutcome(item.index, item.tenant, "cancelled", latency, False)
    except DeadlineExceededError as error:
        # A request past its own deadline is a serving outcome
        # ("deadline"), distinct from a drain-window timeout.
        report.failed += 1
        report.deadline_exceeded += 1
        latency = _latency_ms(item)
        return RequestOutcome(
            item.index, item.tenant, "deadline", latency, False, error=str(error)
        )
    except TimeoutError:
        item.future.cancel()
        report.failed += 1
        report.timeouts += 1
        latency = (time.perf_counter() - item.submitted_at) * 1e3
        return RequestOutcome(item.index, item.tenant, "timeout", latency, False)
    except ClusterBusyError as error:
        report.failed += 1
        report.rejected += 1
        latency = _latency_ms(item)
        return RequestOutcome(
            item.index, item.tenant, "rejected", latency, False, error=str(error)
        )
    except Exception as error:  # noqa: BLE001 - every failure becomes an outcome
        report.failed += 1
        latency = _latency_ms(item)
        return RequestOutcome(
            item.index, item.tenant, "error", latency, False, error=repr(error)
        )
    latency = _latency_ms(item)
    if check_digests and item.expected_digest is not None:
        report.digest_checked += 1
        if digest_array(result) != item.expected_digest:
            report.digest_mismatches += 1
            report.completed += 1
            return RequestOutcome(
                item.index, item.tenant, "mismatch", latency, False,
                error="result digest mismatch",
            )
    report.completed += 1
    return RequestOutcome(item.index, item.tenant, "ok", latency, latency <= slo_ms)


def _latency_ms(item: _Pending) -> float:
    measured = item.future.latency_ms
    if measured is not None:
        return float(measured)
    return (time.perf_counter() - item.submitted_at) * 1e3


def replay_file(
    path: str | Path,
    backend: str = "inline",
    config: Any | None = None,
    *,
    refresh_digests: bool = False,
    **kwargs: Any,
) -> SLOReport:
    """Load a trace file, open a session, replay, close, return the report.

    The convenience entry point the benchmark CLI uses.

    Parameters
    ----------
    path:
        A ``repro-trace/1`` JSONL file.
    backend:
        Serve backend name (``inline``, ``threaded``, ``cluster``).
    config:
        Optional :class:`~repro.serve.ServeConfig` for the session.
    refresh_digests:
        Recompute expected digests on this machine before replaying
        (required when the trace was generated elsewhere — result bits
        depend on the local BLAS).
    **kwargs:
        Forwarded to :func:`replay` (``verify=``, ``time_scale=``, ...).
    """
    from repro.replay.trace import read_trace

    trace = read_trace(path)
    if refresh_digests:
        trace.refresh_digests()
    session = Session(backend, config=config)
    try:
        return replay(trace, session, **kwargs)
    finally:
        session.close()


__all__ = [
    "OUTCOMES",
    "RequestOutcome",
    "SLOReport",
    "replay",
    "replay_file",
]
