"""Engine kill-switch: run the stack as if the engine did not exist.

The specialization engine threads through several layers (executor,
API memos, scatter lowering), which makes "how much does it buy?"
unmeasurable after the fact — the old code paths are gone.
:func:`legacy_mode` brings them back for a scope: inside the context the
interpretive executor searches contraction paths per call, ``np.add.at``
replaces segment sums, rewrites and bounds checks re-run per request, and
compiled plans skip their specialized closures.

The flag is **process-global** (it must reach a server's worker threads),
so scopes from concurrent threads nest by reference count.  This exists
for the benchmark harness (an honest before/after on one machine, see
``benchmarks/bench_runtime_throughput.py``) and for debugging suspected
engine miscompares; production code never enters it.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator

_LOCK = threading.Lock()
_DISABLED = 0


def engine_disabled() -> bool:
    """True inside any live :func:`legacy_mode` scope."""
    return _DISABLED > 0


@contextmanager
def legacy_mode() -> Iterator[None]:
    """Execute as the pre-engine stack did (process-wide, re-entrant).

    Disables, for the duration of the scope: specialized closures,
    cached contraction paths in the interpretive executor, segment-sum
    scatter lowering, the rewrite memo, and the bounds-check memo.
    """
    global _DISABLED
    with _LOCK:
        _DISABLED += 1
    try:
        yield
    finally:
        with _LOCK:
            _DISABLED -= 1
