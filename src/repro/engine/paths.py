"""Process-wide memo of ``np.einsum`` contraction paths.

``np.einsum(..., optimize=True)`` re-runs the contraction-path search on
*every* call — for the small kernels the serving runtime executes, the
search routinely costs more than the contraction itself.  The path depends
only on the equation and the operand shapes, so the engine resolves it once
per ``(equation, shapes)`` pair and passes the explicit path to every later
call.

:func:`cached_einsum_path` is the lookup used by the specialized executor,
the FX ``einsum`` operator, and the equivariant reference kernel;
:func:`cached_einsum` is the one-line "einsum with a memoized path" wrapper
for call sites that do not manage the path themselves.
"""

from __future__ import annotations

import threading

import numpy as np

#: Hard bound on distinct (equation, shapes) entries; a serving process
#: sees a small, recurring set, so this is a leak guard, not a tuning knob.
_MAX_ENTRIES = 4096

_PATHS: dict[tuple, list] = {}
_LOCK = threading.Lock()
_HITS = 0
_MISSES = 0


def path_cache_stats() -> tuple[int, int]:
    """``(hits, misses)`` counters of the process-wide path cache."""
    with _LOCK:
        return _HITS, _MISSES


def clear_path_cache() -> None:
    """Drop all memoized contraction paths (tests and benchmarks)."""
    global _HITS, _MISSES
    with _LOCK:
        _PATHS.clear()
        _HITS = _MISSES = 0


def cached_einsum_path(equation: str, *operands: np.ndarray) -> list:
    """The contraction path for ``np.einsum(equation, *operands)``, memoized.

    The key is the equation plus every operand's shape, which is exactly
    what ``np.einsum_path`` depends on.  The returned value is the path
    list accepted by ``np.einsum(..., optimize=path)``.
    """
    global _HITS, _MISSES
    key = (equation, tuple(np.shape(op) for op in operands))
    with _LOCK:
        path = _PATHS.get(key)
        if path is not None:
            _HITS += 1
            return path
        _MISSES += 1
    computed = np.einsum_path(equation, *operands, optimize="optimal")[0]
    with _LOCK:
        if len(_PATHS) >= _MAX_ENTRIES:
            _PATHS.clear()
        _PATHS.setdefault(key, computed)
        return _PATHS[key]


def cached_einsum(equation: str, *operands: np.ndarray, out: np.ndarray | None = None):
    """``np.einsum`` with the contraction path resolved through the memo.

    Drop-in replacement for ``np.einsum(equation, *operands,
    optimize=True)`` that pays the path search once per distinct
    ``(equation, shapes)`` pair instead of on every call.  Inside
    :func:`repro.engine.flags.legacy_mode` it degrades to the per-call
    search, so benchmarks can measure the memo's payoff.
    """
    from repro.engine.flags import engine_disabled

    if engine_disabled():
        if out is None:
            return np.einsum(equation, *operands, optimize=True)
        return np.einsum(equation, *operands, optimize=True, out=out)
    path = cached_einsum_path(equation, *operands)
    if out is None:
        return np.einsum(equation, *operands, optimize=path)
    return np.einsum(equation, *operands, optimize=path, out=out)
