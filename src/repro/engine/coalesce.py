"""Same-plan request coalescing: many requests, one widened Einsum.

A serving queue routinely holds many requests that differ **only in their
values**: the same logical expression, the same sparse pattern (often the
very same format instance), fresh dense operands.  Executing them one by
one pays the frontend (rewrite, validation, cache lookup) and a small
kernel launch per request.  Coalescing executes a whole group as a single
*widened* Einsum over a :class:`~repro.runtime.stacked.StackedSparse`
operand instead::

    C[m,n] += A[m,k] * B[k,n]          # k same-pattern requests
    ->  C[s,m,n] += A[s,m,k] * B[s,k,n]   # one stacked execution

The helpers here are value-free plumbing used by
:class:`~repro.runtime.server.InsumServer`:

* :func:`coalesce_key` — decide whether a request is coalescible and
  produce the hashable group key (expression + pattern fingerprint +
  dense signatures).  Requests share a key exactly when stacking them is
  valid *without inspecting any metadata values*.
* :func:`widen_expression` — prepend a fresh stack index to every access
  of the statement.
* :func:`stack_group` — build the widened operand dict for a group,
  zero-padding to a fixed stack size so every coalesced execution of an
  expression shares one compiled plan.
* :func:`split_results` — slice the widened output back into per-request
  results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.core.einsum.ast import EinsumStatement, IndexVar, Product, TensorAccess
from repro.formats.base import SparseFormat


def _pick_stack_var(statement: EinsumStatement) -> str:
    """A fresh index-variable name not colliding with the statement's names."""
    used = set(statement.index_var_names()) | set(statement.tensor_names())
    if "s" not in used:
        return "s"
    count = 0
    while f"s{count}" in used:
        count += 1
    return f"s{count}"


def widen_expression(statement: EinsumStatement) -> tuple[str, str]:
    """Widen a logical statement with a leading stack index on every access.

    Returns ``(widened_expression, stack_var)``.  The statement must be
    *logical* (plain index variables only); the caller guarantees this via
    :func:`coalesce_key`.
    """
    stack = _pick_stack_var(statement)
    stack_var = IndexVar(stack)

    def widen(access: TensorAccess) -> TensorAccess:
        return TensorAccess(tensor=access.tensor, indices=(stack_var, *access.indices))

    widened = EinsumStatement(
        lhs=widen(statement.lhs),
        rhs=Product(factors=tuple(widen(f) for f in statement.rhs.factors)),
        accumulate=statement.accumulate,
    )
    return str(widened), stack


@dataclass(frozen=True)
class CoalesceTicket:
    """One request's coalescing analysis: its group key and sparse operand.

    Attributes
    ----------
    key:
        Hashable group key; requests with equal keys may stack.
    sparse_name:
        Operand name of the sparse factor.
    """

    key: tuple
    sparse_name: str


def coalesce_key(
    expression: str,
    statement: EinsumStatement | None,
    logical: bool,
    operands: dict[str, Any],
) -> CoalesceTicket | None:
    """Group key for one request, or ``None`` when it cannot coalesce.

    A request is coalescible when the expression is logical, the output
    operand is not bound (no caller-provided accumulation base), exactly
    one operand is a fixed-length :class:`SparseFormat` (not itself a
    stack), and every other operand is a plain array.  The key combines
    the expression, the sparse operand's pattern fingerprint — equal only
    for operands sharing the same live metadata arrays — and each dense
    operand's shape/dtype signature.

    Parameters
    ----------
    expression:
        The request's expression string.
    statement:
        The parsed statement (``None`` skips coalescing).
    logical:
        Whether the expression is free of indirect accesses.
    operands:
        The request's operand mapping.
    """
    if not logical or statement is None:
        return None
    if statement.lhs.tensor in operands:
        return None
    sparse_names = [
        name for name, value in operands.items() if isinstance(value, SparseFormat)
    ]
    if len(sparse_names) != 1:
        return None
    sparse_name = sparse_names[0]
    sparse = operands[sparse_name]
    if not sparse.fixed_length or sparse.format_name == "StackedSparse":
        return None
    rhs_names = {f.tensor for f in statement.rhs.factors}
    if sparse_name not in rhs_names:
        return None
    dense_sig = []
    for name in sorted(operands):
        if name == sparse_name:
            continue
        value = operands[name]
        if isinstance(value, SparseFormat):
            return None
        arr = np.asarray(value)
        dense_sig.append((name, arr.shape, arr.dtype.str))
    try:
        fingerprint = sparse.fingerprint()
    except Exception:  # noqa: BLE001 — a format without tensors() just opts out
        return None
    key = (expression, sparse_name, fingerprint, tuple(dense_sig))
    return CoalesceTicket(key=key, sparse_name=sparse_name)


def stack_group(
    group: Sequence[dict[str, Any]],
    sparse_name: str,
    pad_to: int,
) -> dict[str, Any]:
    """Stack a group of same-key operand dicts into one widened operand set.

    The sparse operand becomes a :class:`StackedSparse` over the shared
    pattern; every dense operand is stacked along a new leading axis.
    Both are zero-padded to exactly ``pad_to`` items so every coalesced
    execution of an expression presents one tensor signature to the plan
    cache (pad items contribute zero and their outputs are discarded).

    Parameters
    ----------
    group:
        Operand dicts of the grouped requests (length >= 1).
    sparse_name:
        Name of the sparse operand (same in every dict, by key equality).
    pad_to:
        Stack size to pad to; must be >= ``len(group)``.
    """
    from repro.runtime.stacked import StackedSparse

    count = len(group)
    if pad_to < count:
        raise ValueError(f"pad_to={pad_to} smaller than the group ({count})")

    def stack_padded(items: list[np.ndarray]) -> np.ndarray:
        out = np.empty((pad_to,) + items[0].shape, dtype=np.result_type(*items))
        for position, item in enumerate(items):
            out[position] = item
        if pad_to > count:
            out[count:] = 0.0
        return out

    first_sparse: SparseFormat = group[0][sparse_name]
    values = [operands[sparse_name].tensors("_")["_V"] for operands in group]
    stacked: dict[str, Any] = {sparse_name: StackedSparse(first_sparse, stack_padded(values))}

    for name in group[0]:
        if name == sparse_name:
            continue
        stacked[name] = stack_padded([np.asarray(operands[name]) for operands in group])
    return stacked


def split_results(batched: np.ndarray, count: int) -> list[np.ndarray]:
    """Per-request outputs from a widened result (pad slots dropped).

    Each slice is copied out so the (padded) batch buffer is not kept
    alive by the returned views.
    """
    return [np.array(batched[position]) for position in range(count)]
