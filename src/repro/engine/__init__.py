"""repro.engine — plan-time specialization for compiled indirect Einsums.

The compiler stack (``repro.core``) decides *what* to execute; this
package makes the execution itself cheap.  It turns each compiled
:class:`~repro.core.insum.planner.InsumPlan` into an allocation-light
NumPy closure with every value-independent decision made at compile time,
and supplies the identity-keyed caches that let a serving process stop
re-deriving per-operand artefacts on every request:

* :mod:`repro.engine.specialize` — :class:`SpecializedKernel`, the
  compiled closure (chunk schedule, cached contraction path, segment-sum
  scatter, buffer arena);
* :mod:`repro.engine.paths` — process-wide ``np.einsum_path`` memo;
* :mod:`repro.engine.segment` — ``np.add.at`` replaced by disjoint-row
  fancy ``+=`` or sorted ``np.add.reduceat`` segment sums;
* :mod:`repro.engine.fingerprint` — identity tokens for live arrays,
  pattern fingerprints for formats, and the derived-artefact cache;
* :mod:`repro.engine.arena` — per-thread reusable scratch buffers;
* :mod:`repro.engine.coalesce` — widening helpers behind the server's
  same-plan request coalescing.

See ``docs/PERFORMANCE.md`` for what is specialized and how the gains are
tracked in ``benchmarks/results/BENCH_runtime.json``.
"""

from repro.engine.arena import BufferArena
from repro.engine.coalesce import (
    CoalesceTicket,
    coalesce_key,
    split_results,
    stack_group,
    widen_expression,
)
from repro.engine.flags import engine_disabled, legacy_mode
from repro.engine.fingerprint import (
    array_token,
    clear_derived_cache,
    derived,
    derived_cache_size,
    pattern_fingerprint,
)
from repro.engine.paths import (
    cached_einsum,
    cached_einsum_path,
    clear_path_cache,
    path_cache_stats,
)
from repro.engine.segment import ScatterPlan, plan_scatter, segment_add
from repro.engine.specialize import SpecializedKernel, specialize_plan

__all__ = [
    "BufferArena",
    "CoalesceTicket",
    "ScatterPlan",
    "SpecializedKernel",
    "array_token",
    "cached_einsum",
    "cached_einsum_path",
    "clear_derived_cache",
    "clear_path_cache",
    "coalesce_key",
    "derived",
    "derived_cache_size",
    "engine_disabled",
    "legacy_mode",
    "pattern_fingerprint",
    "path_cache_stats",
    "plan_scatter",
    "segment_add",
    "specialize_plan",
    "split_results",
    "stack_group",
    "widen_expression",
]
