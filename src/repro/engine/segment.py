"""Segment-sum scatter: the engine's replacement for ``np.add.at``.

``np.add.at`` is the correctness workhorse of every scatter in the
executor, but it processes one update at a time through the ufunc inner
loop and is an order of magnitude slower than vectorised reductions.  Two
structure-aware rewrites cover the cases the compiled plans produce:

* **disjoint rows** — when the scatter index has no duplicates, plain
  fancy-index ``+=`` is exact (each target row receives exactly one
  contribution) and runs at memcpy speed;
* **segment sum** — otherwise, sort the contributions by target row
  (a stable argsort that the engine memoizes per metadata fingerprint)
  and reduce each run with ``np.add.reduceat``, then add the per-row sums
  into the target with one fancy-indexed ``+=``.

Per target row, contributions are combined in storage order — the same
order ``np.add.at`` applies them — so results match to the usual
floating-point reassociation of a two-level sum.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Below this many updates the plain ``np.add.at`` loop wins (no sort,
#: no temporaries); the crossover is flat and forgiving.
ADD_AT_THRESHOLD = 16


@dataclass(frozen=True)
class ScatterPlan:
    """Precomputed structure of one scatter index array.

    Attributes
    ----------
    index:
        The 1-D scatter index the plan describes.
    is_disjoint:
        True when the index has no duplicate targets, so fancy-index
        ``+=`` is exact and no reduction is needed.
    order:
        Stable argsort of the index (``None`` when disjoint).
    starts:
        Start offset of each run of equal targets in the sorted order
        (``None`` when disjoint).
    targets:
        The distinct target rows, one per run (``None`` when disjoint).
    """

    index: np.ndarray
    is_disjoint: bool
    order: np.ndarray | None = None
    starts: np.ndarray | None = None
    targets: np.ndarray | None = None


def plan_scatter(index: np.ndarray) -> ScatterPlan:
    """Analyse a 1-D scatter index once, for reuse across executions.

    The plan captures everything value-independent about the scatter: the
    duplicate structure, and — when duplicates exist — the stable sort
    order and segment boundaries that turn ``np.add.at`` into a
    ``np.add.reduceat`` segment sum.
    """
    index = np.asarray(index)
    if index.ndim != 1:
        raise ValueError(f"plan_scatter expects a 1-D index, got shape {index.shape}")
    if index.size == 0:
        return ScatterPlan(index=index, is_disjoint=True)
    order = np.argsort(index, kind="stable")
    sorted_index = index[order]
    run_start = np.empty(sorted_index.size, dtype=bool)
    run_start[0] = True
    np.not_equal(sorted_index[1:], sorted_index[:-1], out=run_start[1:])
    starts = np.flatnonzero(run_start)
    if starts.size == sorted_index.size:
        return ScatterPlan(index=index, is_disjoint=True)
    return ScatterPlan(
        index=index,
        is_disjoint=False,
        order=order,
        starts=starts,
        targets=sorted_index[starts],
    )


def segment_add(
    target: np.ndarray,
    index: np.ndarray,
    source: np.ndarray,
    plan: ScatterPlan | None = None,
) -> None:
    """``target[index] += source`` along axis 0, duplicate-safe and fast.

    Equivalent to ``np.add.at(target, index, source)`` for a 1-D
    ``index``, but lowered to fancy-index ``+=`` when the index rows are
    disjoint and to a sorted ``np.add.reduceat`` segment sum otherwise.

    Parameters
    ----------
    target:
        Output array, updated in place; axis 0 is the scattered axis.
    index:
        1-D integer array of target rows, one per leading source row.
    source:
        Contributions; ``source.shape[0] == index.size`` and the trailing
        shape broadcasts against ``target``'s trailing shape.
    plan:
        Optional precomputed :func:`plan_scatter` result for ``index``
        (the engine memoizes these per metadata fingerprint); computed on
        the fly when omitted.
    """
    from repro.engine.flags import engine_disabled

    if engine_disabled():
        np.add.at(target, index, source)
        return
    index = np.asarray(index)
    source = np.asarray(source)
    if source.ndim == 0 or source.shape[0] != index.size:
        # Broadcasting update (e.g. a scalar source): the reduceat path
        # needs one source row per index entry, so defer to np.add.at.
        np.add.at(target, index, source)
        return
    if index.size < ADD_AT_THRESHOLD and plan is None:
        np.add.at(target, index, source)
        return
    if plan is None:
        plan = plan_scatter(index)
    if plan.is_disjoint:
        target[index] += source
        return
    sorted_source = source[plan.order]
    sums = np.add.reduceat(sorted_source, plan.starts, axis=0)
    # Keep the source dtype through the reduction: the fancy += below then
    # applies NumPy's usual casting rules, so an unsafe cast raises exactly
    # as it would for np.add.at or the disjoint-row branch.
    target[plan.targets] += sums
