"""Plan-time specialization: turn an :class:`InsumPlan` into a fast closure.

:func:`repro.core.inductor.executor.run_fused` is correct but fully
interpretive: every call re-derives the einsum contraction path, re-walks
the factor structure, scatters through ``np.add.at``, and allocates every
temporary afresh.  :class:`SpecializedKernel` moves all of that to
*compile time*:

* the chunking decision (single-shot vs streamed windows) is made once
  from the plan's extents and the config's memory budget;
* the contraction path is resolved once per distinct chunk shape through
  :mod:`repro.engine.paths` and passed explicitly on every call;
* scatters are lowered to disjoint-row fancy ``+=`` or sorted
  ``np.add.reduceat`` segment sums (:mod:`repro.engine.segment`), with the
  sort order and segment boundaries memoized per scatter-index identity
  (:mod:`repro.engine.fingerprint`) — repeated calls over the same format
  instance do zero index work;
* the contraction partial of each chunk is written into a per-thread
  arena buffer (:mod:`repro.engine.arena`) instead of a new allocation.

Numerics match the interpretive executor up to floating-point
reassociation of the scatter (per output row, contributions are still
combined in storage order), and every specialized kernel is tested against
the loop-nest reference interpreter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.einsum.ast import IndexVar
from repro.core.insum.planner import InsumPlan
from repro.engine.arena import BufferArena
from repro.engine.fingerprint import derived
from repro.engine.paths import cached_einsum_path
from repro.engine.segment import plan_scatter, segment_add
from repro.errors import LoweringError


@dataclass
class SpecializedKernel:
    """A compiled, allocation-light NumPy closure for one Insum plan.

    Built once per compiled plan (and cached with it in the plan cache);
    ``run`` then executes the gather → einsum → scatter pipeline with all
    value-independent decisions precomputed.  Falls back to the unfused FX
    interpreter for plans without a leading output variable (scalar
    outputs), exactly like the interpretive executor.
    """

    plan: InsumPlan
    chunk_size: int
    single_shot: bool
    supported: bool
    #: Ordered execution windows over the leading output variable.
    windows: list[slice] = field(default_factory=list)
    #: Letters of the einsum output spec, for partial-shape derivation.
    _output_letters: str = ""
    #: Per-factor input letters, aligned with ``plan.factors``.
    _factor_letters: list[str] = field(default_factory=list)
    _arena: BufferArena = field(default_factory=BufferArena, repr=False)
    _factor_names: list[str] = field(default_factory=list)

    # -- construction -------------------------------------------------------
    @classmethod
    def build(
        cls, plan: InsumPlan, chunk_size: int, single_shot_budget: int
    ) -> "SpecializedKernel":
        """Specialize a plan: fix the chunk schedule and einsum structure.

        Parameters
        ----------
        plan:
            The validated lowering plan to specialize.
        chunk_size:
            Streaming window along the leading output variable when the
            single-shot budget is exceeded.
        single_shot_budget:
            Maximum total temporary elements (gathered factors plus the
            contraction partial) for which the whole iteration space runs
            as one window.
        """
        supported = bool(plan.output_subscripts)
        if not supported:
            return cls(plan=plan, chunk_size=1, single_shot=False, supported=False)

        info = plan.info
        chunk_var = plan.output_subscripts[0]
        extent = info.extents[chunk_var]

        footprint = 1
        for var in plan.output_subscripts:
            footprint *= info.extents[var]
        for factor in plan.factors:
            factor_elems = 1
            for var in factor.subscripts:
                factor_elems *= info.extents[var]
            footprint += factor_elems
        single_shot = footprint <= single_shot_budget

        size = extent if single_shot else max(1, int(chunk_size))
        windows = [slice(start, min(extent, start + size)) for start in range(0, extent, size)]

        inputs_spec, output_spec = plan.einsum_equation.split("->")
        return cls(
            plan=plan,
            chunk_size=size,
            single_shot=single_shot,
            supported=True,
            windows=windows,
            _output_letters=output_spec,
            _factor_letters=inputs_spec.split(","),
            _factor_names=[f.access.tensor for f in plan.factors],
        )

    # -- execution ----------------------------------------------------------
    def run(self, tensors: dict[str, np.ndarray]) -> np.ndarray:
        """Execute the specialized pipeline on the given tensors."""
        # Imported lazily: the executor module itself uses the engine's
        # path cache, so a module-level import would be circular.
        from repro.core.inductor.executor import _materialize_factor_chunk, run_unfused

        plan = self.plan
        if not self.supported:
            return run_unfused(plan, tensors)

        arrays = {name: np.asarray(value) for name, value in tensors.items()}
        info = plan.info
        base = arrays[info.output_name]
        value_dtype = np.result_type(base, *[arrays[name] for name in self._factor_names])
        if plan.statement.accumulate:
            result = base.astype(value_dtype, copy=True)
        else:
            result = np.zeros(base.shape, dtype=value_dtype)

        chunk_var = plan.output_subscripts[0]
        for window in self.windows:
            chunk_factors = [
                _materialize_factor_chunk(factor, arrays, chunk_var, window)
                for factor in plan.factors
            ]
            partial = self._contract(chunk_factors)
            self._scatter(arrays, result, partial, chunk_var, window)
        return result

    def _contract(self, chunk_factors: list[np.ndarray]) -> np.ndarray:
        """One chunk's contraction, with a memoized path and arena output."""
        equation = self.plan.einsum_equation
        path = cached_einsum_path(equation, *chunk_factors)
        sizes: dict[str, int] = {}
        for letters, operand in zip(self._factor_letters, chunk_factors):
            for letter, dim in zip(letters, operand.shape):
                sizes[letter] = dim
        out_shape = tuple(sizes[letter] for letter in self._output_letters)
        out_dtype = np.result_type(*chunk_factors)
        buffer = self._arena.get(("partial", out_shape), out_shape, out_dtype)
        return np.einsum(equation, *chunk_factors, optimize=path, out=buffer)

    def _scatter(
        self,
        arrays: dict[str, np.ndarray],
        result: np.ndarray,
        partial: np.ndarray,
        chunk_var: str,
        window: slice,
    ) -> None:
        """Accumulate one chunk into the result (segment-sum lowering)."""
        from repro.core.inductor.executor import _slice_axis

        plan = self.plan
        if not plan.has_scatter:
            result[window] += partial
            return

        scatter_dim = plan.scatter_dim
        assert scatter_dim is not None
        scatter_vars = plan.scatter_index_subscripts
        full_index = arrays[plan.scatter_index]
        index_array = full_index

        target_view = result
        if chunk_var in scatter_vars:
            index_array = _slice_axis(full_index, scatter_vars.index(chunk_var), window)
        else:
            plain_axis = None
            for axis, ix in enumerate(plan.statement.lhs.indices):
                if isinstance(ix, IndexVar) and ix.name == chunk_var:
                    plain_axis = axis
                    break
            if plain_axis is None:
                raise LoweringError(
                    f"chunk variable {chunk_var!r} does not appear on the left-hand side"
                )
            target_view = _slice_axis(result, plain_axis, window)

        num_scatter_axes = len(scatter_vars)
        moved_source = np.moveaxis(
            partial,
            list(range(scatter_dim, scatter_dim + num_scatter_axes)),
            list(range(num_scatter_axes)),
        )
        moved_target = np.moveaxis(target_view, scatter_dim, 0)

        flat_index = index_array.reshape(-1)
        if num_scatter_axes > 1 or index_array.ndim > 1:
            lead = int(np.prod(moved_source.shape[:num_scatter_axes]))
            moved_source = moved_source.reshape((lead,) + moved_source.shape[num_scatter_axes:])
        # When the chunk variable does not slice the scatter index, every
        # window scatters through the same full index — share one plan.
        # The sliced axis must be part of the tag: two plans can scatter
        # through the same live index array with the chunk variable at
        # different positions, and their plans must not alias.
        if chunk_var in scatter_vars:
            window_tag = (scatter_vars.index(chunk_var), window.start, window.stop)
        else:
            window_tag = "full"
        scatter_plan = derived(
            full_index,
            ("scatter-plan", window_tag),
            lambda: plan_scatter(flat_index),
        )
        segment_add(moved_target, flat_index, moved_source, plan=scatter_plan)

    # -- reporting ----------------------------------------------------------
    def describe(self) -> str:
        """One-line summary of the specialization decisions."""
        if not self.supported:
            return "specialized: unfused fallback (no leading output variable)"
        mode = "single-shot" if self.single_shot else f"{len(self.windows)} windows"
        scatter = "segment-sum scatter" if self.plan.has_scatter else "direct output"
        return (
            f"specialized: {mode} (chunk {self.chunk_size}), cached path "
            f"'{self.plan.einsum_equation}', {scatter}"
        )


def specialize_plan(plan: InsumPlan, config: Any) -> SpecializedKernel:
    """Build the specialized closure for a plan under a backend config.

    Reads ``execution_chunk`` and ``specialize_single_shot_elements`` from
    the config; cheap (structure-only — no operand values are touched), so
    it runs eagerly at compile time and is cached alongside the plan.
    """
    chunk = int(getattr(config, "execution_chunk", 128))
    budget = int(getattr(config, "specialize_single_shot_elements", 1 << 22))
    return SpecializedKernel.build(plan, chunk_size=chunk, single_shot_budget=budget)
