"""A tiny per-operator buffer arena for allocation-light execution.

Each :class:`~repro.engine.specialize.SpecializedKernel` owns one arena.
The kernel's temporaries — the contraction partial of each chunk, the
moved/flattened scatter sources — have shapes that repeat exactly across
calls, so the arena hands back the same buffers run after run instead of
allocating fresh ones.

Buffers are keyed per thread: compiled kernels are shared through the
process-wide plan cache and may execute concurrently (the sharded executor
and the server's workers), so each thread reuses its own buffer set and no
locking is needed on the hot path.
"""

from __future__ import annotations

import threading
from typing import Hashable

import numpy as np


class BufferArena:
    """Reusable scratch buffers keyed by ``(tag, shape, dtype)`` per thread.

    ``get`` returns an *uninitialised* buffer — callers must fully
    overwrite it (e.g. via ``np.einsum(..., out=buffer)``) before reading.
    A buffer is reused only when the same thread requests the same tag
    with the same shape and dtype again, which is exactly the
    steady-state of a compiled kernel serving one signature.
    """

    def __init__(self) -> None:
        self._local = threading.local()

    def _buffers(self) -> dict:
        buffers = getattr(self._local, "buffers", None)
        if buffers is None:
            buffers = {}
            self._local.buffers = buffers
        return buffers

    def get(self, tag: Hashable, shape: tuple[int, ...], dtype: np.dtype) -> np.ndarray:
        """A scratch buffer of the given shape/dtype, reused across calls.

        Parameters
        ----------
        tag:
            Stable identifier for the buffer's role in the kernel (e.g.
            ``"partial"``); one live buffer exists per tag per thread.
        shape:
            Required buffer shape; a cached buffer with a different shape
            is replaced.
        dtype:
            Required element type; mismatches also trigger replacement.
        """
        buffers = self._buffers()
        buffer = buffers.get(tag)
        if buffer is None or buffer.shape != tuple(shape) or buffer.dtype != np.dtype(dtype):
            buffer = np.empty(tuple(shape), dtype=dtype)
            buffers[tag] = buffer
        return buffer

    def clear(self) -> None:
        """Drop this thread's cached buffers."""
        self._buffers().clear()
