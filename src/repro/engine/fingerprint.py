"""Identity fingerprints and the per-operand derived-index cache.

The serving runtime executes the *same* operand objects over and over: a
format instance's metadata arrays (coordinates, pointers, group maps) are
constructed once and then referenced by thousands of requests.  Everything
the executor derives from those arrays — scatter sort orders, segment
boundaries, bounds-check verdicts — is therefore value-stable for the
lifetime of the object, and recomputing it per call is pure waste.

This module provides the machinery to exploit that:

* :func:`array_token` — a process-unique token for a *live* ndarray
  object.  Tokens are handed out once per object and guarded by a weak
  reference, so a token can never silently alias a different array that
  happens to reuse the same memory address after garbage collection.
* :func:`derived` — memoize an arbitrary artefact computed from an array
  (e.g. a :class:`~repro.engine.segment.ScatterPlan`), keyed by the
  array's token plus a tag.  Artefacts die with the array and are LRU
  bounded.
* :func:`pattern_fingerprint` — a hashable fingerprint of a sparse
  format's *pattern*: its class, logical shape, and the tokens of its
  metadata arrays (values excluded).  Two operands share a fingerprint
  exactly when they share the same live metadata objects, which is the
  cheap sufficient condition the server's request coalescing needs.

The single caveat of identity keying: mutating a metadata array **in
place** after it has been fingerprinted is not detected.  Formats in this
package never do that, and the public constructors copy defensively.
"""

from __future__ import annotations

import itertools
import threading
import weakref
from collections import OrderedDict
from typing import Any, Callable, Hashable

import numpy as np

#: Bound on memoized derived artefacts (LRU beyond this).
_MAX_ARTIFACTS = 4096

_LOCK = threading.RLock()
_TOKENS: dict[int, tuple[weakref.ref, int]] = {}
_SERIAL = itertools.count(1)
_ARTIFACTS: OrderedDict[tuple, Any] = OrderedDict()


def array_token(array: np.ndarray) -> int:
    """A process-unique identity token for a live ndarray object.

    The token is stable for the object's lifetime and never reused for a
    different array: the registry holds a weak reference, and when the
    array is garbage collected the token is retired together with every
    artefact derived under it.
    """
    key = id(array)
    with _LOCK:
        entry = _TOKENS.get(key)
        if entry is not None:
            ref, serial = entry
            if ref() is array:
                return serial
        serial = next(_SERIAL)

        def _evict(_ref: weakref.ref, key: int = key, serial: int = serial) -> None:
            with _LOCK:
                current = _TOKENS.get(key)
                if current is not None and current[1] == serial:
                    del _TOKENS[key]
                stale = [k for k in _ARTIFACTS if k[0] == serial]
                for k in stale:
                    del _ARTIFACTS[k]

        _TOKENS[key] = (weakref.ref(array, _evict), serial)
        return serial


def derived(array: np.ndarray, tag: Hashable, builder: Callable[[], Any]) -> Any:
    """Memoize ``builder()`` under ``(array identity, tag)``.

    The first call for a given live array object and tag runs ``builder``
    and caches its result; later calls return the cached artefact without
    touching the array.  Artefacts are evicted LRU beyond the cache bound
    and eagerly when their array is garbage collected.

    Parameters
    ----------
    array:
        The array the artefact is derived from (identity-keyed).
    tag:
        Hashable discriminator for the kind of artefact (include any
        parameters the builder depends on, e.g. a chunk window).
    builder:
        Zero-argument callable producing the artefact.
    """
    token = array_token(array)
    key = (token, tag)
    with _LOCK:
        if key in _ARTIFACTS:
            _ARTIFACTS.move_to_end(key)
            return _ARTIFACTS[key]
    value = builder()
    with _LOCK:
        existing = _ARTIFACTS.get(key)
        if existing is not None:
            return existing
        _ARTIFACTS[key] = value
        while len(_ARTIFACTS) > _MAX_ARTIFACTS:
            _ARTIFACTS.popitem(last=False)
    return value


def clear_derived_cache() -> None:
    """Drop every memoized artefact (tests and benchmarks)."""
    with _LOCK:
        _ARTIFACTS.clear()


def derived_cache_size() -> int:
    """Number of derived artefacts currently memoized across all arrays."""
    with _LOCK:
        return len(_ARTIFACTS)


def pattern_fingerprint(fmt: Any) -> tuple:
    """Identity fingerprint of a sparse format's *pattern* (not its values).

    The fingerprint combines the format class, the logical shape, the
    value array's shape and dtype, and the :func:`array_token` of every
    metadata tensor.  Two format instances share a fingerprint exactly
    when they reference the same live metadata arrays — the sufficient
    condition for same-pattern request coalescing and for skipping
    repeated metadata work (validation, scatter planning) on the serving
    path.

    Parameters
    ----------
    fmt:
        Any :class:`~repro.formats.base.SparseFormat` instance; its
        ``tensors("_")`` mapping supplies the arrays, with the ``_V``
        entry treated as the value array.
    """
    tensors = fmt.tensors("_")
    values = tensors.pop("_V", None)
    meta = tuple(
        (name, array_token(np.asarray(array))) for name, array in sorted(tensors.items())
    )
    value_sig = (
        (tuple(np.shape(values)), np.asarray(values).dtype.str) if values is not None else None
    )
    return (type(fmt).__name__, tuple(fmt.shape), value_sig, meta)
