"""InsumServer: an async-style serving front door for compiled sparse Einsums.

The compiler stack below this module is request-free: every entry point
takes one expression and one set of operands.  ``InsumServer`` turns it
into a small serving engine:

* ``submit()`` enqueues a request and returns a ticket immediately;
  ``gather()`` blocks until the requested tickets complete.
* A pool of worker threads drains the queue.  Each distinct
  ``(expression, backend)`` pair gets one long-lived reusable operator
  (:class:`SparseEinsum` for format-agnostic requests with a sparse
  operand, :class:`Insum` for raw indirect Einsums), guarded by a
  per-operator lock — so different expressions execute concurrently while
  one expression's operator state stays consistent.
* All compilation funnels through the process-wide
  :class:`~repro.runtime.plan_cache.PlanCache`; the server reports the
  cache's hit rate over its own serving window.
* ``stats()`` returns a :class:`~repro.runtime.stats.RuntimeStats` with
  throughput (requests/s) and p50/p95/mean/max latency.

The server is deliberately synchronous-friendly: requests produce results
identical to calling ``sparse_einsum`` / ``insum`` directly, because the
workers run exactly that code path.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

import numpy as np

from repro.core.insum.api import Insum, SparseEinsum
from repro.formats.base import SparseFormat
from repro.runtime.plan_cache import PlanCacheStats, get_plan_cache
from repro.runtime.sharding import ShardedExecutor
from repro.runtime.stats import RuntimeStats, build_stats
from repro.utils.timing import LatencyRecorder


@dataclass
class InsumRequest:
    """One queued unit of work."""

    request_id: int
    expression: str
    operands: dict[str, Any]
    submitted_at: float


@dataclass
class InsumResult:
    """Outcome of one request: either an output array or an error."""

    request_id: int
    expression: str
    output: np.ndarray | None = None
    error: BaseException | None = None
    latency_ms: float = 0.0
    queue_ms: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None

    def unwrap(self) -> np.ndarray:
        """The output array, re-raising the worker-side error if any."""
        if self.error is not None:
            raise self.error
        assert self.output is not None
        return self.output


@dataclass
class _OperatorSlot:
    operator: Any
    lock: threading.Lock = field(default_factory=threading.Lock)


class InsumServer:
    """Batched, cached, multi-worker serving of sparse Einsum requests.

    Parameters
    ----------
    num_workers:
        Worker threads draining the request queue.
    backend / config / check_bounds:
        Defaults for every operator the server builds.
    num_shards:
        When > 1, requests with a shardable sparse operand run through a
        :class:`~repro.runtime.sharding.ShardedExecutor` instead of a
        single sequential kernel.  Off by default — sequential execution
        keeps results bit-identical to direct ``sparse_einsum`` calls.
    """

    def __init__(
        self,
        num_workers: int = 4,
        backend: str = "inductor",
        config: Any | None = None,
        check_bounds: bool = True,
        num_shards: int = 1,
    ):
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        self.backend = backend
        self.config = config
        self.check_bounds = check_bounds
        self.num_shards = int(num_shards)

        self._queue: queue.Queue[InsumRequest | None] = queue.Queue()
        self._results: dict[int, InsumResult] = {}
        self._pending: set[int] = set()
        self._done = threading.Condition()
        self._operators: dict[tuple[str, str], _OperatorSlot] = {}
        self._operators_lock = threading.Lock()
        self._ids = itertools.count()
        self._latencies = LatencyRecorder()
        self._completed = 0
        self._failed = 0
        self._window_started: float | None = None
        self._window_finished: float | None = None
        self._cache_mark: PlanCacheStats = get_plan_cache().stats()
        self._closed = False
        # One long-lived executor (and thread pool) for all sharded
        # requests; None when sharding is off.
        self._sharded_executor = (
            ShardedExecutor(
                num_shards=self.num_shards,
                backend=backend,
                config=config,
                check_bounds=check_bounds,
                persistent_pool=True,
            )
            if self.num_shards > 1
            else None
        )

        self._workers = [
            threading.Thread(target=self._worker_loop, name=f"insum-worker-{i}", daemon=True)
            for i in range(num_workers)
        ]
        for worker in self._workers:
            worker.start()

    # -- lifecycle ----------------------------------------------------------
    def close(self) -> None:
        """Stop the workers after the queue drains."""
        if self._closed:
            return
        self._closed = True
        for _ in self._workers:
            self._queue.put(None)
        for worker in self._workers:
            worker.join()
        if self._sharded_executor is not None:
            self._sharded_executor.close()

    def __enter__(self) -> "InsumServer":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- submission ---------------------------------------------------------
    def submit(self, expression: str, **operands: Any) -> int:
        """Enqueue one request; returns a ticket for :meth:`gather`."""
        if self._closed:
            raise RuntimeError("InsumServer is closed")
        request = InsumRequest(
            request_id=next(self._ids),
            expression=expression,
            operands=operands,
            submitted_at=time.perf_counter(),
        )
        if self._window_started is None:
            self._window_started = request.submitted_at
        with self._done:
            self._pending.add(request.request_id)
        self._queue.put(request)
        return request.request_id

    def submit_many(self, requests: Iterable[tuple[str, dict[str, Any]]]) -> list[int]:
        """Enqueue ``(expression, operands)`` pairs; returns their tickets."""
        return [self.submit(expression, **operands) for expression, operands in requests]

    # -- completion ---------------------------------------------------------
    def gather(
        self, request_ids: Sequence[int] | None = None, timeout: float | None = None
    ) -> list[InsumResult]:
        """Wait for the given tickets (or everything submitted) to complete.

        Results are returned in ticket order.  Gathered tickets are
        consumed: a second ``gather`` of the same id — or an id that was
        never issued — raises ``KeyError`` instead of blocking.
        """
        if request_ids is None:
            if timeout is None:
                self._queue.join()
            else:
                self._join_with_timeout(timeout)
            with self._done:
                request_ids = sorted(self._results)
        deadline = None if timeout is None else time.monotonic() + timeout
        results: list[InsumResult] = []
        with self._done:
            for request_id in request_ids:
                while request_id not in self._results:
                    if request_id not in self._pending:
                        raise KeyError(
                            f"request {request_id} is not in flight (never submitted or "
                            "already gathered)"
                        )
                    remaining = None if deadline is None else deadline - time.monotonic()
                    if remaining is not None and remaining <= 0:
                        raise TimeoutError(
                            f"request {request_id} did not complete within the timeout"
                        )
                    self._done.wait(remaining)
                self._pending.discard(request_id)
                results.append(self._results.pop(request_id))
        return results

    def run_batch(
        self, requests: Iterable[tuple[str, dict[str, Any]]]
    ) -> list[InsumResult]:
        """Submit a batch and gather it, preserving order."""
        tickets = self.submit_many(requests)
        return self.gather(tickets)

    def _join_with_timeout(self, timeout: float) -> None:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self._queue.unfinished_tasks == 0:
                return
            time.sleep(0.001)
        raise TimeoutError("request queue did not drain within the timeout")

    # -- execution ----------------------------------------------------------
    def _operator_for(self, expression: str, has_sparse: bool) -> _OperatorSlot:
        key = (expression, "sparse" if has_sparse else "indirect")
        with self._operators_lock:
            slot = self._operators.get(key)
            if slot is None:
                if has_sparse:
                    operator: Any = SparseEinsum(
                        expression,
                        backend=self.backend,
                        config=self.config,
                        check_bounds=self.check_bounds,
                    )
                else:
                    operator = Insum(
                        expression,
                        backend=self.backend,
                        config=self.config,
                        check_bounds=self.check_bounds,
                    )
                slot = _OperatorSlot(operator=operator)
                self._operators[key] = slot
            return slot

    def _execute(self, request: InsumRequest) -> np.ndarray:
        has_sparse = any(
            isinstance(value, SparseFormat) for value in request.operands.values()
        )
        if has_sparse and self._sharded_executor is not None:
            sharded = self._sharded_executor.try_run(request.expression, **request.operands)
            if sharded is not None:
                return sharded
            # Not shardable (format without row hooks, or a single shard):
            # fall through to the cached per-expression operator.
        slot = self._operator_for(request.expression, has_sparse)
        with slot.lock:
            return slot.operator(**request.operands)

    def _worker_loop(self) -> None:
        while True:
            request = self._queue.get()
            if request is None:
                self._queue.task_done()
                return
            started = time.perf_counter()
            result = InsumResult(
                request_id=request.request_id,
                expression=request.expression,
                queue_ms=(started - request.submitted_at) * 1e3,
            )
            try:
                result.output = self._execute(request)
            except Exception as error:  # noqa: BLE001 — a bad request must not kill the worker
                result.error = error
            finished = time.perf_counter()
            result.latency_ms = (finished - request.submitted_at) * 1e3
            self._latencies.record(result.latency_ms)
            with self._done:
                self._results[request.request_id] = result
                if result.ok:
                    self._completed += 1
                else:
                    self._failed += 1
                self._window_finished = finished
                self._done.notify_all()
            self._queue.task_done()

    # -- reporting ----------------------------------------------------------
    def stats(self) -> RuntimeStats:
        """Throughput, latency percentiles, and cache hit rate so far."""
        wall = 0.0
        if self._window_started is not None and self._window_finished is not None:
            wall = max(0.0, self._window_finished - self._window_started)
        cache_delta = get_plan_cache().stats().since(self._cache_mark)
        with self._done:
            completed, failed = self._completed, self._failed
        return build_stats(completed, failed, wall, self._latencies, cache_delta)

    def reset_stats(self) -> None:
        """Start a fresh measurement window (counters, latencies, cache mark)."""
        with self._done:
            self._completed = 0
            self._failed = 0
            self._window_started = None
            self._window_finished = None
        self._latencies.reset()
        self._cache_mark = get_plan_cache().stats()

    @property
    def expressions_served(self) -> list[str]:
        """Distinct expressions with a live reusable operator."""
        with self._operators_lock:
            return sorted({expression for expression, _ in self._operators})
