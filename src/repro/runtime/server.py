"""InsumServer: the threaded serving tier behind :class:`repro.serve.Session`.

The compiler stack below this module is request-free: every entry point
takes one expression and one set of operands.  This module turns it into
a serving engine, split into two layers:

* :class:`RequestExecutor` — the per-request execution core: long-lived
  per-expression operators (:class:`SparseEinsum` / :class:`Insum`),
  expression classification, tuner-driven re-formatting, and optional
  row-sharded execution.  The inline backend of :mod:`repro.serve`, the
  threaded ``InsumServer``, and every cluster worker's inner server all
  execute through this one code path — which is what makes results
  bit-identical across serving backends.
* :class:`InsumServer` — a queue and a pool of worker threads over the
  executor, implementing the :class:`repro.serve.ExecutorBackend`
  protocol (``enqueue`` / ``try_cancel`` / ``set_result_sink`` /
  ``stats`` / ``close``) plus same-plan request coalescing.

The legacy ticket methods (``submit`` / ``submit_many`` / ``gather`` /
``run_batch``) remain as thin deprecation shims over the protocol
surface; new code should go through :class:`repro.serve.Session`, whose
futures deliver results and worker-side errors without tickets.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

import numpy as np

from repro.core.insum.api import Insum, SparseEinsum
from repro.errors import DeadlineExceededError, FutureCancelledError, SessionClosedError
from repro.formats.base import SparseFormat
from repro.obs import trace as obs_trace
from repro.resilience import deadline as resilience_deadline
from repro.resilience.deadline import deadline_error, expired_result
from repro.obs.logs import get_logger
from repro.obs.metrics import DEFAULT_SIZE_BUCKETS, get_registry
from repro.runtime.sharding import ShardedExecutor
from repro.runtime.stats import RuntimeStats, ServingWindow


def warn_legacy(old: str, new: str) -> None:
    """Emit the serving tier's deprecation warning for one shimmed method.

    Every shim funnels through here so the message carries a stable
    ``legacy ticket API:`` prefix — the CI deprecation gate turns exactly
    that prefix into an error, proving the repository itself no longer
    calls the shimmed surface.
    """
    warnings.warn(
        f"legacy ticket API: {old} is deprecated; use {new} via repro.serve.Session",
        DeprecationWarning,
        stacklevel=3,
    )


@dataclass
class InsumRequest:
    """One queued unit of work: an expression, its operands, and a ticket.

    Created by :meth:`InsumServer.enqueue`; ``request_id`` is the ticket
    handed back to the caller and later passed to :meth:`InsumServer.collect`.
    ``submitted_at`` (a ``perf_counter`` timestamp) feeds the queue-delay
    and end-to-end latency statistics; ``trace`` is the request's
    :class:`~repro.obs.trace.Trace` (None when tracing is disabled);
    ``deadline`` is the request's wall-clock
    :class:`~repro.resilience.Deadline` (None when unbounded) — expired
    requests are skipped at claim time and converted at record time.
    """

    request_id: int
    expression: str
    operands: dict[str, Any]
    submitted_at: float
    trace: Any = None
    deadline: Any = None


@dataclass
class InsumResult:
    """Outcome of one request: either an output array or an error.

    ``trace`` carries the request's finalized
    :class:`~repro.obs.trace.Trace` (span records included) when tracing
    is enabled; :meth:`repro.serve.Future.trace` reads it.
    """

    request_id: int
    expression: str
    output: np.ndarray | None = None
    error: BaseException | None = None
    latency_ms: float = 0.0
    queue_ms: float = 0.0
    trace: Any = None

    @property
    def ok(self) -> bool:
        """True when the request produced an output (no worker-side error)."""
        return self.error is None

    def unwrap(self) -> np.ndarray:
        """The output array, re-raising the worker-side error if any."""
        if self.error is not None:
            raise self.error
        assert self.output is not None
        return self.output


@dataclass
class _OperatorSlot:
    operator: Any
    lock: threading.Lock = field(default_factory=threading.Lock)


class RequestExecutor:
    """The per-request execution core shared by every serving backend.

    Owns the long-lived reusable operators (one per distinct expression),
    the expression-classification cache, the tuner's per-request
    re-formatting when ``auto_format`` is on, and the optional
    :class:`~repro.runtime.sharding.ShardedExecutor`.  ``InsumServer``
    (threaded), the cluster workers' inner servers, and the serve tier's
    inline backend all call :meth:`execute`, so a request produces the
    same bits no matter which tier served it.

    Parameters
    ----------
    backend / config / check_bounds:
        Defaults for every operator the executor builds.
    num_shards:
        When > 1, requests with a shardable sparse operand run through a
        :class:`~repro.runtime.sharding.ShardedExecutor` instead of a
        single sequential kernel.
    auto_format / tune:
        Tuner integration: profile each request's sparse (or promotable
        dense) operand and re-format it per sparsity regime (see
        :mod:`repro.tuner`).
    """

    def __init__(
        self,
        backend: str = "inductor",
        config: Any | None = None,
        check_bounds: bool = True,
        num_shards: int = 1,
        auto_format: bool = False,
        tune: str = "auto",
    ):
        self.backend = backend
        self.config = config
        self.check_bounds = check_bounds
        self.num_shards = int(num_shards)
        self.auto_format = bool(auto_format)
        self.tune = tune
        self._operators: dict[tuple[str, str], _OperatorSlot] = {}
        self._operators_lock = threading.Lock()
        #: expression -> (is_logical, rhs_factor_names, statement); used by
        #: the auto_format path to recognise dense operands it may
        #: sparsify and by coalescing to build widened statements.
        self._expression_info: dict[str, tuple[bool, tuple[str, ...], Any]] = {}
        #: expression -> widened (expression, stack_var), built on demand.
        self._widened: dict[str, tuple[str, str] | None] = {}
        # One long-lived executor (and thread pool) for all sharded
        # requests; None when sharding is off.
        self._sharded_executor = (
            ShardedExecutor(
                num_shards=self.num_shards,
                backend=backend,
                config=config,
                check_bounds=check_bounds,
                persistent_pool=True,
            )
            if self.num_shards > 1
            else None
        )

    def close(self) -> None:
        """Release the sharded executor's thread pool (if any)."""
        if self._sharded_executor is not None:
            self._sharded_executor.close()

    def operator_for(self, expression: str, has_sparse: bool) -> _OperatorSlot:
        """The long-lived reusable operator for one expression.

        Format-agnostic requests (a sparse operand present, or the
        executor running with ``auto_format``) get a
        :class:`SparseEinsum`; raw indirect Einsums get an :class:`Insum`.
        """
        key = (expression, "sparse" if has_sparse else "indirect")
        with self._operators_lock:
            slot = self._operators.get(key)
            if slot is None:
                if has_sparse:
                    operator: Any = SparseEinsum(
                        expression,
                        backend=self.backend,
                        config=self.config,
                        check_bounds=self.check_bounds,
                        format="auto" if self.auto_format else None,
                        tune=self.tune,
                    )
                else:
                    operator = Insum(
                        expression,
                        backend=self.backend,
                        config=self.config,
                        check_bounds=self.check_bounds,
                    )
                slot = _OperatorSlot(operator=operator)
                self._operators[key] = slot
            return slot

    def expression_info(self, expression: str) -> tuple[bool, tuple[str, ...], Any]:
        """Whether an expression is purely *logical* (no indirect accesses).

        Only logical expressions may have dense operands promoted to
        sparse formats (in a raw indirect Einsum, a sparse-looking 2-D
        array is storage, not a logical matrix) or be coalesced into
        widened batches.  Returns ``(logical, rhs_factor_names,
        statement)``; the statement is ``None`` when parsing failed.
        """
        with self._operators_lock:
            cached = self._expression_info.get(expression)
        if cached is not None:
            return cached
        from repro.core.einsum.ast import TensorAccess
        from repro.core.einsum.parser import parse_einsum

        try:
            statement = parse_einsum(expression)
            logical = not any(
                isinstance(ix, TensorAccess)
                for access in statement.all_accesses()
                for ix in access.indices
            )
            rhs = tuple(f.tensor for f in statement.rhs.factors)
        except Exception:  # noqa: BLE001 — classification must not fail a request
            logical, rhs, statement = False, (), None
        with self._operators_lock:
            self._expression_info[expression] = (logical, rhs, statement)
        return logical, rhs, statement

    def execute(self, expression: str, operands: dict[str, Any]) -> np.ndarray:
        """Execute one request exactly as a direct operator call would.

        This is the single per-request code path of every serving tier:
        classify the expression, optionally promote/re-format the sparse
        operand through the tuner, try the sharded path, and fall through
        to the cached per-expression operator.
        """
        has_instance = any(isinstance(value, SparseFormat) for value in operands.values())
        promoted_name: str | None = None
        if not has_instance and self.auto_format:
            logical, rhs_names, _ = self.expression_info(expression)
            if logical:
                for name in rhs_names:
                    value = operands.get(name)
                    arr = np.asarray(value) if value is not None else None
                    if (
                        arr is not None
                        and arr.ndim == 2
                        and np.count_nonzero(arr) < 0.5 * arr.size
                    ):
                        promoted_name = name
                        break
        has_sparse = has_instance or promoted_name is not None
        if has_sparse and self.auto_format:
            logical, rhs_names, _ = self.expression_info(expression)
            # Re-format the sparse (or promoted dense) operand once, here —
            # decisions are cached per regime bucket — so the sharded path
            # executes the tuner's chosen format and the per-expression
            # operator's own auto pass sees a matching format and skips
            # both the density rescan and a second conversion.  The width
            # is inferred from the request's dense operand so the decision
            # optimises for the actual workload, matching what
            # SparseEinsum._infer_n_cols would derive.
            if logical:
                from repro.tuner.auto import auto_format as tuner_auto_format

                targets = (
                    [promoted_name]
                    if promoted_name is not None
                    else [
                        name
                        for name, value in operands.items()
                        if isinstance(value, SparseFormat)
                        and value.format_name != "StackedSparse"
                    ]
                )
                if targets:
                    n_cols = 64
                    for name in rhs_names:
                        value = operands.get(name)
                        if name in targets or value is None or isinstance(value, SparseFormat):
                            continue
                        arr = np.asarray(value)
                        if arr.ndim >= 2:
                            n_cols = int(arr.shape[-1])
                            break
                    operands = dict(operands)
                    for name in targets:
                        operands[name] = tuner_auto_format(
                            operands[name], n_cols=n_cols, tune=self.tune
                        )
        if has_sparse and self._sharded_executor is not None:
            sharded = self._sharded_executor.try_run(expression, **operands)
            if sharded is not None:
                return sharded
            # Not shardable (format without row hooks, or a single shard):
            # fall through to the cached per-expression operator.
        slot = self.operator_for(expression, has_sparse)
        with slot.lock:
            return slot.operator(**operands)

    def widened_for(self, expression: str) -> tuple[str, str] | None:
        """The widened (stacked) expression for one logical expression."""
        with self._operators_lock:
            if expression in self._widened:
                return self._widened[expression]
        from repro.engine.coalesce import widen_expression

        _, _, statement = self.expression_info(expression)
        widened: tuple[str, str] | None
        try:
            widened = widen_expression(statement) if statement is not None else None
        except Exception:  # noqa: BLE001 — fall back to per-request execution
            widened = None
        with self._operators_lock:
            self._widened[expression] = widened
        return widened

    def coalesced_operator_for(self, expression: str, widened_expression: str) -> _OperatorSlot:
        """The long-lived operator executing coalesced batches of one expression."""
        key = (expression, "coalesced")
        with self._operators_lock:
            slot = self._operators.get(key)
            if slot is None:
                slot = _OperatorSlot(
                    operator=SparseEinsum(
                        widened_expression,
                        backend=self.backend,
                        config=self.config,
                        check_bounds=self.check_bounds,
                    )
                )
                self._operators[key] = slot
            return slot

    def expressions(self) -> list[str]:
        """Distinct expressions with a live reusable operator."""
        with self._operators_lock:
            return sorted({expression for expression, _ in self._operators})


class InsumServer:
    """Batched, cached, multi-worker serving of sparse Einsum requests.

    This is the *threaded* :class:`repro.serve.ExecutorBackend`: a queue
    drained by worker threads over one shared :class:`RequestExecutor`.
    Construct it directly for the legacy ticket surface, or (preferred)
    through ``Session(backend="threaded")``, which wraps it in futures.

    Parameters
    ----------
    num_workers:
        Worker threads draining the request queue.
    backend / config / check_bounds:
        Defaults for every operator the server builds.
    num_shards:
        When > 1, requests with a shardable sparse operand run through a
        :class:`~repro.runtime.sharding.ShardedExecutor` instead of a
        single sequential kernel.  Off by default — sequential execution
        keeps results bit-identical to direct ``sparse_einsum`` calls.
    auto_format:
        When True, format-agnostic requests route through the
        :mod:`repro.tuner` auto path (``format="auto"``): each request's
        sparse operand is profiled, the calibrated cost model picks the
        storage format per sparsity regime (decisions are memoised by
        profile bucket), and compiled plans are cached per regime — so
        one server adapts across heterogeneous request streams.  Sparse
        operands may then also be plain dense arrays.
    tune:
        Tuner mode when ``auto_format`` is on: ``"auto"`` (cost model) or
        ``"measure"`` (empirical timing of the top candidates).
    coalesce:
        Same-plan request coalescing (on by default): a worker drains the
        queue opportunistically and executes requests that share one
        logical expression and one sparse *pattern* (the same live format
        instance) as a single widened
        :class:`~repro.runtime.stacked.StackedSparse` Einsum, instead of
        one kernel per request.  Results are numerically equal to
        individual execution up to floating-point reassociation of the
        batched contraction.
    coalesce_max:
        Largest group executed as one batch.  Batches are zero-padded to
        the next power of two (capped here), so each expression compiles
        at most ``log2(coalesce_max)`` stacked plans while padded compute
        stays under 2x.
    """

    def __init__(
        self,
        num_workers: int = 4,
        backend: str = "inductor",
        config: Any | None = None,
        check_bounds: bool = True,
        num_shards: int = 1,
        auto_format: bool = False,
        tune: str = "auto",
        coalesce: bool = True,
        coalesce_max: int = 16,
    ):
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        if coalesce_max < 2:
            raise ValueError(f"coalesce_max must be >= 2, got {coalesce_max}")
        self.backend = backend
        self.config = config
        self.check_bounds = check_bounds
        self.num_shards = int(num_shards)
        self.auto_format = bool(auto_format)
        self.tune = tune
        self.coalesce = bool(coalesce)
        self.coalesce_max = int(coalesce_max)
        self.executor = RequestExecutor(
            backend=backend,
            config=config,
            check_bounds=check_bounds,
            num_shards=num_shards,
            auto_format=auto_format,
            tune=tune,
        )

        self._queue: queue.Queue[InsumRequest | None] = queue.Queue()
        self._results: dict[int, InsumResult] = {}
        self._pending: set[int] = set()
        self._done = threading.Condition()
        self._ids = itertools.count()
        #: Tickets cancelled before a worker claimed them (guarded by _done).
        self._cancelled: set[int] = set()
        #: Tickets a worker has claimed for execution (guarded by _done).
        self._taken: set[int] = set()
        self._result_sink: Callable[[InsumResult], None] | None = None
        self._window = ServingWindow(tier="threaded")
        self._coalesced_requests = 0
        self._coalesced_batches = 0
        self._closed = False
        self._log = get_logger("runtime.server")
        registry = get_registry()
        self._m_coalesced_requests = registry.counter(
            "repro_coalesced_requests_total",
            "Requests served through a widened (stacked) batch.",
        )
        self._m_coalesced_batches = registry.counter(
            "repro_coalesced_batches_total", "Widened (stacked) batches executed."
        )
        self._m_batch_size = registry.histogram(
            "repro_coalesce_batch_size",
            "Requests per executed coalesced batch.",
            buckets=DEFAULT_SIZE_BUCKETS,
        )
        self._m_deadline = registry.counter(
            "repro_deadline_expired_total",
            "Requests that exceeded their deadline, by serving tier.",
            backend="threaded",
        )

        self._workers = [
            threading.Thread(target=self._worker_loop, name=f"insum-worker-{i}", daemon=True)
            for i in range(num_workers)
        ]
        for worker in self._workers:
            worker.start()

    # -- lifecycle ----------------------------------------------------------
    def close(self) -> None:
        """Stop the workers after the queue drains."""
        if self._closed:
            return
        self._closed = True
        for _ in self._workers:
            self._queue.put(None)
        for worker in self._workers:
            worker.join()
        self.executor.close()
        self._log.info("InsumServer closed", extra={"workers": len(self._workers)})

    def __enter__(self) -> "InsumServer":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- the ExecutorBackend protocol ---------------------------------------
    def enqueue(self, expression: str, **operands: Any) -> int:
        """Enqueue one request and return immediately with a ticket.

        Parameters
        ----------
        expression:
            The Einsum to execute — a raw indirect Einsum over plain
            arrays, or a format-agnostic Einsum when a sparse operand is
            bound (or when the server runs with ``auto_format=True``).
        **operands:
            Operand tensors by name: :class:`numpy.ndarray` values and/or
            :class:`~repro.formats.base.SparseFormat` instances.

        Returns
        -------
        int
            A ticket identifying this request; pass it to :meth:`collect`
            to wait for (and consume) the result — or, when a result sink
            is registered, the id under which the sink will receive it.

        Raises
        ------
        SessionClosedError
            If the server has been closed.
        DeadlineExceededError
            When the request carried a deadline that had already expired
            at enqueue time (no ticket is created for dead work).
        """
        if self._closed:
            raise SessionClosedError("InsumServer is closed")
        trace = obs_trace.take_pending() or obs_trace.maybe_start()
        deadline = resilience_deadline.take_pending()
        if deadline is not None and deadline.expired():
            raise DeadlineExceededError(
                "request exceeded its deadline before it was enqueued"
            )
        if trace is not None:
            trace.stamp("queued")
        request = InsumRequest(
            request_id=next(self._ids),
            expression=expression,
            operands=operands,
            submitted_at=time.perf_counter(),
            trace=trace,
            deadline=deadline,
        )
        self._window.open_at(request.submitted_at)
        with self._done:
            self._pending.add(request.request_id)
        self._queue.put(request)
        return request.request_id

    def enqueue_many(self, requests: Iterable[tuple[str, dict[str, Any]]]) -> list[int]:
        """Enqueue ``(expression, operands)`` pairs; returns their tickets."""
        return [self.enqueue(expression, **operands) for expression, operands in requests]

    def try_cancel(self, request_id: int) -> bool:
        """Cancel a ticket no worker has claimed yet.

        Returns True when the request was still queued: it will never
        execute, and its terminal result carries a
        :class:`~repro.errors.FutureCancelledError` (not counted as
        completed or failed).  Returns False once a worker has taken the
        request (or it already finished) — the result will arrive
        normally.
        """
        with self._done:
            if request_id not in self._pending or request_id in self._results:
                return False
            if request_id in self._taken or request_id in self._cancelled:
                return False
            self._cancelled.add(request_id)
            return True

    def set_result_sink(self, sink: Callable[[InsumResult], None] | None) -> None:
        """Deliver results by pushing them into ``sink`` instead of storing.

        Registered by :class:`repro.serve.Session` before any traffic:
        each terminal :class:`InsumResult` is handed to ``sink`` from a
        worker thread, and :meth:`collect` becomes unavailable (there is
        nothing stored to collect).
        """
        self._result_sink = sink

    # -- completion ---------------------------------------------------------
    def collect(
        self, request_ids: Sequence[int] | None = None, timeout: float | None = None
    ) -> list[InsumResult]:
        """Wait for the given tickets (or everything enqueued) to complete.

        Parameters
        ----------
        request_ids:
            Tickets from :meth:`enqueue`, in the order results should be
            returned; ``None`` waits for the whole queue to drain and
            returns every outstanding result.
        timeout:
            Maximum seconds to wait; ``None`` blocks indefinitely.

        Returns
        -------
        list[InsumResult]
            One result per ticket, in ticket order.  Collected tickets
            are consumed: a second ``collect`` of the same id — or an id
            that was never issued — raises ``KeyError`` instead of
            blocking.

        Raises
        ------
        KeyError
            For a ticket that is not in flight.
        TimeoutError
            When the deadline passes before completion.
        RuntimeError
            When a result sink is registered (results are pushed, not
            stored).
        """
        if self._result_sink is not None:
            raise RuntimeError("results are delivered to the registered sink, not collected")
        if request_ids is None:
            if timeout is None:
                self._queue.join()
            else:
                self._join_with_timeout(timeout)
            with self._done:
                request_ids = sorted(self._results)
        deadline = None if timeout is None else time.monotonic() + timeout
        results: list[InsumResult] = []
        with self._done:
            for request_id in request_ids:
                while request_id not in self._results:
                    if request_id not in self._pending:
                        raise KeyError(
                            f"request {request_id} is not in flight (never submitted or "
                            "already gathered)"
                        )
                    remaining = None if deadline is None else deadline - time.monotonic()
                    if remaining is not None and remaining <= 0:
                        raise TimeoutError(
                            f"request {request_id} did not complete within the timeout"
                        )
                    self._done.wait(remaining)
                self._pending.discard(request_id)
                results.append(self._results.pop(request_id))
        return results

    # -- the legacy ticket API (deprecation shims) --------------------------
    def submit(self, expression: str, **operands: Any) -> int:
        """Deprecated alias of :meth:`enqueue` (the legacy ticket API)."""
        warn_legacy("InsumServer.submit()", "Session.submit()")
        return self.enqueue(expression, **operands)

    def submit_many(self, requests: Iterable[tuple[str, dict[str, Any]]]) -> list[int]:
        """Deprecated alias of :meth:`enqueue_many` (the legacy ticket API)."""
        warn_legacy("InsumServer.submit_many()", "Session.submit_many()")
        return self.enqueue_many(requests)

    def gather(
        self, request_ids: Sequence[int] | None = None, timeout: float | None = None
    ) -> list[InsumResult]:
        """Deprecated alias of :meth:`collect` (the legacy ticket API)."""
        warn_legacy("InsumServer.gather()", "Future.result()")
        return self.collect(request_ids, timeout=timeout)

    def run_batch(
        self,
        requests: Iterable[tuple[str, dict[str, Any]]],
        timeout: float | None = None,
    ) -> list[InsumResult]:
        """Enqueue a batch and collect it, preserving order.

        Unlike ``submit``/``gather`` this helper exposes no tickets, so it
        is not deprecated — but new code should still prefer
        :meth:`repro.serve.Session.map_batches`, which streams results
        with a bounded in-flight window.
        """
        return self.collect(self.enqueue_many(requests), timeout=timeout)

    def _join_with_timeout(self, timeout: float) -> None:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self._queue.unfinished_tasks == 0:
                return
            time.sleep(0.001)
        raise TimeoutError("request queue did not drain within the timeout")

    # -- execution ----------------------------------------------------------
    def _execute(self, request: InsumRequest) -> np.ndarray:
        return self.executor.execute(request.expression, request.operands)

    def _worker_loop(self) -> None:
        while True:
            request = self._queue.get()
            if request is None:
                self._queue.task_done()
                return
            batch = [request]
            if self.coalesce:
                # Opportunistic drain: whatever else is already queued (up
                # to a bounded window) is grouped by coalesce key below.
                limit = 2 * self.coalesce_max
                while len(batch) < limit:
                    try:
                        extra = self._queue.get_nowait()
                    except queue.Empty:
                        break
                    if extra is None:
                        # Another worker's shutdown token: hand it back
                        # (put before task_done so the queue never looks
                        # drained while the token is in our hands).
                        self._queue.put(None)
                        self._queue.task_done()
                        break
                    batch.append(extra)
            self._process_batch(batch)
            for _ in batch:
                self._queue.task_done()

    def _claim(self, request: InsumRequest) -> bool:
        """Claim one dequeued request for execution; False when cancelled
        or expired (an expired request records its deadline error instead
        of spending worker time on output nobody can use)."""
        if request.deadline is not None and request.deadline.expired():
            with self._done:
                # A concurrent cancel of the same ticket must not leak
                # its entry in the cancelled set.
                self._cancelled.discard(request.request_id)
            self._record(
                InsumResult(
                    request_id=request.request_id,
                    expression=request.expression,
                    error=deadline_error(request.request_id, "queue"),
                    queue_ms=(time.perf_counter() - request.submitted_at) * 1e3,
                    trace=request.trace,
                )
            )
            return False
        with self._done:
            if request.request_id in self._cancelled:
                self._cancelled.discard(request.request_id)
                claimed = False
            else:
                self._taken.add(request.request_id)
                claimed = True
        if not claimed:
            self._record(
                InsumResult(
                    request_id=request.request_id,
                    expression=request.expression,
                    error=FutureCancelledError(
                        f"request {request.request_id} was cancelled before dispatch"
                    ),
                    trace=request.trace,
                )
            )
        return claimed

    def _process_batch(self, batch: list[InsumRequest]) -> None:
        """Group a drained batch by coalesce key and execute the groups.

        Groups of one (and requests that cannot coalesce) run through the
        ordinary per-request path; larger groups execute as one widened
        stacked Einsum.  First-arrival order is preserved across groups.
        """
        batch = [request for request in batch if self._claim(request)]
        groups: dict[tuple, tuple[list[InsumRequest], Any]] = {}
        order: list[tuple[str, Any]] = []
        for request in batch:
            ticket = self._coalesce_ticket(request) if len(batch) > 1 else None
            if ticket is None:
                order.append(("single", request))
                continue
            bucket = groups.get(ticket.key)
            if bucket is None:
                groups[ticket.key] = ([request], ticket)
                order.append(("group", ticket.key))
            else:
                bucket[0].append(request)
        for kind, payload in order:
            if kind == "single":
                self._process_one(payload)
                continue
            requests, ticket = groups[payload]
            for start in range(0, len(requests), self.coalesce_max):
                chunk = requests[start : start + self.coalesce_max]
                if len(chunk) == 1:
                    self._process_one(chunk[0])
                else:
                    self._execute_group(chunk, ticket)

    def _process_one(self, request: InsumRequest) -> None:
        """Execute one request through the per-request path and record it."""
        started = time.perf_counter()
        trace = request.trace
        if trace is not None:
            trace.stamp("exec.start")
        result = InsumResult(
            request_id=request.request_id,
            expression=request.expression,
            queue_ms=(started - request.submitted_at) * 1e3,
            trace=trace,
        )
        try:
            result.output = self._execute(request)
        except Exception as error:  # noqa: BLE001 — a bad request must not kill the worker
            result.error = error
            self._log.info(
                "request failed",
                extra={
                    "request_id": request.request_id,
                    "expression": request.expression,
                    "error": repr(error),
                    "trace_id": trace.trace_id if trace is not None else None,
                },
            )
        result.latency_ms = (time.perf_counter() - request.submitted_at) * 1e3
        expired_result(result, request.deadline)
        if trace is not None:
            trace.stamp("exec.end")
            trace.span_between("queue.wait", "queued", "exec.start")
            trace.span_between("execute", "exec.start", "exec.end", coalesced=False)
        self._record(result)

    def _coalesce_ticket(self, request: InsumRequest):
        """Coalescing analysis of one request (``None`` = not coalescible).

        Coalescing applies to logical expressions over an already-formatted
        sparse operand; ``auto_format`` servers keep the per-request tuner
        path, whose format decisions a batched execution must not bypass.
        """
        if not self.coalesce or self.auto_format:
            return None
        from repro.engine.coalesce import coalesce_key

        logical, _, statement = self.executor.expression_info(request.expression)
        try:
            return coalesce_key(request.expression, statement, logical, request.operands)
        except Exception:  # noqa: BLE001 — analysis must not fail a request
            return None

    def _execute_group(self, requests: list[InsumRequest], ticket: Any) -> None:
        """Execute same-key requests as one widened stacked Einsum.

        Any failure falls back to per-request execution, so coalescing can
        never turn a servable request into an error.
        """
        from repro.engine.coalesce import split_results, stack_group

        started = time.perf_counter()
        exec_started = time.time()
        try:
            widened = self.executor.widened_for(requests[0].expression)
            if widened is None:
                raise LookupError("expression cannot be widened")
            # Pad to the next power of two: bounded plan-signature variety
            # (log2(coalesce_max) sizes per expression) with at most 2x
            # padded compute, instead of always paying the full width.
            pad_to = 2
            while pad_to < len(requests):
                pad_to *= 2
            stacked = stack_group(
                [request.operands for request in requests],
                ticket.sparse_name,
                pad_to=min(pad_to, self.coalesce_max),
            )
            slot = self.executor.coalesced_operator_for(requests[0].expression, widened[0])
            with slot.lock:
                batched = slot.operator(**stacked)
            outputs = split_results(np.asarray(batched), len(requests))
        except Exception:  # noqa: BLE001 — coalescing is an optimisation, never a failure
            for request in requests:
                self._process_one(request)
            return
        finished = time.perf_counter()
        exec_finished = time.time()
        with self._done:
            self._coalesced_batches += 1
            self._coalesced_requests += len(requests)
        self._m_coalesced_batches.inc()
        self._m_coalesced_requests.inc(len(requests))
        self._m_batch_size.observe(len(requests))
        for request, output in zip(requests, outputs):
            trace = request.trace
            if trace is not None:
                queued = trace.stamp_of("queued")
                if queued is not None:
                    trace.add_span("queue.wait", queued, exec_started)
                trace.stamp("exec.end", exec_finished)
                trace.add_span(
                    "execute",
                    exec_started,
                    exec_finished,
                    coalesced=True,
                    batch_size=len(requests),
                )
            result = InsumResult(
                request_id=request.request_id,
                expression=request.expression,
                output=output,
                queue_ms=(started - request.submitted_at) * 1e3,
                latency_ms=(finished - request.submitted_at) * 1e3,
                trace=trace,
            )
            expired_result(result, request.deadline)
            self._record(result)

    def _record(self, result: InsumResult) -> None:
        """Publish one terminal result and update the serving counters."""
        finished = time.perf_counter()
        if isinstance(result.error, DeadlineExceededError):
            self._m_deadline.inc()
        if isinstance(result.error, FutureCancelledError):
            self._window.observe_cancelled()
        else:
            self._window.observe(result.ok, result.latency_ms, finished)
            obs_trace.maybe_log_trace(result.trace)
        sink = self._result_sink
        with self._done:
            self._taken.discard(result.request_id)
            if sink is None:
                self._results[result.request_id] = result
            else:
                self._pending.discard(result.request_id)
            self._done.notify_all()
        if sink is not None:
            sink(result)

    # -- reporting ----------------------------------------------------------
    def stats(self) -> RuntimeStats:
        """Throughput, latency percentiles, and cache hit rate so far."""
        with self._done:
            coalesced_requests = self._coalesced_requests
            coalesced_batches = self._coalesced_batches
        return self._window.snapshot(
            coalesced_requests=coalesced_requests,
            coalesced_batches=coalesced_batches,
        )

    def reset_stats(self) -> None:
        """Start a fresh measurement window (counters, latencies, cache mark)."""
        with self._done:
            self._coalesced_requests = 0
            self._coalesced_batches = 0
        self._window.reset()

    def health(self) -> dict[str, Any]:
        """Liveness report for ``/healthz``: per-worker thread aliveness."""
        workers = [
            {"worker": index, "alive": worker.is_alive()}
            for index, worker in enumerate(self._workers)
        ]
        healthy = not self._closed and all(entry["alive"] for entry in workers)
        return {
            "status": "ok" if healthy else ("closed" if self._closed else "degraded"),
            "backend": "threaded",
            "workers": workers,
        }

    @property
    def expressions_served(self) -> list[str]:
        """Distinct expressions with a live reusable operator."""
        return self.executor.expressions()
