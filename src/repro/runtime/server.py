"""InsumServer: an async-style serving front door for compiled sparse Einsums.

The compiler stack below this module is request-free: every entry point
takes one expression and one set of operands.  ``InsumServer`` turns it
into a small serving engine:

* ``submit()`` enqueues a request and returns a ticket immediately;
  ``gather()`` blocks until the requested tickets complete.
* A pool of worker threads drains the queue.  Each distinct
  ``(expression, backend)`` pair gets one long-lived reusable operator
  (:class:`SparseEinsum` for format-agnostic requests with a sparse
  operand, :class:`Insum` for raw indirect Einsums), guarded by a
  per-operator lock — so different expressions execute concurrently while
  one expression's operator state stays consistent.
* All compilation funnels through the process-wide
  :class:`~repro.runtime.plan_cache.PlanCache`; the server reports the
  cache's hit rate over its own serving window.
* ``stats()`` returns a :class:`~repro.runtime.stats.RuntimeStats` with
  throughput (requests/s) and p50/p95/mean/max latency.

The server is deliberately synchronous-friendly: requests produce results
identical to calling ``sparse_einsum`` / ``insum`` directly, because the
workers run exactly that code path.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

import numpy as np

from repro.core.insum.api import Insum, SparseEinsum
from repro.formats.base import SparseFormat
from repro.runtime.plan_cache import PlanCacheStats, get_plan_cache
from repro.runtime.sharding import ShardedExecutor
from repro.runtime.stats import RuntimeStats, build_stats
from repro.utils.timing import LatencyRecorder


@dataclass
class InsumRequest:
    """One queued unit of work: an expression, its operands, and a ticket.

    Created by :meth:`InsumServer.submit`; ``request_id`` is the ticket
    handed back to the caller and later passed to :meth:`InsumServer.gather`.
    ``submitted_at`` (a ``perf_counter`` timestamp) feeds the queue-delay
    and end-to-end latency statistics.
    """

    request_id: int
    expression: str
    operands: dict[str, Any]
    submitted_at: float


@dataclass
class InsumResult:
    """Outcome of one request: either an output array or an error."""

    request_id: int
    expression: str
    output: np.ndarray | None = None
    error: BaseException | None = None
    latency_ms: float = 0.0
    queue_ms: float = 0.0

    @property
    def ok(self) -> bool:
        """True when the request produced an output (no worker-side error)."""
        return self.error is None

    def unwrap(self) -> np.ndarray:
        """The output array, re-raising the worker-side error if any."""
        if self.error is not None:
            raise self.error
        assert self.output is not None
        return self.output


@dataclass
class _OperatorSlot:
    operator: Any
    lock: threading.Lock = field(default_factory=threading.Lock)


class InsumServer:
    """Batched, cached, multi-worker serving of sparse Einsum requests.

    Parameters
    ----------
    num_workers:
        Worker threads draining the request queue.
    backend / config / check_bounds:
        Defaults for every operator the server builds.
    num_shards:
        When > 1, requests with a shardable sparse operand run through a
        :class:`~repro.runtime.sharding.ShardedExecutor` instead of a
        single sequential kernel.  Off by default — sequential execution
        keeps results bit-identical to direct ``sparse_einsum`` calls.
    auto_format:
        When True, format-agnostic requests route through the
        :mod:`repro.tuner` auto path (``format="auto"``): each request's
        sparse operand is profiled, the calibrated cost model picks the
        storage format per sparsity regime (decisions are memoised by
        profile bucket), and compiled plans are cached per regime — so
        one server adapts across heterogeneous request streams.  Sparse
        operands may then also be plain dense arrays.
    tune:
        Tuner mode when ``auto_format`` is on: ``"auto"`` (cost model) or
        ``"measure"`` (empirical timing of the top candidates).
    coalesce:
        Same-plan request coalescing (on by default): a worker drains the
        queue opportunistically and executes requests that share one
        logical expression and one sparse *pattern* (the same live format
        instance) as a single widened
        :class:`~repro.runtime.stacked.StackedSparse` Einsum, instead of
        one kernel per request.  Results are numerically equal to
        individual execution up to floating-point reassociation of the
        batched contraction.
    coalesce_max:
        Largest group executed as one batch.  Batches are zero-padded to
        the next power of two (capped here), so each expression compiles
        at most ``log2(coalesce_max)`` stacked plans while padded compute
        stays under 2x.
    """

    def __init__(
        self,
        num_workers: int = 4,
        backend: str = "inductor",
        config: Any | None = None,
        check_bounds: bool = True,
        num_shards: int = 1,
        auto_format: bool = False,
        tune: str = "auto",
        coalesce: bool = True,
        coalesce_max: int = 16,
    ):
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        if coalesce_max < 2:
            raise ValueError(f"coalesce_max must be >= 2, got {coalesce_max}")
        self.backend = backend
        self.config = config
        self.check_bounds = check_bounds
        self.num_shards = int(num_shards)
        self.auto_format = bool(auto_format)
        self.tune = tune
        self.coalesce = bool(coalesce)
        self.coalesce_max = int(coalesce_max)

        self._queue: queue.Queue[InsumRequest | None] = queue.Queue()
        self._results: dict[int, InsumResult] = {}
        self._pending: set[int] = set()
        self._done = threading.Condition()
        self._operators: dict[tuple[str, str], _OperatorSlot] = {}
        self._operators_lock = threading.Lock()
        self._ids = itertools.count()
        #: expression -> (is_logical, rhs_factor_names, statement); used by
        #: the auto_format path to recognise dense operands it may
        #: sparsify and by coalescing to build widened statements.
        self._expression_info: dict[str, tuple[bool, tuple[str, ...], Any]] = {}
        #: expression -> widened (expression, stack_var), built on demand.
        self._widened: dict[str, tuple[str, str] | None] = {}
        self._latencies = LatencyRecorder()
        self._completed = 0
        self._failed = 0
        self._coalesced_requests = 0
        self._coalesced_batches = 0
        self._window_started: float | None = None
        self._window_finished: float | None = None
        self._cache_mark: PlanCacheStats = get_plan_cache().stats()
        self._closed = False
        # One long-lived executor (and thread pool) for all sharded
        # requests; None when sharding is off.
        self._sharded_executor = (
            ShardedExecutor(
                num_shards=self.num_shards,
                backend=backend,
                config=config,
                check_bounds=check_bounds,
                persistent_pool=True,
            )
            if self.num_shards > 1
            else None
        )

        self._workers = [
            threading.Thread(target=self._worker_loop, name=f"insum-worker-{i}", daemon=True)
            for i in range(num_workers)
        ]
        for worker in self._workers:
            worker.start()

    # -- lifecycle ----------------------------------------------------------
    def close(self) -> None:
        """Stop the workers after the queue drains."""
        if self._closed:
            return
        self._closed = True
        for _ in self._workers:
            self._queue.put(None)
        for worker in self._workers:
            worker.join()
        if self._sharded_executor is not None:
            self._sharded_executor.close()

    def __enter__(self) -> "InsumServer":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- submission ---------------------------------------------------------
    def submit(self, expression: str, **operands: Any) -> int:
        """Enqueue one request and return immediately with a ticket.

        Parameters
        ----------
        expression:
            The Einsum to execute — a raw indirect Einsum over plain
            arrays, or a format-agnostic Einsum when a sparse operand is
            bound (or when the server runs with ``auto_format=True``).
        **operands:
            Operand tensors by name: :class:`numpy.ndarray` values and/or
            :class:`~repro.formats.base.SparseFormat` instances.

        Returns
        -------
        int
            A ticket identifying this request; pass it to :meth:`gather`
            to wait for (and consume) the result.

        Raises
        ------
        RuntimeError
            If the server has been closed.
        """
        if self._closed:
            raise RuntimeError("InsumServer is closed")
        request = InsumRequest(
            request_id=next(self._ids),
            expression=expression,
            operands=operands,
            submitted_at=time.perf_counter(),
        )
        if self._window_started is None:
            self._window_started = request.submitted_at
        with self._done:
            self._pending.add(request.request_id)
        self._queue.put(request)
        return request.request_id

    def submit_many(self, requests: Iterable[tuple[str, dict[str, Any]]]) -> list[int]:
        """Enqueue ``(expression, operands)`` pairs; returns their tickets."""
        return [self.submit(expression, **operands) for expression, operands in requests]

    # -- completion ---------------------------------------------------------
    def gather(
        self, request_ids: Sequence[int] | None = None, timeout: float | None = None
    ) -> list[InsumResult]:
        """Wait for the given tickets (or everything submitted) to complete.

        Parameters
        ----------
        request_ids:
            Tickets from :meth:`submit`, in the order results should be
            returned; ``None`` waits for the whole queue to drain and
            returns every outstanding result.
        timeout:
            Maximum seconds to wait; ``None`` blocks indefinitely.

        Returns
        -------
        list[InsumResult]
            One result per ticket, in ticket order.  Gathered tickets are
            consumed: a second ``gather`` of the same id — or an id that
            was never issued — raises ``KeyError`` instead of blocking.

        Raises
        ------
        KeyError
            For a ticket that is not in flight.
        TimeoutError
            When the deadline passes before completion.
        """
        if request_ids is None:
            if timeout is None:
                self._queue.join()
            else:
                self._join_with_timeout(timeout)
            with self._done:
                request_ids = sorted(self._results)
        deadline = None if timeout is None else time.monotonic() + timeout
        results: list[InsumResult] = []
        with self._done:
            for request_id in request_ids:
                while request_id not in self._results:
                    if request_id not in self._pending:
                        raise KeyError(
                            f"request {request_id} is not in flight (never submitted or "
                            "already gathered)"
                        )
                    remaining = None if deadline is None else deadline - time.monotonic()
                    if remaining is not None and remaining <= 0:
                        raise TimeoutError(
                            f"request {request_id} did not complete within the timeout"
                        )
                    self._done.wait(remaining)
                self._pending.discard(request_id)
                results.append(self._results.pop(request_id))
        return results

    def run_batch(
        self,
        requests: Iterable[tuple[str, dict[str, Any]]],
        timeout: float | None = None,
    ) -> list[InsumResult]:
        """Submit a batch and gather it, preserving order."""
        tickets = self.submit_many(requests)
        return self.gather(tickets, timeout=timeout)

    def _join_with_timeout(self, timeout: float) -> None:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self._queue.unfinished_tasks == 0:
                return
            time.sleep(0.001)
        raise TimeoutError("request queue did not drain within the timeout")

    # -- execution ----------------------------------------------------------
    def _operator_for(self, expression: str, has_sparse: bool) -> _OperatorSlot:
        """The long-lived reusable operator for one expression.

        Format-agnostic requests (a sparse operand present, or the server
        running with ``auto_format``) get a :class:`SparseEinsum`; raw
        indirect Einsums get an :class:`Insum`.
        """
        key = (expression, "sparse" if has_sparse else "indirect")
        with self._operators_lock:
            slot = self._operators.get(key)
            if slot is None:
                if has_sparse:
                    operator: Any = SparseEinsum(
                        expression,
                        backend=self.backend,
                        config=self.config,
                        check_bounds=self.check_bounds,
                        format="auto" if self.auto_format else None,
                        tune=self.tune,
                    )
                else:
                    operator = Insum(
                        expression,
                        backend=self.backend,
                        config=self.config,
                        check_bounds=self.check_bounds,
                    )
                slot = _OperatorSlot(operator=operator)
                self._operators[key] = slot
            return slot

    def _expression_info_for(self, expression: str) -> tuple[bool, tuple[str, ...], Any]:
        """Whether an expression is purely *logical* (no indirect accesses).

        Only logical expressions may have dense operands promoted to
        sparse formats (in a raw indirect Einsum, a sparse-looking 2-D
        array is storage, not a logical matrix) or be coalesced into
        widened batches.  Returns ``(logical, rhs_factor_names,
        statement)``; the statement is ``None`` when parsing failed.
        """
        with self._operators_lock:
            cached = self._expression_info.get(expression)
        if cached is not None:
            return cached
        from repro.core.einsum.ast import TensorAccess
        from repro.core.einsum.parser import parse_einsum

        try:
            statement = parse_einsum(expression)
            logical = not any(
                isinstance(ix, TensorAccess)
                for access in statement.all_accesses()
                for ix in access.indices
            )
            rhs = tuple(f.tensor for f in statement.rhs.factors)
        except Exception:  # noqa: BLE001 — classification must not fail a request
            logical, rhs, statement = False, (), None
        with self._operators_lock:
            self._expression_info[expression] = (logical, rhs, statement)
        return logical, rhs, statement

    def _execute(self, request: InsumRequest) -> np.ndarray:
        has_instance = any(
            isinstance(value, SparseFormat) for value in request.operands.values()
        )
        promoted_name: str | None = None
        if not has_instance and self.auto_format:
            logical, rhs_names, _ = self._expression_info_for(request.expression)
            if logical:
                for name in rhs_names:
                    value = request.operands.get(name)
                    arr = np.asarray(value) if value is not None else None
                    if (
                        arr is not None
                        and arr.ndim == 2
                        and np.count_nonzero(arr) < 0.5 * arr.size
                    ):
                        promoted_name = name
                        break
        has_sparse = has_instance or promoted_name is not None
        operands = request.operands
        if has_sparse and self.auto_format:
            logical, rhs_names, _ = self._expression_info_for(request.expression)
            # Re-format the sparse (or promoted dense) operand once, here —
            # decisions are cached per regime bucket — so the sharded path
            # executes the tuner's chosen format and the per-expression
            # operator's own auto pass sees a matching format and skips
            # both the density rescan and a second conversion.  The width
            # is inferred from the request's dense operand so the decision
            # optimises for the actual workload, matching what
            # SparseEinsum._infer_n_cols would derive.
            if logical:
                from repro.tuner.auto import auto_format as tuner_auto_format

                targets = (
                    [promoted_name]
                    if promoted_name is not None
                    else [
                        name
                        for name, value in operands.items()
                        if isinstance(value, SparseFormat)
                        and value.format_name != "StackedSparse"
                    ]
                )
                if targets:
                    n_cols = 64
                    for name in rhs_names:
                        value = operands.get(name)
                        if name in targets or value is None or isinstance(value, SparseFormat):
                            continue
                        arr = np.asarray(value)
                        if arr.ndim >= 2:
                            n_cols = int(arr.shape[-1])
                            break
                    operands = dict(operands)
                    for name in targets:
                        operands[name] = tuner_auto_format(
                            operands[name], n_cols=n_cols, tune=self.tune
                        )
        if has_sparse and self._sharded_executor is not None:
            sharded = self._sharded_executor.try_run(request.expression, **operands)
            if sharded is not None:
                return sharded
            # Not shardable (format without row hooks, or a single shard):
            # fall through to the cached per-expression operator.
        slot = self._operator_for(request.expression, has_sparse)
        with slot.lock:
            return slot.operator(**operands)

    def _worker_loop(self) -> None:
        while True:
            request = self._queue.get()
            if request is None:
                self._queue.task_done()
                return
            batch = [request]
            if self.coalesce:
                # Opportunistic drain: whatever else is already queued (up
                # to a bounded window) is grouped by coalesce key below.
                limit = 2 * self.coalesce_max
                while len(batch) < limit:
                    try:
                        extra = self._queue.get_nowait()
                    except queue.Empty:
                        break
                    if extra is None:
                        # Another worker's shutdown token: hand it back
                        # (put before task_done so the queue never looks
                        # drained while the token is in our hands).
                        self._queue.put(None)
                        self._queue.task_done()
                        break
                    batch.append(extra)
            self._process_batch(batch)
            for _ in batch:
                self._queue.task_done()

    def _process_batch(self, batch: list[InsumRequest]) -> None:
        """Group a drained batch by coalesce key and execute the groups.

        Groups of one (and requests that cannot coalesce) run through the
        ordinary per-request path; larger groups execute as one widened
        stacked Einsum.  First-arrival order is preserved across groups.
        """
        groups: dict[tuple, tuple[list[InsumRequest], Any]] = {}
        order: list[tuple[str, Any]] = []
        for request in batch:
            ticket = self._coalesce_ticket(request) if len(batch) > 1 else None
            if ticket is None:
                order.append(("single", request))
                continue
            bucket = groups.get(ticket.key)
            if bucket is None:
                groups[ticket.key] = ([request], ticket)
                order.append(("group", ticket.key))
            else:
                bucket[0].append(request)
        for kind, payload in order:
            if kind == "single":
                self._process_one(payload)
                continue
            requests, ticket = groups[payload]
            for start in range(0, len(requests), self.coalesce_max):
                chunk = requests[start : start + self.coalesce_max]
                if len(chunk) == 1:
                    self._process_one(chunk[0])
                else:
                    self._execute_group(chunk, ticket)

    def _process_one(self, request: InsumRequest) -> None:
        """Execute one request through the per-request path and record it."""
        started = time.perf_counter()
        result = InsumResult(
            request_id=request.request_id,
            expression=request.expression,
            queue_ms=(started - request.submitted_at) * 1e3,
        )
        try:
            result.output = self._execute(request)
        except Exception as error:  # noqa: BLE001 — a bad request must not kill the worker
            result.error = error
        result.latency_ms = (time.perf_counter() - request.submitted_at) * 1e3
        self._record(result)

    def _coalesce_ticket(self, request: InsumRequest):
        """Coalescing analysis of one request (``None`` = not coalescible).

        Coalescing applies to logical expressions over an already-formatted
        sparse operand; ``auto_format`` servers keep the per-request tuner
        path, whose format decisions a batched execution must not bypass.
        """
        if not self.coalesce or self.auto_format:
            return None
        from repro.engine.coalesce import coalesce_key

        logical, _, statement = self._expression_info_for(request.expression)
        try:
            return coalesce_key(request.expression, statement, logical, request.operands)
        except Exception:  # noqa: BLE001 — analysis must not fail a request
            return None

    def _widened_for(self, expression: str) -> tuple[str, str] | None:
        """The widened (stacked) expression for one logical expression."""
        with self._operators_lock:
            if expression in self._widened:
                return self._widened[expression]
        from repro.engine.coalesce import widen_expression

        _, _, statement = self._expression_info_for(expression)
        widened: tuple[str, str] | None
        try:
            widened = widen_expression(statement) if statement is not None else None
        except Exception:  # noqa: BLE001 — fall back to per-request execution
            widened = None
        with self._operators_lock:
            self._widened[expression] = widened
        return widened

    def _coalesced_operator_for(self, expression: str, widened_expression: str) -> _OperatorSlot:
        """The long-lived operator executing coalesced batches of one expression."""
        key = (expression, "coalesced")
        with self._operators_lock:
            slot = self._operators.get(key)
            if slot is None:
                slot = _OperatorSlot(
                    operator=SparseEinsum(
                        widened_expression,
                        backend=self.backend,
                        config=self.config,
                        check_bounds=self.check_bounds,
                    )
                )
                self._operators[key] = slot
            return slot

    def _execute_group(self, requests: list[InsumRequest], ticket: Any) -> None:
        """Execute same-key requests as one widened stacked Einsum.

        Any failure falls back to per-request execution, so coalescing can
        never turn a servable request into an error.
        """
        from repro.engine.coalesce import split_results, stack_group

        started = time.perf_counter()
        try:
            widened = self._widened_for(requests[0].expression)
            if widened is None:
                raise LookupError("expression cannot be widened")
            # Pad to the next power of two: bounded plan-signature variety
            # (log2(coalesce_max) sizes per expression) with at most 2x
            # padded compute, instead of always paying the full width.
            pad_to = 2
            while pad_to < len(requests):
                pad_to *= 2
            stacked = stack_group(
                [request.operands for request in requests],
                ticket.sparse_name,
                pad_to=min(pad_to, self.coalesce_max),
            )
            slot = self._coalesced_operator_for(requests[0].expression, widened[0])
            with slot.lock:
                batched = slot.operator(**stacked)
            outputs = split_results(np.asarray(batched), len(requests))
        except Exception:  # noqa: BLE001 — coalescing is an optimisation, never a failure
            for request in requests:
                self._process_one(request)
            return
        finished = time.perf_counter()
        with self._done:
            self._coalesced_batches += 1
            self._coalesced_requests += len(requests)
        for request, output in zip(requests, outputs):
            result = InsumResult(
                request_id=request.request_id,
                expression=request.expression,
                output=output,
                queue_ms=(started - request.submitted_at) * 1e3,
                latency_ms=(finished - request.submitted_at) * 1e3,
            )
            self._record(result)

    def _record(self, result: InsumResult) -> None:
        """Publish one result and update the serving counters."""
        finished = time.perf_counter()
        self._latencies.record(result.latency_ms)
        with self._done:
            self._results[result.request_id] = result
            if result.ok:
                self._completed += 1
            else:
                self._failed += 1
            self._window_finished = finished
            self._done.notify_all()

    # -- reporting ----------------------------------------------------------
    def stats(self) -> RuntimeStats:
        """Throughput, latency percentiles, and cache hit rate so far."""
        wall = 0.0
        if self._window_started is not None and self._window_finished is not None:
            wall = max(0.0, self._window_finished - self._window_started)
        cache_delta = get_plan_cache().stats().since(self._cache_mark)
        with self._done:
            completed, failed = self._completed, self._failed
            coalesced_requests = self._coalesced_requests
            coalesced_batches = self._coalesced_batches
        return build_stats(
            completed,
            failed,
            wall,
            self._latencies,
            cache_delta,
            coalesced_requests=coalesced_requests,
            coalesced_batches=coalesced_batches,
        )

    def reset_stats(self) -> None:
        """Start a fresh measurement window (counters, latencies, cache mark)."""
        with self._done:
            self._completed = 0
            self._failed = 0
            self._coalesced_requests = 0
            self._coalesced_batches = 0
            self._window_started = None
            self._window_finished = None
        self._latencies.reset()
        self._cache_mark = get_plan_cache().stats()

    @property
    def expressions_served(self) -> list[str]:
        """Distinct expressions with a live reusable operator."""
        with self._operators_lock:
            return sorted({expression for expression, _ in self._operators})
