"""Process-wide LRU cache of compiled Insum plans.

Compilation (parse → validate → plan → lower → autotune → cost model) is
the dominant cost of a one-shot ``insum()`` / ``sparse_einsum()`` call:
the NumPy execution of a small kernel takes microseconds while the
compile pipeline takes milliseconds.  The serving runtime therefore keeps
one process-wide cache of compiled kernels, keyed by everything that can
change the generated code:

* the Einsum expression string,
* the backend ("inductor" or "eager") and its configuration,
* whether bounds checking was requested at plan time, and
* the *signature* of the bound tensors — every operand's shape **and**
  dtype (two calls with identical shapes but different dtypes must not
  share one compiled kernel).

:class:`Insum`, and through it the one-shot helpers and
:class:`SparseEinsum`, route every compilation through
:func:`get_plan_cache`, so repeated one-shot calls stop recompiling and a
server can report a meaningful hit rate.

This module deliberately has no dependency on the compiler packages so it
can be imported from ``repro.core.insum.api`` without cycles
(:mod:`repro.obs.metrics` is stdlib-only, so the registry counters the
cache dual-writes keep that property).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable

from repro.obs.metrics import get_registry


@dataclass(frozen=True)
class PlanCacheStats:
    """Immutable snapshot of the plan cache's counters.

    Counters (hits, misses, evictions) are monotonic over the cache's
    lifetime; take two snapshots and diff them with :meth:`since` to
    measure one workload's window, as :class:`~repro.runtime.server.InsumServer`
    does for its hit-rate report.
    """

    hits: int
    misses: int
    evictions: int
    size: int
    maxsize: int

    @property
    def lookups(self) -> int:
        """Total lookups observed (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def since(self, earlier: "PlanCacheStats") -> "PlanCacheStats":
        """Counter deltas relative to an earlier snapshot (same cache)."""
        return PlanCacheStats(
            hits=self.hits - earlier.hits,
            misses=self.misses - earlier.misses,
            evictions=self.evictions - earlier.evictions,
            size=self.size,
            maxsize=self.maxsize,
        )

    def summary(self) -> str:
        """One-line human-readable report of the counters."""
        return (
            f"plan cache: {self.size}/{self.maxsize} entries, "
            f"{self.hits} hits / {self.misses} misses "
            f"(hit rate {self.hit_rate:.1%}), {self.evictions} evictions"
        )


@dataclass(frozen=True)
class CachedPlan:
    """One cache entry: the plan, the compiled kernel, and its specialization.

    ``specialized`` is the :class:`~repro.engine.specialize.SpecializedKernel`
    built at compile time (``None`` for the eager backend or when
    specialization is disabled); caching it alongside the plan means a
    cache hit hands back the fully specialized closure — precomputed
    contraction path, scatter plans, and arena included.
    """

    plan: Any
    compiled: Any
    specialized: Any = None


class PlanCache:
    """A thread-safe LRU cache mapping plan keys to compiled kernels.

    Entries are promoted to most-recently-used on every hit; inserting
    beyond ``maxsize`` evicts the least-recently-used entry.  All three
    counters (hits, misses, evictions) are monotonic so callers can take
    snapshot deltas around a workload.
    """

    def __init__(self, maxsize: int = 256):
        if maxsize < 1:
            raise ValueError(f"plan cache maxsize must be >= 1, got {maxsize}")
        self._maxsize = int(maxsize)
        self._entries: OrderedDict[Hashable, CachedPlan] = OrderedDict()
        self._lock = threading.RLock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        registry = get_registry()
        self._m_hits = registry.counter(
            "repro_plan_cache_hits_total", "Plan-cache lookups served without compiling."
        )
        self._m_misses = registry.counter(
            "repro_plan_cache_misses_total", "Plan-cache lookups that required a compile."
        )
        self._m_evictions = registry.counter(
            "repro_plan_cache_evictions_total", "Plans evicted by the LRU bound."
        )

    # -- core operations ----------------------------------------------------
    def get(self, key: Hashable) -> CachedPlan | None:
        """Look up a compiled plan, counting a hit or a miss."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
            else:
                self._entries.move_to_end(key)
                self._hits += 1
        (self._m_hits if entry is not None else self._m_misses).inc()
        return entry

    def put(self, key: Hashable, entry: CachedPlan) -> CachedPlan:
        """Insert an entry, evicting the least-recently-used beyond maxsize.

        If another thread inserted the same key first, the earlier entry
        wins (so concurrent compiles of the same program converge on one
        kernel object).
        """
        evicted = 0
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None:
                self._entries.move_to_end(key)
                return existing
            self._entries[key] = entry
            while len(self._entries) > self._maxsize:
                self._entries.popitem(last=False)
                self._evictions += 1
                evicted += 1
        if evicted:
            self._m_evictions.inc(evicted)
        return entry

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # -- management ---------------------------------------------------------
    @property
    def maxsize(self) -> int:
        """Capacity: the entry count beyond which LRU eviction kicks in."""
        return self._maxsize

    def resize(self, maxsize: int) -> None:
        """Change capacity, evicting LRU entries if the cache shrank."""
        if maxsize < 1:
            raise ValueError(f"plan cache maxsize must be >= 1, got {maxsize}")
        evicted = 0
        with self._lock:
            self._maxsize = int(maxsize)
            while len(self._entries) > self._maxsize:
                self._entries.popitem(last=False)
                self._evictions += 1
                evicted += 1
        if evicted:
            self._m_evictions.inc(evicted)

    def clear(self, reset_stats: bool = False) -> None:
        """Drop all entries; optionally zero the counters as well."""
        with self._lock:
            self._entries.clear()
            if reset_stats:
                self._hits = self._misses = self._evictions = 0

    def stats(self) -> PlanCacheStats:
        """An immutable snapshot of the current counters and occupancy."""
        with self._lock:
            return PlanCacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._entries),
                maxsize=self._maxsize,
            )

    def __repr__(self) -> str:
        return f"PlanCache({self.stats().summary()})"


# ---------------------------------------------------------------------------
# Key construction
# ---------------------------------------------------------------------------
def plan_key(
    expression: str,
    backend: str,
    config: Any,
    check_bounds: bool,
    signature: Hashable,
    profile_bucket: Hashable = None,
) -> tuple:
    """Build the canonical cache key for one compilation.

    Parameters
    ----------
    expression:
        The indirect-Einsum expression string.
    backend:
        ``"inductor"`` or ``"eager"``.
    config:
        Backend configuration, folded in through its ``repr`` —
        ``InductorConfig`` is a plain dataclass (of bools, strings, a tile
        dict, and a frozen device model), so equal configurations produce
        equal reprs without requiring hashability.
    check_bounds:
        Whether bounds validation was requested at plan time.
    signature:
        Shape-and-dtype signature of every bound tensor.
    profile_bucket:
        Coarse sparsity-regime key from
        :meth:`repro.tuner.profile.SparsityProfile.bucket`, set by the
        ``format="auto"`` path.  Two requests with identical shapes but
        different sparsity regimes then compile (and cache) separately, so
        a server adapts its schedule per regime instead of replaying the
        first request's kernel forever.  ``None`` (the default) for plans
        compiled without the tuner.

    Returns
    -------
    tuple
        A hashable key for :class:`PlanCache`.
    """
    return (
        expression,
        backend,
        repr(config),
        bool(check_bounds),
        signature,
        profile_bucket,
    )


# ---------------------------------------------------------------------------
# The process-wide cache
# ---------------------------------------------------------------------------
_GLOBAL_CACHE = PlanCache()
_GLOBAL_LOCK = threading.Lock()


def get_plan_cache() -> PlanCache:
    """The process-wide plan cache shared by every operator."""
    return _GLOBAL_CACHE


def configure_plan_cache(maxsize: int) -> PlanCache:
    """Resize the process-wide cache (keeping current entries when possible)."""
    with _GLOBAL_LOCK:
        _GLOBAL_CACHE.resize(maxsize)
        return _GLOBAL_CACHE


def clear_plan_cache(reset_stats: bool = True) -> None:
    """Empty the process-wide cache (used by tests and benchmarks)."""
    _GLOBAL_CACHE.clear(reset_stats=reset_stats)
