"""ShardedExecutor: row-partitioned parallel execution of sparse Einsums.

The indirect-Einsum executor is single-threaded NumPy.  For large operands
the output iteration space can be *row-partitioned*: every stored unit of
the sparse operand (a nonzero, group, or block) contributes to exactly one
output row, so splitting the units by output row yields shards whose
outputs have **disjoint row support**.  Each shard runs the ordinary
``sparse_einsum`` pipeline on a thread pool — the hot NumPy ops (einsum,
take, add.at) release the GIL — and the merge is a deterministic
shard-order sum of partials, which is exact because at every output
position at most one shard contributes.

Formats opt in through two hooks (``scatter_row_ids`` / ``select_units``,
see :mod:`repro.formats.base`); anything else — and expressions whose
sparse operand feeds multiple output rows — falls back to sequential
execution, so the executor is always safe to use as a drop-in.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Any

import numpy as np

from repro.core.insum.api import SparseEinsum
from repro.errors import EinsumValidationError, FormatError
from repro.formats.base import SparseFormat


class ShardedExecutor:
    """Execute ``sparse_einsum`` requests across row shards on a thread pool.

    Parameters
    ----------
    num_shards:
        Target number of row partitions (shards holding no units are
        dropped, so fewer may run).
    max_workers:
        Thread-pool width; defaults to ``num_shards``.
    backend / config / check_bounds:
        Passed through to the per-shard operators.
    persistent_pool:
        Keep one thread pool alive across ``run`` calls (used by
        :class:`~repro.runtime.server.InsumServer` so per-request pool
        setup is not paid on the serving path); call :meth:`close` when
        done.  The default creates a pool per sharded request.
    """

    def __init__(
        self,
        num_shards: int = 4,
        max_workers: int | None = None,
        backend: str = "inductor",
        config: Any | None = None,
        check_bounds: bool = True,
        persistent_pool: bool = False,
    ):
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        self.num_shards = int(num_shards)
        self.max_workers = int(max_workers) if max_workers is not None else self.num_shards
        self.backend = backend
        self.config = config
        self.check_bounds = check_bounds
        self._pool = ThreadPoolExecutor(max_workers=self.max_workers) if persistent_pool else None
        #: How the most recent request executed: "sharded" or "sequential".
        self.last_mode: str | None = None
        #: Number of shards the most recent request actually ran.
        self.last_num_shards: int = 0

    def close(self) -> None:
        """Shut down the persistent pool (no-op for per-request pools)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    # -- public API ---------------------------------------------------------
    def run(self, expression: str, **operands: Any) -> np.ndarray:
        """Execute one format-agnostic Einsum, sharded when possible."""
        result = self.try_run(expression, **operands)
        if result is None:
            result = self._run_sequential(expression, operands)
        return result

    def try_run(self, expression: str, **operands: Any) -> np.ndarray | None:
        """Execute sharded, or return ``None`` when the operand cannot shard.

        Callers with their own (cached) sequential path — the server's
        per-expression operator slots — use this to avoid paying for a
        throwaway operator on the fallback.
        """
        sparse_names = [
            name for name, value in operands.items() if isinstance(value, SparseFormat)
        ]
        if len(sparse_names) != 1:
            raise EinsumValidationError(
                "ShardedExecutor expects exactly one SparseFormat operand, got "
                f"{sparse_names or 'none'}"
            )
        sparse_name = sparse_names[0]
        shards = self._partition(operands[sparse_name])
        if shards is None or len(shards) < 2:
            return None
        return self._run_sharded(expression, operands, sparse_name, shards)

    # -- partitioning -------------------------------------------------------
    def _partition(self, fmt: SparseFormat) -> list[SparseFormat] | None:
        """Row-partition a format into up to ``num_shards`` non-empty shards.

        Units are assigned by quantising their output-row coordinate, so
        every output row's contributions land in exactly one shard and the
        relative storage order inside each shard matches the unsharded
        traversal.
        """
        try:
            row_ids = np.asarray(fmt.scatter_row_ids())
        except FormatError:
            return None
        if row_ids.size == 0:
            return None
        num_rows = self._output_rows(fmt)
        if num_rows <= 0:
            return None
        shard_of_unit = (row_ids * self.num_shards) // num_rows
        shards: list[SparseFormat] = []
        for shard in range(self.num_shards):
            mask = shard_of_unit == shard
            if not mask.any():
                continue
            shards.append(fmt.select_units(mask))
        return shards

    @staticmethod
    def _output_rows(fmt: SparseFormat) -> int:
        """Extent of the row coordinate space ``scatter_row_ids`` indexes."""
        # Stacked operands partition by their base matrix's rows; block
        # formats partition by block rows.
        base = getattr(fmt, "base", fmt)
        grid = getattr(base, "grid_shape", None)
        if grid is not None:
            return int(grid[0])
        return int(base.shape[0])

    # -- execution ----------------------------------------------------------
    def _run_sequential(self, expression: str, operands: dict[str, Any]) -> np.ndarray:
        self.last_mode = "sequential"
        self.last_num_shards = 1
        operator = SparseEinsum(
            expression, backend=self.backend, config=self.config, check_bounds=self.check_bounds
        )
        return operator(**operands)

    def _run_sharded(
        self,
        expression: str,
        operands: dict[str, Any],
        sparse_name: str,
        shards: list[SparseFormat],
    ) -> np.ndarray:
        self.last_mode = "sharded"
        self.last_num_shards = len(shards)

        dense_operands = {k: v for k, v in operands.items() if k != sparse_name}
        # A user-provided output (accumulate semantics) must be added exactly
        # once, so only shard 0 sees it; the other shards start from zeros.
        from repro.core.einsum.parser import parse_einsum

        output_name = parse_einsum(expression).lhs.tensor
        initial_output = dense_operands.pop(output_name, None)

        def run_shard(position: int, shard: SparseFormat) -> np.ndarray:
            # Every worker gets its own operator: SparseEinsum instances are
            # not thread-safe, but compilation converges in the shared plan
            # cache so at most one compile per distinct shard signature runs.
            operator = SparseEinsum(
                expression,
                backend=self.backend,
                config=self.config,
                check_bounds=self.check_bounds,
            )
            shard_operands = dict(dense_operands)
            shard_operands[sparse_name] = shard
            if position == 0 and initial_output is not None:
                shard_operands[output_name] = initial_output
            return operator(**shard_operands)

        if self._pool is not None:
            futures = [
                self._pool.submit(run_shard, position, shard)
                for position, shard in enumerate(shards)
            ]
            partials = [future.result() for future in futures]
        else:
            with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
                futures = [
                    pool.submit(run_shard, position, shard)
                    for position, shard in enumerate(shards)
                ]
                partials = [future.result() for future in futures]

        # Deterministic merge in shard order.  Row shards have disjoint
        # support, so the sum is exact (each position adds at most one
        # nonzero partial to zeros).
        result = partials[0]
        for partial in partials[1:]:
            result = result + partial
        return result
