"""The serving runtime: plan caching, batching, sharding, and a front door.

This package turns the Insum compiler into a serving engine (the
ROADMAP's "production-scale" direction):

* :mod:`repro.runtime.plan_cache` — one process-wide LRU of compiled
  kernels, consulted by every operator and one-shot helper.
* :mod:`repro.runtime.stacked` — :class:`StackedSparse`, a DSBCOO-style
  batch of same-pattern sparse operands executed as one widened Einsum.
* :mod:`repro.runtime.sharding` — :class:`ShardedExecutor`, row-partitioned
  parallel execution on a thread pool with a deterministic merge.
* :mod:`repro.runtime.server` — :class:`InsumServer`, submit/gather request
  queuing over reusable per-expression operators.
* :mod:`repro.runtime.stats` — :class:`RuntimeStats`, the throughput /
  latency / cache-hit-rate report.
"""

from repro.runtime.plan_cache import (
    CachedPlan,
    PlanCache,
    PlanCacheStats,
    clear_plan_cache,
    configure_plan_cache,
    get_plan_cache,
    plan_key,
)
from repro.runtime.server import InsumRequest, InsumResult, InsumServer
from repro.runtime.sharding import ShardedExecutor
from repro.runtime.stacked import StackedSparse
from repro.runtime.stats import RuntimeStats

__all__ = [
    "CachedPlan",
    "PlanCache",
    "PlanCacheStats",
    "clear_plan_cache",
    "configure_plan_cache",
    "get_plan_cache",
    "plan_key",
    "InsumRequest",
    "InsumResult",
    "InsumServer",
    "ShardedExecutor",
    "StackedSparse",
    "RuntimeStats",
]
