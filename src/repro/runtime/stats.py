"""RuntimeStats: the serving runtime's throughput / latency / cache report."""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.obs.metrics import DEFAULT_LATENCY_BUCKETS_MS, get_registry
from repro.runtime.plan_cache import PlanCacheStats, get_plan_cache
from repro.utils.timing import LatencyRecorder


@dataclass(frozen=True)
class RuntimeStats:
    """One immutable report covering a window of served requests.

    Built by :meth:`repro.runtime.server.InsumServer.stats` from the
    per-request latency samples (:class:`~repro.utils.timing.LatencyRecorder`)
    and a delta of the process-wide plan-cache counters over the window.
    """

    completed: int
    failed: int
    wall_seconds: float
    p50_latency_ms: float
    p95_latency_ms: float
    mean_latency_ms: float
    max_latency_ms: float
    cache_hits: int
    cache_misses: int
    coalesced_requests: int = 0
    coalesced_batches: int = 0
    cancelled: int = 0
    p99_latency_ms: float = 0.0

    @property
    def submitted(self) -> int:
        """Every request with a terminal outcome: completed+failed+cancelled."""
        return self.completed + self.failed + self.cancelled

    @property
    def throughput_rps(self) -> float:
        """Completed requests per second of wall-clock serving time."""
        return self.completed / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of requests served without compiling (0.0 when idle).

        Coalesced requests beyond the first of each batch never perform a
        plan-cache lookup at all — the batch compiles (or hits) once — so
        they count as lookup-free hits alongside the cache's own hits.
        """
        free = max(0, self.coalesced_requests - self.coalesced_batches)
        lookups = self.cache_hits + self.cache_misses + free
        return (self.cache_hits + free) / lookups if lookups else 0.0

    @property
    def coalesce_rate(self) -> float:
        """Fraction of completed requests served via coalesced batches."""
        return self.coalesced_requests / self.completed if self.completed else 0.0

    def summary(self) -> str:
        """Multi-line human-readable report (throughput, latency, cache)."""
        return "\n".join(
            [
                f"requests   : {self.completed} completed, {self.failed} failed, "
                f"{self.cancelled} cancelled "
                f"in {self.wall_seconds:.3f}s ({self.throughput_rps:.1f} req/s)",
                f"latency    : p50 {self.p50_latency_ms:.3f} ms, "
                f"p95 {self.p95_latency_ms:.3f} ms, "
                f"p99 {self.p99_latency_ms:.3f} ms, "
                f"mean {self.mean_latency_ms:.3f} ms, "
                f"max {self.max_latency_ms:.3f} ms",
                f"plan cache : {self.cache_hits} hits / {self.cache_misses} misses "
                f"(hit rate {self.cache_hit_rate:.1%})",
                f"coalescing : {self.coalesced_requests} requests in "
                f"{self.coalesced_batches} batches ({self.coalesce_rate:.1%} of requests)",
            ]
        )


class ServingWindow:
    """Thread-safe request-window bookkeeping shared by serving backends.

    One instance carries everything a backend needs to report a
    :class:`RuntimeStats` window — completed/failed/cancelled counters,
    latency samples, wall-clock bounds, and a plan-cache mark for the
    cache-hit delta.  ``InsumServer`` and the serve tier's inline backend
    both embed one, so the window semantics (what counts, how the wall
    clock is bounded, what ``reset`` clears) live in exactly one place.

    Every observation is *dual-written*: into the window's own counters
    (which ``reset`` clears, keeping :class:`RuntimeStats` windows
    API-compatible) and into the process-wide metrics registry
    (monotonic ``repro_requests_total`` / ``repro_request_latency_ms``
    children labelled with this window's ``tier``), so ``/metrics``
    reports cumulative truth across every window and server instance.

    Parameters
    ----------
    tier:
        The ``backend`` label on this window's registry children
        (``"threaded"`` for ``InsumServer``, ``"inline"`` for the
        inline backend).
    """

    def __init__(self, tier: str = "threaded") -> None:
        self._lock = threading.Lock()
        self._latencies = LatencyRecorder()
        self._completed = 0
        self._failed = 0
        self._cancelled = 0
        self._started: float | None = None
        self._finished: float | None = None
        self._cache_mark: PlanCacheStats = get_plan_cache().stats()
        registry = get_registry()
        outcome_help = "Terminal request outcomes, by serving tier."
        self._m_completed = registry.counter(
            "repro_requests_total", outcome_help, backend=tier, outcome="completed"
        )
        self._m_failed = registry.counter(
            "repro_requests_total", outcome_help, backend=tier, outcome="failed"
        )
        self._m_cancelled = registry.counter(
            "repro_requests_total", outcome_help, backend=tier, outcome="cancelled"
        )
        self._m_latency = registry.histogram(
            "repro_request_latency_ms",
            "End-to-end request latency in milliseconds, by serving tier.",
            buckets=DEFAULT_LATENCY_BUCKETS_MS,
            backend=tier,
        )

    def open_at(self, timestamp: float) -> None:
        """Record the window's first submission time (later calls no-op)."""
        with self._lock:
            if self._started is None:
                self._started = timestamp

    def observe(self, ok: bool, latency_ms: float, finished_at: float) -> None:
        """Account one terminal (non-cancelled) request.

        Parameters
        ----------
        ok:
            Whether the request produced an output.
        latency_ms / finished_at:
            Its end-to-end latency and completion ``perf_counter`` stamp.
        """
        self._latencies.record(latency_ms)
        with self._lock:
            if ok:
                self._completed += 1
            else:
                self._failed += 1
            self._finished = finished_at
        (self._m_completed if ok else self._m_failed).inc()
        self._m_latency.observe(latency_ms)

    def observe_cancelled(self) -> None:
        """Account one request cancelled before dispatch (no latency sample)."""
        with self._lock:
            self._cancelled += 1
        self._m_cancelled.inc()

    def snapshot(
        self,
        coalesced_requests: int = 0,
        coalesced_batches: int = 0,
        cache_delta: PlanCacheStats | None = None,
    ) -> RuntimeStats:
        """The window as an immutable :class:`RuntimeStats`.

        Parameters
        ----------
        coalesced_requests / coalesced_batches:
            The backend's coalescing counters (zero where it has none).
        cache_delta:
            Override for the cache counters; defaults to the process-wide
            plan cache's delta since construction / the last reset.
        """
        if cache_delta is None:
            cache_delta = get_plan_cache().stats().since(self._cache_mark)
        with self._lock:
            wall = 0.0
            if self._started is not None and self._finished is not None:
                wall = max(0.0, self._finished - self._started)
            return build_stats(
                self._completed,
                self._failed,
                wall,
                self._latencies,
                cache_delta,
                coalesced_requests=coalesced_requests,
                coalesced_batches=coalesced_batches,
                cancelled=self._cancelled,
            )

    def reset(self) -> None:
        """Start a fresh window (counters, latencies, wall clock, cache mark).

        Only the window's own view resets — the registry children it
        dual-writes are monotonic by contract and keep counting.
        """
        with self._lock:
            self._completed = 0
            self._failed = 0
            self._cancelled = 0
            self._started = None
            self._finished = None
        self._latencies.reset()
        self._cache_mark = get_plan_cache().stats()


def build_stats(
    completed: int,
    failed: int,
    wall_seconds: float,
    latencies: LatencyRecorder,
    cache_delta: PlanCacheStats,
    coalesced_requests: int = 0,
    coalesced_batches: int = 0,
    cancelled: int = 0,
) -> RuntimeStats:
    """Assemble a :class:`RuntimeStats` from the server's raw collectors.

    Parameters
    ----------
    completed / failed / cancelled:
        Request counters over the window.
    wall_seconds:
        Serving wall-clock covered by the window.
    latencies:
        Per-request latency samples (summarized once, through
        :func:`repro.utils.timing.summarize`).
    cache_delta:
        Plan-cache counter delta over the window.
    coalesced_requests / coalesced_batches:
        How many requests were served through coalesced batches, and how
        many batches those were.
    """
    summary = latencies.summary()
    return RuntimeStats(
        completed=completed,
        failed=failed,
        wall_seconds=wall_seconds,
        p50_latency_ms=summary.p50_ms,
        p95_latency_ms=summary.p95_ms,
        p99_latency_ms=summary.p99_ms,
        mean_latency_ms=summary.mean_ms,
        max_latency_ms=summary.max_ms,
        cache_hits=cache_delta.hits,
        cache_misses=cache_delta.misses,
        coalesced_requests=coalesced_requests,
        coalesced_batches=coalesced_batches,
        cancelled=cancelled,
    )
