"""StackedSparse: a batch of same-pattern sparse operands executed as one Einsum.

Serving workloads rarely present a single sparse matrix: quantum-transport
solvers carry a *stack* of matrices sharing one sparsity pattern (one per
energy point — the ``DSBCOO`` structure in QuantumTransportToolbox), GNN
inference batches graphs with a shared adjacency structure, and equivariant
networks reuse one Clebsch–Gordan pattern across samples.  Running such a
stack through a Python loop of ``sparse_einsum`` calls pays the frontend
overhead (rewrite, validation, cache lookups) once *per item* and executes
many small kernels.

:class:`StackedSparse` stores the stack as **one** ``(stack, *value_shape)``
data array over **shared** metadata, and — because it is itself a
:class:`~repro.formats.base.SparseFormat` — plugs into the existing
rewrite machinery: accessing it as ``A[s,m,k]`` simply widens the base
format's indirect Einsum with the leading stack index, e.g. for GroupCOO::

    C[s,m,n] += A[s,m,k] * B[k,n]      # A is a StackedSparse over GroupCOO
    ->  C[s,AM[p],n] += AV[s,p,q] * B[AK[p,q],n]

so the whole stack executes as a single widened indirect Einsum (one
compile, one vectorised NumPy execution) instead of a per-item loop.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Sequence

import numpy as np

from repro.core.einsum.ast import IndexExpr, IndexVar, TensorAccess
from repro.core.einsum.rewriting import OperandRewrite
from repro.errors import FormatError, ShapeError
from repro.formats.base import SparseFormat
from repro.utils.arrays import as_value_array


def _values_of(fmt: SparseFormat) -> np.ndarray:
    """The value array of a format, via the uniform ``{name}V`` tensor key."""
    return fmt.tensors("_")["_V"]


def _introduced_var_names(rewrite: OperandRewrite, user_names: set[str]) -> set[str]:
    """Index-variable names a rewrite introduced beyond the user's own."""

    def walk(expr: IndexExpr) -> Iterator[str]:
        if isinstance(expr, IndexVar):
            yield expr.name
        elif isinstance(expr, TensorAccess):
            for var in expr.index_vars():
                yield var.name

    names: set[str] = set()
    for index in rewrite.value_access.indices:
        names.update(walk(index))
    for substitution in rewrite.substitutions.values():
        for expr in substitution.exprs:
            names.update(walk(expr))
    return names - user_names


class StackedSparse(SparseFormat):
    """A stack of same-pattern sparse operands behind one shared metadata set.

    Parameters
    ----------
    base:
        The pattern-defining sparse operand (any fixed-length format; BCSR
        and CSR stacks are supported for storage and conversion, but only
        fixed-length bases can execute as indirect Einsums).
    data:
        Array of shape ``(stack_size, *base_value_shape)`` holding every
        item's values over the shared pattern.
    """

    format_name = "StackedSparse"

    def __init__(self, base: SparseFormat, data: np.ndarray):
        if isinstance(base, StackedSparse):
            raise FormatError("nesting StackedSparse inside StackedSparse is not supported")
        self.base = base
        self.data = as_value_array(data, name="StackedSparse data")
        base_shape = _values_of(base).shape
        if self.data.ndim != len(base_shape) + 1:
            raise ShapeError(
                f"stacked data must have shape (stack, {'x'.join(map(str, base_shape))}); "
                f"got {self.data.shape}"
            )
        if self.data.shape[1:] != base_shape:
            raise ShapeError(
                f"stacked data slices have shape {self.data.shape[1:]}, but the base "
                f"{base.format_name} stores values of shape {base_shape}"
            )
        if self.data.shape[0] < 1:
            raise ShapeError("a StackedSparse needs at least one stack item")
        self.fixed_length = base.fixed_length

    # -- constructors -------------------------------------------------------
    @classmethod
    def from_items(cls, items: Sequence[SparseFormat]) -> "StackedSparse":
        """Stack existing format instances that share one sparsity pattern.

        Every item must be the same format class with bit-identical
        metadata (coordinates, pointers, group structure); only the values
        may differ.
        """
        items = list(items)
        if not items:
            raise FormatError("StackedSparse.from_items needs at least one item")
        first = items[0]
        reference = first.tensors("_")
        for position, item in enumerate(items[1:], start=1):
            if type(item) is not type(first):
                raise FormatError(
                    f"item {position} is {item.format_name}, expected {first.format_name}"
                )
            if item.shape != first.shape:
                raise FormatError(
                    f"item {position} has shape {item.shape}, expected {first.shape}"
                )
            current = item.tensors("_")
            for key, array in reference.items():
                if key == "_V":
                    if current[key].shape != array.shape:
                        raise FormatError(
                            f"item {position} stores values of shape {current[key].shape}, "
                            f"expected {array.shape} — stack items must share one pattern"
                        )
                elif not np.array_equal(current[key], array):
                    raise FormatError(
                        f"item {position} differs from item 0 in metadata tensor {key!r}; "
                        "StackedSparse requires one shared sparsity pattern"
                    )
        data = np.stack([_values_of(item) for item in items])
        return cls(first, data)

    @classmethod
    def from_dense(
        cls,
        dense_stack: np.ndarray,
        format_factory: Callable[..., SparseFormat] | str = "auto",
        **format_kwargs: Any,
    ) -> "StackedSparse":
        """Build a stack from dense arrays, over the union sparsity pattern.

        The union pattern (positions nonzero in *any* item) is converted
        once through ``format_factory`` (e.g. ``GroupCOO.from_dense``, a
        format class, or the string ``"auto"`` to let :mod:`repro.tuner`
        profile the union pattern and pick the format), then every item's
        values are gathered into the pattern's storage slots — items are
        allowed to hold explicit zeros where other items have nonzeros.

        The gather uses a positional trick: the pattern matrix is encoded
        with each position's flat index (+1), converted to the target
        format, and the resulting value array then *is* the slot → position
        map (0 marks padding slots).

        Parameters
        ----------
        dense_stack:
            Array of shape ``(stack, rows, cols)`` (or higher-rank items
            for explicit factories).
        format_factory:
            A format class, a callable building a format from a dense
            array, or ``"auto"`` (the default) for tuner selection.
        **format_kwargs:
            Extra keyword arguments for the factory (e.g. ``group_size``);
            not accepted with ``"auto"``.

        Returns
        -------
        StackedSparse
            The stacked operand over the chosen pattern format.
        """
        stack = np.asarray(dense_stack)
        if stack.ndim < 2:
            raise ShapeError(
                f"from_dense expects a (stack, ...) array of rank >= 2, got {stack.shape}"
            )
        if isinstance(format_factory, str):
            if format_factory != "auto":
                raise FormatError(
                    f"unknown format_factory {format_factory!r}; pass a format class, a "
                    "callable, or 'auto'"
                )
            if format_kwargs:
                raise FormatError(
                    "format_factory='auto' picks the parameters itself; drop "
                    f"{sorted(format_kwargs)}"
                )
            if stack.ndim != 3:
                raise ShapeError(
                    "format_factory='auto' profiles matrix stacks (rank 3); got "
                    f"shape {stack.shape}"
                )
            from repro.tuner.auto import choose_format
            from repro.tuner.profile import profile_operand

            union = np.any(stack != 0, axis=0).astype(np.float64)
            decision = choose_format(profile_operand(union), dense=union)
            format_factory = decision.candidate.build
        factory = (
            format_factory.from_dense  # type: ignore[union-attr]
            if isinstance(format_factory, type)
            else format_factory
        )
        item_shape = stack.shape[1:]
        union_mask = np.any(stack != 0, axis=0)
        positions = np.where(
            union_mask,
            np.arange(1, union_mask.size + 1, dtype=np.float64).reshape(item_shape),
            0.0,
        )
        pattern = factory(positions, **format_kwargs)
        slot_positions = np.rint(_values_of(pattern)).astype(np.int64)

        flat_items = stack.reshape(stack.shape[0], -1)
        gather_index = np.maximum(slot_positions - 1, 0).reshape(-1)
        gathered = flat_items[:, gather_index].reshape((stack.shape[0],) + slot_positions.shape)
        data = np.where(slot_positions > 0, gathered, 0.0)
        return cls(pattern.with_values(data[0]), data)

    # -- stack access -------------------------------------------------------
    @property
    def stack_size(self) -> int:
        """Number of stacked items (the leading axis of ``data``)."""
        return int(self.data.shape[0])

    def item(self, position: int) -> SparseFormat:
        """The single-operand view of one stack item (shared metadata)."""
        return self.base.with_values(self.data[position])

    def items(self) -> Iterator[SparseFormat]:
        """Iterate the per-item views, in stack order."""
        for position in range(self.stack_size):
            yield self.item(position)

    def __len__(self) -> int:
        return self.stack_size

    # -- SparseFormat interface --------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return (self.stack_size, *self.base.shape)

    @property
    def nnz(self) -> int:
        return int(np.count_nonzero(self.data))

    def to_dense(self) -> np.ndarray:
        return np.stack([item.to_dense() for item in self.items()])

    def tensors(self, name: str) -> dict[str, np.ndarray]:
        out = self.base.tensors(name)
        out[f"{name}V"] = self.data
        return out

    def rewrite_plan(self, name: str, index_names: Sequence[str]) -> OperandRewrite:
        """Widen the base format's rewrite with the leading stack index.

        ``A[s,m,k]`` delegates ``(m, k)`` to the base format and prepends
        the plain stack variable ``s`` to the value access, so COO's
        ``AV[p]`` becomes ``AV[s,p]``, GroupCOO's ``AV[p,q]`` becomes
        ``AV[s,p,q]``, and so on.  The metadata substitutions are shared
        across the stack and pass through unchanged.
        """
        expected = len(self.base.shape) + 1
        if len(index_names) != expected:
            raise FormatError(
                f"StackedSparse over {self.base.format_name} is rank {expected} "
                f"(stack + base); got {len(index_names)} indices"
            )
        stack_name = index_names[0]
        base_rewrite = self.base.rewrite_plan(name, list(index_names[1:]))
        introduced = _introduced_var_names(base_rewrite, set(index_names[1:]))
        if stack_name in introduced:
            raise FormatError(
                f"the stack index {stack_name!r} collides with a variable introduced by the "
                f"{self.base.format_name} rewrite ({sorted(introduced)}); rename the stack index"
            )
        value_access = TensorAccess(
            tensor=base_rewrite.value_access.tensor,
            indices=(IndexVar(stack_name), *base_rewrite.value_access.indices),
        )
        tensors = dict(base_rewrite.tensors)
        tensors[f"{name}V"] = self.data
        return OperandRewrite(
            operand=name,
            value_access=value_access,
            substitutions=base_rewrite.substitutions,
            tensors=tensors,
        )

    # -- runtime hooks ------------------------------------------------------
    def with_values(self, values: np.ndarray) -> "StackedSparse":
        return StackedSparse(self.base, values)

    def scatter_row_ids(self) -> np.ndarray:
        return self.base.scatter_row_ids()

    def select_units(self, selector: np.ndarray) -> "StackedSparse":
        return StackedSparse(self.base.select_units(selector), self.data[:, selector])

    # -- storage accounting -------------------------------------------------
    def value_count(self) -> int:
        return int(self.data.size)

    def index_count(self) -> int:
        return self.base.index_count()

    def __repr__(self) -> str:
        dims = "x".join(str(d) for d in self.base.shape)
        return (
            f"StackedSparse({self.base.format_name}, stack={self.stack_size}, "
            f"shape={dims}, nnz={self.nnz})"
        )
