"""cuSPARSE-style CSR SpMM baseline (Figure 11).

cuSPARSE's ``csrmm`` assigns rows of the sparse matrix to warps/thread
blocks in order.  On matrices with skewed degree distributions the warps
holding hub rows run far longer than the rest, so the kernel pays a load
imbalance penalty that grows with the skewness of the nonzeros-per-row
distribution — exactly the effect the paper describes when comparing
against Sputnik's row-swizzling strategy.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse as sp

from repro.baselines.base import Baseline
from repro.core.triton_sim.kernel import KernelSpec, MemoryAccess
from repro.formats.csr import CSR


def _row_imbalance_factor(occupancy: np.ndarray, mitigation: float) -> float:
    """Load-imbalance multiplier from the nonzeros-per-row distribution.

    A perfectly regular matrix gives 1.0.  The raw imbalance is the ratio
    between the heaviest rows (the slowest warps, estimated from the 99.9th
    percentile) and the mean; ``mitigation`` in [0, 1] scales how much of
    that shows up in runtime (row swizzling sets it low, plain row-split
    higher).
    """
    occupancy = np.asarray(occupancy, dtype=np.float64)
    nonempty = occupancy[occupancy > 0]
    if nonempty.size == 0:
        return 1.0
    mean = nonempty.mean()
    heavy = np.percentile(nonempty, 99.9)
    raw = max(1.0, heavy / max(mean, 1.0))
    return 1.0 + mitigation * (raw - 1.0) / (1.0 + np.log1p(raw))


class CuSparseSpMM(Baseline):
    """Vendor CSR SpMM (closed source; modelled as a row-split kernel)."""

    name = "cuSPARSE"
    lines_of_code = None

    LIBRARY_COMPUTE_EFFICIENCY = 0.80
    LIBRARY_DRAM_EFFICIENCY = 0.80
    #: Fraction of raw row-imbalance that shows up in runtime (no swizzling).
    IMBALANCE_MITIGATION = 0.15

    def __init__(self, matrix: CSR, dtype: str = "fp32", device=None):
        super().__init__(**({"device": device} if device is not None else {}))
        self.dtype = dtype
        self.format = matrix
        self._scipy = sp.csr_matrix(
            (matrix.data, matrix.indices, matrix.indptr), shape=matrix.shape
        )

    def _compute(self, dense: np.ndarray) -> np.ndarray:
        return np.asarray(self._scipy @ np.asarray(dense))

    def _kernels(self, dense: np.ndarray) -> list[KernelSpec]:
        dense = np.asarray(dense)
        fmt = self.format
        num_rows = fmt.shape[0]
        num_cols = dense.shape[1]
        nnz = fmt.nnz
        element_bytes = 2 if self.dtype == "fp16" else 4
        imbalance = _row_imbalance_factor(fmt.row_occupancy(), self.IMBALANCE_MITIGATION)
        return [
            KernelSpec(
                name="cusparse_csrmm",
                grid=max(1, num_rows // 4),
                loads=[
                    MemoryAccess("indptr", num_rows + 1, 4),
                    MemoryAccess("indices", nnz, 4),
                    MemoryAccess("values", nnz, element_bytes),
                    MemoryAccess(
                        "B",
                        nnz * num_cols,
                        element_bytes,
                        indirect=True,
                        contiguous_elements=num_cols,
                        unique_elements=dense.size,
                    ),
                ],
                stores=[MemoryAccess("C", num_rows * num_cols, element_bytes)],
                flops=2.0 * nnz * num_cols,
                uses_tensor_core=False,
                dtype=self.dtype,
                compute_efficiency=self.LIBRARY_COMPUTE_EFFICIENCY,
                dram_efficiency=self.LIBRARY_DRAM_EFFICIENCY,
                imbalance=imbalance,
                description="CSR row-split SpMM (vendor library)",
            )
        ]
