"""TorchSparse-style sparse convolution baselines (Figure 12, Table 1).

TorchSparse implements 3-D sparse convolution with two distinct CUDA code
paths, which the paper labels Algo1 and Algo2:

* **ImplicitGEMM** (Algo1): output voxels are processed as an implicit
  GEMM over the full kernel volume with a validity mask; work is issued
  for every (voxel, offset) slot whether or not a neighbour exists, so
  Tensor Core utilisation is high but a fraction of the issued work is
  masked out (wasted) on sparse neighbourhoods.
* **Fetch-on-Demand** (Algo2): per kernel offset, only the existing pairs
  are gathered, multiplied against that offset's weight slice, and
  scattered back.  No wasted math, but one gather/GEMM/scatter round-trip
  (and intermediate traffic) per offset and many smaller kernel launches.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import Baseline
from repro.core.triton_sim.kernel import KernelSpec, MemoryAccess
from repro.datasets.pointclouds import KernelMap


class TorchSparseConv(Baseline):
    """Hand-written sparse convolution engine with two algorithm variants."""

    name = "TorchSparse"
    lines_of_code = 4491

    HANDWRITTEN_COMPUTE_EFFICIENCY = 0.78
    HANDWRITTEN_DRAM_EFFICIENCY = 0.86

    def __init__(self, kernel_map: KernelMap, algorithm: str = "implicit_gemm",
                 dtype: str = "fp16", device=None):
        super().__init__(**({"device": device} if device is not None else {}))
        if algorithm not in ("implicit_gemm", "fetch_on_demand"):
            raise ValueError(
                f"unknown algorithm {algorithm!r}; use 'implicit_gemm' or 'fetch_on_demand'"
            )
        self.kernel_map = kernel_map
        self.algorithm = algorithm
        self.dtype = dtype
        self.name = f"TorchSparse-{'Algo1' if algorithm == 'implicit_gemm' else 'Algo2'}"

    # -- numerics (identical for both algorithms) ---------------------------------
    def _compute(self, features: np.ndarray, weight: np.ndarray) -> np.ndarray:
        features = np.asarray(features)
        weight = np.asarray(weight)
        out_channels = weight.shape[2]
        output = np.zeros((self.kernel_map.num_voxels, out_channels), dtype=features.dtype)
        for offset_index, pairs in enumerate(self.kernel_map.pairs):
            if len(pairs) == 0:
                continue
            gathered = features[pairs[:, 1]]
            np.add.at(output, pairs[:, 0], gathered @ weight[offset_index])
        return output

    # -- cost model ------------------------------------------------------------------
    def _kernels(self, features: np.ndarray, weight: np.ndarray) -> list[KernelSpec]:
        features = np.asarray(features)
        weight = np.asarray(weight)
        in_channels = weight.shape[1]
        out_channels = weight.shape[2]
        element_bytes = 2 if self.dtype == "fp16" else 4
        num_voxels = self.kernel_map.num_voxels
        kernel_volume = self.kernel_map.kernel_volume
        total_pairs = self.kernel_map.total_pairs

        if self.algorithm == "implicit_gemm":
            # Work is issued for every (voxel, offset) slot; the mask makes
            # the memory traffic proportional to the existing pairs but the
            # MMA work proportional to the dense kernel volume, discounted
            # by the sorted-masking optimisation of TorchSparse++.
            # The sorted/bitmask optimisation skips most empty slots, but the
            # MMA tiles still execute a fixed overhead of masked lanes on top
            # of the useful work.
            occupancy_fraction = total_pairs / max(1, num_voxels * kernel_volume)
            masked_utilization = min(1.0, 0.08 + 1.6 * occupancy_fraction)
            issued_flops = 2.0 * num_voxels * kernel_volume * in_channels * out_channels
            flops = issued_flops * masked_utilization
            return [
                KernelSpec(
                    name="torchsparse_implicit_gemm",
                    grid=max(1, num_voxels // 64),
                    loads=[
                        MemoryAccess("kmap", num_voxels * kernel_volume, 4),
                        MemoryAccess(
                            "In",
                            total_pairs * in_channels,
                            element_bytes,
                            indirect=True,
                            contiguous_elements=in_channels,
                            unique_elements=num_voxels * in_channels,
                        ),
                        MemoryAccess(
                            "Weight", kernel_volume * in_channels * out_channels, element_bytes
                        ),
                    ],
                    stores=[MemoryAccess("Out", num_voxels * out_channels, element_bytes)],
                    flops=flops,
                    uses_tensor_core=True,
                    dtype=self.dtype,
                    compute_efficiency=self.HANDWRITTEN_COMPUTE_EFFICIENCY,
                    dram_efficiency=self.HANDWRITTEN_DRAM_EFFICIENCY,
                    description="masked implicit GEMM over the full kernel volume",
                )
            ]

        # Fetch-on-Demand: per-offset fused gather / GEMM / scatter kernels in
        # which the gathered features stay on-chip (they are fetched "on
        # demand" into shared memory).  The offsets are batched into a handful
        # of launches via CUDA streams; efficiency is a little below the
        # single autotuned fused kernel, and the per-offset GEMMs are smaller.
        launch_batches = 8
        kernels: list[KernelSpec] = []
        pairs_per_batch = max(1, total_pairs // launch_batches)
        for batch_index in range(launch_batches):
            kernels.append(
                KernelSpec(
                    name=f"torchsparse_fod_batch{batch_index}",
                    grid=max(1, pairs_per_batch // 128),
                    loads=[
                        MemoryAccess("pairs", pairs_per_batch * 2, 4),
                        MemoryAccess(
                            "In",
                            pairs_per_batch * in_channels,
                            element_bytes,
                            indirect=True,
                            contiguous_elements=in_channels,
                            unique_elements=num_voxels * in_channels / launch_batches,
                        ),
                        MemoryAccess(
                            "Weight",
                            kernel_volume * in_channels * out_channels / launch_batches,
                            element_bytes,
                        ),
                    ],
                    stores=[
                        MemoryAccess(
                            "Out",
                            pairs_per_batch * out_channels,
                            element_bytes,
                            indirect=True,
                            atomic=True,
                        )
                    ],
                    flops=2.0 * pairs_per_batch * in_channels * out_channels,
                    uses_tensor_core=True,
                    dtype=self.dtype,
                    compute_efficiency=0.62,
                    dram_efficiency=self.HANDWRITTEN_DRAM_EFFICIENCY,
                    description="per-offset fused gather-GEMM-scatter batch",
                )
            )
        return kernels
