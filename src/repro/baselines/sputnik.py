"""Sputnik-style unstructured SpMM baseline (Figure 11, Table 1).

Sputnik (Gale et al., SC'20) is ~2,000 lines of hand-written CUDA built
around a row-swizzling strategy: rows are sorted by nonzero count and
assigned to thread blocks so that warps process similarly-sized rows,
largely removing the load imbalance that hurts plain row-split kernels on
skewed matrices.  The permutation itself and the 1-D tiling add a small
fixed overhead, so on well-balanced matrices Sputnik has no advantage.  Its
public FP16 path only supports matrices with fewer than 2^16 rows, a
limitation the paper points out; :meth:`run` enforces it.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse as sp

from repro.baselines.base import Baseline
from repro.baselines.cusparse import _row_imbalance_factor
from repro.core.triton_sim.kernel import KernelSpec, MemoryAccess
from repro.errors import ShapeError
from repro.formats.csr import CSR

#: Sputnik's FP16 kernels index rows with 16-bit ids.
_FP16_MAX_ROWS = 2**16


class SputnikSpMM(Baseline):
    """Row-swizzled CSR SpMM (hand-written CUDA)."""

    name = "Sputnik"
    lines_of_code = 1918

    HANDWRITTEN_COMPUTE_EFFICIENCY = 0.75
    HANDWRITTEN_DRAM_EFFICIENCY = 0.80
    #: Row swizzling removes most, but not all, of the raw imbalance.
    IMBALANCE_MITIGATION = 0.05
    #: Relative overhead of the row-permutation metadata and swizzled writes.
    SWIZZLE_OVERHEAD = 0.10

    def __init__(self, matrix: CSR, dtype: str = "fp32", device=None):
        super().__init__(**({"device": device} if device is not None else {}))
        if dtype == "fp16" and matrix.shape[0] >= _FP16_MAX_ROWS:
            raise ShapeError(
                f"Sputnik's FP16 path supports fewer than {_FP16_MAX_ROWS} rows; "
                f"this matrix has {matrix.shape[0]}"
            )
        self.dtype = dtype
        self.format = matrix
        self.row_order = np.argsort(-matrix.row_occupancy(), kind="stable")
        self._scipy = sp.csr_matrix(
            (matrix.data, matrix.indices, matrix.indptr), shape=matrix.shape
        )

    def _compute(self, dense: np.ndarray) -> np.ndarray:
        dense = np.asarray(dense)
        # Row swizzling changes the processing order, not the result: compute
        # in permuted order and scatter rows back, as the CUDA kernel does.
        permuted = self._scipy[self.row_order] @ dense
        output = np.empty_like(permuted)
        output[self.row_order] = permuted
        return np.asarray(output)

    def _kernels(self, dense: np.ndarray) -> list[KernelSpec]:
        dense = np.asarray(dense)
        fmt = self.format
        num_rows = fmt.shape[0]
        num_cols = dense.shape[1]
        nnz = fmt.nnz
        element_bytes = 2 if self.dtype == "fp16" else 4
        imbalance = _row_imbalance_factor(fmt.row_occupancy(), self.IMBALANCE_MITIGATION)
        imbalance *= 1.0 + self.SWIZZLE_OVERHEAD
        return [
            KernelSpec(
                name="sputnik_spmm",
                grid=max(1, num_rows // 4),
                loads=[
                    MemoryAccess("row_offsets", num_rows + 1, 4),
                    MemoryAccess("row_indices", num_rows, 4),
                    MemoryAccess("column_indices", nnz, 4),
                    MemoryAccess("values", nnz, element_bytes),
                    MemoryAccess(
                        "B",
                        nnz * num_cols,
                        element_bytes,
                        indirect=True,
                        contiguous_elements=num_cols,
                        unique_elements=dense.size,
                    ),
                ],
                stores=[MemoryAccess("C", num_rows * num_cols, element_bytes)],
                flops=2.0 * nnz * num_cols,
                uses_tensor_core=False,
                dtype=self.dtype,
                compute_efficiency=self.HANDWRITTEN_COMPUTE_EFFICIENCY,
                dram_efficiency=self.HANDWRITTEN_DRAM_EFFICIENCY,
                imbalance=imbalance,
                description="row-swizzled CSR SpMM (hand-written CUDA)",
            )
        ]
