"""TACO-style sparse compiler baseline (Table 3).

TACO compiles an Einsum plus a format specification into nested-loop code.
Its code generator targets CPUs first; the GPU schedule the paper's authors
could write by hand after hours of effort still used neither shared memory
nor Tensor Cores.  The consequences reproduced here:

* **compilation is fast** — the loop nest is emitted directly, with no
  autotuning (we measure the time to generate and ``compile()`` the
  Python source of the loop nest);
* **format conversion is fast** — a straightforward CSR-style build;
* **the kernel is very slow** — scalar, uncoalesced gathers and no Tensor
  Cores, modelled with correspondingly low efficiencies.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import Baseline, BaselineResult
from repro.core.triton_sim.kernel import KernelSpec, MemoryAccess
from repro.core.triton_sim.profiler import estimate_total_time
from repro.datasets.pointclouds import KernelMap
from repro.errors import LoweringError
from repro.utils.timing import Timer

_GENERATED_TEMPLATE = '''
import numpy as np

def generated_spconv(features, weight, out_ptr, pair_inputs, pair_offsets, num_voxels):
    """TACO-style generated kernel: per-output-row loop over its pairs."""
    out_channels = weight.shape[2]
    output = np.zeros((num_voxels, out_channels), dtype=features.dtype)
    for row in range(num_voxels):
        start, end = out_ptr[row], out_ptr[row + 1]
        if start == end:
            continue
        gathered = features[pair_inputs[start:end]]
        weights = weight[pair_offsets[start:end]]
        output[row] = np.einsum("pc,pcm->m", gathered, weights)
    return output
'''


class TacoSparseCompiler(Baseline):
    """TACO-like compiler: fast compile and conversion, slow unscheduled kernel."""

    name = "TACO"
    lines_of_code = None
    #: Size of the hand-written schedule the paper needed for TACO (Table 3).
    schedule_lines_of_code = 10

    UNSCHEDULED_COMPUTE_EFFICIENCY = 0.015
    UNSCHEDULED_DRAM_EFFICIENCY = 0.20

    def __init__(self, dtype: str = "fp16", device=None):
        super().__init__(**({"device": device} if device is not None else {}))
        self.dtype = dtype
        self.compile_seconds: float | None = None
        self.format_conversion_ms: float | None = None
        self._kernel_fn = None
        self._converted: dict[str, np.ndarray] | None = None
        self._num_voxels = 0

    # -- compilation ---------------------------------------------------------------
    def compile(self) -> float:
        """Generate and compile the loop-nest kernel; returns elapsed seconds."""
        with Timer() as timer:
            namespace: dict[str, object] = {}
            code = compile(_GENERATED_TEMPLATE, "<taco_generated>", "exec")
            exec(code, namespace)  # noqa: S102 - compiling our own generated source
            self._kernel_fn = namespace["generated_spconv"]
        self.compile_seconds = timer.elapsed
        return timer.elapsed

    # -- format conversion ------------------------------------------------------------
    def convert(self, kernel_map: KernelMap) -> float:
        """Convert the kernel map to the per-output-row (CSR-like) layout."""
        with Timer() as timer:
            outputs, inputs, offsets = [], [], []
            for offset_index, pairs in enumerate(kernel_map.pairs):
                if len(pairs) == 0:
                    continue
                outputs.append(pairs[:, 0])
                inputs.append(pairs[:, 1])
                offsets.append(np.full(len(pairs), offset_index, dtype=np.int64))
            out = np.concatenate(outputs)
            order = np.argsort(out, kind="stable")
            out = out[order]
            counts = np.bincount(out, minlength=kernel_map.num_voxels)
            indptr = np.zeros(kernel_map.num_voxels + 1, dtype=np.int64)
            np.cumsum(counts, out=indptr[1:])
            self._converted = {
                "out_ptr": indptr,
                "pair_inputs": np.concatenate(inputs)[order],
                "pair_offsets": np.concatenate(offsets)[order],
            }
            self._num_voxels = kernel_map.num_voxels
        self.format_conversion_ms = timer.elapsed_ms
        return timer.elapsed_ms

    # -- execution ----------------------------------------------------------------------
    def _compute(self, features: np.ndarray, weight: np.ndarray) -> np.ndarray:
        if self._kernel_fn is None or self._converted is None:
            raise LoweringError("call compile() and convert() before run()")
        return self._kernel_fn(
            np.asarray(features),
            np.asarray(weight),
            self._converted["out_ptr"],
            self._converted["pair_inputs"],
            self._converted["pair_offsets"],
            self._num_voxels,
        )

    def _kernels(self, features: np.ndarray, weight: np.ndarray) -> list[KernelSpec]:
        if self._converted is None:
            raise LoweringError("call convert() before modelling the kernel")
        features = np.asarray(features)
        weight = np.asarray(weight)
        in_channels = weight.shape[1]
        out_channels = weight.shape[2]
        total_pairs = int(self._converted["pair_inputs"].shape[0])
        element_bytes = 2 if self.dtype == "fp16" else 4
        return [
            KernelSpec(
                name="taco_generated_spconv",
                grid=max(1, self._num_voxels // 32),
                loads=[
                    MemoryAccess("out_ptr", self._num_voxels + 1, 4),
                    MemoryAccess("pair_inputs", total_pairs, 4),
                    MemoryAccess("pair_offsets", total_pairs, 4),
                    # Scalar, uncoalesced gathers: one element per request.
                    MemoryAccess(
                        "In",
                        total_pairs * in_channels,
                        element_bytes,
                        indirect=True,
                        contiguous_elements=1,
                    ),
                    MemoryAccess(
                        "Weight",
                        total_pairs * in_channels * out_channels,
                        element_bytes,
                        indirect=True,
                        contiguous_elements=1,
                    ),
                ],
                stores=[
                    MemoryAccess("Out", self._num_voxels * out_channels, element_bytes)
                ],
                flops=2.0 * total_pairs * in_channels * out_channels,
                uses_tensor_core=False,
                dtype=self.dtype,
                compute_efficiency=self.UNSCHEDULED_COMPUTE_EFFICIENCY,
                dram_efficiency=self.UNSCHEDULED_DRAM_EFFICIENCY,
                description="unscheduled loop nest, no shared memory, no Tensor Cores",
            )
        ]

    def run(self, features: np.ndarray, weight: np.ndarray) -> BaselineResult:
        output = self._compute(features, weight)
        kernels = self._kernels(features, weight)
        return BaselineResult(output=output, cost=estimate_total_time(kernels, self.device))
