"""Common interface of the baseline implementations."""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.core.triton_sim.device import DeviceModel, RTX3090
from repro.core.triton_sim.kernel import KernelSpec
from repro.core.triton_sim.profiler import CostReport, estimate_total_time


@dataclass
class BaselineResult:
    """Output of one baseline execution: numerics plus modelled cost."""

    output: np.ndarray
    cost: CostReport

    @property
    def modeled_ms(self) -> float:
        return self.cost.total_ms


class Baseline(abc.ABC):
    """A hand-written library or compiler the paper compares against.

    Subclasses implement :meth:`_compute` (the numerics) and
    :meth:`_kernels` (the kernel specs describing how the library would
    execute on the GPU); :meth:`run` couples the two.
    """

    #: Display name used in benchmark tables.
    name: str = "baseline"
    #: Lines of code of the original implementation, as reported in Table 1
    #: (None when the paper does not report a number, e.g. cuSPARSE).
    lines_of_code: int | None = None

    def __init__(self, device: DeviceModel = RTX3090):
        self.device = device

    @abc.abstractmethod
    def _compute(self, *args, **kwargs) -> np.ndarray:
        """Produce the numeric result with NumPy/SciPy."""

    @abc.abstractmethod
    def _kernels(self, *args, **kwargs) -> list[KernelSpec]:
        """Describe the kernels the library would launch for this problem."""

    def run(self, *args, **kwargs) -> BaselineResult:
        """Execute the baseline and attach its modelled cost."""
        output = self._compute(*args, **kwargs)
        kernels = self._kernels(*args, **kwargs)
        return BaselineResult(output=output, cost=estimate_total_time(kernels, self.device))

    def modeled_ms(self, *args, **kwargs) -> float:
        """Modelled runtime without computing the numerics (for sweeps)."""
        kernels = self._kernels(*args, **kwargs)
        return estimate_total_time(kernels, self.device).total_ms
