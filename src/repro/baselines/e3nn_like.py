"""e3nn-style equivariant tensor product baseline (Table 2).

e3nn assembles the fully connected tensor product from its per-path
Clebsch–Gordan blocks: each path ``(l1, l2) -> l_out`` is executed as its
own small einsum over dense blocks.  That keeps the code simple (the paper
counts 225 LoC) but launches many small kernels, none of which is large
enough to use Tensor Cores well, and re-reads the input features once per
path.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import Baseline
from repro.core.triton_sim.kernel import KernelSpec, MemoryAccess
from repro.datasets.clebsch_gordan import CGTensor


class E3nnTensorProduct(Baseline):
    """Per-path dense einsums (the e3nn execution strategy)."""

    name = "e3nn"
    lines_of_code = 225

    PATH_COMPUTE_EFFICIENCY = 0.12  # tiny einsums keep the GPU mostly idle
    PATH_DRAM_EFFICIENCY = 0.65
    #: Each path launches one main einsum plus several reshape/accumulate
    #: helper kernels around it.
    KERNELS_PER_PATH = 6

    def __init__(self, cg: CGTensor, channels: int, dtype: str = "fp32", device=None):
        super().__init__(**({"device": device} if device is not None else {}))
        self.cg = cg
        self.channels = int(channels)
        self.dtype = dtype
        self._slot_offsets = np.cumsum([0] + [2 * l + 1 for l in range(cg.l_max + 1)])

    def _path_slices(self, path_index: int) -> tuple[slice, slice, slice]:
        l1, l2, l3 = self.cg.paths[path_index]
        offsets = self._slot_offsets
        return (
            slice(offsets[l1], offsets[l1] + 2 * l1 + 1),
            slice(offsets[l2], offsets[l2] + 2 * l2 + 1),
            slice(offsets[l3], offsets[l3] + 2 * l3 + 1),
        )

    def _compute(self, x: np.ndarray, y: np.ndarray, w: np.ndarray) -> np.ndarray:
        x, y, w = np.asarray(x), np.asarray(y), np.asarray(w)
        batch = x.shape[0]
        output = np.zeros((batch, self.cg.slot_dimension(), self.channels), dtype=x.dtype)
        for path_index in range(self.cg.num_paths):
            slice1, slice2, slice3 = self._path_slices(path_index)
            block = self.cg.dense[slice3, slice1, slice2, path_index]
            output[:, slice3, :] += np.einsum(
                "ijk,bju,bk,buw->biw",
                block,
                x[:, slice1, :],
                y[:, slice2],
                w[:, path_index],
                optimize=True,
            )
        return output

    def _kernels(self, x: np.ndarray, y: np.ndarray, w: np.ndarray) -> list[KernelSpec]:
        x = np.asarray(x)
        batch = x.shape[0]
        element_bytes = 2 if self.dtype == "fp16" else 4
        channels = self.channels
        kernels: list[KernelSpec] = []
        for path_index, (l1, l2, l3) in enumerate(self.cg.paths):
            dim1, dim2, dim3 = 2 * l1 + 1, 2 * l2 + 1, 2 * l3 + 1
            block_nnz = int(
                np.count_nonzero(self.cg.dense[..., path_index])
            )
            flops = 2.0 * batch * block_nnz * channels * channels
            # The main einsum kernel of the path reads its operand slices and
            # writes its output slice.
            kernels.append(
                KernelSpec(
                    name=f"e3nn_path{path_index}_einsum",
                    grid=max(1, batch // 256),
                    loads=[
                        MemoryAccess("X", batch * dim1 * channels, element_bytes),
                        MemoryAccess("Y", batch * dim2, element_bytes),
                        MemoryAccess("W", batch * channels * channels, element_bytes),
                    ],
                    stores=[MemoryAccess("Z", batch * dim3 * channels, element_bytes)],
                    flops=flops,
                    uses_tensor_core=False,
                    dtype=self.dtype,
                    compute_efficiency=self.PATH_COMPUTE_EFFICIENCY,
                    dram_efficiency=self.PATH_DRAM_EFFICIENCY,
                    description=f"path ({l1},{l2})->{l3} einsum",
                )
            )
            # Helper kernels (reshape, broadcast, accumulate into Z): mostly
            # launch overhead plus a round trip of the path's output slice.
            for step in range(self.KERNELS_PER_PATH - 1):
                kernels.append(
                    KernelSpec(
                        name=f"e3nn_path{path_index}_helper{step}",
                        grid=max(1, batch // 1024),
                        loads=[
                            MemoryAccess("Zpartial", batch * dim3 * channels, element_bytes)
                        ],
                        stores=[
                            MemoryAccess("Zpartial", batch * dim3 * channels, element_bytes)
                        ],
                        flops=0.0,
                        uses_tensor_core=False,
                        dtype=self.dtype,
                        dram_efficiency=self.PATH_DRAM_EFFICIENCY,
                        description=f"path ({l1},{l2})->{l3} helper {step}",
                    )
                )
        return kernels
