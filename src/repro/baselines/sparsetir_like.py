"""SparseTIR-style sparse compiler baseline (Table 3).

SparseTIR composes sparse formats on top of TVM and can generate good GPU
code — but only after the user supplies a long manual schedule (the paper
reports adopting an ~860-line schedule from the authors), and its format
conversion runs on the CPU, which dominates preprocessing time.  Those two
properties are reproduced here: a fixed "schedule" description stands in
for the manual effort, conversion is implemented as a deliberate pure-Python
(CPU) loop, and the generated kernel is modelled as a well-scheduled fused
Tensor Core kernel slightly below our generated kernel's efficiency.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import Baseline, BaselineResult
from repro.core.triton_sim.kernel import KernelSpec, MemoryAccess
from repro.core.triton_sim.profiler import estimate_total_time
from repro.datasets.pointclouds import KernelMap
from repro.errors import LoweringError
from repro.utils.timing import Timer


class SparseTIRCompiler(Baseline):
    """SparseTIR-like compiler: manual schedules, CPU-side format conversion."""

    name = "SparseTIR"
    lines_of_code = None
    #: Size of the manual schedule the paper had to adopt (Table 3).
    schedule_lines_of_code = 860

    SCHEDULED_COMPUTE_EFFICIENCY = 0.45
    SCHEDULED_DRAM_EFFICIENCY = 0.72

    def __init__(self, dtype: str = "fp16", device=None):
        super().__init__(**({"device": device} if device is not None else {}))
        self.dtype = dtype
        self.compile_seconds: float | None = None
        self.format_conversion_ms: float | None = None
        self._grouped: dict[int, np.ndarray] | None = None
        self._num_voxels = 0

    # -- compilation -----------------------------------------------------------------
    def compile(self) -> float:
        """Apply the (fixed) manual schedule and lower; returns elapsed seconds."""
        with Timer() as timer:
            # The schedule itself is a fixed artefact; lowering it is cheap.
            schedule = [f"sch.step_{i}()" for i in range(self.schedule_lines_of_code)]
            self._schedule = "\n".join(schedule)
        self.compile_seconds = timer.elapsed
        return timer.elapsed

    # -- format conversion ----------------------------------------------------------------
    def convert(self, kernel_map: KernelMap) -> float:
        """Bucket pairs per kernel offset with a CPU-side (pure Python) pass."""
        with Timer() as timer:
            buckets: dict[int, list[tuple[int, int]]] = {}
            for offset_index, pairs in enumerate(kernel_map.pairs):
                # Deliberately element-by-element: SparseTIR's conversion for
                # this workload runs on the host, not the GPU.
                bucket = buckets.setdefault(offset_index, [])
                for out_index, in_index in pairs.tolist():
                    bucket.append((out_index, in_index))
            self._grouped = {
                offset: np.asarray(bucket, dtype=np.int64).reshape(-1, 2)
                for offset, bucket in buckets.items()
                if bucket
            }
            self._num_voxels = kernel_map.num_voxels
        self.format_conversion_ms = timer.elapsed_ms
        return timer.elapsed_ms

    # -- execution ---------------------------------------------------------------------------
    def _compute(self, features: np.ndarray, weight: np.ndarray) -> np.ndarray:
        if self._grouped is None:
            raise LoweringError("call convert() before run()")
        features = np.asarray(features)
        weight = np.asarray(weight)
        output = np.zeros((self._num_voxels, weight.shape[2]), dtype=features.dtype)
        for offset_index, pairs in self._grouped.items():
            gathered = features[pairs[:, 1]]
            np.add.at(output, pairs[:, 0], gathered @ weight[offset_index])
        return output

    def _kernels(self, features: np.ndarray, weight: np.ndarray) -> list[KernelSpec]:
        if self._grouped is None:
            raise LoweringError("call convert() before modelling the kernel")
        weight = np.asarray(weight)
        in_channels = weight.shape[1]
        out_channels = weight.shape[2]
        total_pairs = int(sum(len(p) for p in self._grouped.values()))
        element_bytes = 2 if self.dtype == "fp16" else 4
        return [
            KernelSpec(
                name="sparsetir_fused_spconv",
                grid=max(1, total_pairs // 128),
                loads=[
                    MemoryAccess("pairs", total_pairs * 2, 4),
                    MemoryAccess(
                        "In",
                        total_pairs * in_channels,
                        element_bytes,
                        indirect=True,
                        contiguous_elements=in_channels,
                        unique_elements=self._num_voxels * in_channels,
                    ),
                    MemoryAccess(
                        "Weight",
                        len(self._grouped) * in_channels * out_channels,
                        element_bytes,
                    ),
                ],
                stores=[
                    MemoryAccess(
                        "Out",
                        total_pairs * out_channels,
                        element_bytes,
                        indirect=True,
                        atomic=True,
                    )
                ],
                flops=2.0 * total_pairs * in_channels * out_channels,
                uses_tensor_core=True,
                dtype=self.dtype,
                compute_efficiency=self.SCHEDULED_COMPUTE_EFFICIENCY,
                dram_efficiency=self.SCHEDULED_DRAM_EFFICIENCY,
                description="manually scheduled fused gather-GEMM-scatter",
            )
        ]

    def run(self, features: np.ndarray, weight: np.ndarray) -> BaselineResult:
        output = self._compute(features, weight)
        kernels = self._kernels(features, weight)
        return BaselineResult(output=output, cost=estimate_total_time(kernels, self.device))
