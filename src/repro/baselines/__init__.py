"""Algorithm-level re-implementations of the systems the paper compares against.

Each baseline keeps the structural property that, according to the paper,
drives its performance (BCSR row pointers for TorchBSR, row swizzling for
Sputnik, masked implicit GEMM vs. fetch-on-demand for TorchSparse, per-path
loops for e3nn, dense segment padding for cuEquivariance, unscheduled CPU
codegen for TACO, manual schedules and CPU-side format conversion for
SparseTIR).  Every baseline computes real numerics with NumPy/SciPy and
reports a modelled GPU runtime through the same device model used for our
generated kernels.
"""

from repro.baselines.base import Baseline, BaselineResult
from repro.baselines.dense import DenseMatmul
from repro.baselines.torch_bsr import TorchBSRSpMM
from repro.baselines.sputnik import SputnikSpMM
from repro.baselines.cusparse import CuSparseSpMM
from repro.baselines.torchsparse import TorchSparseConv
from repro.baselines.e3nn_like import E3nnTensorProduct
from repro.baselines.cuequivariance_like import CuEquivarianceTensorProduct
from repro.baselines.taco_like import TacoSparseCompiler
from repro.baselines.sparsetir_like import SparseTIRCompiler

__all__ = [
    "Baseline",
    "BaselineResult",
    "DenseMatmul",
    "TorchBSRSpMM",
    "SputnikSpMM",
    "CuSparseSpMM",
    "TorchSparseConv",
    "E3nnTensorProduct",
    "CuEquivarianceTensorProduct",
    "TacoSparseCompiler",
    "SparseTIRCompiler",
]
