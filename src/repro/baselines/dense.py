"""Dense matrix multiplication baseline (the "Dense MM" line of Figure 10)."""

from __future__ import annotations

import numpy as np

from repro.baselines.base import Baseline
from repro.core.triton_sim.kernel import KernelSpec, MemoryAccess


class DenseMatmul(Baseline):
    """cuBLAS-style dense GEMM: ignores sparsity entirely.

    The vendor library sustains a higher fraction of peak than generated
    kernels, which is why sparse kernels only win beyond a sparsity
    threshold (the crossover points discussed in Section 6.2).
    """

    name = "Dense MM"
    lines_of_code = None

    #: Fraction of peak Tensor Core throughput cuBLAS-class GEMMs sustain.
    LIBRARY_COMPUTE_EFFICIENCY = 0.90
    LIBRARY_DRAM_EFFICIENCY = 0.92

    def __init__(self, dtype: str = "fp16", device=None):
        super().__init__(**({"device": device} if device is not None else {}))
        self.dtype = dtype

    def _compute(self, lhs: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        return np.asarray(lhs) @ np.asarray(rhs)

    def _kernels(self, lhs: np.ndarray, rhs: np.ndarray) -> list[KernelSpec]:
        lhs = np.asarray(lhs)
        rhs = np.asarray(rhs)
        rows, inner = lhs.shape
        cols = rhs.shape[1]
        element_bytes = 2 if self.dtype == "fp16" else 4
        return [
            KernelSpec(
                name="cublas_gemm",
                grid=max(1, (rows // 128) * (cols // 128)),
                loads=[
                    MemoryAccess("A", rows * inner, element_bytes),
                    MemoryAccess("B", inner * cols, element_bytes),
                ],
                stores=[MemoryAccess("C", rows * cols, element_bytes)],
                flops=2.0 * rows * inner * cols,
                uses_tensor_core=True,
                dtype=self.dtype,
                compute_efficiency=self.LIBRARY_COMPUTE_EFFICIENCY,
                dram_efficiency=self.LIBRARY_DRAM_EFFICIENCY,
                description="dense GEMM (vendor library)",
            )
        ]
