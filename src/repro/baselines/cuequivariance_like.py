"""cuEquivariance-style tensor product baseline (Table 2).

NVIDIA's cuEquivariance executes the tensor product as fused "segmented
polynomial" kernels: a single launch covers all paths, using Tensor Cores
over the channel dimensions.  The trade-off the paper's Table 2 exposes is
that the segments are processed densely — the kernel does not skip the
zeros *inside* each Clebsch–Gordan block — so as ``l_max`` (and with it the
CG tensor's internal sparsity) and the channel count grow, the issued work
grows much faster than the useful work and the library falls behind even
e3nn.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import Baseline
from repro.core.triton_sim.kernel import KernelSpec, MemoryAccess
from repro.datasets.clebsch_gordan import CGTensor


class CuEquivarianceTensorProduct(Baseline):
    """Fused segmented tensor product processing CG segments densely."""

    name = "cuequivariance"
    lines_of_code = None

    FUSED_COMPUTE_EFFICIENCY = 0.50
    FUSED_DRAM_EFFICIENCY = 0.80

    def __init__(self, cg: CGTensor, channels: int, dtype: str = "fp32", device=None):
        super().__init__(**({"device": device} if device is not None else {}))
        self.cg = cg
        self.channels = int(channels)
        self.dtype = dtype

    def _compute(self, x: np.ndarray, y: np.ndarray, w: np.ndarray) -> np.ndarray:
        # Numerically identical to the reference contraction; the difference
        # against e3nn / Insum is purely in the execution strategy.
        return np.einsum(
            "ijkl,bju,bk,bluw->biw", self.cg.dense, np.asarray(x), np.asarray(y), np.asarray(w),
            optimize=True,
        )

    def _kernels(self, x: np.ndarray, y: np.ndarray, w: np.ndarray) -> list[KernelSpec]:
        x = np.asarray(x)
        batch = x.shape[0]
        channels = self.channels
        element_bytes = 2 if self.dtype == "fp16" else 4
        slots = self.cg.slot_dimension()
        paths = self.cg.num_paths

        # Dense, uniformly padded segment processing: every segment is padded
        # to the largest (2*l_max+1)^3 block and every element of it is
        # multiplied, zero or not, on CUDA cores (the segmented kernel keeps
        # the irregular indexing scalar rather than feeding Tensor Cores).
        padded_segment = (2 * self.cg.l_max + 1) ** 3
        dense_cg_elements = paths * padded_segment
        flops = 2.0 * batch * dense_cg_elements * channels * channels

        return [
            KernelSpec(
                name="cuequivariance_segmented_tp",
                grid=max(1, batch // 32),
                loads=[
                    MemoryAccess("CG", dense_cg_elements, element_bytes),
                    MemoryAccess("X", batch * slots * channels, element_bytes),
                    MemoryAccess("Y", batch * slots, element_bytes),
                    MemoryAccess("W", batch * paths * channels * channels, element_bytes),
                ],
                stores=[MemoryAccess("Z", batch * slots * channels, element_bytes)],
                flops=flops,
                uses_tensor_core=False,
                dtype=self.dtype,
                compute_efficiency=self.FUSED_COMPUTE_EFFICIENCY,
                dram_efficiency=self.FUSED_DRAM_EFFICIENCY,
                description="fused segmented tensor product (padded dense segments)",
            )
        ]
