"""TorchBSR-style block-sparse SpMM baseline (Figure 10, Table 1).

TorchBSR is a hand-written Triton kernel operating on the BCSR format.
Its defining structural property, which the paper's Figure 10 analysis
hinges on, is the CSR-style row-pointer array over *block rows*: every
block row — including completely empty ones — is visited and its slice of
the output is produced, so the kernel's traffic has an ``O(M x N)``
component that does not shrink as the matrix gets sparser.  The COO-based
BlockGroupCOO format only touches occupied block rows, which is why it
pulls ahead in the hypersparse regime.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import Baseline
from repro.core.triton_sim.kernel import KernelSpec, MemoryAccess
from repro.formats.bcsr import BCSR


class TorchBSRSpMM(Baseline):
    """Hand-written Triton BSR SpMM (the PyTorch 2.1 ``bsr_dense_mm`` kernel)."""

    name = "TorchBSR"
    lines_of_code = 202

    #: The TorchBSR Triton template was tuned for moderate block sparsity; its
    #: sustained Tensor Core utilisation sits well below vendor GEMMs, which
    #: is why its crossover against dense matmul only happens around 40 %
    #: sparsity in Figure 10.
    HANDWRITTEN_COMPUTE_EFFICIENCY = 0.55
    HANDWRITTEN_DRAM_EFFICIENCY = 0.85

    def __init__(self, matrix, block_shape: tuple[int, int] = (32, 32), dtype: str = "fp16",
                 device=None):
        super().__init__(**({"device": device} if device is not None else {}))
        self.dtype = dtype
        if isinstance(matrix, BCSR):
            self.format = matrix
        else:
            self.format = BCSR.from_dense(np.asarray(matrix), block_shape)

    # -- numerics ---------------------------------------------------------------
    def _compute(self, dense: np.ndarray) -> np.ndarray:
        dense = np.asarray(dense)
        fmt = self.format
        block_rows_size, block_cols_size = fmt.block_shape
        out = np.zeros((fmt.shape[0], dense.shape[1]), dtype=np.result_type(fmt.values, dense))
        for block_row in range(fmt.num_block_rows):
            start, end = int(fmt.indptr[block_row]), int(fmt.indptr[block_row + 1])
            if start == end:
                continue
            row = block_row * block_rows_size
            acc = np.zeros((block_rows_size, dense.shape[1]), dtype=out.dtype)
            for slot in range(start, end):
                col = int(fmt.indices[slot]) * block_cols_size
                acc += fmt.values[slot] @ dense[col : col + block_cols_size]
            out[row : row + block_rows_size] = acc
        return out

    # -- cost model ---------------------------------------------------------------
    def _kernels(self, dense: np.ndarray) -> list[KernelSpec]:
        dense = np.asarray(dense)
        fmt = self.format
        block_rows_size, block_cols_size = fmt.block_shape
        num_cols = dense.shape[1]
        element_bytes = 2 if self.dtype == "fp16" else 4
        num_blocks = fmt.num_blocks
        block_rows = fmt.num_block_rows

        loads = [
            # Row pointers and block column indices are read by every block-row program.
            MemoryAccess("indptr", block_rows + 1, 4),
            MemoryAccess("indices", num_blocks, 4),
            MemoryAccess("values", num_blocks * block_rows_size * block_cols_size, element_bytes),
            # Each nonzero block gathers a (block_cols x N) stripe of B;
            # stripes for the same block column are reused out of cache.
            MemoryAccess(
                "B",
                num_blocks * block_cols_size * num_cols,
                element_bytes,
                indirect=True,
                contiguous_elements=block_cols_size * num_cols,
                unique_elements=dense.size,
            ),
        ]
        stores = [
            # Every block row owns and writes its full output stripe, even if
            # it holds no blocks — the O(M x N) row-pointer overhead.
            MemoryAccess("C", fmt.shape[0] * num_cols, element_bytes)
        ]
        flops = 2.0 * num_blocks * block_rows_size * block_cols_size * num_cols
        return [
            KernelSpec(
                name="torchbsr_bsr_dense_mm",
                grid=max(1, block_rows * max(1, num_cols // 64)),
                loads=loads,
                stores=stores,
                flops=flops,
                uses_tensor_core=True,
                dtype=self.dtype,
                compute_efficiency=self.HANDWRITTEN_COMPUTE_EFFICIENCY,
                dram_efficiency=self.HANDWRITTEN_DRAM_EFFICIENCY,
                description="BCSR block-row SpMM (hand-written Triton template)",
            )
        ]
