"""ServeConfig: one typed configuration for every serving backend.

Before the serve tier, each backend grew its own kwarg set —
``InsumServer(num_workers=, coalesce=, ...)``,
``ClusterServer(num_workers=, worker_threads=, max_inflight=, ...)`` —
with near-identical-but-divergent names and no cross-checking.
``ServeConfig`` consolidates them into one frozen dataclass with
per-backend validation: a field that is meaningless for the chosen
backend (``max_inflight`` on a threaded session, ``coalesce`` on an
inline one) raises :class:`ServeConfigError` instead of being silently
ignored.

Tier-specific fields default to ``None`` meaning "the backend's own
default"; only explicitly-set fields are validated and forwarded.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass
from typing import Any, Mapping

from repro.errors import ServeError

#: The recognised backend names, in escalation order.
BACKENDS = ("inline", "threaded", "cluster")

#: Fields meaningful on every backend (never rejected).
_COMMON_FIELDS = frozenset(
    {"compile_backend", "compile_config", "check_bounds", "auto_format", "tune"}
)

#: Tier-specific fields -> the backends they are meaningful on.
_FIELD_BACKENDS: dict[str, frozenset[str]] = {
    "workers": frozenset({"threaded", "cluster"}),
    "num_shards": frozenset({"inline", "threaded"}),
    "coalesce": frozenset({"threaded", "cluster"}),
    "coalesce_max": frozenset({"threaded", "cluster"}),
    "worker_threads": frozenset({"cluster"}),
    "admission": frozenset({"cluster"}),
    "max_inflight": frozenset({"cluster"}),
    "block_timeout": frozenset({"cluster"}),
    "max_attempts": frozenset({"cluster"}),
    "ring_capacity": frozenset({"cluster"}),
    "batch_window": frozenset({"cluster"}),
    "spill_threshold": frozenset({"cluster"}),
    "health_interval": frozenset({"cluster"}),
    "heartbeat_timeout": frozenset({"cluster"}),
    "start_method": frozenset({"cluster"}),
    "retry_attempts": frozenset({"cluster"}),
    "retry_base_delay": frozenset({"cluster"}),
    "retry_max_delay": frozenset({"cluster"}),
    "restart_budget": frozenset({"cluster"}),
    "restart_window": frozenset({"cluster"}),
    "failover": frozenset({"cluster"}),
    "failover_floor": frozenset({"cluster"}),
}

#: Environment-variable prefix understood by :meth:`ServeConfig.from_env`.
ENV_PREFIX = "REPRO_SERVE_"


class ServeConfigError(ServeError, ValueError):
    """A :class:`ServeConfig` is invalid for the requested backend."""


def _parse_env_value(name: str, raw: str) -> Any:
    """Parse one ``REPRO_SERVE_*`` value by the target field's type."""
    field_types = {
        "workers": int,
        "worker_threads": int,
        "num_shards": int,
        "coalesce": bool,
        "coalesce_max": int,
        "auto_format": bool,
        "check_bounds": bool,
        "max_inflight": int,
        "block_timeout": float,
        "max_attempts": int,
        "ring_capacity": int,
        "batch_window": int,
        "spill_threshold": int,
        "health_interval": float,
        "heartbeat_timeout": float,
        "retry_attempts": int,
        "retry_base_delay": float,
        "retry_max_delay": float,
        "restart_budget": int,
        "restart_window": float,
        "failover_floor": int,
    }
    kind = field_types.get(name, str)
    try:
        if kind is bool:
            lowered = raw.strip().lower()
            if lowered in ("1", "true", "yes", "on"):
                return True
            if lowered in ("0", "false", "no", "off"):
                return False
            raise ValueError(f"not a boolean: {raw!r}")
        return kind(raw)
    except ValueError as error:
        raise ServeConfigError(f"{ENV_PREFIX}{name.upper()}={raw!r}: {error}") from None


@dataclass(frozen=True)
class ServeConfig:
    """Typed, validated configuration for :class:`repro.serve.Session`.

    Parameters
    ----------
    workers:
        Worker parallelism of the tier: threads for ``threaded``,
        processes for ``cluster`` (defaults: 4 / 2).  Meaningless — and
        rejected — for ``inline``, which executes in the calling thread.
    worker_threads:
        Cluster only: threads of each worker process's inner server.
    num_shards:
        Inline/threaded: when > 1, shardable requests row-partition onto
        a thread pool (see :class:`~repro.runtime.sharding.ShardedExecutor`).
    compile_backend / compile_config / check_bounds:
        The compiler stack under every operator (any backend).
    auto_format / tune:
        Tuner-driven per-request re-formatting (any backend).
    coalesce / coalesce_max:
        Same-plan request coalescing (threaded and cluster — inline has
        no queue to drain a window from).
    admission / max_inflight / block_timeout:
        Cluster admission control (``"block"`` or ``"reject"``).
    max_attempts:
        Cluster: dispatch attempts across worker crashes before a request
        fails with :class:`~repro.errors.WorkerCrashedError`.
    ring_capacity:
        Cluster: bytes per shared-memory transport ring.
    batch_window / spill_threshold / health_interval / heartbeat_timeout / start_method:
        Cluster tuning knobs, forwarded verbatim to
        :class:`~repro.cluster.server.ClusterServer`; ``heartbeat_timeout=0``
        disables the staleness check (the cluster's ``None``).
    retry_attempts / retry_base_delay / retry_max_delay:
        Cluster: session-level :class:`~repro.resilience.RetryPolicy` for
        retryable failures (worker crashes, admission rejection);
        ``retry_attempts=1`` disables retries (the default).
    restart_budget / restart_window:
        Cluster: the :class:`~repro.resilience.WorkerSupervisor` token
        bucket — at most ``restart_budget`` restarts per worker slot per
        ``restart_window`` seconds; an exhausted slot is permanently dead.
    failover / failover_floor:
        Cluster: keep a warm in-process fallback backend (``"inline"`` or
        ``"threaded"``) and route new submits to it while fewer than
        ``failover_floor`` workers are healthy or the cluster's control
        plane has failed (see ``docs/RESILIENCE.md``).
    """

    workers: int | None = None
    worker_threads: int | None = None
    num_shards: int | None = None
    compile_backend: str = "inductor"
    compile_config: Any = None
    check_bounds: bool = True
    auto_format: bool = False
    tune: str = "auto"
    coalesce: bool | None = None
    coalesce_max: int | None = None
    admission: str | None = None
    max_inflight: int | None = None
    block_timeout: float | None = None
    max_attempts: int | None = None
    ring_capacity: int | None = None
    batch_window: int | None = None
    spill_threshold: int | None = None
    health_interval: float | None = None
    heartbeat_timeout: float | None = None
    start_method: str | None = None
    retry_attempts: int | None = None
    retry_base_delay: float | None = None
    retry_max_delay: float | None = None
    restart_budget: int | None = None
    restart_window: float | None = None
    failover: str | None = None
    failover_floor: int | None = None

    def validate(self, backend: str) -> None:
        """Reject this config when it is meaningless for ``backend``.

        Parameters
        ----------
        backend:
            One of ``"inline"``, ``"threaded"``, ``"cluster"``.

        Raises
        ------
        ServeConfigError
            For an unknown backend, or when any explicitly-set field does
            not apply to it (every offending field is named in the
            message — nothing is silently ignored).
        """
        if backend not in BACKENDS:
            raise ServeConfigError(
                f"unknown backend {backend!r}; expected one of {', '.join(BACKENDS)}"
            )
        offending = [
            name
            for name, allowed in _FIELD_BACKENDS.items()
            if getattr(self, name) is not None and backend not in allowed
        ]
        if offending:
            details = ", ".join(
                f"{name} (only meaningful on {'/'.join(sorted(_FIELD_BACKENDS[name]))})"
                for name in offending
            )
            raise ServeConfigError(
                f"ServeConfig fields not applicable to the {backend!r} backend: {details}"
            )
        if self.workers is not None and self.workers < 1:
            raise ServeConfigError(f"workers must be >= 1, got {self.workers}")
        if self.admission is not None and self.admission not in ("block", "reject"):
            raise ServeConfigError(
                f"admission must be 'block' or 'reject', got {self.admission!r}"
            )
        if self.tune not in ("auto", "model", "measure"):
            raise ServeConfigError(
                f"tune must be 'auto', 'model', or 'measure', got {self.tune!r}"
            )
        if self.retry_attempts is not None and self.retry_attempts < 1:
            raise ServeConfigError(
                f"retry_attempts must be >= 1, got {self.retry_attempts}"
            )
        if self.restart_budget is not None and self.restart_budget < 0:
            raise ServeConfigError(
                f"restart_budget must be >= 0, got {self.restart_budget}"
            )
        if self.restart_window is not None and self.restart_window <= 0:
            raise ServeConfigError(
                f"restart_window must be > 0, got {self.restart_window}"
            )
        if self.failover is not None and self.failover not in ("inline", "threaded"):
            raise ServeConfigError(
                f"failover must be 'inline' or 'threaded', got {self.failover!r}"
            )
        if self.failover_floor is not None and self.failover_floor < 1:
            raise ServeConfigError(
                f"failover_floor must be >= 1, got {self.failover_floor}"
            )

    @classmethod
    def from_env(cls, environ: Mapping[str, str] | None = None) -> "ServeConfig":
        """Build a config from ``REPRO_SERVE_*`` environment variables.

        Each dataclass field maps to ``REPRO_SERVE_<FIELD>`` (upper-case):
        ``REPRO_SERVE_WORKERS=8``, ``REPRO_SERVE_COALESCE=off``,
        ``REPRO_SERVE_MAX_INFLIGHT=256``, ...  Unset variables leave the
        field at its default; values are parsed by the field's type
        (booleans accept 1/0, true/false, yes/no, on/off).

        Parameters
        ----------
        environ:
            The mapping to read (defaults to ``os.environ``).
        """
        environ = os.environ if environ is None else environ
        overrides: dict[str, Any] = {}
        for field in dataclasses.fields(cls):
            if field.name == "compile_config":
                continue  # not expressible as an environment string
            raw = environ.get(f"{ENV_PREFIX}{field.name.upper()}")
            if raw is not None:
                overrides[field.name] = _parse_env_value(field.name, raw)
        return cls(**overrides)

    # -- kwarg resolution (serve-internal) ----------------------------------
    def _common_kwargs(self) -> dict[str, Any]:
        return dict(
            backend=self.compile_backend,
            config=self.compile_config,
            check_bounds=self.check_bounds,
            auto_format=self.auto_format,
            tune=self.tune,
        )

    def _inline_kwargs(self) -> dict[str, Any]:
        """Constructor kwargs for the inline backend's RequestExecutor."""
        kwargs = self._common_kwargs()
        if self.num_shards is not None:
            kwargs["num_shards"] = self.num_shards
        return kwargs

    def _threaded_kwargs(self) -> dict[str, Any]:
        """Constructor kwargs for :class:`~repro.runtime.server.InsumServer`."""
        kwargs = self._common_kwargs()
        for field_name, kwarg in (
            ("workers", "num_workers"),
            ("num_shards", "num_shards"),
            ("coalesce", "coalesce"),
            ("coalesce_max", "coalesce_max"),
        ):
            value = getattr(self, field_name)
            if value is not None:
                kwargs[kwarg] = value
        return kwargs

    def _cluster_kwargs(self) -> dict[str, Any]:
        """Constructor kwargs for :class:`~repro.cluster.server.ClusterServer`."""
        kwargs = self._common_kwargs()
        for field_name, kwarg in (
            ("workers", "num_workers"),
            ("worker_threads", "worker_threads"),
            ("coalesce", "coalesce"),
            ("coalesce_max", "coalesce_max"),
            ("admission", "admission"),
            ("max_inflight", "max_inflight"),
            ("block_timeout", "block_timeout"),
            ("max_attempts", "max_attempts"),
            ("ring_capacity", "ring_capacity"),
            ("batch_window", "batch_window"),
            ("spill_threshold", "spill_threshold"),
            ("health_interval", "health_interval"),
            ("start_method", "start_method"),
            ("restart_budget", "restart_budget"),
            ("restart_window", "restart_window"),
        ):
            value = getattr(self, field_name)
            if value is not None:
                kwargs[kwarg] = value
        if self.heartbeat_timeout is not None:
            # 0 = "disable the staleness check", the cluster's None.
            kwargs["heartbeat_timeout"] = (
                None if self.heartbeat_timeout == 0 else self.heartbeat_timeout
            )
        return kwargs

    def resolved_workers(self, backend: str) -> int:
        """The effective worker parallelism for ``backend``.

        Parameters
        ----------
        backend:
            The session backend name this config will drive.
        """
        if backend == "inline":
            return 1
        if self.workers is not None:
            return self.workers
        return 4 if backend == "threaded" else 2
