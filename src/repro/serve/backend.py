"""ExecutorBackend: the protocol every serving tier speaks, plus inline.

The serve tier's refactoring move: :class:`~repro.runtime.server.InsumServer`
(threaded) and :class:`~repro.cluster.server.ClusterServer`
(multi-process) both implement this one structural protocol, and
:class:`InlineBackend` here adds the zero-infrastructure variant that
executes in the calling thread — so :class:`repro.serve.Session` drives
all three through identical plumbing.  All backends execute requests
through the shared :class:`~repro.runtime.server.RequestExecutor` code
path, which is what makes one workload's results bit-identical across
them.
"""

from __future__ import annotations

import itertools
import time
from typing import Any, Callable, Protocol, runtime_checkable

from repro.obs import trace as obs_trace
from repro.resilience import deadline as resilience_deadline
from repro.resilience.deadline import expired_result
from repro.runtime.server import InsumResult, RequestExecutor
from repro.runtime.stats import RuntimeStats, ServingWindow
from repro.serve.config import ServeConfig

ResultSink = Callable[[InsumResult], None]


@runtime_checkable
class ExecutorBackend(Protocol):
    """The structural contract between :class:`Session` and a serving tier.

    ``InsumServer``, ``ClusterServer``, and :class:`InlineBackend` all
    satisfy it; a custom tier only has to match these six methods to sit
    behind a session.
    """

    def enqueue(self, expression: str, **operands: Any) -> int:
        """Accept one request for execution and return its ticket."""
        ...

    def try_cancel(self, request_id: int) -> bool:
        """Withdraw a not-yet-dispatched ticket; False once it is running."""
        ...

    def set_result_sink(self, sink: ResultSink) -> None:
        """Push terminal results into ``sink`` instead of storing them."""
        ...

    def stats(self) -> Any:
        """The tier's raw report (normalized by the session into ServeStats)."""
        ...

    def reset_stats(self) -> None:
        """Start a fresh measurement window."""
        ...

    def close(self) -> None:
        """Drain outstanding work and release the tier's resources."""
        ...


class InlineBackend:
    """Synchronous in-thread execution behind the backend protocol.

    ``enqueue`` runs the request immediately in the calling thread
    through the shared :class:`~repro.runtime.server.RequestExecutor` —
    no queue, no worker threads, no coalescing — and delivers the result
    before returning.  The zero-concurrency baseline: debugging,
    determinism-sensitive comparisons, and tests use it to pin down what
    the concurrent tiers must reproduce bit-for-bit.
    """

    name = "inline"

    def __init__(self, **executor_kwargs: Any):
        self._executor = RequestExecutor(**executor_kwargs)
        self._ids = itertools.count()
        self._sink: ResultSink | None = None
        self._results: dict[int, InsumResult] = {}
        self._window = ServingWindow(tier="inline")
        self._closed = False

    def enqueue(self, expression: str, **operands: Any) -> int:
        """Execute one request now; its result is delivered before return."""
        from repro.errors import DeadlineExceededError, SessionClosedError

        if self._closed:
            raise SessionClosedError("inline backend is closed")
        trace = obs_trace.take_pending() or obs_trace.maybe_start()
        deadline = resilience_deadline.take_pending()
        if deadline is not None and deadline.expired():
            # Inline has no queue to linger in: expiry can only happen
            # before execution starts or while it runs (converted below).
            raise DeadlineExceededError(
                "request exceeded its deadline before execution"
            )
        request_id = next(self._ids)
        if trace is not None:
            trace.stamp("exec.start")
        started = time.perf_counter()
        self._window.open_at(started)
        result = InsumResult(request_id=request_id, expression=expression, trace=trace)
        try:
            result.output = self._executor.execute(expression, operands)
        except Exception as error:  # noqa: BLE001 — delivered through the result
            result.error = error
        finished = time.perf_counter()
        result.latency_ms = (finished - started) * 1e3
        expired_result(result, deadline)
        if trace is not None:
            trace.stamp("exec.end")
            trace.span_between("queue.wait", "submit", "exec.start")
            trace.span_between("execute", "exec.start", "exec.end", coalesced=False)
            obs_trace.maybe_log_trace(trace)
        self._window.observe(result.ok, result.latency_ms, finished)
        if self._sink is not None:
            self._sink(result)
        else:
            self._results[request_id] = result
        return request_id

    def try_cancel(self, request_id: int) -> bool:
        """Always False: inline work completes during ``enqueue``."""
        return False

    def set_result_sink(self, sink: ResultSink) -> None:
        """Deliver results into ``sink`` (synchronously, from ``enqueue``)."""
        self._sink = sink

    def collect(self, request_ids: list[int] | None = None) -> list[InsumResult]:
        """Pop stored results by ticket (sink-less direct use only)."""
        if request_ids is None:
            request_ids = sorted(self._results)
        return [self._results.pop(request_id) for request_id in request_ids]

    def stats(self) -> RuntimeStats:
        """Throughput, latency percentiles, and cache hit rate so far."""
        return self._window.snapshot()

    def reset_stats(self) -> None:
        """Start a fresh measurement window (counters, latencies, cache mark)."""
        self._window.reset()

    def health(self) -> dict[str, Any]:
        """Liveness report for ``/healthz`` (inline: the caller's thread)."""
        return {
            "status": "closed" if self._closed else "ok",
            "backend": "inline",
            "workers": [],
        }

    def close(self) -> None:
        """Release the executor (and its sharded thread pool, if any)."""
        self._closed = True
        self._executor.close()


def build_backend(name: str, config: ServeConfig) -> ExecutorBackend:
    """Construct the named tier from a validated :class:`ServeConfig`.

    Parameters
    ----------
    name:
        ``"inline"``, ``"threaded"``, or ``"cluster"``.
    config:
        Already validated for ``name`` (see :meth:`ServeConfig.validate`).
    """
    if name == "inline":
        return InlineBackend(**config._inline_kwargs())
    if name == "threaded":
        from repro.runtime.server import InsumServer

        return InsumServer(**config._threaded_kwargs())
    from repro.cluster.server import ClusterServer

    return ClusterServer(**config._cluster_kwargs())
