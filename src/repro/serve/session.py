"""Session: the one front door over inline, threaded, and cluster serving.

The paper's pitch is that one surface (the indirect Einsum) subsumes a
zoo of hand-written kernels; the serving story makes the same move.
Instead of three divergent entry points — ``insum()`` one-shots,
``InsumServer`` tickets, ``ClusterServer`` tickets-with-admission — a
:class:`Session` is constructed with a backend *name* and a typed
:class:`~repro.serve.config.ServeConfig`, and every call site reads the
same afterwards::

    from repro.serve import ServeConfig, Session

    with Session(backend="threaded", config=ServeConfig(workers=8)) as session:
        future = session.submit("C[m,n] += A[m,k] * B[k,n]", A=fmt, B=dense)
        C = future.result(timeout=5.0)

Futures replace tickets: worker-side errors, admission rejections
(:class:`~repro.errors.ClusterBusyError`), and crash give-ups
(:class:`~repro.errors.WorkerCrashedError`) all surface at
:meth:`Future.result`, uniformly across backends.  The asyncio bridge
(:meth:`Session.asubmit`, :meth:`Session.amap_batches`) lets the cluster
tier sit directly behind an async HTTP frontend without blocking the
event loop.
"""

from __future__ import annotations

import asyncio
import functools
import os
import threading
from collections import deque
from typing import Any, AsyncIterator, Iterable, Iterator

import numpy as np

from repro.cluster.stats import ClusterStats
from repro.errors import ServeError, SessionClosedError
from repro.obs import trace as obs_trace
from repro.obs.logs import get_logger
from repro.obs.metrics import get_registry
from repro.obs.ops import OPS_PORT_ENV, OpsServer
from repro.resilience import deadline as resilience_deadline
from repro.resilience.deadline import Deadline
from repro.resilience.failover import fallback_config
from repro.resilience.retry import RetryPolicy
from repro.runtime.server import InsumResult
from repro.serve.backend import ExecutorBackend, build_backend
from repro.serve.config import ServeConfig
from repro.serve.future import Future
from repro.serve.stats import ServeStats

#: Environment variable selecting the backend for :meth:`Session.from_env`.
BACKEND_ENV = "REPRO_SERVE_BACKEND"


class _RetryState:
    """Per-future resubmission bookkeeping for the session retry policy.

    Holds everything a retry attempt needs to re-enqueue the request —
    the original expression/operands (safe to replay because
    :class:`~repro.runtime.server.RequestExecutor` is pure) plus the
    attempt counter and the previous backoff delay feeding the
    decorrelated-jitter schedule.
    """

    __slots__ = ("expression", "operands", "deadline", "attempts", "prev_delay")

    def __init__(
        self,
        expression: str,
        operands: dict[str, Any],
        deadline: Deadline | None,
    ):
        self.expression = expression
        self.operands = operands
        self.deadline = deadline
        self.attempts = 0
        self.prev_delay: float | None = None


class Session:
    """One serving session over a chosen execution backend.

    Parameters
    ----------
    backend:
        ``"inline"`` (execute in the calling thread), ``"threaded"``
        (an :class:`~repro.runtime.server.InsumServer` thread pool), or
        ``"cluster"`` (a multi-process
        :class:`~repro.cluster.server.ClusterServer`).
    config:
        A :class:`~repro.serve.config.ServeConfig`; validated against the
        backend, so tier-meaningless fields raise
        :class:`~repro.serve.config.ServeConfigError` instead of being
        ignored.  ``None`` means all defaults.

    Used as a context manager, the session drains outstanding work and
    closes the underlying tier on exit.
    """

    def __init__(self, backend: str = "inline", config: ServeConfig | None = None):
        config = config if config is not None else ServeConfig()
        config.validate(backend)
        self.config = config
        self._backend_name = backend
        self._lock = threading.Lock()
        #: Futures keyed by ``(backend_tag, ticket)`` — the primary and
        #: fallback backends number tickets independently from zero, so
        #: the tag is part of the identity.
        self._futures: dict[tuple[str, int], Future] = {}
        #: Results that arrived before their ticket was mapped (the inline
        #: backend always resolves inside ``enqueue``, and a fast worker
        #: can beat the mapping too).
        self._early: dict[tuple[str, int], InsumResult] = {}
        self._closed = False
        self._ops: OpsServer | None = None
        self._gateway: Any = None
        self._log = get_logger("serve.session")
        self._backend: ExecutorBackend = build_backend(backend, config)
        self._backend.set_result_sink(functools.partial(self._on_result, "primary"))
        # -- resilience: retry policy (cluster only; attempts=1 disables) --
        self._retry: RetryPolicy | None = None
        if config.retry_attempts is not None and config.retry_attempts > 1:
            retry_kwargs: dict[str, Any] = {"max_attempts": config.retry_attempts}
            if config.retry_base_delay is not None:
                retry_kwargs["base_delay"] = config.retry_base_delay
            if config.retry_max_delay is not None:
                retry_kwargs["max_delay"] = config.retry_max_delay
            self._retry = RetryPolicy(**retry_kwargs)
        self._retry_states: dict[Future, _RetryState] = {}
        #: Armed resubmission timers -> (future, last failed result); close()
        #: claims entries to cancel the timer and deliver the stored error.
        self._pending_retries: dict[threading.Timer, tuple[Future, InsumResult]] = {}
        # -- resilience: warm failover backend --
        self._fallback: ExecutorBackend | None = None
        self._failover_floor = 1
        if config.failover is not None:
            self._fallback = build_backend(
                config.failover, fallback_config(config, config.failover)
            )
            self._fallback.set_result_sink(
                functools.partial(self._on_result, "fallback")
            )
            if config.failover_floor is not None:
                self._failover_floor = config.failover_floor
        registry = get_registry()
        self._m_retries = registry.counter(
            "repro_retries_total",
            "Resubmissions scheduled by the session-level retry policy.",
            backend=backend,
        )
        self._m_failover = registry.counter(
            "repro_failover_submits_total",
            "Submits routed to the warm fallback backend while the primary was unhealthy.",
            backend=backend,
        )
        port_env = os.environ.get(OPS_PORT_ENV, "").strip()
        if port_env:
            try:
                self.serve_ops(port=int(port_env))
            except Exception as error:  # noqa: BLE001 — ops is best-effort, never fatal
                self._log.warning(
                    "could not start ops endpoint",
                    extra={"port": port_env, "error": repr(error)},
                )

    @classmethod
    def from_env(cls, environ: Any = None) -> "Session":
        """Build a session from ``REPRO_SERVE_*`` environment variables.

        ``REPRO_SERVE_BACKEND`` picks the tier (default ``inline``); the
        remaining variables populate :meth:`ServeConfig.from_env` — so a
        deployment switches from one process to a cluster without a code
        change.  When ``REPRO_GATEWAY_PORT`` is also set, the session
        starts an HTTP gateway configured from the ``REPRO_GATEWAY_*``
        variables (see :meth:`serve_gateway`); a gateway that fails to
        start closes the session and re-raises — a deployment that asked
        for a network edge must not silently run without one.

        Parameters
        ----------
        environ:
            The mapping to read (defaults to ``os.environ``).
        """
        import os

        environ = os.environ if environ is None else environ
        backend = environ.get(BACKEND_ENV, "inline")
        session = cls(backend=backend, config=ServeConfig.from_env(environ))
        from repro.gateway.config import GATEWAY_PORT_ENV, GatewayConfig

        if environ.get(GATEWAY_PORT_ENV, "").strip():
            try:
                session.serve_gateway(config=GatewayConfig.from_env(environ))
            except Exception:
                session.close()
                raise
        return session

    @property
    def backend_name(self) -> str:
        """The active backend: ``"inline"``, ``"threaded"``, or ``"cluster"``."""
        return self._backend_name

    # -- submission ---------------------------------------------------------
    def submit(
        self, expression: str, *, deadline_ms: float | None = None, **operands: Any
    ) -> Future:
        """Submit one request; returns its :class:`Future` immediately.

        Parameters
        ----------
        expression:
            The Einsum to execute — raw indirect, or format-agnostic with
            a sparse operand bound.
        deadline_ms:
            Optional per-request deadline, in milliseconds from now.  The
            deadline travels with the request through every stage —
            admission wait, dispatch queue, even into cluster worker
            processes — and an expired request resolves its future with
            :class:`~repro.errors.DeadlineExceededError` instead of
            executing.  (``deadline_ms`` is reserved; an operand cannot
            use that name.)
        **operands:
            Operand tensors by name (:class:`numpy.ndarray` and/or
            :class:`~repro.formats.base.SparseFormat` instances).

        Serving-tier failures (e.g. a cluster admission rejection) do not
        raise here: they resolve the returned future, so error handling
        lives in one place — :meth:`Future.result` — on every backend.
        When the config sets ``retry_attempts > 1``, retryable failures
        (worker crashes, admission rejections) are transparently
        resubmitted with backoff before the future resolves; when it sets
        ``failover``, new submits route to the warm fallback backend
        while the cluster is below its healthy-worker floor.

        Raises
        ------
        SessionClosedError
            When the session has been closed (a programming error, not a
            serving outcome).
        """
        if self._closed:
            raise SessionClosedError("Session is closed")
        future = Future(self)
        deadline = None if deadline_ms is None else Deadline.after_ms(deadline_ms)
        state = None
        if self._retry is not None:
            state = _RetryState(expression, dict(operands), deadline)
            with self._lock:
                self._retry_states[future] = state
        self._submit_attempt(future, expression, operands, deadline, state, initial=True)
        return future

    def _submit_attempt(
        self,
        future: Future,
        expression: str,
        operands: dict[str, Any],
        deadline: Deadline | None,
        state: _RetryState | None,
        initial: bool,
    ) -> None:
        """Run one enqueue attempt for ``future`` (initial or retry)."""
        tag = "fallback" if self._use_fallback() else "primary"
        backend = self._fallback if tag == "fallback" else self._backend
        assert backend is not None
        if tag == "fallback":
            self._m_failover.inc()
        if state is not None:
            state.attempts += 1
        trace = obs_trace.maybe_start()
        if trace is not None:
            # Parked thread-locally for the backend's enqueue (same
            # thread) to claim; cleared below if enqueue never did.
            trace.stamp("submit")
            if state is not None and state.attempts > 1:
                trace.stamp(f"retry.{state.attempts}")
            obs_trace.push_pending(trace)
        if deadline is not None:
            resilience_deadline.push_pending(deadline)
        try:
            ticket = backend.enqueue(expression, **operands)
        except SessionClosedError as error:
            obs_trace.take_pending()
            resilience_deadline.take_pending()
            if initial:
                with self._lock:
                    self._retry_states.pop(future, None)
                raise
            self._resolve_attempt(
                future, state, InsumResult(request_id=-1, expression="", error=error)
            )
            return
        except ServeError as error:
            obs_trace.take_pending()
            resilience_deadline.take_pending()
            self._resolve_attempt(
                future, state, InsumResult(request_id=-1, expression="", error=error)
            )
            return
        future._ticket = ticket
        future._backend_tag = tag
        key = (tag, ticket)
        with self._lock:
            early = self._early.pop(key, None)
            if early is None:
                self._futures[key] = future
        if early is not None:
            self._resolve_attempt(future, state, early)

    def submit_many(self, requests: Iterable[tuple[str, dict[str, Any]]]) -> list[Future]:
        """Submit ``(expression, operands)`` pairs; one future per request.

        Never raises mid-iteration: a request the tier rejects (admission
        over capacity, say) yields a future that fails with that error,
        while every other request proceeds — the atomicity hazard of the
        legacy ``submit_many`` (tickets lost on a mid-batch rejection)
        cannot occur.
        """
        return [self.submit(expression, **operands) for expression, operands in requests]

    def map_batches(
        self,
        requests: Iterable[tuple[str, dict[str, Any]]],
        window: int = 64,
        timeout: float | None = None,
    ) -> Iterator[np.ndarray]:
        """Stream results for a request iterable, in order, lazily.

        Parameters
        ----------
        requests:
            ``(expression, operands)`` pairs; may be a generator — at
            most ``window`` requests are in flight at once, so an
            unbounded stream serves in bounded memory.
        window:
            In-flight bound (also the coalescing opportunity the backend
            sees).
        timeout:
            Per-result wait bound, as in :meth:`Future.result`.

        Yields
        ------
        numpy.ndarray
            Each request's output, in submission order; a failed request
            raises its error at its position in the stream.
        """
        pending: deque[Future] = deque()
        for expression, operands in requests:
            pending.append(self.submit(expression, **operands))
            while len(pending) >= window:
                yield pending.popleft().result(timeout)
        while pending:
            yield pending.popleft().result(timeout)

    # -- asyncio bridge -----------------------------------------------------
    async def asubmit(
        self, expression: str, *, deadline_ms: float | None = None, **operands: Any
    ) -> np.ndarray:
        """Await one request's result without blocking the event loop.

        The submission itself runs in the loop's default thread-pool
        executor (cluster admission in ``"block"`` mode may wait for
        capacity; inline execution happens inside submit), and completion
        is bridged back via ``call_soon_threadsafe`` — no polling.  An
        async HTTP handler can therefore call
        ``await session.asubmit(...)`` directly; errors raise from the
        ``await`` exactly as :meth:`Future.result` would raise them.

        Parameters
        ----------
        expression:
            The Einsum to execute, as for :meth:`submit`.
        deadline_ms:
            Per-request deadline in milliseconds, as for :meth:`submit`
            (the gateway's header-carried budget lands here).
        **operands:
            Operand tensors by name.
        """
        loop = asyncio.get_running_loop()
        submit = functools.partial(
            self.submit, expression, deadline_ms=deadline_ms, **operands
        )
        future = await loop.run_in_executor(None, submit)
        afuture: asyncio.Future[np.ndarray] = loop.create_future()

        def transfer(done: Future) -> None:
            def apply() -> None:
                if afuture.cancelled():
                    return
                try:
                    afuture.set_result(done.result(timeout=0))
                except BaseException as error:  # noqa: BLE001 — delivered via the future
                    afuture.set_exception(error)

            loop.call_soon_threadsafe(apply)

        future.add_done_callback(transfer)
        return await afuture

    async def amap_batches(
        self,
        requests: Iterable[tuple[str, dict[str, Any]]],
        window: int = 64,
    ) -> AsyncIterator[np.ndarray]:
        """Async variant of :meth:`map_batches` (``async for`` over results).

        Parameters
        ----------
        requests:
            ``(expression, operands)`` pairs; at most ``window`` are in
            flight at once.
        window:
            In-flight bound.
        """
        pending: deque[asyncio.Task] = deque()
        try:
            for expression, operands in requests:
                pending.append(asyncio.ensure_future(self.asubmit(expression, **operands)))
                while len(pending) >= window:
                    yield await pending.popleft()
            while pending:
                yield await pending.popleft()
        finally:
            for task in pending:
                task.cancel()

    # -- completion plumbing (sink side) ------------------------------------
    def _on_result(self, tag: str, result: InsumResult) -> None:
        """A backend's result sink: resolve the ``(tag, ticket)`` future."""
        key = (tag, result.request_id)
        with self._lock:
            future = self._futures.pop(key, None)
            if future is None:
                self._early[key] = result
                return
            state = self._retry_states.get(future)
        self._resolve_attempt(future, state, result)

    def _resolve_attempt(
        self, future: Future, state: _RetryState | None, result: InsumResult
    ) -> None:
        """Deliver a terminal result — or intercept it for a retry.

        A retryable error (worker crash, admission rejection) with
        attempts remaining schedules a backoff resubmission instead of
        resolving the future; everything else delivers immediately.
        """
        error = result.error
        if (
            self._retry is not None
            and state is not None
            and error is not None
            and not self._closed
            and not future.done()
            and self._retry.should_retry(state.attempts, error)
        ):
            self._schedule_retry(future, state, result)
            return
        with self._lock:
            self._retry_states.pop(future, None)
        future._deliver(result)

    def _schedule_retry(
        self, future: Future, state: _RetryState, result: InsumResult
    ) -> None:
        """Arm a backoff timer that resubmits ``future``'s request."""
        assert self._retry is not None and result.error is not None
        delay = self._retry.delay(
            state.attempts, error=result.error, prev_delay=state.prev_delay
        )
        state.prev_delay = delay
        self._m_retries.inc()
        self._log.info(
            "retrying request after retryable failure",
            extra={
                "attempt": state.attempts,
                "delay_s": round(delay, 4),
                "error": repr(result.error),
            },
        )

        def fire() -> None:
            with self._lock:
                entry = self._pending_retries.pop(timer, None)
            if entry is None:
                return  # close() claimed the timer and delivered the error
            if future.cancelled():
                with self._lock:
                    self._retry_states.pop(future, None)
                return
            self._submit_attempt(
                future, state.expression, state.operands, state.deadline, state,
                initial=False,
            )

        timer = threading.Timer(delay, fire)
        timer.daemon = True
        with self._lock:
            if self._closed:
                self._retry_states.pop(future, None)
                deliver_now = True
            else:
                self._pending_retries[timer] = (future, result)
                deliver_now = False
        if deliver_now:
            future._deliver(result)
        else:
            timer.start()

    def _use_fallback(self) -> bool:
        """True when new submits should route to the warm fallback backend.

        The primary is considered unhealthy when its healthy-worker count
        (dead slots and control-plane failures excluded) has fallen below
        the configured ``failover_floor``.
        """
        if self._fallback is None:
            return False
        healthy = getattr(self._backend, "healthy_worker_count", None)
        if healthy is None:
            return False
        return int(healthy) < self._failover_floor

    def _try_cancel(self, ticket: int, tag: str = "primary") -> bool:
        """Forward a future's cancel request to the backend that owns it."""
        backend = self._fallback if tag == "fallback" else self._backend
        if backend is None:
            return False
        return backend.try_cancel(ticket)

    # -- lifecycle ----------------------------------------------------------
    def drain(self, timeout: float | None = None) -> bool:
        """Wait for outstanding futures to resolve; best-effort under a timeout.

        Parameters
        ----------
        timeout:
            Total seconds to wait across all outstanding futures;
            ``None`` waits indefinitely.

        Returns
        -------
        bool
            True when every outstanding future resolved; False when the
            timeout expired with work still unresolved (never raises for
            a timeout — the caller keeps the futures and can wait again).
        """
        import time

        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            outstanding = list(self._futures.values())
        drained = True
        for future in outstanding:
            remaining = None if deadline is None else max(0.0, deadline - time.monotonic())
            try:
                future.exception(remaining)
            except TimeoutError:
                drained = False  # keep checking the rest with whatever time is left
            except ServeError:
                pass  # resolved (cancelled) — drained as far as it will go
        return drained

    def close(self, timeout: float | None = None) -> None:
        """Drain outstanding work and shut down the backend (idempotent).

        Parameters
        ----------
        timeout:
            Bound on the drain; work still unresolved afterwards is
            abandoned to the backend's own close semantics (no
            ``TimeoutError`` is raised).
        """
        if self._closed:
            return
        self._closed = True
        # Cancel armed retry timers first and resolve their futures with
        # the last failed attempt's error — a cancelled timer never fires,
        # so leaving these pending would hang drain() (and any waiter).
        with self._lock:
            pending = dict(self._pending_retries)
            self._pending_retries.clear()
        for timer, (future, result) in pending.items():
            timer.cancel()
            with self._lock:
                self._retry_states.pop(future, None)
            future._deliver(result)
        if self._gateway is not None:
            self._gateway.stop()
            self._gateway = None
        if self._ops is not None:
            self._ops.stop()
            self._ops = None
        try:
            self.drain(timeout)
        finally:
            try:
                self._backend.close()
            finally:
                if self._fallback is not None:
                    self._fallback.close()

    def __enter__(self) -> "Session":
        """Enter the context; the session is usable immediately."""
        return self

    def __exit__(self, *exc: Any) -> None:
        """Drain and close the underlying tier."""
        self.close()

    # -- reporting ----------------------------------------------------------
    def stats(self) -> ServeStats:
        """The backend's report, normalized to one :class:`ServeStats` shape."""
        raw = self._backend.stats()
        if isinstance(raw, ClusterStats):
            return ServeStats.from_cluster(raw)
        return ServeStats.from_runtime(
            raw,
            backend=self._backend_name,
            workers=self.config.resolved_workers(self._backend_name),
        )

    def reset_stats(self) -> None:
        """Start a fresh measurement window on the backend."""
        self._backend.reset_stats()

    def health(self) -> dict[str, Any]:
        """Backend liveness: the ops endpoint's ``/healthz`` body.

        All tiers report ``status`` (``"ok"`` / ``"degraded"`` /
        ``"closed"``) and a ``workers`` list; the cluster tier adds
        per-worker pids, heartbeat ages, restart counts, and the health
        monitor's latest RSS/CPU samples.
        """
        probe = getattr(self._backend, "health", None)
        if probe is None:
            return {
                "status": "closed" if self._closed else "ok",
                "backend": self._backend_name,
                "workers": [],
            }
        report = probe()
        if self._fallback is not None:
            report = dict(
                report,
                failover={
                    "backend": self.config.failover,
                    "floor": self._failover_floor,
                    "active": self._use_fallback(),
                },
            )
        if self._closed:
            report = dict(report, status="closed")
        return report

    def publish_metrics(self) -> None:
        """Refresh the ``repro_serve_*`` gauges from this session's stats.

        Called by the ops endpoint before each ``/metrics`` render.  The
        cluster tier's plan-cache and coalescing counters live inside the
        worker *processes* — outside the parent's registry — so this is
        how they (and the normalized window as a whole) reach Prometheus:
        gauges snapshotting :meth:`stats`, labelled with the backend.
        """
        stats = self.stats()
        registry = get_registry()
        values: dict[str, float] = {
            "completed": stats.completed,
            "failed": stats.failed,
            "cancelled": stats.cancelled,
            "plan_cache_hits": stats.cache_hits,
            "plan_cache_misses": stats.cache_misses,
            "plan_cache_hit_rate": stats.cache_hit_rate,
            "coalesced_requests": stats.coalesced_requests,
            "coalesced_batches": stats.coalesced_batches,
            "coalesce_rate": stats.coalesce_rate,
            "rejected": stats.rejected,
            "requeued": stats.requeued,
            "restarts": stats.restarts,
            "p50_latency_ms": stats.p50_latency_ms,
            "p95_latency_ms": stats.p95_latency_ms,
            "p99_latency_ms": stats.p99_latency_ms,
            "throughput_rps": stats.throughput_rps,
        }
        for field, value in values.items():
            registry.gauge(
                f"repro_serve_{field}",
                "Session-window ServeStats snapshot, refreshed per /metrics scrape.",
                backend=self._backend_name,
            ).set(float(value))

    def serve_ops(self, port: int = 0, host: str = "127.0.0.1") -> OpsServer:
        """Start (or return) this session's ops HTTP endpoint.

        Serves ``/metrics`` (Prometheus text), ``/healthz`` (JSON
        liveness), and ``/statsz`` (the normalized :class:`ServeStats`)
        on a daemon thread.  Also started automatically when the
        ``REPRO_OPS_PORT`` environment variable is set.

        Parameters
        ----------
        port:
            TCP port to bind; 0 picks an ephemeral port (read it back
            from ``server.port``).
        host:
            Bind address (loopback by default — front it with a real
            proxy before exposing it).
        """
        if self._closed:
            raise SessionClosedError("Session is closed")
        if self._ops is None:
            self._ops = OpsServer(session=self, host=host, port=port)
            self._ops.start()
            self._log.info(
                "ops endpoint listening",
                extra={"host": host, "port": self._ops.port, "backend": self._backend_name},
            )
        return self._ops

    def serve_gateway(self, config: Any = None, port: int | None = None,
                      host: str | None = None) -> Any:
        """Start (or return) this session's HTTP gateway.

        The network front door: the versioned ``/v1`` wire API of
        :class:`repro.gateway.GatewayServer` — JSON and binary operand
        encodings, per-tenant API-key auth and admission quotas,
        header-carried deadlines, trace propagation — served on a daemon
        thread over this session.  Stopped automatically by
        :meth:`close`.  Also started by :meth:`from_env` when the
        ``REPRO_GATEWAY_PORT`` environment variable is set.

        Parameters
        ----------
        config:
            A :class:`repro.gateway.GatewayConfig`; None builds one from
            the defaults plus the ``port``/``host`` overrides below.
        port:
            Overrides ``config.port`` (0 = ephemeral; read it back from
            the returned server's ``port``).
        host:
            Overrides ``config.host`` (loopback by default).
        """
        if self._closed:
            raise SessionClosedError("Session is closed")
        if self._gateway is None:
            from repro.gateway import GatewayConfig, GatewayServer

            if config is None:
                config = GatewayConfig()
            if port is not None or host is not None:
                import dataclasses

                config = dataclasses.replace(
                    config,
                    **{
                        key: value
                        for key, value in (("port", port), ("host", host))
                        if value is not None
                    },
                )
            self._gateway = GatewayServer(session=self, config=config).start()
            self._log.info(
                "gateway listening",
                extra={
                    "host": config.host,
                    "port": self._gateway.port,
                    "backend": self._backend_name,
                },
            )
        return self._gateway

    @property
    def gateway(self) -> Any:
        """The running :class:`repro.gateway.GatewayServer`, or None."""
        return self._gateway
