"""The serving front door: one Session/Future API over every backend.

This package is the serving counterpart of the paper's one-surface
thesis: just as the indirect Einsum subsumes a zoo of hand-written
sparse kernels, :class:`Session` subsumes the zoo of tier entry points
grown by the runtime (ticketed ``InsumServer``), the cluster (ticketed
``ClusterServer`` with admission control), and inline one-shot calls:

* :mod:`repro.serve.session` — :class:`Session`: ``submit`` returning a
  real :class:`Future`, ``submit_many`` / ``map_batches`` on top, an
  asyncio bridge (``asubmit`` / ``amap_batches``), and context-manager
  lifecycle that drains and closes the tier.
* :mod:`repro.serve.config` — :class:`ServeConfig`: the typed dataclass
  consolidating every tier's kwargs, with per-backend validation.
* :mod:`repro.serve.future` — :class:`Future`: result/exception
  delivery, timeout, cancellation of undispatched work, callbacks.
* :mod:`repro.serve.backend` — the :class:`ExecutorBackend` protocol the
  tiers implement, plus the inline (calling-thread) backend.
* :mod:`repro.serve.stats` — :class:`ServeStats`: one normalized report
  shape across ``RuntimeStats`` and ``ClusterStats``.

See ``docs/SERVING.md`` for the architecture and ``docs/API.md`` for the
migration table from the legacy ticket API.
"""

from repro.serve.backend import ExecutorBackend, InlineBackend, build_backend
from repro.serve.config import BACKENDS, ServeConfig, ServeConfigError
from repro.serve.future import Future
from repro.serve.session import Session
from repro.serve.stats import ServeStats

__all__ = [
    "BACKENDS",
    "ExecutorBackend",
    "Future",
    "InlineBackend",
    "ServeConfig",
    "ServeConfigError",
    "ServeStats",
    "Session",
    "build_backend",
]
