"""ServeStats: one normalized serving report across every backend.

The threaded tier reports a :class:`~repro.runtime.stats.RuntimeStats`,
the cluster tier a :class:`~repro.cluster.stats.ClusterStats` with a
different shape (nested aggregate + failure-machinery counters), and the
inline backend has no tier-specific counters at all.  ``ServeStats``
flattens all three into one field set so code written against
``session.stats()`` never branches on the backend: cluster-only counters
(``rejected`` / ``requeued`` / ``restarts``) are simply zero elsewhere.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.cluster.stats import ClusterStats
from repro.runtime.stats import RuntimeStats


@dataclass(frozen=True)
class ServeStats:
    """One immutable, backend-normalized report over a serving window.

    Built by :meth:`repro.serve.Session.stats` from whichever raw report
    the active backend produces.  Latency fields are end-to-end
    (submission to completion) as measured by the tier that owns the
    request lifecycle; cache and coalescing counters aggregate across
    workers where the tier has them.
    """

    backend: str
    workers: int
    completed: int
    failed: int
    wall_seconds: float
    p50_latency_ms: float
    p95_latency_ms: float
    mean_latency_ms: float
    max_latency_ms: float
    cache_hits: int
    cache_misses: int
    coalesced_requests: int = 0
    coalesced_batches: int = 0
    rejected: int = 0
    requeued: int = 0
    restarts: int = 0
    per_worker: tuple[RuntimeStats, ...] = ()
    cancelled: int = 0
    p99_latency_ms: float = 0.0

    @property
    def throughput_rps(self) -> float:
        """Completed requests per second of wall-clock serving time."""
        return self.completed / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def submitted(self) -> int:
        """Every request that reached a terminal state in this window."""
        return self.completed + self.failed + self.cancelled

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of requests served without compiling (0.0 when idle).

        Coalesced requests beyond the first of each batch never perform a
        plan-cache lookup at all — the batch compiles (or hits) once — so
        they count as lookup-free hits alongside the cache's own hits.
        """
        free = max(0, self.coalesced_requests - self.coalesced_batches)
        lookups = self.cache_hits + self.cache_misses + free
        return (self.cache_hits + free) / lookups if lookups else 0.0

    @property
    def coalesce_rate(self) -> float:
        """Fraction of completed requests served via coalesced batches."""
        return self.coalesced_requests / self.completed if self.completed else 0.0

    def summary(self) -> str:
        """Multi-line human-readable report (throughput, latency, cache)."""
        lines = [
            f"backend    : {self.backend} ({self.workers} workers)",
            f"requests   : {self.completed} completed, {self.failed} failed, "
            f"{self.cancelled} cancelled "
            f"in {self.wall_seconds:.3f}s ({self.throughput_rps:.1f} req/s)",
            f"latency    : p50 {self.p50_latency_ms:.3f} ms, "
            f"p95 {self.p95_latency_ms:.3f} ms, "
            f"p99 {self.p99_latency_ms:.3f} ms, "
            f"mean {self.mean_latency_ms:.3f} ms, "
            f"max {self.max_latency_ms:.3f} ms",
            f"plan cache : {self.cache_hits} hits / {self.cache_misses} misses "
            f"(hit rate {self.cache_hit_rate:.1%})",
            f"coalescing : {self.coalesced_requests} requests in "
            f"{self.coalesced_batches} batches ({self.coalesce_rate:.1%} of requests)",
        ]
        if self.backend == "cluster":
            lines.append(
                f"cluster    : {self.rejected} rejected, {self.requeued} requeued, "
                f"{self.restarts} restarts"
            )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """A JSON-serializable view (the ops endpoint's ``/statsz`` body)."""
        payload = asdict(self)
        payload["per_worker"] = [asdict(stats) for stats in self.per_worker]
        payload["throughput_rps"] = self.throughput_rps
        payload["cache_hit_rate"] = self.cache_hit_rate
        payload["coalesce_rate"] = self.coalesce_rate
        payload["submitted"] = self.submitted
        return payload

    @classmethod
    def from_runtime(cls, stats: RuntimeStats, backend: str, workers: int) -> "ServeStats":
        """Normalize a threaded/inline tier's :class:`RuntimeStats`.

        Parameters
        ----------
        stats:
            The raw report from ``InsumServer.stats()`` or the inline
            backend.
        backend / workers:
            The session's backend name and worker parallelism, which the
            raw report does not carry.
        """
        return cls(
            backend=backend,
            workers=workers,
            completed=stats.completed,
            failed=stats.failed,
            wall_seconds=stats.wall_seconds,
            p50_latency_ms=stats.p50_latency_ms,
            p95_latency_ms=stats.p95_latency_ms,
            mean_latency_ms=stats.mean_latency_ms,
            max_latency_ms=stats.max_latency_ms,
            cache_hits=stats.cache_hits,
            cache_misses=stats.cache_misses,
            coalesced_requests=stats.coalesced_requests,
            coalesced_batches=stats.coalesced_batches,
            cancelled=stats.cancelled,
            p99_latency_ms=stats.p99_latency_ms,
        )

    @classmethod
    def from_cluster(cls, stats: ClusterStats) -> "ServeStats":
        """Normalize a :class:`ClusterStats` (flattening its aggregate)."""
        aggregate = stats.aggregate
        return cls(
            backend="cluster",
            workers=stats.workers,
            completed=aggregate.completed,
            failed=aggregate.failed,
            wall_seconds=aggregate.wall_seconds,
            p50_latency_ms=aggregate.p50_latency_ms,
            p95_latency_ms=aggregate.p95_latency_ms,
            mean_latency_ms=aggregate.mean_latency_ms,
            max_latency_ms=aggregate.max_latency_ms,
            cache_hits=aggregate.cache_hits,
            cache_misses=aggregate.cache_misses,
            coalesced_requests=aggregate.coalesced_requests,
            coalesced_batches=aggregate.coalesced_batches,
            rejected=stats.rejected,
            requeued=stats.requeued,
            restarts=stats.restarts,
            per_worker=stats.per_worker,
            cancelled=aggregate.cancelled,
            p99_latency_ms=aggregate.p99_latency_ms,
        )
