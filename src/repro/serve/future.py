"""Future: the completion handle returned by :meth:`repro.serve.Session.submit`.

A deliberately small, backend-agnostic future: results and worker-side
errors are *delivered through it* (by the session's result sink, from
whichever thread the backend completes on) instead of being raised at a
``gather`` call far from the submission site.  The surface mirrors
``concurrent.futures.Future`` where the semantics match — ``result`` /
``done`` / ``cancel`` / ``add_done_callback`` — with one sharpening:
:meth:`cancel` only succeeds for work the backend has not dispatched
yet, and a cancelled future raises
:class:`~repro.errors.FutureCancelledError` (a
:class:`~repro.errors.ServeError`) rather than a foreign exception type.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

import numpy as np

from repro.errors import FutureCancelledError
from repro.runtime.server import InsumResult

_PENDING = "pending"
_CANCELLED = "cancelled"
_DONE = "done"


class Future:
    """One request's completion handle (result, error, or cancellation).

    Created by :meth:`repro.serve.Session.submit`; never constructed by
    user code.  Thread-safe: any thread may wait on :meth:`result` while
    the backend resolves the future from its own workers.
    """

    def __init__(self, session: Any = None):
        self._session = session
        self._ticket: int | None = None
        #: Which of the session's backends owns the ticket ("primary" or
        #: "fallback") — ticket counters restart at zero per backend, so
        #: the tag disambiguates cancel routing and result keying.
        self._backend_tag = "primary"
        self._cond = threading.Condition()
        self._state = _PENDING
        self._record: InsumResult | None = None
        self._callbacks: list[Callable[["Future"], None]] = []

    # -- introspection ------------------------------------------------------
    @property
    def ticket(self) -> int | None:
        """The backend ticket this future tracks (None before assignment)."""
        return self._ticket

    @property
    def expression(self) -> str | None:
        """The served expression, once the terminal result is known."""
        record = self._record
        return record.expression if record is not None else None

    @property
    def latency_ms(self) -> float | None:
        """End-to-end latency of the completed request (None until done)."""
        record = self._record
        return record.latency_ms if record is not None else None

    def trace(self) -> Any:
        """The request's :class:`~repro.obs.trace.Trace` (None until done).

        Populated once the future resolves, when tracing is enabled
        (``REPRO_TRACE``): span records covering queue wait, execution,
        and — on the cluster tier — admission, codec, and ring crossings.
        """
        record = self._record
        return record.trace if record is not None else None

    def done(self) -> bool:
        """True once the future is resolved (result, error, or cancelled)."""
        with self._cond:
            return self._state != _PENDING

    def cancelled(self) -> bool:
        """True when :meth:`cancel` succeeded before dispatch."""
        with self._cond:
            return self._state == _CANCELLED

    # -- cancellation -------------------------------------------------------
    def cancel(self) -> bool:
        """Try to withdraw the request before the backend dispatches it.

        Returns True when the backend still held the request undispatched
        (it will never execute) or the future was already cancelled;
        False once execution has been claimed or the future resolved.
        The inline backend executes during ``submit``, so its futures are
        never cancellable.
        """
        with self._cond:
            if self._state == _CANCELLED:
                return True
            if self._state != _PENDING:
                return False
        session, ticket = self._session, self._ticket
        if session is None or ticket is None:
            return False
        if not session._try_cancel(ticket, self._backend_tag):
            return False
        with self._cond:
            if self._state == _CANCELLED:
                return True
            if self._state != _PENDING:
                return False
            self._state = _CANCELLED
            self._cond.notify_all()
        self._run_callbacks()
        return True

    # -- completion ---------------------------------------------------------
    def result(self, timeout: float | None = None) -> np.ndarray:
        """The output array, waiting up to ``timeout`` seconds.

        Worker-side errors — including
        :class:`~repro.errors.ClusterBusyError` admission rejections and
        :class:`~repro.errors.WorkerCrashedError` — re-raise here,
        uniformly across backends.  A cancelled future raises
        :class:`~repro.errors.FutureCancelledError`; an expired wait
        raises ``TimeoutError``.
        """
        record = self._wait(timeout)
        if record.error is not None:
            raise record.error
        assert record.output is not None
        return record.output

    def exception(self, timeout: float | None = None) -> BaseException | None:
        """The delivered error (None on success), waiting like :meth:`result`.

        A cancelled future raises
        :class:`~repro.errors.FutureCancelledError`, mirroring
        ``concurrent.futures.Future.exception``.
        """
        return self._wait(timeout).error

    def add_done_callback(self, fn: Callable[["Future"], None]) -> None:
        """Call ``fn(self)`` when the future resolves (or now, if it has).

        Callbacks run on the thread that resolves the future (a backend
        worker/collector thread, or the caller for an already-resolved
        future); exceptions they raise are swallowed.
        """
        with self._cond:
            if self._state == _PENDING:
                self._callbacks.append(fn)
                return
        try:
            fn(self)
        except Exception:  # noqa: BLE001 — callbacks must not poison delivery
            pass

    # -- session-internal resolution ----------------------------------------
    def _wait(self, timeout: float | None) -> InsumResult:
        with self._cond:
            if self._state == _PENDING and not self._cond.wait_for(
                lambda: self._state != _PENDING, timeout
            ):
                raise TimeoutError("future did not complete within the timeout")
            if self._state == _CANCELLED:
                raise FutureCancelledError("the future was cancelled")
            assert self._record is not None
            return self._record

    def _deliver(self, record: InsumResult) -> None:
        """Resolve with the backend's terminal result (sink thread)."""
        with self._cond:
            if self._state != _PENDING:
                return  # already cancelled; the backend's record is dropped
            self._record = record
            # A cancellation record resolves to the *cancelled* state even
            # when it outraces the cancelling thread's own bookkeeping.
            self._state = (
                _CANCELLED if isinstance(record.error, FutureCancelledError) else _DONE
            )
            self._cond.notify_all()
        self._run_callbacks()

    def _reject(self, error: BaseException) -> None:
        """Resolve as failed before a ticket exists (submit-time errors)."""
        self._deliver(InsumResult(request_id=-1, expression="", error=error))

    def _run_callbacks(self) -> None:
        with self._cond:
            callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            try:
                fn(self)
            except Exception:  # noqa: BLE001 — callbacks must not poison delivery
                pass
