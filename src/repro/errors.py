"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so user
code can catch a single base class.  Sub-hierarchies mirror the pipeline
stages: the Einsum frontend, format construction, the FX graph layer, the
Inductor-like backend, and the simulated device.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro package."""


class EinsumError(ReproError):
    """Base class for errors in the indirect-Einsum frontend."""


class EinsumSyntaxError(EinsumError):
    """The einsum expression string could not be parsed.

    Carries the offending text and position so callers can point at the
    exact character that confused the parser.
    """

    def __init__(self, message: str, text: str = "", position: int | None = None):
        self.text = text
        self.position = position
        if text and position is not None:
            pointer = " " * position + "^"
            message = f"{message}\n  {text}\n  {pointer}"
        super().__init__(message)


class EinsumValidationError(EinsumError):
    """The expression parsed but is semantically invalid.

    Examples: an index used on the left-hand side that never appears on the
    right, a tensor referenced in the expression but not bound to a value,
    or inconsistent dimension sizes for the same index variable.
    """


class FormatError(ReproError):
    """Base class for sparse-format construction and conversion errors."""


class ShapeError(FormatError):
    """A tensor or block shape is inconsistent with the format invariants."""


class FXGraphError(ReproError):
    """The FX-like graph is malformed (dangling inputs, unknown ops, ...)."""


class LoweringError(ReproError):
    """Lowering from one IR to the next failed."""


class CodegenError(ReproError):
    """The Triton-style code generator could not emit a kernel."""


class AutotuneError(ReproError):
    """The autotuner could not find any valid configuration."""


class DeviceError(ReproError):
    """The simulated device rejected a kernel (e.g. tile too large)."""


class ServeError(ReproError):
    """Base class for serving-tier errors (Session, InsumServer, ClusterServer).

    Every failure mode of the serving stack — admission rejection, worker
    crashes, cancelled futures, closed sessions — derives from this one
    class, so a caller holding a :class:`~repro.serve.Future` can catch
    ``ServeError`` and know it has covered the tier-specific failures of
    whichever backend the session runs on.
    """


class SessionClosedError(ServeError, RuntimeError):
    """An operation was attempted on a closed serving session or server."""


class FutureCancelledError(ServeError):
    """The future was cancelled before its request was dispatched.

    Raised by :meth:`repro.serve.Future.result` / ``exception`` after a
    successful :meth:`repro.serve.Future.cancel`.
    """


class ClusterBusyError(ServeError, RuntimeError):
    """The cluster is at its in-flight limit; retry after ``retry_after`` s.

    Parameters
    ----------
    inflight / limit:
        The in-flight count at rejection time and the configured bound.
    retry_after:
        Estimated seconds until capacity frees (one service interval,
        from the cluster's recent completion rate).

    Attributes
    ----------
    partial_tickets:
        Tickets already enqueued by the failing ``enqueue_many`` /
        ``submit_many`` call, in submission order — empty for a
        single-request rejection.  The caller owns them: ``collect`` the
        partial batch (or let the session fail their futures) instead of
        leaking in-flight work.
    """

    def __init__(self, inflight: int, limit: int, retry_after: float):
        super().__init__(
            f"cluster is at capacity ({inflight}/{limit} requests in flight); "
            f"retry after {retry_after:.3f}s"
        )
        self.inflight = inflight
        self.limit = limit
        self.retry_after = retry_after
        self.partial_tickets: tuple[int, ...] = ()


class WorkerCrashedError(ServeError, RuntimeError):
    """A request exhausted its dispatch attempts across worker crashes."""


class PoisonedRequestError(WorkerCrashedError):
    """A request matching a known worker-killing key was failed fast.

    Raised when the poison quarantine (see
    :class:`repro.resilience.supervisor.PoisonQuarantine`) recognises a
    request whose key already crashed a worker ``max_attempts`` times:
    instead of burning another worker incarnation on it, the request
    fails immediately.  Deliberately *not* retryable — retrying would
    defeat the quarantine.
    """


class DeadlineExceededError(ServeError, RuntimeError):
    """The request's deadline expired before it produced a usable result.

    Set a deadline with ``Session.submit(..., deadline_ms=...)``.  The
    error is terminal wherever the expiry is detected — before dispatch,
    in a queue, worker-side before execution, or at completion time when
    the result lands too late to be useful — so the caller's
    ``Future.result()`` resolves instead of waiting for work the serving
    stack has already abandoned.  Deliberately *not* a ``TimeoutError``
    subclass: a wait timeout means "still running, ask again", a missed
    deadline is a terminal outcome.
    """


class GatewayError(ServeError):
    """Base class for HTTP-gateway failures (transport, wire, protocol).

    Raised client-side by :class:`repro.gateway.GatewayClient` when a
    response cannot be mapped back onto a more specific repro exception
    — an unreachable server, a malformed body, or an error type the
    client does not recognise.  Serving-tier errors that crossed the
    wire intact re-raise as *themselves* (``ClusterBusyError`` stays
    ``ClusterBusyError``), so ``GatewayError`` marks precisely the
    failures the gateway layer itself introduced.
    """


class GatewayAuthError(GatewayError):
    """The gateway rejected the request's API key (HTTP 401 or 403).

    ``status`` is 401 when no key was presented and 403 when a key was
    presented but is not in the gateway's keyring — the same distinction
    the HTTP response carries, preserved so client code can tell
    "configure a key" apart from "this key is wrong".
    """

    def __init__(self, message: str, status: int = 401):
        super().__init__(message)
        self.status = status


class WireFormatError(GatewayError, ValueError):
    """A request or response body violates the gateway wire format.

    Covers malformed JSON, a bad binary frame (wrong magic, truncated
    payload), an unknown operand descriptor, and operand values the
    wire codec cannot represent.  Maps to HTTP 400 — the request can
    never succeed as sent, so it is deliberately not retryable.
    """


class TenantQuotaError(ClusterBusyError):
    """One tenant is at its gateway admission quota; others are unaffected.

    A :class:`ClusterBusyError` subclass on purpose: the per-tenant
    gate layered on the cluster-wide admission gate fails the same way
    — over capacity, retry after ``retry_after`` — so retry policies
    and replay classification treat both rejections identically.

    Parameters
    ----------
    tenant:
        The tenant whose quota is exhausted.
    inflight / limit:
        The tenant's in-flight count at rejection time and its bound.
    retry_after:
        Suggested seconds to wait before resubmitting.
    """

    def __init__(self, tenant: str, inflight: int, limit: int, retry_after: float):
        super().__init__(inflight, limit, retry_after)
        self.tenant = tenant
        self.args = (
            f"tenant {tenant!r} is at its admission quota "
            f"({inflight}/{limit} requests in flight); "
            f"retry after {retry_after:.3f}s",
        )


class ControlThreadError(ServeError, RuntimeError):
    """A serving control thread (dispatcher/collector/monitor) died.

    An unexpected exception in one of the cluster's control threads
    means the parent can no longer guarantee progress, so every in-flight
    request is failed with this error and the backend refuses new work —
    a ``Future`` never hangs on a request nobody is driving.  The session
    reports unhealthy; with a failover backend configured, new submits
    route around the failed tier.
    """
