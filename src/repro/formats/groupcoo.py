"""GroupCOO: the paper's fixed-length format between COO and ELL (Section 4.1).

Nonzeros are partitioned into groups of a fixed size ``g`` along one
dimension (rows by default).  The grouped coordinate is stored once per
group (``AM``), while the other coordinate and the values are stored per
slot (``AK``/``AV`` of shape ``(num_groups, g)``), padded with zeros.

* ``g = 1`` degenerates to COO (every nonzero is its own group).
* ``g = max_i occ_i`` with one group per row degenerates to ELL.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.einsum.ast import IndexVar, TensorAccess
from repro.core.einsum.rewriting import IndexSubstitution, OperandRewrite
from repro.errors import FormatError, ShapeError
from repro.formats.base import SparseFormat
from repro.formats.csr import CSR
from repro.formats.group_size import select_group_size
from repro.utils.arrays import as_index_array, as_value_array, ceil_div


class GroupCOO(SparseFormat):
    """Row-grouped COO with fixed group size.

    Attributes
    ----------
    group_rows:
        Shape ``(num_groups,)`` — the row coordinate shared by each group
        (``AM`` in the paper's Einsums).
    columns:
        Shape ``(num_groups, group_size)`` — per-slot column coordinates
        (``AK``), padded with ``0`` for unused slots.
    values:
        Shape ``(num_groups, group_size)`` — per-slot values (``AV``),
        padded with ``0.0`` so padded slots contribute nothing.
    """

    format_name = "GroupCOO"
    fixed_length = True

    def __init__(
        self,
        shape: Sequence[int],
        group_rows: np.ndarray,
        columns: np.ndarray,
        values: np.ndarray,
        nnz: int | None = None,
    ):
        self._shape = tuple(int(d) for d in shape)
        if len(self._shape) != 2:
            raise ShapeError(f"GroupCOO is a matrix format; got shape {self._shape}")
        self.group_rows = as_index_array(group_rows, name="GroupCOO group rows")
        self.columns = as_index_array(columns, name="GroupCOO columns")
        self.values = as_value_array(values, name="GroupCOO values")
        if self.group_rows.ndim != 1:
            raise ShapeError("group rows must be 1-D")
        if self.columns.ndim != 2 or self.values.shape != self.columns.shape:
            raise ShapeError("columns and values must be 2-D arrays of identical shape")
        if self.columns.shape[0] != self.group_rows.shape[0]:
            raise ShapeError(
                f"{self.columns.shape[0]} column groups but {self.group_rows.shape[0]} group rows"
            )
        if self.group_rows.size and (
            self.group_rows.min() < 0 or self.group_rows.max() >= self._shape[0]
        ):
            raise ShapeError(f"group row coordinates fall outside [0, {self._shape[0]})")
        if self.columns.size and (self.columns.min() < 0 or self.columns.max() >= self._shape[1]):
            raise ShapeError(f"column coordinates fall outside [0, {self._shape[1]})")
        self._nnz = int(np.count_nonzero(self.values)) if nnz is None else int(nnz)

    # -- constructors -------------------------------------------------------------
    @classmethod
    def from_dense(cls, dense: np.ndarray, group_size: int | None = None) -> "GroupCOO":
        """Build GroupCOO from a dense matrix.

        If ``group_size`` is omitted, the Section 4.2 heuristic
        (``g* = sqrt(S/n)`` rounded to a power of two) selects it.
        """
        return cls.from_csr(CSR.from_dense(dense), group_size=group_size)

    @classmethod
    def from_csr(cls, csr: CSR, group_size: int | None = None) -> "GroupCOO":
        """Build GroupCOO from CSR (rows already sorted and counted)."""
        occupancy = csr.row_occupancy()
        if group_size is None:
            group_size = select_group_size(occupancy)
        if group_size < 1:
            raise FormatError(f"group size must be >= 1, got {group_size}")

        group_rows: list[int] = []
        column_groups: list[np.ndarray] = []
        value_groups: list[np.ndarray] = []
        for row in range(csr.shape[0]):
            start, end = int(csr.indptr[row]), int(csr.indptr[row + 1])
            occ = end - start
            if occ == 0:
                continue
            n_groups = ceil_div(occ, group_size)
            padded_cols = np.zeros(n_groups * group_size, dtype=np.int64)
            padded_vals = np.zeros(n_groups * group_size, dtype=csr.data.dtype)
            padded_cols[:occ] = csr.indices[start:end]
            padded_vals[:occ] = csr.data[start:end]
            for g in range(n_groups):
                group_rows.append(row)
                column_groups.append(padded_cols[g * group_size : (g + 1) * group_size])
                value_groups.append(padded_vals[g * group_size : (g + 1) * group_size])

        if group_rows:
            columns = np.stack(column_groups)
            values = np.stack(value_groups)
            rows = np.asarray(group_rows, dtype=np.int64)
        else:
            columns = np.zeros((0, group_size), dtype=np.int64)
            values = np.zeros((0, group_size), dtype=csr.data.dtype)
            rows = np.zeros((0,), dtype=np.int64)
        return cls(csr.shape, rows, columns, values, nnz=csr.nnz)

    @classmethod
    def from_coo(cls, coo, group_size: int | None = None) -> "GroupCOO":
        """Build GroupCOO from a (possibly unsorted) COO tensor, via CSR."""
        return cls.from_csr(CSR.from_coo(coo), group_size=group_size)

    # -- SparseFormat interface -----------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self._shape

    @property
    def nnz(self) -> int:
        return self._nnz

    @property
    def group_size(self) -> int:
        """The fixed number of slots per group (``g`` in the paper)."""
        return int(self.columns.shape[1]) if self.columns.ndim == 2 else 0

    @property
    def num_groups(self) -> int:
        """Number of stored groups (rows of the ``columns``/``values`` arrays)."""
        return int(self.group_rows.shape[0])

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self._shape, dtype=self.values.dtype)
        for group in range(self.num_groups):
            row = int(self.group_rows[group])
            np.add.at(dense[row], self.columns[group], self.values[group])
        return dense

    def tensors(self, name: str) -> dict[str, np.ndarray]:
        return {
            f"{name}V": self.values,
            f"{name}M": self.group_rows,
            f"{name}K": self.columns,
        }

    def rewrite_plan(self, name: str, index_names: Sequence[str]) -> OperandRewrite:
        """Rewrite ``A[m,k]`` to ``AV[p,q]`` with ``m -> AM[p]``, ``k -> AK[p,q]``."""
        if len(index_names) != 2:
            raise FormatError(f"GroupCOO stores matrices; got {len(index_names)} indices")
        row_name, col_name = index_names
        existing = set(index_names)
        group_var = IndexVar(_fresh("p", existing))
        within_var = IndexVar(_fresh("q", existing))
        row_access = TensorAccess(tensor=f"{name}M", indices=(group_var,))
        col_access = TensorAccess(tensor=f"{name}K", indices=(group_var, within_var))
        value_access = TensorAccess(tensor=f"{name}V", indices=(group_var, within_var))
        return OperandRewrite(
            operand=name,
            value_access=value_access,
            substitutions={
                row_name: IndexSubstitution(exprs=(row_access,)),
                col_name: IndexSubstitution(exprs=(col_access,)),
            },
            tensors=self.tensors(name),
        )

    # -- runtime hooks -------------------------------------------------------------
    def with_values(self, values: np.ndarray) -> "GroupCOO":
        """Same group structure, new per-slot values (the stacking primitive)."""
        return GroupCOO(self._shape, self.group_rows, self.columns, values)

    def scatter_row_ids(self) -> np.ndarray:
        return self.group_rows

    def select_units(self, selector: np.ndarray) -> "GroupCOO":
        return GroupCOO(
            self._shape,
            self.group_rows[selector],
            self.columns[selector],
            self.values[selector],
        )

    # -- storage accounting ------------------------------------------------------------
    def value_count(self) -> int:
        return int(self.values.size)

    def index_count(self) -> int:
        return int(self.group_rows.size + self.columns.size)

    def indirect_access_count(self) -> int:
        """Scatters (one per group) + gathers (one per stored slot): F(g)."""
        return self.num_groups + int(self.columns.size)

    @property
    def padding_ratio(self) -> float:
        """Fraction of stored value slots that are padding."""
        total = self.values.size
        return 1.0 - (self._nnz / total) if total else 0.0


def _fresh(base: str, existing: set[str]) -> str:
    candidate = base
    while candidate in existing:
        candidate += base
    existing.add(candidate)
    return candidate
