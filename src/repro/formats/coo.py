"""Coordinate (COO) format for tensors of arbitrary rank."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.einsum.ast import IndexVar, TensorAccess
from repro.core.einsum.rewriting import IndexSubstitution, OperandRewrite
from repro.errors import FormatError, ShapeError
from repro.formats.base import SparseFormat
from repro.utils.arrays import as_index_array, as_value_array


class COO(SparseFormat):
    """Coordinate format: one values array plus one coordinate array per axis.

    For a 2-D matrix ``A`` with index names ``(m, k)`` this is exactly the
    paper's ``AV`` / ``AM`` / ``AK`` triple (Figure 1), and SpMM becomes
    ``C[AM[p],n] += AV[p] * B[AK[p],n]`` (Figure 2).
    """

    format_name = "COO"
    fixed_length = True

    def __init__(
        self,
        shape: Sequence[int],
        values: np.ndarray,
        coords: Sequence[np.ndarray],
    ):
        self._shape = tuple(int(d) for d in shape)
        self.values = as_value_array(values, name="COO values")
        self.coords = tuple(
            as_index_array(c, name=f"COO coords[{i}]") for i, c in enumerate(coords)
        )
        if self.values.ndim != 1:
            raise ShapeError(f"COO values must be 1-D, got shape {self.values.shape}")
        if len(self.coords) != len(self._shape):
            raise ShapeError(
                f"COO needs one coordinate array per axis: got {len(self.coords)} arrays for a "
                f"rank-{len(self._shape)} tensor"
            )
        for axis, coord in enumerate(self.coords):
            if coord.shape != self.values.shape:
                raise ShapeError(
                    f"coordinate array for axis {axis} has shape {coord.shape}, expected "
                    f"{self.values.shape}"
                )
            if coord.size and (coord.min() < 0 or coord.max() >= self._shape[axis]):
                raise ShapeError(
                    f"coordinates for axis {axis} fall outside [0, {self._shape[axis]})"
                )

    # -- constructors ---------------------------------------------------------
    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "COO":
        """Build a COO tensor from a dense array, keeping only nonzeros."""
        dense = np.asarray(dense)
        coords = np.nonzero(dense)
        values = dense[coords]
        return cls(dense.shape, values, coords)

    @classmethod
    def from_arrays(cls, shape: Sequence[int], values, *coords) -> "COO":
        """Build a COO tensor directly from value and coordinate arrays."""
        return cls(shape, values, coords)

    # -- SparseFormat interface ------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self._shape

    @property
    def nnz(self) -> int:
        return int(self.values.shape[0])

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self._shape, dtype=self.values.dtype)
        # np.add.at handles duplicate coordinates by accumulation, matching
        # the Einsum scatter-add semantics.
        np.add.at(dense, self.coords, self.values)
        return dense

    def tensors(self, name: str) -> dict[str, np.ndarray]:
        out = {f"{name}V": self.values}
        for axis, coord in enumerate(self.coords):
            out[self._coord_name(name, axis)] = coord
        return out

    def _coord_name(self, name: str, axis: int) -> str:
        if self._index_names is not None:
            return f"{name}{self._index_names[axis].upper()}"
        return f"{name}I{axis}"

    _index_names: tuple[str, ...] | None = None

    def rewrite_plan(self, name: str, index_names: Sequence[str]) -> OperandRewrite:
        """Rewrite ``name[i0, i1, ...]`` to ``nameV[p]`` with gathered coords.

        Each original index variable ``iX`` is substituted by the indirect
        access ``nameIX[p]`` (named after the variable, e.g. ``AM``/``AK``
        for ``A[m,k]``) wherever it appears in the statement.
        """
        if len(index_names) != len(self._shape):
            raise FormatError(
                f"operand {name!r} is rank {len(self._shape)} but was accessed with "
                f"{len(index_names)} indices"
            )
        self._index_names = tuple(index_names)
        position_var = IndexVar(self._position_var_name(index_names))
        substitutions = {}
        tensors = self.tensors(name)
        for axis, index_name in enumerate(index_names):
            coord_access = TensorAccess(
                tensor=self._coord_name(name, axis), indices=(position_var,)
            )
            substitutions[index_name] = IndexSubstitution(exprs=(coord_access,))
        value_access = TensorAccess(tensor=f"{name}V", indices=(position_var,))
        return OperandRewrite(
            operand=name,
            value_access=value_access,
            substitutions=substitutions,
            tensors=tensors,
        )

    @staticmethod
    def _position_var_name(index_names: Sequence[str]) -> str:
        """Choose a nonzero-position variable name not clashing with inputs."""
        candidate = "p"
        existing = set(index_names)
        while candidate in existing:
            candidate += "p"
        return candidate

    # -- runtime hooks ----------------------------------------------------------
    def with_values(self, values: np.ndarray) -> "COO":
        """Same coordinates, new values (the stacking primitive)."""
        return COO(self._shape, values, self.coords)

    def scatter_row_ids(self) -> np.ndarray:
        return self.coords[0]

    def select_units(self, selector: np.ndarray) -> "COO":
        return COO(
            self._shape,
            self.values[selector],
            tuple(coord[selector] for coord in self.coords),
        )

    # -- storage accounting -----------------------------------------------------
    def value_count(self) -> int:
        return self.nnz

    def index_count(self) -> int:
        return self.nnz * len(self._shape)

    def indirect_access_count(self) -> int:
        """Gathers + scatters per full traversal: every axis of every nonzero."""
        return self.nnz * len(self._shape)

    # -- conversions ---------------------------------------------------------
    def sorted_by_axis(self, axis: int = 0) -> "COO":
        """Return a copy with nonzeros sorted by the coordinates of ``axis``.

        Grouped formats are derived from row-sorted (or generally
        axis-sorted) COO, so this is the canonical pre-processing step.
        """
        order = np.argsort(self.coords[axis], kind="stable")
        return COO(
            self._shape,
            self.values[order],
            tuple(coord[order] for coord in self.coords),
        )
