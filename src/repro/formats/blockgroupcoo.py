"""BlockGroupCOO: grouping applied to block-sparse COO (Figure 6 of the paper).

Nonzero blocks are grouped along the block-row dimension; the block-row
coordinate is stored once per group (``AM`` of shape ``(num_groups,)``),
block-column coordinates per slot (``AK`` of shape ``(num_groups, g)``),
and the block values as ``AV`` of shape ``(num_groups, g, bM, bK)``.
SpMM becomes ``C[AM[p],bm,n] += AV[p,q,bm,bk] * B[AK[p,q],bk,n]``, whose
``q``/``bk`` contraction against a gathered ``B`` tile is a batched matmul
that maps directly onto Tensor Cores.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.einsum.ast import IndexVar, TensorAccess
from repro.core.einsum.rewriting import IndexSubstitution, OperandRewrite
from repro.errors import FormatError, ShapeError
from repro.formats.base import SparseFormat
from repro.formats.blocking import nonzero_blocks
from repro.formats.group_size import select_group_size
from repro.utils.arrays import as_index_array, as_value_array, ceil_div


class BlockGroupCOO(SparseFormat):
    """Block-sparse format with fixed-size groups along the block-row dimension."""

    format_name = "BlockGroupCOO"
    fixed_length = True

    def __init__(
        self,
        shape: Sequence[int],
        block_shape: tuple[int, int],
        group_rows: np.ndarray,
        block_cols: np.ndarray,
        values: np.ndarray,
        nnz: int | None = None,
    ):
        self._shape = tuple(int(d) for d in shape)
        self.block_shape = (int(block_shape[0]), int(block_shape[1]))
        if len(self._shape) != 2:
            raise ShapeError(f"BlockGroupCOO is a matrix format; got shape {self._shape}")
        if self._shape[0] % self.block_shape[0] or self._shape[1] % self.block_shape[1]:
            raise ShapeError(
                f"matrix shape {self._shape} is not divisible by block shape {self.block_shape}"
            )
        self.group_rows = as_index_array(group_rows, name="BlockGroupCOO group rows")
        self.block_cols = as_index_array(block_cols, name="BlockGroupCOO block cols")
        self.values = as_value_array(values, name="BlockGroupCOO values")
        if self.group_rows.ndim != 1:
            raise ShapeError("group rows must be 1-D")
        if self.block_cols.ndim != 2:
            raise ShapeError("block cols must be 2-D (num_groups, group_size)")
        num_groups, group_size = self.block_cols.shape
        if self.group_rows.shape[0] != num_groups:
            raise ShapeError("group rows and block cols disagree on the number of groups")
        expected = (num_groups, group_size, *self.block_shape)
        if self.values.shape != expected:
            raise ShapeError(f"values must have shape {expected}, got {self.values.shape}")
        grid = self.grid_shape
        if num_groups and (self.group_rows.max() >= grid[0] or
                           (self.block_cols.size and self.block_cols.max() >= grid[1])):
            raise ShapeError(f"block coordinates fall outside the {grid} block grid")
        self._nnz = int(np.count_nonzero(self.values)) if nnz is None else int(nnz)

    @property
    def grid_shape(self) -> tuple[int, int]:
        """Number of blocks along each dimension ``(Mb, Kb)``."""
        return (
            self._shape[0] // self.block_shape[0],
            self._shape[1] // self.block_shape[1],
        )

    # -- constructors ---------------------------------------------------------------
    @classmethod
    def from_dense(
        cls,
        dense: np.ndarray,
        block_shape: tuple[int, int],
        group_size: int | None = None,
    ) -> "BlockGroupCOO":
        """Build BlockGroupCOO from a dense matrix.

        Parameters
        ----------
        dense:
            The matrix to convert (shape must divide by ``block_shape``).
        block_shape:
            ``(bM, bK)`` block dimensions.
        group_size:
            Blocks per group; when omitted the Section 4.2 heuristic picks
            it from the per-block-row occupancy.
        """
        rows, cols, blocks = nonzero_blocks(dense, block_shape)
        block_rows_count = dense.shape[0] // block_shape[0]
        occupancy = np.bincount(rows, minlength=block_rows_count)
        if group_size is None:
            group_size = select_group_size(occupancy)
        if group_size < 1:
            raise FormatError(f"group size must be >= 1, got {group_size}")

        order = np.lexsort((cols, rows))
        rows, cols, blocks = rows[order], cols[order], blocks[order]

        group_rows: list[int] = []
        col_groups: list[np.ndarray] = []
        value_groups: list[np.ndarray] = []
        start = 0
        for block_row in range(block_rows_count):
            occ = int(occupancy[block_row])
            if occ == 0:
                continue
            row_cols = cols[start : start + occ]
            row_blocks = blocks[start : start + occ]
            start += occ
            n_groups = ceil_div(occ, group_size)
            padded_cols = np.zeros(n_groups * group_size, dtype=np.int64)
            padded_vals = np.zeros(
                (n_groups * group_size, block_shape[0], block_shape[1]), dtype=blocks.dtype
            )
            padded_cols[:occ] = row_cols
            padded_vals[:occ] = row_blocks
            for g in range(n_groups):
                group_rows.append(block_row)
                col_groups.append(padded_cols[g * group_size : (g + 1) * group_size])
                value_groups.append(padded_vals[g * group_size : (g + 1) * group_size])

        if group_rows:
            group_rows_arr = np.asarray(group_rows, dtype=np.int64)
            col_arr = np.stack(col_groups)
            val_arr = np.stack(value_groups)
        else:
            group_rows_arr = np.zeros((0,), dtype=np.int64)
            col_arr = np.zeros((0, group_size), dtype=np.int64)
            val_arr = np.zeros((0, group_size, block_shape[0], block_shape[1]))
        return cls(
            dense.shape,
            block_shape,
            group_rows_arr,
            col_arr,
            val_arr,
            nnz=int(np.count_nonzero(dense)),
        )

    # -- SparseFormat interface ----------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self._shape

    @property
    def nnz(self) -> int:
        return self._nnz

    @property
    def group_size(self) -> int:
        """The fixed number of block slots per group (``g`` in the paper)."""
        return int(self.block_cols.shape[1]) if self.block_cols.ndim == 2 else 0

    @property
    def num_groups(self) -> int:
        """Number of stored groups (leading axis of the storage arrays)."""
        return int(self.group_rows.shape[0])

    @property
    def num_stored_blocks(self) -> int:
        """Stored block slots including padding."""
        return int(self.block_cols.size)

    def to_dense(self) -> np.ndarray:
        block_rows_size, block_cols_size = self.block_shape
        dense = np.zeros(self._shape, dtype=self.values.dtype)
        for group in range(self.num_groups):
            row = int(self.group_rows[group]) * block_rows_size
            for slot in range(self.group_size):
                col = int(self.block_cols[group, slot]) * block_cols_size
                dense[row : row + block_rows_size, col : col + block_cols_size] += self.values[
                    group, slot
                ]
        return dense

    def tensors(self, name: str) -> dict[str, np.ndarray]:
        return {
            f"{name}V": self.values,
            f"{name}M": self.group_rows,
            f"{name}K": self.block_cols,
        }

    def rewrite_plan(self, name: str, index_names: Sequence[str]) -> OperandRewrite:
        """Rewrite ``A[m,k]`` to ``AV[p,q,bm,bk]`` (Figure 6).

        ``m -> (AM[p], bm)`` and ``k -> (AK[p,q], bk)``; dense operands
        using ``m``/``k`` are viewed with the axis split into
        ``(blocks, block_size)``.
        """
        if len(index_names) != 2:
            raise FormatError(f"BlockGroupCOO stores matrices; got {len(index_names)} indices")
        row_name, col_name = index_names
        existing = set(index_names)
        group_var = IndexVar(_fresh("p", existing))
        within_var = IndexVar(_fresh("q", existing))
        bm_var = IndexVar(_fresh("bm", existing))
        bk_var = IndexVar(_fresh("bk", existing))
        grid = self.grid_shape
        row_access = TensorAccess(tensor=f"{name}M", indices=(group_var,))
        col_access = TensorAccess(tensor=f"{name}K", indices=(group_var, within_var))
        value_access = TensorAccess(
            tensor=f"{name}V", indices=(group_var, within_var, bm_var, bk_var)
        )
        return OperandRewrite(
            operand=name,
            value_access=value_access,
            substitutions={
                row_name: IndexSubstitution(
                    exprs=(row_access, bm_var), split_sizes=(grid[0], self.block_shape[0])
                ),
                col_name: IndexSubstitution(
                    exprs=(col_access, bk_var), split_sizes=(grid[1], self.block_shape[1])
                ),
            },
            tensors=self.tensors(name),
        )

    # -- runtime hooks -------------------------------------------------------------------
    def with_values(self, values: np.ndarray) -> "BlockGroupCOO":
        """Same group/block structure, new block values (the stacking primitive)."""
        return BlockGroupCOO(
            self._shape, self.block_shape, self.group_rows, self.block_cols, values
        )

    def scatter_row_ids(self) -> np.ndarray:
        return self.group_rows

    def select_units(self, selector: np.ndarray) -> "BlockGroupCOO":
        return BlockGroupCOO(
            self._shape,
            self.block_shape,
            self.group_rows[selector],
            self.block_cols[selector],
            self.values[selector],
        )

    # -- storage accounting ------------------------------------------------------------------
    def value_count(self) -> int:
        return int(self.values.size)

    def index_count(self) -> int:
        return int(self.group_rows.size + self.block_cols.size)

    def indirect_access_count(self) -> int:
        """Scatters (one per group) + gathers (one per stored block slot)."""
        return self.num_groups + self.num_stored_blocks

    @property
    def padding_ratio(self) -> float:
        """Fraction of stored block slots that are all-zero padding."""
        total_blocks = self.num_stored_blocks
        if not total_blocks:
            return 0.0
        nonzero_blocks_count = int(np.any(self.values != 0, axis=(2, 3)).sum())
        return 1.0 - nonzero_blocks_count / total_blocks


def _fresh(base: str, existing: set[str]) -> str:
    candidate = base
    while candidate in existing:
        candidate += "_"
    existing.add(candidate)
    return candidate
