"""BCSR (block compressed sparse row), the format used by the TorchBSR baseline.

Like CSR, BCSR keeps a row-pointer array over *block rows*.  That pointer
array costs ``O(N / bM)`` storage and traversal even when a block row is
completely empty, which is why the paper's Figure 10 shows the BCSR-based
TorchBSR baseline losing to BlockGroupCOO in the hypersparse regime.
BCSR's per-row loop bound is data-dependent, so it is *not* a fixed-length
format and cannot be expressed as an indirect Einsum.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ShapeError
from repro.formats.base import SparseFormat
from repro.formats.blocking import nonzero_blocks
from repro.formats.csr import _rows_to_indptr
from repro.utils.arrays import as_index_array, as_value_array


class BCSR(SparseFormat):
    """Block-CSR: ``indptr`` over block rows, block column indices, block values."""

    format_name = "BCSR"
    fixed_length = False

    def __init__(
        self,
        shape: Sequence[int],
        block_shape: tuple[int, int],
        indptr: np.ndarray,
        indices: np.ndarray,
        values: np.ndarray,
    ):
        self._shape = tuple(int(d) for d in shape)
        self.block_shape = (int(block_shape[0]), int(block_shape[1]))
        if len(self._shape) != 2:
            raise ShapeError(f"BCSR is a matrix format; got shape {self._shape}")
        if self._shape[0] % self.block_shape[0] or self._shape[1] % self.block_shape[1]:
            raise ShapeError(
                f"matrix shape {self._shape} is not divisible by block shape {self.block_shape}"
            )
        self.indptr = as_index_array(indptr, name="BCSR indptr")
        self.indices = as_index_array(indices, name="BCSR indices")
        self.values = as_value_array(values, name="BCSR values")
        block_rows = self._shape[0] // self.block_shape[0]
        if self.indptr.shape != (block_rows + 1,):
            raise ShapeError(
                f"indptr must have shape ({block_rows + 1},), got {self.indptr.shape}"
            )
        if self.indptr[0] != 0 or self.indptr[-1] != self.indices.shape[0]:
            raise ShapeError("indptr must start at 0 and end at the number of blocks")
        expected = (self.indices.shape[0], *self.block_shape)
        if self.values.shape != expected:
            raise ShapeError(f"values must have shape {expected}, got {self.values.shape}")

    # -- constructors -------------------------------------------------------------
    @classmethod
    def from_dense(cls, dense: np.ndarray, block_shape: tuple[int, int]) -> "BCSR":
        """Build BCSR from a dense matrix, keeping only nonzero blocks."""
        rows, cols, blocks = nonzero_blocks(dense, block_shape)
        block_rows = dense.shape[0] // block_shape[0]
        order = np.lexsort((cols, rows))
        rows, cols, blocks = rows[order], cols[order], blocks[order]
        indptr = _rows_to_indptr(rows, block_rows)
        return cls(dense.shape, block_shape, indptr, cols, blocks)

    @classmethod
    def from_blockcoo(cls, blockcoo) -> "BCSR":
        """Convert a BlockCOO tensor to BCSR."""
        order = np.lexsort((blockcoo.block_cols, blockcoo.block_rows))
        rows = blockcoo.block_rows[order]
        cols = blockcoo.block_cols[order]
        blocks = blockcoo.values[order]
        block_rows = blockcoo.grid_shape[0]
        indptr = _rows_to_indptr(rows, block_rows)
        return cls(blockcoo.shape, blockcoo.block_shape, indptr, cols, blocks)

    # -- SparseFormat interface --------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self._shape

    @property
    def nnz(self) -> int:
        return int(np.count_nonzero(self.values))

    @property
    def num_blocks(self) -> int:
        """Number of stored nonzero blocks."""
        return int(self.indices.shape[0])

    @property
    def num_block_rows(self) -> int:
        """Number of block rows (the indptr array has one more entry)."""
        return self._shape[0] // self.block_shape[0]

    def block_row_occupancy(self) -> np.ndarray:
        """Nonzero blocks per block row (including empty block rows)."""
        return np.diff(self.indptr)

    def to_dense(self) -> np.ndarray:
        block_rows_size, block_cols_size = self.block_shape
        dense = np.zeros(self._shape, dtype=self.values.dtype)
        for block_row in range(self.num_block_rows):
            start, end = int(self.indptr[block_row]), int(self.indptr[block_row + 1])
            for slot in range(start, end):
                col = int(self.indices[slot]) * block_cols_size
                row = block_row * block_rows_size
                dense[row : row + block_rows_size, col : col + block_cols_size] += self.values[slot]
        return dense

    def tensors(self, name: str) -> dict[str, np.ndarray]:
        return {
            f"{name}P": self.indptr,
            f"{name}K": self.indices,
            f"{name}V": self.values,
        }

    # -- runtime hooks ------------------------------------------------------------
    def with_values(self, values: np.ndarray) -> "BCSR":
        """Same block structure, new block values (the stacking primitive)."""
        return BCSR(self._shape, self.block_shape, self.indptr, self.indices, values)

    def value_count(self) -> int:
        return int(self.values.size)

    def index_count(self) -> int:
        return int(self.indptr.size + self.indices.size)
