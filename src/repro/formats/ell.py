"""ELLPACK (ELL) format: every row padded to the same number of nonzeros."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.einsum.ast import IndexVar, TensorAccess
from repro.core.einsum.rewriting import IndexSubstitution, OperandRewrite
from repro.errors import FormatError, ShapeError
from repro.formats.base import SparseFormat
from repro.utils.arrays import as_index_array, as_value_array


class ELL(SparseFormat):
    """ELL format: ``values``/``columns`` of shape ``(n_rows, width)``.

    ELL avoids storing row coordinates entirely (the row is the position in
    the array), so SpMM in ELL needs no scatter:
    ``C[m,n] += AV[m,q] * B[AK[m,q],n]``.  The price is padding every row to
    the maximum occupancy, which GroupCOO exists to mitigate (Section 4.1).
    """

    format_name = "ELL"
    fixed_length = True

    def __init__(
        self,
        shape: Sequence[int],
        values: np.ndarray,
        columns: np.ndarray,
        occupancy: np.ndarray | None = None,
    ):
        self._shape = tuple(int(d) for d in shape)
        if len(self._shape) != 2:
            raise ShapeError(f"ELL is a matrix format; got shape {self._shape}")
        self.values = as_value_array(values, name="ELL values")
        self.columns = as_index_array(columns, name="ELL columns")
        if self.values.ndim != 2 or self.values.shape[0] != self._shape[0]:
            raise ShapeError(
                f"ELL values must have shape (n_rows, width); got {self.values.shape}"
            )
        if self.columns.shape != self.values.shape:
            raise ShapeError("ELL columns must have the same shape as values")
        if occupancy is None:
            occupancy = np.count_nonzero(self.values, axis=1)
        self.occupancy = as_index_array(occupancy, name="ELL occupancy")

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "ELL":
        """Build ELL from a dense matrix, padding rows to the max occupancy."""
        dense = np.asarray(dense)
        if dense.ndim != 2:
            raise ShapeError(f"ELL.from_dense expects a matrix, got shape {dense.shape}")
        n_rows, _ = dense.shape
        occupancy = np.count_nonzero(dense, axis=1)
        width = int(occupancy.max()) if n_rows else 0
        value_dtype = dense.dtype if dense.dtype.kind == "f" else np.float64
        values = np.zeros((n_rows, width), dtype=value_dtype)
        columns = np.zeros((n_rows, width), dtype=np.int64)
        for row in range(n_rows):
            cols = np.nonzero(dense[row])[0]
            values[row, : cols.size] = dense[row, cols]
            columns[row, : cols.size] = cols
        return cls(dense.shape, values, columns, occupancy)

    # -- SparseFormat interface ---------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self._shape

    @property
    def nnz(self) -> int:
        return int(self.occupancy.sum())

    @property
    def width(self) -> int:
        """Padded row length (maximum occupancy)."""
        return int(self.values.shape[1])

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self._shape, dtype=self.values.dtype)
        for row in range(self._shape[0]):
            occ = int(self.occupancy[row])
            np.add.at(dense[row], self.columns[row, :occ], self.values[row, :occ])
        return dense

    def tensors(self, name: str) -> dict[str, np.ndarray]:
        return {f"{name}V": self.values, f"{name}K": self.columns}

    def rewrite_plan(self, name: str, index_names: Sequence[str]) -> OperandRewrite:
        """Rewrite ``A[m,k]`` to ``AV[m,q]`` with ``k -> AK[m,q]``.

        The row index stays direct (no scatter); only the column index is
        gathered through the padded column array.
        """
        if len(index_names) != 2:
            raise FormatError(f"ELL stores matrices; got {len(index_names)} indices")
        row_name, col_name = index_names
        row_var = IndexVar(row_name)
        within_var = IndexVar(self._within_var_name(index_names))
        col_access = TensorAccess(tensor=f"{name}K", indices=(row_var, within_var))
        value_access = TensorAccess(tensor=f"{name}V", indices=(row_var, within_var))
        return OperandRewrite(
            operand=name,
            value_access=value_access,
            substitutions={col_name: IndexSubstitution(exprs=(col_access,))},
            tensors=self.tensors(name),
        )

    @staticmethod
    def _within_var_name(index_names: Sequence[str]) -> str:
        candidate = "q"
        existing = set(index_names)
        while candidate in existing:
            candidate += "q"
        return candidate

    # -- runtime hooks -------------------------------------------------------------
    def with_values(self, values: np.ndarray) -> "ELL":
        """Same padded columns and occupancy, new values (the stacking primitive).

        Occupancy is carried over, not recomputed: a stacked operand may
        legitimately store an explicit zero in a pattern slot.
        """
        return ELL(self._shape, values, self.columns, self.occupancy)

    # -- storage accounting --------------------------------------------------------
    def value_count(self) -> int:
        return int(self.values.size)

    def index_count(self) -> int:
        return int(self.columns.size)

    @property
    def padding_ratio(self) -> float:
        """Fraction of stored value slots that are padding."""
        total = self.values.size
        return 1.0 - (self.nnz / total) if total else 0.0
