"""Utilities for extracting dense blocks from sparse matrices."""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError


def dense_to_blocks(dense: np.ndarray, block_shape: tuple[int, int]) -> np.ndarray:
    """Reshape a matrix into a 4-D array of blocks ``(Mb, Kb, bM, bK)``.

    Raises if the matrix dimensions are not divisible by the block shape;
    callers that need padding should pad first (the datasets module pads
    its generated matrices to block multiples).
    """
    dense = np.asarray(dense)
    if dense.ndim != 2:
        raise ShapeError(f"expected a matrix, got shape {dense.shape}")
    rows, cols = dense.shape
    block_rows, block_cols = block_shape
    if block_rows <= 0 or block_cols <= 0:
        raise ShapeError(f"block shape must be positive, got {block_shape}")
    if rows % block_rows or cols % block_cols:
        raise ShapeError(
            f"matrix of shape {dense.shape} is not divisible into {block_shape} blocks"
        )
    return (
        dense.reshape(rows // block_rows, block_rows, cols // block_cols, block_cols)
        .transpose(0, 2, 1, 3)
        .copy()
    )


def blocks_to_dense(blocks: np.ndarray) -> np.ndarray:
    """Inverse of :func:`dense_to_blocks`."""
    blocks = np.asarray(blocks)
    if blocks.ndim != 4:
        raise ShapeError(f"expected a (Mb, Kb, bM, bK) array, got shape {blocks.shape}")
    mb, kb, block_rows, block_cols = blocks.shape
    return blocks.transpose(0, 2, 1, 3).reshape(mb * block_rows, kb * block_cols)


def nonzero_blocks(
    dense: np.ndarray, block_shape: tuple[int, int]
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Find the nonzero blocks of a matrix.

    Returns
    -------
    (block_rows, block_cols, block_values):
        Coordinates of each nonzero block (1-D int arrays of length
        ``n_blocks``) and the block values as an array of shape
        ``(n_blocks, bM, bK)``, ordered row-major by block coordinate.
    """
    blocks = dense_to_blocks(dense, block_shape)
    mask = np.any(blocks != 0, axis=(2, 3))
    block_rows, block_cols = np.nonzero(mask)
    return block_rows, block_cols, blocks[block_rows, block_cols]


def block_occupancy(dense: np.ndarray, block_shape: tuple[int, int]) -> np.ndarray:
    """Number of nonzero blocks per block-row (``occ`` for block formats)."""
    blocks = dense_to_blocks(dense, block_shape)
    mask = np.any(blocks != 0, axis=(2, 3))
    return mask.sum(axis=1)
