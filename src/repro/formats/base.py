"""Abstract base class shared by all sparse formats."""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from repro.core.einsum.rewriting import OperandRewrite
from repro.errors import FormatError


class SparseFormat(abc.ABC):
    """Common interface of every sparse format in the repro package.

    A format owns the *data* (nonzero values) and *metadata* (coordinates,
    pointers, group structure) of one sparse tensor, knows how to convert
    to/from a dense array, and — for fixed-length formats — knows how to
    describe itself to the Einsum rewriter via :meth:`rewrite_plan`.
    """

    #: Human-readable format name, e.g. ``"GroupCOO"``.
    format_name: str = "Sparse"

    #: Whether the format has fixed loop bounds and can therefore be used
    #: directly in an indirect Einsum (Section 4).
    fixed_length: bool = True

    @property
    @abc.abstractmethod
    def shape(self) -> tuple[int, ...]:
        """Logical dense shape of the tensor."""

    @property
    @abc.abstractmethod
    def nnz(self) -> int:
        """Number of stored, non-padding nonzero entries."""

    @abc.abstractmethod
    def to_dense(self) -> np.ndarray:
        """Materialise the tensor as a dense NumPy array."""

    @abc.abstractmethod
    def tensors(self, name: str) -> dict[str, np.ndarray]:
        """Data/metadata arrays keyed by the names used in indirect Einsums.

        ``name`` is the operand name in the user's Einsum (e.g. ``"A"``),
        so COO over indices ``(m, k)`` produces ``{"AV": ..., "AM": ...,
        "AK": ...}`` exactly as written in the paper.
        """

    def rewrite_plan(self, name: str, index_names: Sequence[str]) -> OperandRewrite:
        """Build the rewrite plan turning ``name[index_names]`` into this format.

        Fixed-length formats override this.  Variable-length formats raise,
        explaining the limitation described in Section 4 of the paper.
        """
        raise FormatError(
            f"{self.format_name} is not a fixed-length format: its loop bounds depend on data "
            "values (per-row nonzero counts), which cannot be expressed as an indirect Einsum. "
            "Convert to COO, ELL, GroupCOO, BlockCOO, or BlockGroupCOO first."
        )

    # -- runtime hooks ------------------------------------------------------
    # These three hooks power the serving runtime (repro.runtime): stacking
    # same-pattern operands (StackedSparse) and row-partitioning the output
    # iteration space (ShardedExecutor).  Formats opt in by overriding.
    def with_values(self, values: np.ndarray) -> "SparseFormat":
        """A copy of this format with its value array replaced.

        Metadata (coordinates, pointers, group structure) is shared with
        the original — the new instance describes the *same sparsity
        pattern* over different values.
        """
        raise FormatError(
            f"{self.format_name} does not support value replacement; implement with_values "
            "to enable stacking"
        )

    def scatter_row_ids(self) -> np.ndarray:
        """Output-row coordinate of every stored unit, in storage order.

        A *unit* is one entry of the leading storage axis (a nonzero for
        COO, a group for GroupCOO/BlockGroupCOO, a block for BlockCOO).
        Used by the sharded executor to row-partition the iteration space
        so that shard outputs have disjoint row support.
        """
        raise FormatError(
            f"{self.format_name} does not expose per-unit output rows; sharded execution "
            "falls back to sequential for this format"
        )

    def select_units(self, selector: np.ndarray) -> "SparseFormat":
        """A copy restricted to the selected storage units (same logical shape).

        ``selector`` is a boolean mask or integer index array over the
        leading storage axis.  Relative storage order is preserved, which
        keeps per-row accumulation order identical to the unsharded run.
        """
        raise FormatError(
            f"{self.format_name} does not support unit selection; sharded execution "
            "falls back to sequential for this format"
        )

    def fingerprint(self) -> tuple:
        """Identity fingerprint of this operand's sparsity *pattern*.

        Combines the format class, logical shape, value-array signature,
        and the identity tokens of the metadata arrays (values excluded) —
        see :func:`repro.engine.fingerprint.pattern_fingerprint`.  Two
        instances share a fingerprint exactly when they reference the same
        live metadata arrays, which is what the serving runtime's
        same-plan request coalescing keys on.  Memoized per instance
        (formats are immutable).
        """
        cached = getattr(self, "_fingerprint_memo", None)
        if cached is None:
            from repro.engine.fingerprint import pattern_fingerprint

            cached = pattern_fingerprint(self)
            self._fingerprint_memo = cached
        return cached

    # -- storage accounting -------------------------------------------------
    def value_count(self) -> int:
        """Number of stored value slots, including padding."""
        return self.nnz

    def index_count(self) -> int:
        """Number of stored metadata (index/pointer) slots."""
        return 0

    def memory_bytes(self, value_itemsize: int = 4, index_itemsize: int = 4) -> int:
        """Approximate storage footprint of the format in bytes."""
        return self.value_count() * value_itemsize + self.index_count() * index_itemsize

    # -- niceties -------------------------------------------------------------
    @property
    def density(self) -> float:
        """Fraction of logically nonzero entries."""
        total = 1
        for dim in self.shape:
            total *= dim
        return self.nnz / total if total else 0.0

    @property
    def sparsity(self) -> float:
        """Fraction of zero entries (1 - density)."""
        return 1.0 - self.density

    def __repr__(self) -> str:
        dims = "x".join(str(d) for d in self.shape)
        return f"{self.format_name}(shape={dims}, nnz={self.nnz})"
