"""BlockCOO: COO over dense blocks (Figure 5 of the paper)."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.einsum.ast import IndexVar, TensorAccess
from repro.core.einsum.rewriting import IndexSubstitution, OperandRewrite
from repro.errors import FormatError, ShapeError
from repro.formats.base import SparseFormat
from repro.formats.blocking import nonzero_blocks
from repro.utils.arrays import as_index_array, as_value_array


class BlockCOO(SparseFormat):
    """Block-sparse COO: block coordinates plus dense block values.

    Attributes
    ----------
    block_rows / block_cols:
        Shape ``(n_blocks,)`` — the block coordinates (``AM``/``AK``).
    values:
        Shape ``(n_blocks, bM, bK)`` — the dense blocks (``AV``).
    """

    format_name = "BlockCOO"
    fixed_length = True

    def __init__(
        self,
        shape: Sequence[int],
        block_shape: tuple[int, int],
        block_rows: np.ndarray,
        block_cols: np.ndarray,
        values: np.ndarray,
    ):
        self._shape = tuple(int(d) for d in shape)
        self.block_shape = (int(block_shape[0]), int(block_shape[1]))
        if len(self._shape) != 2:
            raise ShapeError(f"BlockCOO is a matrix format; got shape {self._shape}")
        if self._shape[0] % self.block_shape[0] or self._shape[1] % self.block_shape[1]:
            raise ShapeError(
                f"matrix shape {self._shape} is not divisible by block shape {self.block_shape}"
            )
        self.block_rows = as_index_array(block_rows, name="BlockCOO block rows")
        self.block_cols = as_index_array(block_cols, name="BlockCOO block cols")
        self.values = as_value_array(values, name="BlockCOO values")
        n_blocks = self.block_rows.shape[0]
        if self.block_cols.shape != (n_blocks,):
            raise ShapeError("block rows and block cols must have the same length")
        expected = (n_blocks, *self.block_shape)
        if self.values.shape != expected:
            raise ShapeError(f"block values must have shape {expected}, got {self.values.shape}")
        grid = self.grid_shape
        if n_blocks and (self.block_rows.max() >= grid[0] or self.block_cols.max() >= grid[1]):
            raise ShapeError(f"block coordinates fall outside the {grid} block grid")

    @property
    def grid_shape(self) -> tuple[int, int]:
        """Number of blocks along each dimension ``(Mb, Kb)``."""
        return (
            self._shape[0] // self.block_shape[0],
            self._shape[1] // self.block_shape[1],
        )

    # -- constructors -----------------------------------------------------------
    @classmethod
    def from_dense(cls, dense: np.ndarray, block_shape: tuple[int, int]) -> "BlockCOO":
        """Build BlockCOO from a dense matrix, keeping only nonzero blocks."""
        rows, cols, blocks = nonzero_blocks(dense, block_shape)
        return cls(dense.shape, block_shape, rows, cols, blocks)

    # -- SparseFormat interface -----------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self._shape

    @property
    def nnz(self) -> int:
        return int(np.count_nonzero(self.values))

    @property
    def num_blocks(self) -> int:
        """Number of stored nonzero blocks."""
        return int(self.block_rows.shape[0])

    def to_dense(self) -> np.ndarray:
        block_rows_size, block_cols_size = self.block_shape
        dense = np.zeros(self._shape, dtype=self.values.dtype)
        for b in range(self.num_blocks):
            row = int(self.block_rows[b]) * block_rows_size
            col = int(self.block_cols[b]) * block_cols_size
            dense[row : row + block_rows_size, col : col + block_cols_size] += self.values[b]
        return dense

    def tensors(self, name: str) -> dict[str, np.ndarray]:
        return {
            f"{name}V": self.values,
            f"{name}M": self.block_rows,
            f"{name}K": self.block_cols,
        }

    def rewrite_plan(self, name: str, index_names: Sequence[str]) -> OperandRewrite:
        """Rewrite ``A[m,k]`` to ``AV[p,bm,bk]``; ``m``/``k`` split into block + offset.

        ``m -> (AM[p], bm)`` and ``k -> (AK[p], bk)``: dense tensors using
        ``m`` or ``k`` must be viewed with that axis split into
        ``(blocks, block_size)``, which the rewriter computes from the
        split sizes recorded here (Figure 5).
        """
        if len(index_names) != 2:
            raise FormatError(f"BlockCOO stores matrices; got {len(index_names)} indices")
        row_name, col_name = index_names
        existing = set(index_names)
        block_var = IndexVar(_fresh("p", existing))
        bm_var = IndexVar(_fresh("bm", existing))
        bk_var = IndexVar(_fresh("bk", existing))
        grid = self.grid_shape
        row_access = TensorAccess(tensor=f"{name}M", indices=(block_var,))
        col_access = TensorAccess(tensor=f"{name}K", indices=(block_var,))
        value_access = TensorAccess(tensor=f"{name}V", indices=(block_var, bm_var, bk_var))
        return OperandRewrite(
            operand=name,
            value_access=value_access,
            substitutions={
                row_name: IndexSubstitution(
                    exprs=(row_access, bm_var), split_sizes=(grid[0], self.block_shape[0])
                ),
                col_name: IndexSubstitution(
                    exprs=(col_access, bk_var), split_sizes=(grid[1], self.block_shape[1])
                ),
            },
            tensors=self.tensors(name),
        )

    # -- runtime hooks ------------------------------------------------------------
    def with_values(self, values: np.ndarray) -> "BlockCOO":
        """Same block coordinates, new block values (the stacking primitive)."""
        return BlockCOO(self._shape, self.block_shape, self.block_rows, self.block_cols, values)

    def scatter_row_ids(self) -> np.ndarray:
        return self.block_rows

    def select_units(self, selector: np.ndarray) -> "BlockCOO":
        return BlockCOO(
            self._shape,
            self.block_shape,
            self.block_rows[selector],
            self.block_cols[selector],
            self.values[selector],
        )

    # -- storage accounting -----------------------------------------------------------
    def value_count(self) -> int:
        return int(self.values.size)

    def index_count(self) -> int:
        return int(self.block_rows.size + self.block_cols.size)


def _fresh(base: str, existing: set[str]) -> str:
    candidate = base
    while candidate in existing:
        candidate += "_"
    existing.add(candidate)
    return candidate
