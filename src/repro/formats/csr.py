"""Compressed Sparse Row (CSR) format.

CSR is *not* a fixed-length format: iterating a row requires a loop whose
bound is ``indptr[m+1] - indptr[m]``, a data value, which indirect Einsums
cannot express (Section 4).  It is provided here because the baselines
(cuSPARSE-like and Sputnik-like SpMM) operate on CSR and because GroupCOO
construction starts from per-row occupancy counts that CSR makes explicit.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ShapeError
from repro.formats.base import SparseFormat
from repro.utils.arrays import as_index_array, as_value_array


def _rows_to_indptr(rows: np.ndarray, n_rows: int) -> np.ndarray:
    """CSR ``indptr`` from (sorted) row coordinates via one ``bincount``.

    Replaces the former ``np.add.at`` histogram: ``bincount`` computes the
    per-row counts in one vectorised pass instead of one scattered update
    per nonzero.
    """
    counts = np.bincount(rows, minlength=n_rows) if rows.size else np.zeros(n_rows, dtype=np.int64)
    indptr = np.zeros(n_rows + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return indptr


class CSR(SparseFormat):
    """Classic CSR: ``indptr`` (n_rows + 1), ``indices`` (nnz), ``data`` (nnz)."""

    format_name = "CSR"
    fixed_length = False

    def __init__(
        self,
        shape: Sequence[int],
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
    ):
        self._shape = tuple(int(d) for d in shape)
        if len(self._shape) != 2:
            raise ShapeError(f"CSR is a matrix format; got shape {self._shape}")
        self.indptr = as_index_array(indptr, name="CSR indptr")
        self.indices = as_index_array(indices, name="CSR indices")
        self.data = as_value_array(data, name="CSR data")
        n_rows = self._shape[0]
        if self.indptr.shape != (n_rows + 1,):
            raise ShapeError(
                f"indptr must have shape ({n_rows + 1},), got {self.indptr.shape}"
            )
        if self.indptr[0] != 0 or self.indptr[-1] != self.indices.shape[0]:
            raise ShapeError("indptr must start at 0 and end at nnz")
        if np.any(np.diff(self.indptr) < 0):
            raise ShapeError("indptr must be non-decreasing")
        if self.indices.shape != self.data.shape:
            raise ShapeError("indices and data must have the same length")
        if self.indices.size and (self.indices.min() < 0 or self.indices.max() >= self._shape[1]):
            raise ShapeError(f"column indices fall outside [0, {self._shape[1]})")

    # -- constructors ---------------------------------------------------------
    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "CSR":
        """Build CSR from a dense matrix, keeping only nonzeros (row-sorted)."""
        dense = np.asarray(dense)
        if dense.ndim != 2:
            raise ShapeError(f"CSR.from_dense expects a matrix, got shape {dense.shape}")
        rows, cols = np.nonzero(dense)
        data = dense[rows, cols]
        indptr = _rows_to_indptr(rows, dense.shape[0])
        return cls(dense.shape, indptr, cols, data)

    @classmethod
    def from_coo(cls, coo) -> "CSR":
        """Convert a 2-D COO tensor (possibly unsorted) to CSR."""
        if len(coo.shape) != 2:
            raise ShapeError("CSR.from_coo expects a rank-2 COO tensor")
        order = np.lexsort((coo.coords[1], coo.coords[0]))
        rows = coo.coords[0][order]
        cols = coo.coords[1][order]
        data = coo.values[order]
        indptr = _rows_to_indptr(rows, coo.shape[0])
        return cls(coo.shape, indptr, cols, data)

    # -- SparseFormat interface --------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self._shape

    @property
    def nnz(self) -> int:
        return int(self.data.shape[0])

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self._shape, dtype=self.data.dtype)
        for row in range(self._shape[0]):
            start, end = self.indptr[row], self.indptr[row + 1]
            np.add.at(dense[row], self.indices[start:end], self.data[start:end])
        return dense

    def tensors(self, name: str) -> dict[str, np.ndarray]:
        return {
            f"{name}P": self.indptr,
            f"{name}K": self.indices,
            f"{name}V": self.data,
        }

    # -- runtime hooks ------------------------------------------------------------
    def with_values(self, values: np.ndarray) -> "CSR":
        """Same pointers and columns, new data (the stacking primitive)."""
        return CSR(self._shape, self.indptr, self.indices, values)

    def value_count(self) -> int:
        return self.nnz

    def index_count(self) -> int:
        return self.nnz + self._shape[0] + 1

    # -- helpers ----------------------------------------------------------------
    def row_occupancy(self) -> np.ndarray:
        """Number of nonzeros per row (``occ`` in Section 4.2)."""
        return np.diff(self.indptr)

    def to_coo(self):
        """Convert back to COO (row-sorted)."""
        from repro.formats.coo import COO

        rows = np.repeat(np.arange(self._shape[0]), self.row_occupancy())
        return COO(self._shape, self.data, (rows, self.indices))
