"""Sparse tensor formats used with indirect Einsums (Section 4 of the paper).

Fixed-length formats (COO, ELL, GroupCOO, BlockCOO, BlockGroupCOO) can be
expressed directly as indirect Einsums; variable-length formats (CSR, BCSR)
are provided for the baselines and for conversion, and explain *why* they
cannot be expressed (their loop bounds depend on data values).
"""

from repro.formats.base import SparseFormat
from repro.formats.coo import COO
from repro.formats.csr import CSR
from repro.formats.ell import ELL
from repro.formats.bcsr import BCSR
from repro.formats.blockcoo import BlockCOO
from repro.formats.groupcoo import GroupCOO
from repro.formats.blockgroupcoo import BlockGroupCOO
from repro.formats.group_size import (
    GroupSizeModel,
    exact_indirect_access_count,
    optimal_group_size,
    relaxed_indirect_access_count,
    select_group_size,
)
from repro.formats.blocking import dense_to_blocks, nonzero_blocks

__all__ = [
    "SparseFormat",
    "COO",
    "CSR",
    "ELL",
    "BCSR",
    "BlockCOO",
    "GroupCOO",
    "BlockGroupCOO",
    "GroupSizeModel",
    "exact_indirect_access_count",
    "relaxed_indirect_access_count",
    "optimal_group_size",
    "select_group_size",
    "dense_to_blocks",
    "nonzero_blocks",
]
