"""Group-size selection for GroupCOO-style formats (Section 4.2).

The paper models the cost of a grouped format by the total number of
indirect memory accesses (gathers of column coordinates plus scatters of
group row coordinates)::

    F(g) = sum_i ceil(occ_i / g)          # AM: one scatter per group
         + g * sum_i ceil(occ_i / g)      # AK: one gather per slot
         = (g + 1) * sum_i ceil(occ_i / g)

where ``occ_i`` is the number of nonzeros in row ``i``.  Relaxing the
ceiling gives the closed-form estimate ``g* = sqrt(S / n)`` with
``S = sum_i occ_i``, which is then rounded to nearby powers of two because
the Triton backend prefers power-of-two block sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.utils.arrays import ceil_div, next_power_of_two, prev_power_of_two


def exact_indirect_access_count(occupancy: Sequence[int] | np.ndarray, group_size: int) -> int:
    """The exact cost model ``F(g)`` from Section 4.2.

    Parameters
    ----------
    occupancy:
        Nonzeros per row (``occ`` in the paper; Figure 4 uses [3, 1, 1, 2]).
    group_size:
        Candidate group size ``g`` (>= 1).
    """
    if group_size < 1:
        raise ValueError(f"group size must be >= 1, got {group_size}")
    occ = np.asarray(occupancy, dtype=np.int64)
    groups = int(sum(ceil_div(int(o), group_size) for o in occ if o > 0))
    return (group_size + 1) * groups


def relaxed_indirect_access_count(
    occupancy: Sequence[int] | np.ndarray, group_size: float
) -> float:
    """The relaxed cost model ``F~(g) = S + S/g + n*g + n`` from Section 4.2."""
    if group_size <= 0:
        raise ValueError(f"group size must be positive, got {group_size}")
    occ = np.asarray(occupancy, dtype=np.int64)
    n = int((occ > 0).sum()) if occ.size else 0
    total = int(occ.sum())
    return total + total / group_size + n * group_size + n


def optimal_group_size(occupancy: Sequence[int] | np.ndarray) -> float:
    """Closed-form minimiser ``g* = sqrt(S / n)`` of the relaxed cost model.

    ``n`` counts only the rows that actually contain nonzeros: empty rows
    contribute neither groups nor gathers, so including them would bias the
    estimate toward overly small groups on hypersparse matrices.
    """
    occ = np.asarray(occupancy, dtype=np.int64)
    nonempty = occ[occ > 0]
    if nonempty.size == 0:
        return 1.0
    total = float(nonempty.sum())
    return float(np.sqrt(total / nonempty.size))


def power_of_two_candidates(g_star: float, max_group: int | None = None) -> list[int]:
    """Power-of-two group sizes bracketing ``g*`` (Section 4.2 heuristic)."""
    if g_star < 1.0:
        candidates = [1]
    else:
        lo = prev_power_of_two(max(1, int(np.floor(g_star))))
        hi = next_power_of_two(max(1, int(np.ceil(g_star))))
        candidates = sorted({lo, hi, max(1, lo // 2), hi * 2})
    if max_group is not None:
        candidates = [c for c in candidates if c <= max_group] or [1]
    return candidates


def select_group_size(
    occupancy: Sequence[int] | np.ndarray,
    runtime_fn: Callable[[int], float] | None = None,
    max_group: int | None = None,
) -> int:
    """Pick a group size using the paper's heuristic.

    First computes ``g* = sqrt(S/n)``, then evaluates the nearby
    power-of-two candidates.

    Parameters
    ----------
    occupancy:
        Nonzeros per row (``occ`` in the paper).
    runtime_fn:
        Optional callable returning a measured/modelled runtime for a
        candidate ``g``; when given, the best-by-runtime candidate wins,
        mirroring the paper's "round to the nearest power-of-two values
        and select the one with the best runtime".  Without it,
        candidates are ranked by the exact indirect-access count ``F(g)``.
    max_group:
        Upper bound on the candidate group sizes (defaults to the next
        power of two above the maximum row occupancy).
    """
    occ = np.asarray(occupancy, dtype=np.int64)
    if max_group is None and occ.size:
        max_occ = int(occ.max())
        max_group = max(1, next_power_of_two(max(1, max_occ)))
    g_star = optimal_group_size(occ)
    candidates = power_of_two_candidates(g_star, max_group=max_group)
    score = runtime_fn if runtime_fn is not None else (
        lambda g: float(exact_indirect_access_count(occ, g))
    )
    return min(candidates, key=score)


@dataclass
class GroupSizeModel:
    """Convenience wrapper bundling the cost curves for a given occupancy.

    Used by the Figure 7 benchmark to sweep group sizes and report the
    correlation between runtime, indirect accesses, and format size.
    """

    occupancy: np.ndarray

    def __post_init__(self) -> None:
        self.occupancy = np.asarray(self.occupancy, dtype=np.int64)

    @property
    def total_nonzeros(self) -> int:
        """Total nonzeros ``S = Σᵢ occᵢ``."""
        return int(self.occupancy.sum())

    @property
    def g_star(self) -> float:
        """The closed-form group-size estimate ``√(S/n)``."""
        return optimal_group_size(self.occupancy)

    def exact_cost(self, group_size: int) -> int:
        """The exact indirect-access count ``F(g)`` for this occupancy."""
        return exact_indirect_access_count(self.occupancy, group_size)

    def relaxed_cost(self, group_size: float) -> float:
        """The relaxed (continuous) cost ``F~(g)`` for this occupancy."""
        return relaxed_indirect_access_count(self.occupancy, group_size)

    def padded_slots(self, group_size: int) -> int:
        """Total stored value slots after padding each row to a multiple of g."""
        return int(
            sum(ceil_div(int(o), group_size) * group_size for o in self.occupancy if o > 0)
        )

    def format_size(self, group_size: int, value_slot_elems: int = 1) -> int:
        """Stored elements of AM + AK + AV for group size ``g``.

        ``value_slot_elems`` scales the AV contribution for block formats,
        where each slot stores an entire ``bM x bK`` block.
        """
        groups = int(sum(ceil_div(int(o), group_size) for o in self.occupancy if o > 0))
        padded = self.padded_slots(group_size)
        return groups + padded + padded * value_slot_elems

    def sweep(self, group_sizes: Sequence[int]) -> dict[int, dict[str, float]]:
        """Evaluate the cost curves over a range of group sizes."""
        out: dict[int, dict[str, float]] = {}
        for g in group_sizes:
            out[int(g)] = {
                "indirect_accesses": float(self.exact_cost(int(g))),
                "relaxed": self.relaxed_cost(int(g)),
                "format_size": float(self.format_size(int(g))),
            }
        return out
