"""Sparsity profiling: the tuner's view of an operand.

The cost model never looks at an operand directly — it looks at a
:class:`SparsityProfile`, a compact structural summary extracted once per
operand (or once per profile *bucket* in the serving runtime):

* global statistics — shape, nnz, density;
* the row-occupancy distribution (mean / max / coefficient of variation and
  a fixed-quantile histogram), which drives the ELL-padding and
  GroupCOO-group-size terms of the cost model;
* a *block-alignment score* per candidate block shape: the fill fraction of
  the nonzero blocks, ``nnz / (num_nonzero_blocks * bM * bK)``.  Perfectly
  block-structured data scores 1.0; unstructured data scores roughly its
  own density, so the score separates the two regimes sharply;
* the Section 4.2 group-size estimate ``g* = sqrt(S / n)`` (via
  :func:`repro.formats.group_size.optimal_group_size`).

All row-level statistics are computed from the *multiset* of row
occupancies, so they are invariant under row permutation — the property
the unstructured-format cost terms rely on (and that
``tests/tuner/test_profile.py`` checks).  Block scores are intentionally
**not** permutation-invariant: permuting rows destroys block structure,
and the profile must notice.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import FormatError
from repro.formats.base import SparseFormat
from repro.formats.group_size import optimal_group_size
from repro.utils.arrays import round_to_power_of_two

#: Block shapes the profiler scores (when they divide the matrix shape).
CANDIDATE_BLOCK_SHAPES: tuple[tuple[int, int], ...] = ((4, 4), (8, 8), (16, 16), (32, 32))

#: Quantiles of the row-occupancy distribution stored in the profile.
_HISTOGRAM_QUANTILES: tuple[float, ...] = (0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0)


@dataclass(frozen=True)
class BlockProfile:
    """Block-level statistics of one candidate block shape.

    Attributes
    ----------
    fill:
        Fraction of the stored block volume that is nonzero —
        ``nnz / (num_blocks * bM * bK)``.  1.0 for perfectly
        block-structured data, ≈ density for unstructured data.
    num_blocks:
        Number of blocks containing at least one nonzero.
    nonempty_rows:
        Number of block rows containing at least one nonzero block.
    row_max:
        Maximum nonzero blocks in any block row.
    g_star:
        Section 4.2 group-size estimate over the *block*-row occupancy
        (feeds BlockGroupCOO candidate enumeration).
    """

    fill: float
    num_blocks: int
    nonempty_rows: int
    row_max: int
    g_star: float


@dataclass(frozen=True)
class SparsityProfile:
    """Structural summary of one sparse operand.

    Attributes
    ----------
    shape:
        Logical dense shape ``(rows, cols)``.
    nnz:
        Number of structurally nonzero entries.
    density:
        ``nnz / (rows * cols)``.
    nonempty_rows:
        Number of rows holding at least one nonzero.
    row_mean / row_max / row_cv:
        Mean, maximum, and coefficient of variation (std / mean) of the
        per-row nonzero counts over **nonempty** rows.  All three are
        invariant under row permutation.
    row_quantiles:
        Fixed quantiles (:data:`_HISTOGRAM_QUANTILES`) of the nonempty-row
        occupancy distribution — a permutation-invariant histogram.
    g_star:
        The Section 4.2 closed-form group-size estimate ``sqrt(S / n)``.
    blocks:
        ``{(bM, bK): BlockProfile}`` for every candidate block shape
        dividing the matrix.
    occupancy:
        The full per-row nonzero counts (row order preserved).  Excluded
        from equality/hashing; the cost model uses it for exact padded-slot
        counts.
    """

    shape: tuple[int, int]
    nnz: int
    density: float
    nonempty_rows: int
    row_mean: float
    row_max: int
    row_cv: float
    row_quantiles: tuple[float, ...]
    g_star: float
    blocks: dict[tuple[int, int], BlockProfile] = field(compare=False)
    occupancy: np.ndarray = field(compare=False, repr=False)

    @property
    def block_scores(self) -> dict[tuple[int, int], float]:
        """``{block_shape: fill}`` — the alignment score per block shape."""
        return {shape: stats.fill for shape, stats in self.blocks.items()}

    # -- derived views -------------------------------------------------------
    def unstructured_key(self) -> tuple:
        """The permutation-invariant slice of the profile.

        Everything derived from the row-occupancy *multiset* plus the
        global statistics — equal for any row permutation of the same
        matrix.  Used by the property tests and by cost terms that must not
        depend on row order.
        """
        return (
            self.shape,
            self.nnz,
            round(self.density, 12),
            self.nonempty_rows,
            round(self.row_mean, 9),
            self.row_max,
            round(self.row_cv, 9),
            tuple(round(q, 9) for q in self.row_quantiles),
            round(self.g_star, 9),
        )

    def best_block_shape(self, min_fill: float = 0.25) -> tuple[int, int] | None:
        """The candidate block shape with the highest alignment payoff.

        Blocks are ranked by ``fill^2 * block_volume`` — a large block
        amortises more per-block metadata, but only when it is actually
        filled — and shapes below ``min_fill`` are rejected.  Returns
        ``None`` when no shape qualifies (unstructured data).
        """
        best: tuple[int, int] | None = None
        best_rank = 0.0
        for block_shape, fill in self.block_scores.items():
            if fill < min_fill:
                continue
            rank = fill * fill * block_shape[0] * block_shape[1]
            if rank > best_rank:
                best_rank = rank
                best = block_shape
        return best

    def bucket(self) -> tuple:
        """A coarse, hashable key grouping structurally-similar operands.

        The serving runtime caches tuner decisions — and keys compiled
        plans — by this bucket, so requests with the *same shape but a
        different sparsity regime* get their own format decision and their
        own compiled kernel, while near-identical requests share both.

        The bucket quantises density (half-decades), row skew (cv rounded
        to halves), the group-size estimate (nearest power of two), and
        the best block shape.
        """
        density_bucket = (
            int(round(2 * np.log10(self.density))) if self.density > 0 else -99
        )
        cv_bucket = round(2 * self.row_cv) / 2
        g_bucket = round_to_power_of_two(max(self.g_star, 1.0))
        return (
            self.shape,
            density_bucket,
            cv_bucket,
            g_bucket,
            self.best_block_shape(),
        )


# ---------------------------------------------------------------------------
# Coordinate extraction (every format, without densifying)
# ---------------------------------------------------------------------------
def _matrix_coords(operand) -> tuple[tuple[int, int], np.ndarray, np.ndarray]:
    """``(shape, rows, cols)`` of the structural nonzeros of a 2-D operand.

    Works on dense arrays and on every concrete format in
    :mod:`repro.formats` in O(nnz) without materialising a dense array.
    Padding slots (explicit zeros in padded formats) are excluded.
    """
    from repro.formats.bcsr import BCSR
    from repro.formats.blockcoo import BlockCOO
    from repro.formats.blockgroupcoo import BlockGroupCOO
    from repro.formats.coo import COO
    from repro.formats.csr import CSR
    from repro.formats.ell import ELL
    from repro.formats.groupcoo import GroupCOO

    if isinstance(operand, COO):
        if len(operand.shape) != 2:
            raise FormatError(f"the tuner profiles matrices; got shape {operand.shape}")
        keep = operand.values != 0
        return operand.shape, operand.coords[0][keep], operand.coords[1][keep]
    if isinstance(operand, CSR):
        rows = np.repeat(np.arange(operand.shape[0]), operand.row_occupancy())
        keep = operand.data != 0
        return operand.shape, rows[keep], operand.indices[keep]
    if isinstance(operand, ELL):
        width = operand.columns.shape[1]
        mask = np.arange(width) < np.asarray(operand.occupancy)[:, None]
        return operand.shape, np.nonzero(mask)[0], operand.columns[mask]
    if isinstance(operand, GroupCOO):
        mask = operand.values != 0
        group_of_slot = np.broadcast_to(
            operand.group_rows[:, None], operand.values.shape
        )
        return operand.shape, group_of_slot[mask], operand.columns[mask]
    if isinstance(operand, (BlockCOO, BCSR, BlockGroupCOO)):
        # Expand block coordinates to element coordinates of the nonzeros.
        block_rows_size, block_cols_size = operand.block_shape
        if isinstance(operand, BlockCOO):
            b_rows, b_cols, blocks = operand.block_rows, operand.block_cols, operand.values
        elif isinstance(operand, BCSR):
            counts = np.diff(operand.indptr)
            b_rows = np.repeat(np.arange(counts.size), counts)
            b_cols, blocks = operand.indices, operand.values
        else:
            mask_any = np.ones(operand.block_cols.shape, dtype=bool)
            b_rows = np.broadcast_to(
                operand.group_rows[:, None], operand.block_cols.shape
            )[mask_any]
            b_cols = operand.block_cols[mask_any]
            blocks = operand.values.reshape(-1, block_rows_size, block_cols_size)
        mask = blocks != 0
        slot, local_r, local_c = np.nonzero(mask)
        rows = np.asarray(b_rows)[slot] * block_rows_size + local_r
        cols = np.asarray(b_cols)[slot] * block_cols_size + local_c
        return operand.shape, rows, cols

    dense = np.asarray(operand)
    if dense.ndim != 2:
        raise FormatError(f"the tuner profiles matrices; got an array of shape {dense.shape}")
    rows, cols = np.nonzero(dense)
    return dense.shape, rows, cols


# ---------------------------------------------------------------------------
# Profile construction
# ---------------------------------------------------------------------------
def profile_operand(operand, block_shapes=CANDIDATE_BLOCK_SHAPES) -> SparsityProfile:
    """Extract a :class:`SparsityProfile` from a dense array or sparse format.

    Parameters
    ----------
    operand:
        A 2-D dense :class:`numpy.ndarray` or any concrete
        :class:`~repro.formats.base.SparseFormat` (including the
        variable-length CSR/BCSR — they can be profiled even though they
        cannot execute as indirect Einsums).
    block_shapes:
        Candidate block shapes to score; shapes not dividing the matrix
        shape are skipped.

    Returns
    -------
    SparsityProfile
        The structural summary consumed by the cost model, candidate
        enumeration, and the decision cache.
    """
    if isinstance(operand, SparseFormat) and operand.format_name == "StackedSparse":
        # Profile the shared pattern; values come from the base operand.
        operand = operand.base  # type: ignore[attr-defined]
    memo_key = tuple(block_shapes)
    if isinstance(operand, SparseFormat):
        # Formats are immutable, so the profile is a per-instance constant:
        # memoize it so a server re-profiling the same operand on every
        # request pays the O(nnz) extraction once.
        cached = getattr(operand, "_profile_memo", None)
        if cached is not None and cached[0] == memo_key:
            return cached[1]
    shape, rows, cols = _matrix_coords(operand)
    n_rows, n_cols = shape
    nnz = int(rows.size)
    total = n_rows * n_cols
    density = nnz / total if total else 0.0

    occupancy = np.bincount(rows, minlength=n_rows) if nnz else np.zeros(n_rows, dtype=np.int64)
    nonempty = occupancy[occupancy > 0]
    if nonempty.size:
        row_mean = float(nonempty.mean())
        row_max = int(nonempty.max())
        row_std = float(nonempty.std())
        row_cv = row_std / row_mean if row_mean else 0.0
        quantiles = tuple(
            float(q) for q in np.quantile(nonempty, _HISTOGRAM_QUANTILES)
        )
    else:
        row_mean, row_max, row_cv = 0.0, 0, 0.0
        quantiles = tuple(0.0 for _ in _HISTOGRAM_QUANTILES)

    blocks: dict[tuple[int, int], BlockProfile] = {}
    for block_shape in block_shapes:
        bm, bk = block_shape
        if n_rows % bm or n_cols % bk or not nnz:
            continue
        grid_cols = n_cols // bk
        block_ids = (rows // bm) * grid_cols + (cols // bk)
        unique_blocks = np.unique(block_ids)
        num_blocks = int(unique_blocks.size)
        block_occ = np.bincount(unique_blocks // grid_cols, minlength=n_rows // bm)
        nonempty_block_rows = block_occ[block_occ > 0]
        blocks[block_shape] = BlockProfile(
            fill=nnz / (num_blocks * bm * bk),
            num_blocks=num_blocks,
            nonempty_rows=int(nonempty_block_rows.size),
            row_max=int(nonempty_block_rows.max()) if nonempty_block_rows.size else 0,
            g_star=float(optimal_group_size(block_occ)),
        )

    profile = SparsityProfile(
        shape=(int(n_rows), int(n_cols)),
        nnz=nnz,
        density=density,
        nonempty_rows=int(nonempty.size),
        row_mean=row_mean,
        row_max=row_max,
        row_cv=row_cv,
        row_quantiles=quantiles,
        g_star=float(optimal_group_size(occupancy)),
        blocks=blocks,
        occupancy=occupancy.astype(np.int64),
    )
    if isinstance(operand, SparseFormat):
        operand._profile_memo = (memo_key, profile)
    return profile
