"""Schedule suggestions: from a format decision to backend knobs.

The tuner does not stop at picking a format — a (format, planner-config,
tiling) triple is the real decision.  This module turns a profile and a
chosen candidate into:

* a :class:`ScheduleHint` — preferred Triton-style tile sizes (for block
  candidates, matched to the block shape) and an execution chunk for the
  fused NumPy executor, sized so one chunk's gathered working set stays
  cache-resident;
* a ready-to-use :class:`~repro.core.inductor.config.InductorConfig` via
  :func:`suggest_config`.

The Insum planner stores the hint on the plan
(:attr:`repro.core.insum.planner.InsumPlan.schedule_hint`), and the
backend's autotuner evaluates the hinted tiles as an extra candidate — the
search still picks the modelled minimum, so the hint can only help.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.inductor.config import InductorConfig
from repro.tuner.candidates import Candidate
from repro.tuner.profile import SparsityProfile
from repro.utils.arrays import next_power_of_two, prev_power_of_two

#: Target bytes of one execution chunk's gathered working set (~half the
#: L2 of a desktop part; fp64 NumPy execution).
_CHUNK_WORKING_SET_BYTES = 2 << 20


@dataclass(frozen=True)
class ScheduleHint:
    """Tuner-suggested schedule parameters for one compiled Einsum.

    Attributes
    ----------
    execution_chunk:
        Chunk size of the fused executor along the leading output axis.
    tile_sizes:
        Preferred tile assignment for the simulated Triton kernel, or
        ``None`` to leave the choice entirely to the autotuner.
    """

    execution_chunk: int
    tile_sizes: dict[str, int] | None = None


def _clamp_pow2(value: int, lo: int, hi: int) -> int:
    """Round ``value`` to a power of two inside ``[lo, hi]``."""
    value = max(1, int(value))
    return max(lo, min(hi, prev_power_of_two(max(1, value))))


def suggest_schedule(
    profile: SparsityProfile, candidate: Candidate, n_cols: int = 64
) -> ScheduleHint:
    """Derive schedule parameters from the profile and the chosen format.

    Parameters
    ----------
    profile:
        Structural summary of the sparse operand.
    candidate:
        The format configuration the tuner selected.
    n_cols:
        Dense operand width of the SpMM-shaped workload.

    Returns
    -------
    ScheduleHint
        Execution chunk and (for block formats) a tile preference aligned
        with the block shape.
    """
    # Each chunk row drags ~row_mean gathered rows of n_cols fp64 elements.
    bytes_per_row = max(1.0, profile.row_mean) * max(1, n_cols) * 8
    chunk = _clamp_pow2(int(_CHUNK_WORKING_SET_BYTES / bytes_per_row), 16, 4096)

    tiles: dict[str, int] | None = None
    if candidate.block_shape is not None:
        bm, bk = candidate.block_shape
        tiles = {
            "m": _clamp_pow2(bm, 1, 64),
            "n": _clamp_pow2(next_power_of_two(max(1, n_cols)), 1, 128),
            "k": _clamp_pow2(bk, 1, 64),
        }
    return ScheduleHint(execution_chunk=chunk, tile_sizes=tiles)


def suggest_config(
    profile: SparsityProfile,
    candidate: Candidate,
    base: InductorConfig | None = None,
    n_cols: int = 64,
) -> InductorConfig:
    """An :class:`InductorConfig` carrying the tuner's schedule choice.

    Starts from ``base`` (or the default configuration), sets the
    suggested execution chunk, and keeps tile autotuning on — the hinted
    tiles reach the autotuner through the plan's schedule hint instead of
    being forced, so the device model can still override them.

    Parameters
    ----------
    profile:
        Structural summary of the sparse operand.
    candidate:
        The format configuration the tuner selected.
    base:
        Configuration to start from (default: a fresh ``InductorConfig``).
    n_cols:
        Dense operand width of the SpMM-shaped workload.
    """
    hint = suggest_schedule(profile, candidate, n_cols=n_cols)
    config = base if base is not None else InductorConfig()
    return replace(config, execution_chunk=hint.execution_chunk)
