"""The calibrated analytical cost model scoring candidate formats.

For an SpMM-shaped workload ``C[m,n] += A[m,k] * B[k,n]`` with ``A`` sparse
and ``n_cols`` dense output columns, each candidate format implies an exact
operation census:

=================  =====================  ==================  =================
candidate          gathered elements      scattered elements  multiply-adds
=================  =====================  ==================  =================
COO                ``S·n + 2S``           ``S·n``             ``2·S·n`` scalar
ELL                ``P·n + P``            0 (direct rows)     ``2·P·n`` scalar
GroupCOO(g)        ``P·n + P + G``        ``G·n``             ``2·P·n`` scalar
BlockCOO(b)        ``NB·bK·n + 2·NB``     ``NB·bM·n``         ``2·NB·bM·bK·n`` block
BlockGroupCOO(g)   ``PB·bK·n + PB + GB``  ``GB·bM·n``         ``2·PB·bM·bK·n`` block
=================  =====================  ==================  =================

where ``S`` = nnz, ``P`` = padded stored slots, ``G`` = number of groups,
``NB`` = nonzero blocks, ``PB`` = padded stored blocks, ``GB`` = block
groups.  Scalar multiply-adds run at the strided-``einsum`` rate and block
multiply-adds at the contiguous-``matmul`` rate — the two rates (and the
gather/scatter/overhead costs) come from the
:mod:`~repro.tuner.calibration` microbenchmarks, so the model prices
operations in *measured seconds on this machine*, not abstract counts.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError
from repro.formats.group_size import exact_indirect_access_count
from repro.tuner.calibration import Calibration, get_calibration
from repro.tuner.candidates import Candidate, ScoredCandidate
from repro.tuner.profile import SparsityProfile


class TunerError(ReproError):
    """The tuner could not profile, score, or build a candidate."""


class CostModel:
    """Scores (format, parameters) candidates for a profiled operand.

    Parameters
    ----------
    calibration:
        Per-operation cost constants; defaults to the process-wide
        calibration (measured on first use, see
        :func:`repro.tuner.calibration.get_calibration`).
    """

    def __init__(self, calibration: Calibration | None = None):
        self.calibration = calibration if calibration is not None else get_calibration()

    # -- per-candidate censuses ---------------------------------------------
    def _census(
        self, profile: SparsityProfile, candidate: Candidate, n_cols: int
    ) -> tuple[float, float, float, float]:
        """``(gather, scatter, scalar_macs, block_macs)`` element counts."""
        nnz = profile.nnz
        occ = profile.occupancy
        name = candidate.format_name

        if name == "COO":
            return nnz * n_cols + 2 * nnz, nnz * n_cols, 2 * nnz * n_cols, 0.0

        if name == "ELL":
            padded = profile.shape[0] * profile.row_max
            return padded * n_cols + padded, 0.0, 2 * padded * n_cols, 0.0

        if name == "GroupCOO":
            g = candidate.group_size or 1
            nonempty = occ[occ > 0]
            groups = int(np.sum(-(nonempty // -g)))  # vectorised ceil_div
            padded = groups * g
            gather = padded * n_cols + padded + groups
            return gather, groups * n_cols, 2 * padded * n_cols, 0.0

        if name in ("BlockCOO", "BlockGroupCOO"):
            if candidate.block_shape is None or candidate.block_shape not in profile.blocks:
                raise TunerError(
                    f"candidate {candidate.describe()} has no block statistics in the profile"
                )
            bm, bk = candidate.block_shape
            stats = profile.blocks[candidate.block_shape]
            if name == "BlockCOO":
                nb = stats.num_blocks
                gather = nb * bk * n_cols + 2 * nb
                return gather, nb * bm * n_cols, 0.0, 2 * nb * bm * bk * n_cols
            g = candidate.group_size or 1
            # Relaxed Section 4.2 group count over block rows (the profile
            # keeps only summary block statistics, not the full histogram).
            groups = stats.num_blocks / g + stats.nonempty_rows * (1 - 1 / g) * 0.5
            padded_blocks = groups * g
            gather = padded_blocks * bk * n_cols + padded_blocks + groups
            return (
                gather,
                groups * bm * n_cols,
                0.0,
                2 * padded_blocks * bm * bk * n_cols,
            )

        raise TunerError(f"cost model does not know candidate format {name!r}")

    # -- scoring -------------------------------------------------------------
    def estimate_ms(
        self, profile: SparsityProfile, candidate: Candidate, n_cols: int = 64
    ) -> float:
        """Modelled execution time of one SpMM with this candidate, in ms.

        Parameters
        ----------
        profile:
            The sparse operand's structural summary.
        candidate:
            The format configuration to price.
        n_cols:
            Width of the dense operand (``n`` in ``C[m,n]``).

        Returns
        -------
        float
            Estimated milliseconds per execution on this machine.
        """
        gather, scatter, scalar_macs, block_macs = self._census(profile, candidate, n_cols)
        cal = self.calibration
        nanos = (
            gather * cal.gather_ns
            + scatter * cal.scatter_ns
            + scalar_macs * cal.flop_ns
            + block_macs * cal.block_flop_ns
        )
        return nanos / 1e6 + cal.overhead_us / 1e3

    def rank(
        self,
        profile: SparsityProfile,
        candidates: list[Candidate],
        n_cols: int = 64,
    ) -> list[ScoredCandidate]:
        """Score every candidate and return them cheapest-first.

        Parameters
        ----------
        profile:
            The sparse operand's structural summary.
        candidates:
            Format configurations to score (see ``enumerate_candidates``).
        n_cols:
            Width of the dense operand the SpMM multiplies against.
        """
        scored = [
            ScoredCandidate(candidate=c, modeled_ms=self.estimate_ms(profile, c, n_cols))
            for c in candidates
        ]
        return sorted(scored, key=lambda s: s.modeled_ms)

    # -- introspection -------------------------------------------------------
    def explain(
        self, profile: SparsityProfile, candidate: Candidate, n_cols: int = 64
    ) -> dict[str, float]:
        """Break one candidate's cost into its census terms (for reports).

        Parameters
        ----------
        profile:
            The sparse operand's structural summary.
        candidate:
            The format configuration to explain.
        n_cols:
            Width of the dense operand the SpMM multiplies against.

        Returns
        -------
        dict
            ``gather_elements``, ``scatter_elements``, ``scalar_macs``,
            ``block_macs``, and the resulting ``modeled_ms``.
        """
        gather, scatter, scalar_macs, block_macs = self._census(profile, candidate, n_cols)
        return {
            "gather_elements": float(gather),
            "scatter_elements": float(scatter),
            "scalar_macs": float(scalar_macs),
            "block_macs": float(block_macs),
            "modeled_ms": self.estimate_ms(profile, candidate, n_cols),
        }


def indirect_access_count(profile: SparsityProfile, group_size: int) -> int:
    """The paper's ``F(g)`` evaluated on a profile's occupancy histogram."""
    return exact_indirect_access_count(np.asarray(profile.occupancy), group_size)
