"""repro.tuner: cost-model-driven adaptive format and schedule selection.

The paper's pipeline covers structured SpMM, unstructured SpMM, sparse
convolution, and equivariant tensor products with one compiler — but the
caller still hand-picks among seven storage formats and a backend config.
This package closes that gap:

1. :mod:`~repro.tuner.profile` extracts a :class:`SparsityProfile` from
   any operand (density, row-occupancy histogram, block-alignment scores,
   the Section 4.2 group-size estimate);
2. :mod:`~repro.tuner.cost_model` scores candidate (format, parameters,
   schedule) triples with an analytical model whose per-operation costs
   are **calibrated** by :mod:`~repro.tuner.calibration` microbenchmarks
   (persistable as JSON via ``REPRO_TUNER_CALIBRATION``);
3. :mod:`~repro.tuner.auto` exposes :func:`auto_format` /
   :func:`choose_format` plus a process-wide :class:`DecisionCache`, and
   the public API accepts ``insum(..., format="auto", tune="auto")``
   (``tune="measure"`` times the top candidates through the real
   compile-and-execute pipeline instead);
4. :mod:`~repro.tuner.schedule` turns a decision into backend knobs
   (execution chunk, tile preferences) consumed by the planner and the
   Inductor-like autotuner.

See ``docs/FORMATS.md`` for the candidate-space specification and
``benchmarks/bench_tuner_adaptive.py`` for the four-regime evaluation.
"""

from repro.tuner.auto import (
    DecisionCache,
    TunerDecision,
    auto_format,
    choose_format,
    clear_decision_cache,
    get_decision_cache,
)
from repro.tuner.calibration import (
    Calibration,
    get_calibration,
    run_microbenchmarks,
    set_calibration,
)
from repro.tuner.candidates import Candidate, ScoredCandidate, enumerate_candidates
from repro.tuner.cost_model import CostModel, TunerError
from repro.tuner.profile import (
    BlockProfile,
    SparsityProfile,
    profile_operand,
)
from repro.tuner.schedule import ScheduleHint, suggest_config, suggest_schedule

__all__ = [
    "auto_format",
    "choose_format",
    "Candidate",
    "ScoredCandidate",
    "enumerate_candidates",
    "CostModel",
    "TunerError",
    "Calibration",
    "get_calibration",
    "run_microbenchmarks",
    "set_calibration",
    "BlockProfile",
    "SparsityProfile",
    "profile_operand",
    "ScheduleHint",
    "suggest_config",
    "suggest_schedule",
    "DecisionCache",
    "TunerDecision",
    "get_decision_cache",
    "clear_decision_cache",
]
