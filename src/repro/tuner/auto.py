"""Automatic format selection: ``auto_format`` and the decision cache.

The front door of the tuner:

* :func:`auto_format` — profile an operand, score the candidate formats
  with the calibrated cost model, and return the operand converted to the
  winning format.
* :func:`choose_format` — the decision itself (profile → ranked
  candidates), with an optional *measure* mode that times the top
  candidates through the real compile-and-execute pipeline (including the
  backend's tile autotuner in :mod:`repro.core.inductor.autotune`) and
  picks by wall clock instead of by model.
* :class:`DecisionCache` — decisions memoised by
  :meth:`~repro.tuner.profile.SparsityProfile.bucket`, so a serving
  process profiles each sparsity *regime* once and every later request in
  the same bucket reuses the choice.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.formats.base import SparseFormat
from repro.obs.metrics import get_registry
from repro.tuner.candidates import Candidate, ScoredCandidate, enumerate_candidates
from repro.tuner.cost_model import CostModel, TunerError
from repro.tuner.profile import SparsityProfile, profile_operand

#: How many model-ranked candidates the measure mode times empirically.
MEASURE_TOP_K = 3

#: In ``"auto"`` mode, when the runner-up's modelled cost is within this
#: factor of the winner's, the model is considered too close to call and
#: the top candidates are timed empirically (once per profile bucket —
#: the decision cache amortises the measurement).
AUTO_MEASURE_MARGIN = 1.25


@dataclass(frozen=True)
class TunerDecision:
    """Outcome of one format-selection run.

    Attributes
    ----------
    bucket:
        The profile bucket the decision applies to.
    chosen:
        The winning candidate with its modelled (and, in measure mode,
        measured) cost.
    ranked:
        Every scored candidate, cheapest-first.
    mode:
        ``"model"``, ``"auto"``, or ``"measure"``.
    profile:
        The profile the decision was scored against (the *first* operand
        of the bucket when the decision came from the cache).
    """

    bucket: tuple
    chosen: ScoredCandidate
    ranked: tuple[ScoredCandidate, ...]
    mode: str
    profile: SparsityProfile | None = field(default=None, compare=False, repr=False)

    @property
    def candidate(self) -> Candidate:
        """The winning format configuration."""
        return self.chosen.candidate

    def describe(self) -> str:
        """One line per candidate with modelled/measured costs."""
        lines = [f"tuner decision ({self.mode}): {self.candidate.describe()}"]
        for scored in self.ranked:
            mark = "->" if scored.candidate == self.candidate else "  "
            measured = (
                f"  measured {scored.measured_ms:8.4f} ms"
                if scored.measured_ms is not None
                else ""
            )
            lines.append(
                f"  {mark} {scored.candidate.describe():<24s} "
                f"modeled {scored.modeled_ms:8.4f} ms{measured}"
            )
        return "\n".join(lines)


class DecisionCache:
    """Thread-safe LRU memo of tuner decisions keyed by profile bucket.

    Bounded like the plan cache: each entry retains its profile (an
    O(rows) occupancy array), so a long-lived server seeing many distinct
    shapes must not accumulate decisions forever.  Entries are promoted
    on hit and the least-recently-used is evicted beyond ``maxsize``.
    """

    def __init__(self, maxsize: int = 256) -> None:
        if maxsize < 1:
            raise ValueError(f"decision cache maxsize must be >= 1, got {maxsize}")
        self._maxsize = int(maxsize)
        self._decisions: OrderedDict[tuple, TunerDecision] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        registry = get_registry()
        decision_help = "Tuner decision-cache lookups, by outcome."
        self._m_hits = registry.counter(
            "repro_tuner_decisions_total", decision_help, outcome="hit"
        )
        self._m_misses = registry.counter(
            "repro_tuner_decisions_total", decision_help, outcome="miss"
        )

    def get(self, bucket: tuple) -> TunerDecision | None:
        """Look up a cached decision, counting a hit or a miss."""
        with self._lock:
            decision = self._decisions.get(bucket)
            if decision is None:
                self._misses += 1
            else:
                self._decisions.move_to_end(bucket)
                self._hits += 1
        (self._m_hits if decision is not None else self._m_misses).inc()
        return decision

    def put(self, decision: TunerDecision) -> TunerDecision:
        """Insert a decision (first writer wins, as with the plan cache)."""
        with self._lock:
            existing = self._decisions.get(decision.bucket)
            if existing is not None:
                self._decisions.move_to_end(decision.bucket)
                return existing
            self._decisions[decision.bucket] = decision
            while len(self._decisions) > self._maxsize:
                self._decisions.popitem(last=False)
            return decision

    def clear(self) -> None:
        """Drop all decisions and reset counters."""
        with self._lock:
            self._decisions.clear()
            self._hits = self._misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._decisions)

    @property
    def hits(self) -> int:
        """Lookups served from the cache."""
        return self._hits

    @property
    def misses(self) -> int:
        """Lookups that required a fresh scoring run."""
        return self._misses


_DECISIONS = DecisionCache()


def get_decision_cache() -> DecisionCache:
    """The process-wide decision cache shared by the auto paths."""
    return _DECISIONS


def clear_decision_cache() -> None:
    """Empty the process-wide decision cache (tests and benchmarks)."""
    _DECISIONS.clear()


# ---------------------------------------------------------------------------
# Selection
# ---------------------------------------------------------------------------
def _as_dense(operand) -> np.ndarray:
    """Dense view of an operand (identity for ndarrays)."""
    if isinstance(operand, SparseFormat):
        return operand.to_dense()
    return np.asarray(operand)


def _measure_candidates(
    candidates: list[Candidate], dense: np.ndarray, n_cols: int, rounds: int = 5
) -> dict[Candidate, float]:
    """Wall-clock milliseconds of one SpMM per candidate format.

    Each candidate compiles through the full pipeline (planner →
    Inductor-like backend, whose tile autotuner runs because the default
    config autotunes).  Warm executions are then timed **interleaved** —
    round-robin over the candidates, keeping each one's minimum — so CPU
    frequency ramp-up and other monotone drift hit every candidate
    equally instead of penalising whichever was timed first.
    """
    from repro.core.insum.api import SparseEinsum
    from repro.utils.timing import Timer

    rng = np.random.default_rng(0)
    dense_rhs = rng.standard_normal((dense.shape[1], n_cols))
    operators = []
    for candidate in candidates:
        operand = candidate.build(dense)
        op = SparseEinsum("C[m,n] += A[m,k] * B[k,n]")
        op(A=operand, B=dense_rhs)  # compile + warm up
        operators.append((candidate, op, operand))
    best: dict[Candidate, float] = {c: float("inf") for c in candidates}
    for _ in range(rounds):
        for candidate, op, operand in operators:
            with Timer() as timer:
                op(A=operand, B=dense_rhs)
            best[candidate] = min(best[candidate], timer.elapsed_ms)
    return best


def choose_format(
    profile: SparsityProfile,
    n_cols: int = 64,
    mode: str = "auto",
    cost_model: CostModel | None = None,
    allow_blocks: bool = True,
    dense: np.ndarray | None = None,
    use_cache: bool = True,
) -> TunerDecision:
    """Pick the best format configuration for a profiled operand.

    Parameters
    ----------
    profile:
        The operand's structural summary.
    n_cols:
        Dense-operand width the decision optimises for.
    mode:
        ``"model"`` ranks purely with the calibrated cost model.
        ``"auto"`` (the default) ranks with the model and, when the top
        two candidates are within :data:`AUTO_MEASURE_MARGIN` of each
        other (too close for an analytical model to call — e.g.
        cache-locality effects the census cannot see), times the top
        :data:`MEASURE_TOP_K` candidates through the real pipeline.
        ``"measure"`` always times the top candidates and picks the
        fastest measured one.
    cost_model:
        Override the cost model (defaults to one on the process-wide
        calibration).
    allow_blocks:
        Permit block-format candidates.
    dense:
        Dense matrix to build candidates from (or a zero-argument callable
        producing it, resolved only if a measurement actually runs);
        required for ``mode="measure"`` and for the ``"auto"`` mode's
        too-close-to-call measurements.
    use_cache:
        Consult/populate the process-wide :class:`DecisionCache`.

    Returns
    -------
    TunerDecision
        The winning candidate plus the full ranking.
    """
    if mode not in ("model", "auto", "measure"):
        raise TunerError(f"unknown tune mode {mode!r}; use 'model', 'auto', or 'measure'")
    bucket = (*profile.bucket(), n_cols, mode)
    if use_cache:
        cached = _DECISIONS.get(bucket)
        if cached is not None:
            return cached

    model = cost_model if cost_model is not None else CostModel()
    ranked = model.rank(profile, enumerate_candidates(profile, allow_blocks=allow_blocks), n_cols)

    if mode == "measure" and dense is None:
        raise TunerError("tune='measure' needs the operand (dense) to time candidates")
    should_measure = mode == "measure" or (
        mode == "auto"
        and dense is not None
        and len(ranked) > 1
        and ranked[1].modeled_ms < ranked[0].modeled_ms * AUTO_MEASURE_MARGIN
    )
    if should_measure:
        dense = dense() if callable(dense) else dense
        timings = _measure_candidates(
            [scored.candidate for scored in ranked[:MEASURE_TOP_K]], dense, n_cols
        )
        measured = [
            ScoredCandidate(
                candidate=scored.candidate,
                modeled_ms=scored.modeled_ms,
                measured_ms=timings[scored.candidate],
            )
            for scored in ranked[:MEASURE_TOP_K]
        ]
        measured.sort(key=lambda s: s.measured_ms or float("inf"))
        ranked = measured + ranked[MEASURE_TOP_K:]

    decision = TunerDecision(
        bucket=bucket, chosen=ranked[0], ranked=tuple(ranked), mode=mode, profile=profile
    )
    if use_cache:
        decision = _DECISIONS.put(decision)
    return decision


def auto_format_with_decision(
    operand,
    n_cols: int = 64,
    tune: str = "auto",
    cost_model: CostModel | None = None,
    use_cache: bool = True,
) -> tuple[SparseFormat, TunerDecision]:
    """:func:`auto_format` plus the decision it was based on.

    The shared implementation behind :func:`auto_format` and the
    ``format="auto"`` API path (which also needs the decision's bucket and
    candidate for plan-cache keying and schedule hints).  Parameters as
    for :func:`auto_format`.
    """
    profile = profile_operand(operand)
    # A thunk so model-only (or cache-hit) decisions never densify.
    dense = (
        np.asarray(operand)
        if not isinstance(operand, SparseFormat)
        else (lambda: _as_dense(operand))
    )
    decision = choose_format(
        profile,
        n_cols=n_cols,
        mode=tune,
        cost_model=cost_model,
        dense=dense,
        use_cache=use_cache,
    )
    candidate = decision.candidate
    if isinstance(operand, SparseFormat) and candidate.matches(operand):
        return operand, decision
    return candidate.build(dense() if callable(dense) else dense), decision


def auto_format(
    operand,
    n_cols: int = 64,
    tune: str = "auto",
    cost_model: CostModel | None = None,
    use_cache: bool = True,
) -> SparseFormat:
    """Convert an operand to the format the tuner picks for it.

    Parameters
    ----------
    operand:
        A 2-D dense :class:`numpy.ndarray` or any
        :class:`~repro.formats.base.SparseFormat` instance (which is
        re-formatted when the tuner prefers a different configuration, and
        returned unchanged when it already matches the choice).
    n_cols:
        Dense-operand width the decision optimises for (``n`` of the SpMM
        the operand will participate in).
    tune:
        ``"model"`` for the pure cost model, ``"auto"`` (default) for the
        model plus too-close-to-call measurements, ``"measure"`` for
        empirical timing of the top candidates.
    cost_model:
        Optional cost-model override.
    use_cache:
        Consult/populate the process-wide decision cache.

    Returns
    -------
    SparseFormat
        The operand in the winning format.

    Examples
    --------
    >>> from repro.tuner import auto_format
    >>> A = np.where(np.random.rand(64, 64) < 0.05, 1.0, 0.0)
    >>> fmt = auto_format(A)
    >>> fmt.fixed_length
    True
    """
    formatted, _ = auto_format_with_decision(
        operand, n_cols=n_cols, tune=tune, cost_model=cost_model, use_cache=use_cache
    )
    return formatted
