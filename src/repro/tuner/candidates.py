"""Candidate enumeration: the (format, parameters, schedule) search space.

Given a :class:`~repro.tuner.profile.SparsityProfile`, enumerate the
concrete format configurations the cost model will score.  The space is
deliberately small (typically 4–8 candidates):

* ``COO`` — the universal fallback, always feasible;
* ``ELL`` — only priced when the padded width is not catastrophic
  (``rows * row_max`` bounded relative to nnz);
* ``GroupCOO`` — one candidate per power-of-two group size bracketing the
  Section 4.2 estimate ``g*``;
* ``BlockCOO`` / ``BlockGroupCOO`` — for every scored block shape whose
  fill clears a floor (unstructured data never pays block padding); the
  cost model arbitrates between block shapes.

``docs/FORMATS.md`` is the prose companion of this module: it documents
each format's layout and the regime in which the cost model should (and
does) pick it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.formats.base import SparseFormat
from repro.formats.blockcoo import BlockCOO
from repro.formats.blockgroupcoo import BlockGroupCOO
from repro.formats.coo import COO
from repro.formats.ell import ELL
from repro.formats.group_size import power_of_two_candidates
from repro.formats.groupcoo import GroupCOO
from repro.tuner.profile import SparsityProfile

#: ELL candidates are dropped when padding would exceed this multiple of nnz.
_ELL_PADDING_LIMIT = 8.0

#: Minimum block fill for block formats to enter the candidate set.
_BLOCK_FILL_FLOOR = 0.25


@dataclass(frozen=True)
class Candidate:
    """One point of the tuner's search space.

    Attributes
    ----------
    format_name:
        ``"COO"``, ``"ELL"``, ``"GroupCOO"``, ``"BlockCOO"``, or
        ``"BlockGroupCOO"``.
    group_size:
        Group size for the grouped formats (``None`` otherwise).
    block_shape:
        ``(bM, bK)`` for the block formats (``None`` otherwise).
    """

    format_name: str
    group_size: int | None = None
    block_shape: tuple[int, int] | None = None

    def describe(self) -> str:
        """Short human-readable label, e.g. ``GroupCOO(g=4)``."""
        parts = []
        if self.group_size is not None:
            parts.append(f"g={self.group_size}")
        if self.block_shape is not None:
            parts.append(f"b={self.block_shape[0]}x{self.block_shape[1]}")
        return f"{self.format_name}({', '.join(parts)})" if parts else self.format_name

    def build(self, dense: np.ndarray) -> SparseFormat:
        """Materialise this candidate's format from a dense matrix."""
        if self.format_name == "COO":
            return COO.from_dense(dense)
        if self.format_name == "ELL":
            return ELL.from_dense(dense)
        if self.format_name == "GroupCOO":
            return GroupCOO.from_dense(dense, group_size=self.group_size)
        if self.format_name == "BlockCOO":
            assert self.block_shape is not None
            return BlockCOO.from_dense(dense, self.block_shape)
        if self.format_name == "BlockGroupCOO":
            assert self.block_shape is not None
            return BlockGroupCOO.from_dense(
                dense, self.block_shape, group_size=self.group_size
            )
        raise ValueError(f"unknown candidate format {self.format_name!r}")

    def matches(self, operand: SparseFormat) -> bool:
        """Whether an existing format instance already realises this candidate."""
        if operand.format_name != self.format_name:
            return False
        if self.group_size is not None and getattr(operand, "group_size", None) != self.group_size:
            return False
        if self.block_shape is not None and getattr(operand, "block_shape", None) != tuple(
            self.block_shape
        ):
            return False
        return True


@dataclass(frozen=True)
class ScoredCandidate:
    """A candidate with its modelled cost (and, in measure mode, a timing)."""

    candidate: Candidate
    modeled_ms: float
    measured_ms: float | None = field(default=None, compare=False)


def enumerate_candidates(
    profile: SparsityProfile, allow_blocks: bool = True
) -> list[Candidate]:
    """The candidate set for one profile.

    Parameters
    ----------
    profile:
        The operand's structural summary.
    allow_blocks:
        Disable block-format candidates (used when the consumer cannot
        reshape the dense operand, e.g. a rank-3 stacked Einsum).

    Returns
    -------
    list[Candidate]
        Feasible candidates, COO first (the safe fallback).
    """
    candidates: list[Candidate] = [Candidate("COO")]
    if profile.nnz == 0:
        return candidates

    rows = profile.shape[0]
    if profile.row_max and rows * profile.row_max <= _ELL_PADDING_LIMIT * profile.nnz:
        candidates.append(Candidate("ELL"))

    for g in power_of_two_candidates(profile.g_star, max_group=max(1, profile.row_max)):
        if g > 1:
            candidates.append(Candidate("GroupCOO", group_size=g))

    if allow_blocks:
        for block_shape, stats in profile.blocks.items():
            if stats.fill < _BLOCK_FILL_FLOOR:
                continue
            candidates.append(Candidate("BlockCOO", block_shape=block_shape))
            for g in power_of_two_candidates(stats.g_star, max_group=max(1, stats.row_max)):
                if g > 1:
                    candidates.append(
                        Candidate("BlockGroupCOO", group_size=g, block_shape=block_shape)
                    )
    return candidates
