"""Microbenchmark calibration of the tuner's cost constants.

The analytical cost model prices a candidate format in *primitive
operations* — indirect gathers, scatter-adds, scalar multiply-accumulates,
and contiguous (block/matmul) multiply-accumulates.  Rather than hard-code
per-operation costs, they are **measured once per process** with
:class:`repro.utils.timing.Timer` microbenchmarks over exactly the NumPy
primitives the executor uses (fancy indexing, ``np.add.at``, ``einsum``,
``matmul``) — the AraOS-style "calibrate the model from the hardware you
are on" approach (PAPERS.md).

Calibration takes a few tens of milliseconds.  The constants can be
persisted as JSON (``save`` / ``load``); set the ``REPRO_TUNER_CALIBRATION``
environment variable to a file path to persist across processes — the
calibration is loaded from the file when present and written there after
the first in-process measurement otherwise.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

from repro.utils.timing import Timer

#: Bump when the benchmark suite changes; stale persisted files are ignored.
CALIBRATION_VERSION = 1

#: Environment variable naming the JSON persistence path (optional).
CALIBRATION_ENV_VAR = "REPRO_TUNER_CALIBRATION"


@dataclass(frozen=True)
class Calibration:
    """Measured per-operation costs, in nanoseconds per element.

    Attributes
    ----------
    gather_ns:
        Cost of one indirectly-gathered element (``B[idx]`` fancy
        indexing), amortised over a large gather.
    scatter_ns:
        Cost of one scattered element (``np.add.at``), the price of an
        indirect output row.
    flop_ns:
        Cost of one scalar multiply-accumulate in a strided ``einsum``
        contraction (the COO/GroupCOO/ELL execution shape).
    block_flop_ns:
        Cost of one multiply-accumulate inside a contiguous ``matmul``
        (the BlockCOO/BlockGroupCOO execution shape) — typically several
        times cheaper than ``flop_ns``, which is exactly why block formats
        win on block-structured data.
    overhead_us:
        Fixed per-kernel dispatch overhead in microseconds.
    """

    gather_ns: float
    scatter_ns: float
    flop_ns: float
    block_flop_ns: float
    overhead_us: float
    version: int = CALIBRATION_VERSION

    # -- persistence ---------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Write the constants as JSON to ``path`` (parents are created)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(asdict(self), indent=2) + "\n")

    @classmethod
    def load(cls, path: str | Path) -> "Calibration | None":
        """Read constants from JSON; ``None`` if missing, corrupt, or stale."""
        path = Path(path)
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if payload.get("version") != CALIBRATION_VERSION:
            return None
        try:
            return cls(**payload)
        except TypeError:
            return None


def _best_of(repeats: int, fn) -> float:
    """Minimum wall-clock seconds of ``fn`` over ``repeats`` runs."""
    best = float("inf")
    for _ in range(repeats):
        with Timer() as timer:
            fn()
        best = min(best, timer.elapsed)
    return best


def run_microbenchmarks(
    elements: int = 1 << 18, repeats: int = 3, rng_seed: int = 0
) -> Calibration:
    """Measure the cost constants on this machine.

    Parameters
    ----------
    elements:
        Working-set size of each microbenchmark.  The default (256k
        elements) is large enough to amortise dispatch overhead and small
        enough to finish in tens of milliseconds.
    repeats:
        Each primitive is timed this many times; the minimum is kept
        (standard practice — the minimum is the least noise-contaminated
        estimate of the true cost).
    rng_seed:
        Seed for the index/value generation, for reproducible inputs.

    Returns
    -------
    Calibration
        The measured constants.
    """
    rng = np.random.default_rng(rng_seed)
    n = int(elements)
    width = 32
    source = rng.standard_normal((n // width, width)).astype(np.float64)
    index = rng.integers(0, n // width, size=n // width)
    values = rng.standard_normal((n // width, width))

    # Gather: fancy-index n/width rows of `width` elements each.
    gather_s = _best_of(repeats, lambda: source[index])
    gather_ns = gather_s / n * 1e9

    # Scatter: np.add.at over the same row index.
    out = np.zeros_like(source)
    scatter_s = _best_of(repeats, lambda: np.add.at(out, index, values))
    scatter_ns = scatter_s / n * 1e9

    # Scalar MAC: an einsum that cannot be lowered to a contiguous matmul.
    a = rng.standard_normal(n)
    b = rng.standard_normal(n)
    flop_s = _best_of(repeats, lambda: np.einsum("p,p->", a, b))
    flop_ns = flop_s / n * 1e9

    # Block MAC: a contiguous matmul with the same total MAC count.
    k = 64
    m = max(1, n // k)
    lhs = rng.standard_normal((m, k))
    rhs = rng.standard_normal((k, k))
    block_s = _best_of(repeats, lambda: lhs @ rhs)
    block_flop_ns = block_s / (m * k * k) * 1e9

    # Fixed dispatch overhead: a minimal einsum on tiny operands.
    tiny = np.ones(4)
    overhead_s = _best_of(repeats, lambda: [np.einsum("p,p->", tiny, tiny) for _ in range(100)])
    overhead_us = overhead_s / 100 * 1e6

    return Calibration(
        gather_ns=max(gather_ns, 1e-3),
        scatter_ns=max(scatter_ns, 1e-3),
        flop_ns=max(flop_ns, 1e-3),
        block_flop_ns=max(block_flop_ns, 1e-4),
        overhead_us=max(overhead_us, 1e-2),
    )


# ---------------------------------------------------------------------------
# The process-wide calibration (measured once, optionally persisted)
# ---------------------------------------------------------------------------
_CALIBRATION: Calibration | None = None
_CALIBRATION_LOCK = threading.Lock()


def get_calibration() -> Calibration:
    """The process-wide calibration, measuring (or loading) it on first use.

    Resolution order: an already-measured in-process value, then the JSON
    file named by ``REPRO_TUNER_CALIBRATION`` (if set and valid), then a
    fresh microbenchmark run — whose result is written back to that path
    when the variable is set.
    """
    global _CALIBRATION
    if _CALIBRATION is not None:
        return _CALIBRATION
    with _CALIBRATION_LOCK:
        if _CALIBRATION is not None:
            return _CALIBRATION
        path = os.environ.get(CALIBRATION_ENV_VAR)
        if path:
            loaded = Calibration.load(path)
            if loaded is not None:
                _CALIBRATION = loaded
                return _CALIBRATION
        measured = run_microbenchmarks()
        if path:
            try:
                measured.save(path)
            except OSError:
                pass  # persistence is best-effort; the in-memory value stands
        _CALIBRATION = measured
        return _CALIBRATION


def set_calibration(calibration: Calibration | None) -> None:
    """Override (or, with ``None``, reset) the process-wide calibration.

    Used by tests to make cost-model behaviour deterministic and by
    applications that ship pre-measured constants.
    """
    global _CALIBRATION
    with _CALIBRATION_LOCK:
        _CALIBRATION = calibration
