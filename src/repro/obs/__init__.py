"""repro.obs: one observability layer for the whole serving stack.

Four pieces, designed to be imported from anywhere in the package
without cycles (this package depends on nothing above the stdlib):

* :mod:`repro.obs.metrics` — the process-wide registry of counters /
  gauges / histograms, with ``snapshot()`` and Prometheus-text
  rendering.  Every tier and subsystem increments the same registry.
* :mod:`repro.obs.logs` — structured JSON logging with per-subsystem
  loggers (``REPRO_LOG_LEVEL`` / ``REPRO_LOG_FORMAT``).
* :mod:`repro.obs.trace` — per-request trace ids and span records,
  minted at ``Session.submit``, carried through tickets and cluster
  envelopes, retrievable as ``Future.trace()``.
* :mod:`repro.obs.ops` — the ``/metrics`` / ``/healthz`` / ``/statsz``
  HTTP endpoint (``Session.serve_ops`` or ``REPRO_OPS_PORT``), plus
  :mod:`repro.obs.resources` for ``/proc``-based RSS/CPU accounting.

See ``docs/OBSERVABILITY.md`` for the metric catalogue, the trace span
glossary, the ops API, and the log schema.
"""

from repro.obs.logs import configure_logging, get_logger
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    validate_prometheus_text,
)
from repro.obs.ops import OpsServer
from repro.obs.resources import ProcessSample, sample_process
from repro.obs.trace import Span, Trace

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "OpsServer",
    "ProcessSample",
    "Span",
    "Trace",
    "configure_logging",
    "get_logger",
    "get_registry",
    "sample_process",
    "validate_prometheus_text",
]
